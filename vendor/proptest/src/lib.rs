//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim reimplements the subset of proptest this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range / tuple / `Just` / `any` strategies, `collection::vec`, the
//! `prop_oneof!` union, and the `proptest!` test macro with optional
//! `proptest_config`. Sampling is deterministic: the RNG for each case
//! is seeded from the test's module path, name and case index, so a
//! failure reproduces on every run.
//!
//! **No shrinking**: a failing case panics with its inputs unshrunk
//! (the deterministic seed makes it reproducible under a debugger).

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            let mid = self.inner.sample(rng);
            (self.f)(mid).sample(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; each is equally likely.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an alternative");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    /// Integer types samplable from a `Range` strategy.
    pub trait RangeValue: Copy {
        /// Uniform sample in `[start, end)`.
        fn uniform(rng: &mut TestRng, start: Self, end: Self) -> Self;
        /// Uniform sample in `[start, end]`.
        fn uniform_incl(rng: &mut TestRng, start: Self, end: Self) -> Self;
    }

    macro_rules! impl_range_value {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn uniform(rng: &mut TestRng, start: Self, end: Self) -> Self {
                    assert!(start < end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
                fn uniform_incl(rng: &mut TestRng, start: Self, end: Self) -> Self {
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: RangeValue> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::uniform(rng, self.start, self.end)
        }
    }

    impl<T: RangeValue> Strategy for RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::uniform_incl(rng, *self.start(), *self.end())
        }
    }

    /// Strategy of a uniformly random `T` (the `any::<T>()` form).
    pub struct Any<T>(PhantomData<T>);

    /// Types `any::<T>()` supports.
    pub trait Arbitrary: Sized {
        /// Draw a uniformly random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is uniform in a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: lengths drawn from `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (`proptest_config`).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps whole-simulation
            // properties fast while still exploring the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case generator (xoshiro256** seeded from the
    /// test identity and case index via SplitMix64).
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// The RNG for `test_id`'s case number `case`.
        pub fn for_case(test_id: &str, case: u32) -> Self {
            // FNV-1a over the test identity, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut state = h ^ ((case as u64) << 32 | 0x5EED);
            let mut s = [0u64; 4];
            for w in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            TestRng { s }
        }

        /// The next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform sample in `[0, bound)` (`bound` may be 0 → always 0).
        #[inline]
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            // Widening-multiply rejection sampling: unbiased.
            loop {
                let m = (self.next_u64() as u128) * (bound as u128);
                let lo = m as u64 as u128;
                if lo < bound as u128 && (u64::MAX as u128 + 1 - lo) < bound as u128 {
                    continue;
                }
                return (m >> 64) as u64;
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a test running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    { $body }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as $crate::strategy::BoxedStrategy<_>,)+
        ])
    };
}

/// Assert within a property (no shrinking here: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = TestRng::for_case("shim::ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u32..9), &mut rng);
            assert!((3..9).contains(&v));
            let i = Strategy::sample(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = crate::collection::vec(0u8..4, 2..6);
        let mut rng = TestRng::for_case("shim::vec", 1);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = crate::collection::vec(0u32..1000, 0..50);
        let mut a = TestRng::for_case("shim::det", 7);
        let mut b = TestRng::for_case("shim::det", 7);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_square_nonneg(x in -100i64..100) {
            prop_assert!(x * x >= 0);
        }

        #[test]
        fn macro_tuple_and_map(
            (a, b) in (0u32..10, 0u32..10),
            v in crate::collection::vec(any::<bool>(), 0..8),
            big in (0usize..5).prop_map(|x| x * 2),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(v.len() < 8);
            prop_assert_eq!(big % 2, 0);
        }

        #[test]
        fn macro_oneof_and_flatmap(
            v in prop_oneof![Just(1u32), 5u32..8].prop_flat_map(|n| (Just(n), 0u32..(n + 1)))
        ) {
            let (n, k) = v;
            prop_assert!(n == 1 || (5..8).contains(&n));
            prop_assert!(k <= n);
        }
    }
}
