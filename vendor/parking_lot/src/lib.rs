//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's poison-free API
//! (`lock()` returns the guard directly). A poisoned std lock means a
//! thread panicked while holding it; matching parking_lot semantics, we
//! propagate the inner data anyway.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
