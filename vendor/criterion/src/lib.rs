//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset this workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, throughput annotation, the
//! `criterion_group!` / `criterion_main!` macros — as a plain wall-clock
//! harness printing mean ns/iter. No statistics, plots or baselines;
//! enough to run `cargo bench` offline and compare runs by eye.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a group (reported alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration (filled by `iter`).
    elapsed_ns: f64,
    iters: u64,
    measurement: Duration,
    warm_up: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly and record the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Measurement: as many iterations as fit the budget, at least 1.
        let budget_ns = self.measurement.as_nanos() as f64;
        let planned = ((budget_ns / per_iter.max(1.0)) as u64).max(1);
        let start = Instant::now();
        for _ in 0..planned {
            black_box(routine());
        }
        let total = start.elapsed().as_nanos() as f64;
        self.elapsed_ns = total / planned as f64;
        self.iters = planned;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    warm_up: Duration,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples (kept for API compatibility; this harness takes
    /// one averaged sample).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            elapsed_ns: 0.0,
            iters: 0,
            measurement: self.measurement,
            warm_up: self.warm_up,
        };
        f(&mut b);
        let mut line = format!(
            "{}/{}: {:.0} ns/iter ({} iters)",
            self.name, id, b.elapsed_ns, b.iters
        );
        if let Some(t) = self.throughput {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if n > 0 && b.elapsed_ns > 0.0 {
                let per_sec = n as f64 * 1e9 / b.elapsed_ns;
                line.push_str(&format!(", {per_sec:.0} {unit}/s"));
            }
        }
        println!("{line}");
    }

    /// Benchmark a closure.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) {
        self.run_one(&id.to_string(), f);
    }

    /// Benchmark a closure over one input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run_one(&id.id.clone(), |b| f(b, input));
    }

    /// End the group (prints nothing extra in this harness).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Honor command-line arguments (no-op in this harness).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            _parent: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) {
        let name = id.to_string();
        let mut g = self.benchmark_group(name.clone());
        g.name = name.clone();
        // Reuse the group printer with an empty group prefix.
        g.name = String::from("bench");
        g.run_one(&name, f);
        g.finish();
    }
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
        assert_eq!(BenchmarkId::from_parameter("acwn").id, "acwn");
    }
}
