//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the API subset the workspace uses: `channel::unbounded` with
//! cloneable [`channel::Sender`]s and a blocking/timeout-capable
//! [`channel::Receiver`]. Implemented over `Mutex<VecDeque>` + `Condvar`
//! — slower than lock-free crossbeam, but correct and dependency-free.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<ChanState<T>>,
        ready: Condvar,
    }

    struct ChanState<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// Every sender is gone and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Every sender is gone and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(ChanState {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.chan.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.queue.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.chan.queue.lock().unwrap();
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Take a message if one is queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.queue.lock().unwrap();
            match st.items.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.ready.wait(st).unwrap();
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.chan.ready.wait_timeout(st, deadline - now).unwrap();
                st = guard;
                if res.timed_out() && st.items.is_empty() {
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.queue.lock().unwrap().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn timeout_then_delivery() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            let h = std::thread::spawn(move || tx.send(9).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_millis(500)), Ok(9));
            h.join().unwrap();
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded::<u32>();
            drop(rx2);
            assert!(tx2.send(1).is_err());
        }

        #[test]
        fn cross_thread_traffic() {
            let (tx, rx) = unbounded();
            let producers: Vec<_> = (0..4)
                .map(|i| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for j in 0..100 {
                            tx.send(i * 100 + j).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            for p in producers {
                p.join().unwrap();
            }
            assert_eq!(got.len(), 400);
        }
    }
}
