//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides exactly the API subset the workspace uses: `StdRng`,
//! [`SeedableRng::seed_from_u64`], and [`Rng::random_range`] over
//! integer and float ranges. The generator is xoshiro256** seeded via
//! SplitMix64 — high quality and deterministic, though its stream does
//! not match upstream `rand`'s ChaCha12-based `StdRng` (nothing in this
//! repository depends on the exact stream, only on seed-determinism).

use std::ops::Range;

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full seed state from one `u64` (SplitMix64 expansion,
    /// mirroring upstream's documented behavior).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the standard seed-expansion generator.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampling interface: everything callers do with a generator.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (integer or float ranges).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<RangeAny<T>>,
        Self: Sized,
    {
        let r: RangeAny<T> = range.into();
        T::sample(self, r.start, r.end)
    }

    /// A uniformly random value of a samplable type.
    fn random<T: Fill>(&mut self) -> T
    where
        Self: Sized,
    {
        T::fill(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::fill(self) < p
    }
}

/// A half-open range with the bound type erased to start/end values.
pub struct RangeAny<T> {
    start: T,
    end: T,
}

impl<T> From<Range<T>> for RangeAny<T> {
    fn from(r: Range<T>) -> Self {
        RangeAny {
            start: r.start,
            end: r.end,
        }
    }
}

/// Types [`Rng::random_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// A uniform sample in `[start, end)`.
    fn sample<G: Rng>(g: &mut G, start: Self, end: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<G: Rng>(g: &mut G, start: Self, end: Self) -> Self {
                assert!(start < end, "random_range: empty range");
                let span = (end as i128 - start as i128) as u128;
                // Widening-multiply rejection sampling (Lemire): unbiased.
                loop {
                    let x = g.next_u64() as u128;
                    let m = x * span;
                    let lo = m as u64 as u128;
                    if lo >= span && (u64::MAX as u128 + 1 - lo) < span {
                        continue;
                    }
                    let hi = (m >> 64) as i128;
                    return (start as i128 + hi) as $t;
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample<G: Rng>(g: &mut G, start: Self, end: Self) -> Self {
        assert!(start < end, "random_range: empty range");
        let unit = (g.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        start + unit * (end - start)
    }
}

impl SampleUniform for f32 {
    fn sample<G: Rng>(g: &mut G, start: Self, end: Self) -> Self {
        f64::sample(g, start as f64, end as f64) as f32
    }
}

/// Types [`Rng::random`] can produce.
pub trait Fill {
    /// A uniformly random value.
    fn fill<G: Rng>(g: &mut G) -> Self;
}

impl Fill for bool {
    fn fill<G: Rng>(g: &mut G) -> Self {
        g.next_u64() & 1 == 1
    }
}

impl Fill for u64 {
    fn fill<G: Rng>(g: &mut G) -> Self {
        g.next_u64()
    }
}

impl Fill for u32 {
    fn fill<G: Rng>(g: &mut G) -> Self {
        (g.next_u64() >> 32) as u32
    }
}

impl Fill for i64 {
    fn fill<G: Rng>(g: &mut G) -> Self {
        g.next_u64() as i64
    }
}

impl Fill for f64 {
    fn fill<G: Rng>(g: &mut G) -> Self {
        (g.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the small fast generator is the same engine here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut g = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = g.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = g.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i64 = g.random_range(-100i64..100);
            assert!((-100..100).contains(&i));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut g = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[g.random_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
