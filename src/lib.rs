//! # charm-repro — reproduction of the SC '91 Chare Kernel paper
//!
//! Umbrella crate tying together the three layers of this repository:
//!
//! * [`multicomputer`] — the machine substrate (simulated NCUBE/iPSC-style
//!   multicomputers and a real thread-parallel backend);
//! * [`chare_kernel`] — the paper's contribution: a message-driven
//!   object-oriented parallel runtime with chares, branch-office chares,
//!   specifically shared variables, dynamic load balancing, prioritized
//!   queueing and quiescence detection;
//! * [`ck_apps`] — the benchmark applications the paper's evaluation uses
//!   (fib, N-queens, TSP branch & bound, 15-puzzle IDA*, Jacobi
//!   relaxation, primes) plus sequential and hand-coded message-passing
//!   baselines.
//!
//! See `examples/` for runnable programs and `DESIGN.md` / `EXPERIMENTS.md`
//! for the experiment index.

pub use chare_kernel;
pub use ck_apps;
pub use multicomputer;

/// Convenient glob-import surface for examples and integration tests.
pub mod prelude {
    pub use chare_kernel::prelude::*;
    pub use multicomputer::{
        Cost, MachinePreset, Pe, SimConfig, SimTime, ThreadConfig, Topology,
    };
}
