//! The simulator must be exactly reproducible: identical configuration
//! implies identical simulated time, event count and kernel counters —
//! the property every experiment table rests on.

use charm_repro::ck_apps::{nqueens, tsp};
use charm_repro::prelude::*;

fn fingerprint(rep: &chare_kernel::CkReport) -> (u64, u64, u64, u64) {
    let sim = rep.sim.as_ref().expect("sim detail");
    (
        rep.time_ns,
        sim.events,
        sim.packets,
        rep.counter_total("user_sent"),
    )
}

#[test]
fn nqueens_identical_across_runs() {
    for balance in [
        BalanceStrategy::Random,
        BalanceStrategy::acwn(),
        BalanceStrategy::TokenIdle,
    ] {
        let prog = nqueens::build(
            nqueens::QueensParams { n: 9, grain: 5 },
            QueueingStrategy::Fifo,
            balance.clone(),
        );
        let a = prog.run_sim_preset(8, MachinePreset::NcubeLike);
        let b = prog.run_sim_preset(8, MachinePreset::NcubeLike);
        assert_eq!(fingerprint(&a), fingerprint(&b), "{balance:?}");
    }
}

#[test]
fn tsp_identical_across_runs_with_priorities() {
    let prog = tsp::build(
        tsp::TspParams {
            n: 10,
            seed: 4,
            seq_tail: 5,
        },
        QueueingStrategy::BitvecPriority,
        BalanceStrategy::Random,
    );
    let a = prog.run_sim_preset(16, MachinePreset::IpscLike);
    let b = prog.run_sim_preset(16, MachinePreset::IpscLike);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn different_rng_seed_changes_placement_not_answer() {
    let params = nqueens::QueensParams { n: 8, grain: 4 };
    let build_seeded = |seed: u64| {
        let mut b = ProgramBuilder::new();
        let node = b.chare::<nqueens::QueensChare>();
        let main = b.chare::<nqueens::QueensMain>();
        let acc = b.accumulator::<SumU64>();
        b.balance(BalanceStrategy::Random);
        b.rng_seed(seed);
        b.main(
            main,
            nqueens::MainSeed {
                params,
                node,
                acc,
            },
        );
        b.build()
    };
    let mut a = build_seeded(1).run_sim_preset(8, MachinePreset::NcubeLike);
    let mut b = build_seeded(2).run_sim_preset(8, MachinePreset::NcubeLike);
    // Same answer...
    assert_eq!(a.take_result::<u64>(), Some(92));
    assert_eq!(b.take_result::<u64>(), Some(92));
    // ...different placement history.
    assert_ne!(
        (a.time_ns, a.sim.as_ref().unwrap().events),
        (b.time_ns, b.sim.as_ref().unwrap().events),
        "different seeds should produce different schedules"
    );
}
