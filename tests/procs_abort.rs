//! Worker-death regression tests for the multi-process backend: a
//! worker that exits nonzero or closes its sockets mid-run must surface
//! as a *structured* abort reason on the report — never a hang, and
//! never a watchdog timeout masquerading as one.
//!
//! The crash is injected with `ProcConfig::with_crash`, which ships a
//! `CK_PROC_CRASH` hook to exactly one rank; the hook fires after a few
//! scheduling steps so the death lands mid-computation, with traffic in
//! flight.

use charm_repro::ck_apps::spec;
use chare_kernel::{ProcAbortReason, ProcConfig};
use std::time::{Duration, Instant};

/// Run fib with a crash hook and return the abort reason, asserting the
/// parent classified the death long before the watchdog would fire.
fn run_crashed(test_name: &str, crash: &str) -> ProcAbortReason {
    spec::worker_hook();
    let spec_str = "fib:n=18,grain=10";
    let prog = spec::build_spec(spec_str);
    let cfg = ProcConfig::for_test(4, spec_str, test_name)
        .with_watchdog(Duration::from_secs(60))
        .with_crash(crash);
    let started = Instant::now();
    let mut rep = prog.run_procs(&cfg);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(20),
        "death took {elapsed:?} to classify — that is a hang, not an abort"
    );
    assert!(!rep.timed_out, "worker death misreported as a watchdog timeout");
    assert!(rep.take_result::<u64>().is_none(), "aborted run has no result");
    rep.proc
        .as_ref()
        .expect("procs detail")
        .aborted
        .clone()
        .expect("worker death must be surfaced as an abort reason")
}

#[test]
fn worker_nonzero_exit_is_structured() {
    let reason = run_crashed("worker_nonzero_exit_is_structured", "2:exit:7:3");
    assert_eq!(
        reason,
        ProcAbortReason::WorkerExit {
            rank: 2,
            code: Some(7)
        },
        "got: {reason}"
    );
}

#[test]
fn worker_socket_close_is_structured() {
    // The worker closes control and data sockets but keeps running
    // (simulating a wedged or partitioned process): the parent must
    // classify the hangup from the socket, not wait for process death.
    let reason = run_crashed("worker_socket_close_is_structured", "1:close:3");
    assert_eq!(
        reason,
        ProcAbortReason::WorkerDisconnect { rank: 1 },
        "got: {reason}"
    );
}

#[test]
fn clean_runs_have_no_abort_reason() {
    // Control case for the two above: the same program with no hook
    // completes with `aborted: None` and a result.
    spec::worker_hook();
    let spec_str = "fib:n=16,grain=10";
    let prog = spec::build_spec(spec_str);
    let cfg = ProcConfig::for_test(4, spec_str, "clean_runs_have_no_abort_reason");
    let mut rep = prog.run_procs(&cfg);
    assert!(rep.proc.as_ref().unwrap().aborted.is_none());
    assert!(rep.take_result::<u64>().is_some());
}
