//! Tier-1 replay of the desim regression corpus.
//!
//! Every entry under `tests/desim_corpus/` is a (scenario, storm) pair
//! the campaign once exercised — crash recovery, heavy drop, link
//! outages, head-of-line blocking at minimum window — committed so the
//! exact adversarial schedule replays on every CI run forever. A
//! malformed entry fails the test too: a corpus file that silently
//! stops parsing is a regression guard that silently stopped guarding.

use std::path::Path;

use ck_desim::{corpus, DEFAULT_MAX_EVENTS};

#[test]
fn desim_corpus_replays_green() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/desim_corpus");
    let entries = corpus::load_dir(&dir).expect("corpus directory exists");
    assert!(
        entries.len() >= 13,
        "the committed corpus should not shrink; found {}",
        entries.len()
    );
    let mut failures = Vec::new();
    for (name, entry) in entries {
        match entry {
            Err(e) => failures.push(format!("{name}: malformed entry: {e}")),
            Ok(entry) => {
                let rec = corpus::replay(&entry, DEFAULT_MAX_EVENTS);
                if !rec.passed() {
                    failures.push(format!(
                        "{name}: {:?}\n  repro: {}",
                        rec.violations,
                        rec.repro()
                    ));
                }
            }
        }
    }
    assert!(failures.is_empty(), "corpus regressions:\n{}", failures.join("\n"));
}
