//! Machine independence: every benchmark produces the same answer on
//! the discrete-event simulator and the real thread backend — the
//! paper's core portability claim, exercised end-to-end.

use charm_repro::ck_apps::{fib, jacobi, nqueens, primes, puzzle, tsp};
use charm_repro::prelude::*;

#[test]
fn fib_agrees_across_backends() {
    let prog = fib::build_default(fib::FibParams { n: 19, grain: 12 });
    let mut sim = prog.run_sim_preset(4, MachinePreset::NcubeLike);
    let mut thr = prog.run_threads(3);
    assert!(!thr.timed_out);
    assert_eq!(sim.take_result::<u64>(), thr.take_result::<u64>());
}

#[test]
fn nqueens_agrees_across_backends() {
    let prog = nqueens::build_default(nqueens::QueensParams { n: 9, grain: 5 });
    let mut sim = prog.run_sim_preset(5, MachinePreset::IpscLike);
    let mut thr = prog.run_threads(2);
    assert!(!thr.timed_out);
    assert_eq!(sim.take_result::<u64>(), thr.take_result::<u64>());
    assert!(thr.result.is_none(), "result already taken");
}

#[test]
fn tsp_agrees_across_backends() {
    let prog = tsp::build_default(tsp::TspParams {
        n: 10,
        seed: 9,
        seq_tail: 5,
    });
    let mut sim = prog.run_sim_preset(4, MachinePreset::NcubeLike);
    let mut thr = prog.run_threads(4);
    assert!(!thr.timed_out);
    let a = sim.take_result::<tsp::TspResult>().unwrap();
    let b = thr.take_result::<tsp::TspResult>().unwrap();
    // Optimal cost is schedule-independent; node counts are not.
    assert_eq!(a.best, b.best);
}

#[test]
fn puzzle_agrees_across_backends() {
    let prog = puzzle::build_default(puzzle::PuzzleParams {
        scramble: 18,
        seed: 11,
        split_depth: 3,
    });
    let mut sim = prog.run_sim_preset(4, MachinePreset::NcubeLike);
    let mut thr = prog.run_threads(2);
    assert!(!thr.timed_out);
    assert_eq!(
        sim.take_result::<puzzle::PuzzleResult>().unwrap().cost,
        thr.take_result::<puzzle::PuzzleResult>().unwrap().cost
    );
}

#[test]
fn jacobi_agrees_across_backends() {
    let params = jacobi::JacobiParams { n: 20, iters: 9 };
    let prog = jacobi::build_default(params);
    let mut sim = prog.run_sim_preset(3, MachinePreset::NcubeLike);
    let mut thr = prog.run_threads(3);
    assert!(!thr.timed_out);
    let a = sim.take_result::<f64>().unwrap();
    let b = thr.take_result::<f64>().unwrap();
    // Same partitioning (3 blocks), same summation structure per block;
    // the cross-block accumulator combine order may differ.
    assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
}

#[test]
fn primes_agrees_across_backends() {
    let prog = primes::build_default(primes::PrimesParams {
        limit: 8_000,
        chunks: 12,
    });
    let mut sim = prog.run_sim_preset(4, MachinePreset::SharedBusLike);
    let mut thr = prog.run_threads(4);
    assert!(!thr.timed_out);
    assert_eq!(sim.take_result::<u64>(), thr.take_result::<u64>());
}

#[test]
fn oversubscribed_thread_machine_works() {
    // 16 PE threads on however few cores this host has: correctness
    // must not depend on real parallelism.
    let prog = nqueens::build(
        nqueens::QueensParams { n: 8, grain: 4 },
        QueueingStrategy::IntPriority,
        BalanceStrategy::TokenIdle,
    );
    let mut rep = prog.run_threads(16);
    assert!(!rep.timed_out);
    assert_eq!(rep.take_result::<u64>(), Some(92));
}
