//! Machine independence: every benchmark produces the same answer on
//! the discrete-event simulator, the real thread backend, and the
//! multi-process socket backend — the paper's core portability claim,
//! exercised end-to-end.
//!
//! The second half of the file is the cross-backend conformance matrix:
//! each app runs on all three machines from one spec string and must
//! produce the identical answer *and* satisfy the kernel's counter
//! invariants (seed ledger balance, single quiescence declaration) on
//! every one. Procs-backend workers re-enter the same test via
//! `ProcConfig::for_test`, so every matrix test calls
//! `spec::worker_hook()` before anything else.

use charm_repro::ck_apps::{fib, jacobi, mmr, nqueens, primes, puzzle, spec, tablefill, tsp};
use charm_repro::prelude::*;
use chare_kernel::{CkReport, ProcConfig};

#[test]
fn fib_agrees_across_backends() {
    let prog = fib::build_default(fib::FibParams { n: 19, grain: 12 });
    let mut sim = prog.run_sim_preset(4, MachinePreset::NcubeLike);
    let mut thr = prog.run_threads(3);
    assert!(!thr.timed_out);
    assert_eq!(sim.take_result::<u64>(), thr.take_result::<u64>());
}

#[test]
fn nqueens_agrees_across_backends() {
    let prog = nqueens::build_default(nqueens::QueensParams { n: 9, grain: 5 });
    let mut sim = prog.run_sim_preset(5, MachinePreset::IpscLike);
    let mut thr = prog.run_threads(2);
    assert!(!thr.timed_out);
    assert_eq!(sim.take_result::<u64>(), thr.take_result::<u64>());
    assert!(thr.result.is_none(), "result already taken");
}

#[test]
fn tsp_agrees_across_backends() {
    let prog = tsp::build_default(tsp::TspParams {
        n: 10,
        seed: 9,
        seq_tail: 5,
    });
    let mut sim = prog.run_sim_preset(4, MachinePreset::NcubeLike);
    let mut thr = prog.run_threads(4);
    assert!(!thr.timed_out);
    let a = sim.take_result::<tsp::TspResult>().unwrap();
    let b = thr.take_result::<tsp::TspResult>().unwrap();
    // Optimal cost is schedule-independent; node counts are not.
    assert_eq!(a.best, b.best);
}

#[test]
fn puzzle_agrees_across_backends() {
    let prog = puzzle::build_default(puzzle::PuzzleParams {
        scramble: 18,
        seed: 11,
        split_depth: 3,
    });
    let mut sim = prog.run_sim_preset(4, MachinePreset::NcubeLike);
    let mut thr = prog.run_threads(2);
    assert!(!thr.timed_out);
    assert_eq!(
        sim.take_result::<puzzle::PuzzleResult>().unwrap().cost,
        thr.take_result::<puzzle::PuzzleResult>().unwrap().cost
    );
}

#[test]
fn jacobi_agrees_across_backends() {
    let params = jacobi::JacobiParams { n: 20, iters: 9 };
    let prog = jacobi::build_default(params);
    let mut sim = prog.run_sim_preset(3, MachinePreset::NcubeLike);
    let mut thr = prog.run_threads(3);
    assert!(!thr.timed_out);
    let a = sim.take_result::<f64>().unwrap();
    let b = thr.take_result::<f64>().unwrap();
    // Same partitioning (3 blocks), same summation structure per block;
    // the cross-block accumulator combine order may differ.
    assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0), "{a} vs {b}");
}

#[test]
fn primes_agrees_across_backends() {
    let prog = primes::build_default(primes::PrimesParams {
        limit: 8_000,
        chunks: 12,
    });
    let mut sim = prog.run_sim_preset(4, MachinePreset::SharedBusLike);
    let mut thr = prog.run_threads(4);
    assert!(!thr.timed_out);
    assert_eq!(sim.take_result::<u64>(), thr.take_result::<u64>());
}

// ---- the cross-backend conformance matrix ------------------------------

/// Run one spec on all three machines at the same PE count. `test_name`
/// must be this integration test's full libtest name: the procs backend
/// re-invokes the test binary with `<test_name> --exact` per worker.
fn run_matrix(test_name: &str, spec_str: &str, npes: usize) -> [CkReport; 3] {
    spec::worker_hook();
    let prog = spec::build_spec(spec_str);
    let sim = prog.run_sim_preset(npes, MachinePreset::NcubeLike);
    let thr = prog.run_threads(npes);
    assert!(!thr.timed_out, "{spec_str}: thread backend timed out");
    let prc = prog.run_procs(&ProcConfig::for_test(npes, spec_str, test_name));
    let detail = prc.proc.as_ref().expect("procs report carries detail");
    assert!(
        detail.aborted.is_none(),
        "{spec_str}: procs run aborted: {}",
        detail.aborted.as_ref().unwrap()
    );
    assert!(!prc.timed_out, "{spec_str}: procs backend timed out");
    assert_eq!(detail.npes, npes);
    assert!(
        detail.worker_end_ns.iter().all(|&ns| ns > 0),
        "{spec_str}: some worker never reported: {:?}",
        detail.worker_end_ns
    );
    [sim, thr, prc]
}

/// Kernel invariants every clean run must satisfy, on every backend:
/// the exactly-once seed ledger balances (chares constructed == seeds
/// spawned when no backlog was abandoned) and quiescence — if the app
/// uses it — was declared exactly once, by PE 0's coordinator.
fn assert_counter_invariants(spec_str: &str, backend: &str, rep: &CkReport, uses_qd: bool) {
    let spawned = rep.counter_total("seeds_spawned");
    let created = rep.counter_total("chares_created");
    let backlog = rep.counter_total("backlog_end");
    assert_eq!(backlog, 0, "{spec_str} on {backend}: work left behind");
    assert_eq!(
        spawned, created,
        "{spec_str} on {backend}: seed ledger out of balance"
    );
    assert_eq!(
        rep.counter_total("qd_declares"),
        u64::from(uses_qd),
        "{spec_str} on {backend}: quiescence declarations"
    );
}

/// Answers and schedule-independent counters must agree across all
/// three backends; schedule-*dependent* counters (forwarding, work
/// stealing) legitimately differ and are not compared.
fn assert_matrix<T: Send + Sync + PartialEq + std::fmt::Debug + 'static>(
    spec_str: &str,
    reports: &mut [CkReport; 3],
    uses_qd: bool,
) {
    let mut answers = Vec::new();
    for (backend, rep) in ["sim", "threads", "procs"].into_iter().zip(reports.iter_mut()) {
        let ans = rep
            .take_result::<T>()
            .unwrap_or_else(|| panic!("{spec_str} on {backend}: no result"));
        assert_counter_invariants(spec_str, backend, rep, uses_qd);
        answers.push((backend, ans));
    }
    let (_, want) = &answers[0];
    for (backend, got) in &answers[1..] {
        assert_eq!(got, want, "{spec_str}: {backend} answer diverges from sim");
    }
    let spawned: Vec<u64> = reports.iter().map(|r| r.counter_total("seeds_spawned")).collect();
    assert!(
        spawned.iter().all(|&s| s == spawned[0]),
        "{spec_str}: seed totals differ across backends: {spawned:?}"
    );
}

#[test]
fn conformance_fib() {
    let mut reps = run_matrix("conformance_fib", "fib:n=18,grain=11", 4);
    assert_matrix::<u64>("fib:n=18,grain=11", &mut reps, false);
}

#[test]
fn conformance_nqueens() {
    let spec_str = "nqueens:n=8,grain=4";
    let mut reps = run_matrix("conformance_nqueens", spec_str, 4);
    assert_matrix::<u64>(spec_str, &mut reps, true);
}

#[test]
fn conformance_primes() {
    let spec_str = "primes:limit=4000,chunks=12";
    let mut reps = run_matrix("conformance_primes", spec_str, 4);
    assert_matrix::<u64>(spec_str, &mut reps, true);
}

#[test]
fn conformance_matmul() {
    // Integer-valued f64 arithmetic: checksums are exact, so the matrix
    // comparison is bitwise like the integer apps.
    let spec_str = "matmul:n=32";
    let mut reps = run_matrix("conformance_matmul", spec_str, 4);
    assert_matrix::<f64>(spec_str, &mut reps, true);
}

#[test]
fn conformance_jacobi() {
    // Block partitioning is by PE index and each backend runs the same
    // npes, so per-block sums are bitwise identical; only the final
    // accumulator combine could differ. Compare with a tight tolerance
    // and keep the counter invariants exact.
    let spec_str = "jacobi:n=24,iters=8";
    let mut reps = run_matrix("conformance_jacobi", spec_str, 4);
    let mut answers = Vec::new();
    for (backend, rep) in ["sim", "threads", "procs"].into_iter().zip(reps.iter_mut()) {
        let ans = rep.take_result::<f64>().expect("checksum");
        assert_counter_invariants(spec_str, backend, rep, true);
        answers.push((backend, ans));
    }
    let (_, want) = answers[0];
    for &(backend, got) in &answers[1..] {
        assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "{spec_str}: {backend} {got} vs sim {want}"
        );
    }
}

#[test]
fn conformance_mmr() {
    // The MMR root is a fold over fixed tree structure, so the whole
    // result — root digest and peak count — must be byte-identical on
    // every backend, and must match the serial reference.
    let spec_str = "mmr:leaves=300,grain=16,seed=7";
    let mut reps = run_matrix("conformance_mmr", spec_str, 4);
    let want = mmr::mmr_root_seq(7, 300);
    for rep in &reps {
        assert_eq!(rep.result_ref::<mmr::MmrResult>().unwrap().root, want);
    }
    assert_matrix::<mmr::MmrResult>(spec_str, &mut reps, false);
}

#[test]
fn conformance_tablefill() {
    // The fill digest is schedule-independent; the stage-completion
    // profile is wall-clock on the real backends and legitimately
    // differs, so compare digests by hand instead of whole results.
    let spec_str = "tablefill:stages=3,blocks=8,rows=8,width=2,seed=5";
    let mut reps = run_matrix("conformance_tablefill", spec_str, 4);
    let p = tablefill::FillParams {
        stages: 3,
        blocks: 8,
        rows: 8,
        width: 2,
        seed: 5,
    };
    let want = tablefill::fill_seq(&p);
    for (backend, rep) in ["sim", "threads", "procs"].into_iter().zip(reps.iter_mut()) {
        let got = rep.take_result::<tablefill::FillResult>().expect("fill result");
        assert_eq!(got.digest, want, "{spec_str} on {backend}: digest diverges");
        assert_eq!(got.stage_done.len(), 3, "{spec_str} on {backend}: profile length");
        assert_counter_invariants(spec_str, backend, rep, false);
    }
    let spawned: Vec<u64> = reps.iter().map(|r| r.counter_total("seeds_spawned")).collect();
    assert!(
        spawned.iter().all(|&s| s == spawned[0]),
        "{spec_str}: seed totals differ across backends: {spawned:?}"
    );
}

#[test]
fn conformance_procs_tcp_and_topologies() {
    // The same program over TCP loopback and a non-default logical
    // topology: transport and balancer neighborhoods must not change
    // the answer.
    spec::worker_hook();
    let spec_str = "fib:n=16,grain=10";
    let prog = spec::build_spec(spec_str);
    let want = fib::fib_seq(16);
    for (transport, topo) in [
        (chare_kernel::ProcTransport::Tcp, Topology::Ring),
        (chare_kernel::ProcTransport::Uds, Topology::FullyConnected),
    ] {
        let cfg = ProcConfig::for_test(3, spec_str, "conformance_procs_tcp_and_topologies")
            .with_transport(transport)
            .with_topology(topo);
        let mut rep = prog.run_procs(&cfg);
        let detail = rep.proc.as_ref().expect("detail");
        assert!(detail.aborted.is_none(), "{:?}", detail.aborted);
        assert_eq!(detail.transport, transport);
        assert_eq!(rep.take_result::<u64>(), Some(want));
    }
}

#[test]
fn oversubscribed_thread_machine_works() {
    // 16 PE threads on however few cores this host has: correctness
    // must not depend on real parallelism.
    let prog = nqueens::build(
        nqueens::QueensParams { n: 8, grain: 4 },
        QueueingStrategy::IntPriority,
        BalanceStrategy::TokenIdle,
    );
    let mut rep = prog.run_threads(16);
    assert!(!rep.timed_out);
    assert_eq!(rep.take_result::<u64>(), Some(92));
}
