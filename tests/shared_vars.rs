//! End-to-end behavior of the specifically shared variables: read-only,
//! write-once, accumulators (destructive collect), monotonic variables
//! and distributed tables.

use charm_repro::prelude::*;

const EP_GO: EpId = EpId(1);
const EP_REPLY: EpId = EpId(2);
const EP_DONE: EpId = EpId(3);

// ---------------------------------------------------------------------
// Write-once + read-only.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct WoSeed {
    ro: ReadOnly<Vec<u32>>,
}
message!(WoSeed);

struct WoMain {
    ro: ReadOnly<Vec<u32>>,
}

impl ChareInit for WoMain {
    type Seed = WoSeed;
    fn create(seed: WoSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        // Publish a runtime-created table of squares to every PE.
        let squares: Vec<u64> = (0..10u64).map(|i| i * i).collect();
        ctx.write_once(squares, Notify::Chare(me, EP_REPLY));
        WoMain { ro: seed.ro }
    }
}

impl Chare for WoMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        assert_eq!(ep, EP_REPLY);
        let ready = cast::<WoReady>(msg);
        // Read back the replica on this PE.
        let squares = ctx.wo_get::<Vec<u64>>(ready.id);
        assert_eq!(squares[7], 49);
        // Read-only variable from the builder is also visible.
        let ro = ctx.read_only(self.ro);
        assert_eq!(ro.len(), 3);
        ctx.exit(squares[9] + ro[2] as u64);
    }
}

#[test]
fn write_once_replicates_and_notifies() {
    let mut b = ProgramBuilder::new();
    let main = b.chare::<WoMain>();
    let ro = b.read_only(vec![10u32, 20, 30]);
    b.main(main, WoSeed { ro });
    let mut rep = b.build().run_sim_preset(6, MachinePreset::NcubeLike);
    assert_eq!(rep.take_result::<u64>(), Some(81 + 30));
}

// ---------------------------------------------------------------------
// Accumulator: destructive collect.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct AccSeed {
    worker: Kind<AccWorker>,
    acc: Acc<SumU64>,
    count: u32,
}
message!(AccSeed);

#[derive(Clone, Copy)]
struct AccWorkerSeed {
    parent: ChareId,
    acc: Acc<SumU64>,
    value: u64,
}
message!(AccWorkerSeed);

struct AccMain {
    acc: Acc<SumU64>,
    waiting: u32,
    first_total: Option<u64>,
}

impl ChareInit for AccMain {
    type Seed = AccSeed;
    fn create(seed: AccSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        for i in 1..=seed.count {
            ctx.create(
                seed.worker,
                AccWorkerSeed {
                    parent: me,
                    acc: seed.acc,
                    value: i as u64,
                },
            );
        }
        AccMain {
            acc: seed.acc,
            waiting: seed.count,
            first_total: None,
        }
    }
}

impl Chare for AccMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        let me = ctx.self_id();
        match ep {
            EP_DONE => {
                self.waiting -= 1;
                if self.waiting == 0 {
                    ctx.acc_collect(self.acc, Notify::Chare(me, EP_REPLY));
                }
            }
            EP_REPLY => {
                let total = cast::<AccResult<u64>>(msg).value;
                match self.first_total {
                    None => {
                        // Collect is destructive: a second collect must
                        // come back zero.
                        self.first_total = Some(total);
                        ctx.acc_collect(self.acc, Notify::Chare(me, EP_GO));
                    }
                    Some(_) => unreachable!(),
                }
            }
            EP_GO => {
                let second = cast::<AccResult<u64>>(msg).value;
                ctx.exit((self.first_total.unwrap(), second));
            }
            _ => unreachable!(),
        }
    }
}

struct AccWorker;
impl ChareInit for AccWorker {
    type Seed = AccWorkerSeed;
    fn create(seed: AccWorkerSeed, ctx: &mut Ctx) -> Self {
        ctx.acc_add(seed.acc, seed.value);
        ctx.send(seed.parent, EP_DONE, ());
        ctx.destroy_self();
        AccWorker
    }
}
impl Chare for AccWorker {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!()
    }
}

#[test]
fn accumulator_collect_is_destructive() {
    let mut b = ProgramBuilder::new();
    let worker = b.chare::<AccWorker>();
    let main = b.chare::<AccMain>();
    let acc = b.accumulator::<SumU64>();
    b.balance(BalanceStrategy::Random);
    b.main(
        main,
        AccSeed {
            worker,
            acc,
            count: 20,
        },
    );
    let mut rep = b.build().run_sim_preset(5, MachinePreset::NcubeLike);
    let (first, second) = rep.take_result::<(u64, u64)>().expect("totals");
    assert_eq!(first, 210); // 1 + 2 + ... + 20
    assert_eq!(second, 0);
}

// ---------------------------------------------------------------------
// Distributed table.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct TabSeed {
    table: TableRef<String>,
}
message!(TabSeed);

struct TabMain {
    table: TableRef<String>,
    phase: u32,
}

impl ChareInit for TabMain {
    type Seed = TabSeed;
    fn create(seed: TabSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        // Insert 3 keys; ask for an ack on the last.
        ctx.table_put(seed.table, 11, "eleven".to_string(), None);
        ctx.table_put(seed.table, 22, "twenty-two".to_string(), None);
        ctx.table_put(
            seed.table,
            33,
            "thirty-three".to_string(),
            Some(Notify::Chare(me, EP_REPLY)),
        );
        TabMain {
            table: seed.table,
            phase: 0,
        }
    }
}

impl Chare for TabMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        let me = ctx.self_id();
        match self.phase {
            0 => {
                assert_eq!(ep, EP_REPLY);
                let ack = cast::<TableAck>(msg);
                assert!(!ack.existed);
                self.phase = 1;
                ctx.table_get(self.table, 22, Notify::Chare(me, EP_REPLY));
            }
            1 => {
                let got = cast::<TableGot<String>>(msg);
                assert_eq!(got.value.as_deref(), Some("twenty-two"));
                self.phase = 2;
                ctx.table_delete(self.table, 22, Some(Notify::Chare(me, EP_REPLY)));
            }
            2 => {
                let ack = cast::<TableAck>(msg);
                assert!(ack.existed);
                self.phase = 3;
                ctx.table_get(self.table, 22, Notify::Chare(me, EP_REPLY));
            }
            3 => {
                let got = cast::<TableGot<String>>(msg);
                assert_eq!(got.value, None, "deleted key must be gone");
                self.phase = 4;
                // Overwrite an existing key: ack reports existed.
                ctx.table_put(
                    self.table,
                    11,
                    "ELEVEN".to_string(),
                    Some(Notify::Chare(me, EP_REPLY)),
                );
            }
            4 => {
                let ack = cast::<TableAck>(msg);
                assert!(ack.existed);
                self.phase = 5;
                ctx.table_get(self.table, 11, Notify::Chare(me, EP_REPLY));
            }
            5 => {
                let got = cast::<TableGot<String>>(msg);
                ctx.exit(got.value.expect("present"));
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn distributed_table_full_protocol() {
    let mut b = ProgramBuilder::new();
    let main = b.chare::<TabMain>();
    let table = b.table::<String>();
    b.main(main, TabSeed { table });
    let mut rep = b.build().run_sim_preset(7, MachinePreset::IpscLike);
    assert_eq!(rep.take_result::<String>().as_deref(), Some("ELEVEN"));
}

// ---------------------------------------------------------------------
// Monotonic propagation.
// ---------------------------------------------------------------------

const EP_SEEN: EpId = EpId(20);
const EP_MONO_QD: EpId = EpId(21);
const EP_SEEN2: EpId = EpId(22);

#[derive(Clone)]
struct MonoSeed {
    probe: Kind<MonoProbe>,
    best: MonoVar<MinBoundU64>,
}
message!(MonoSeed);

#[derive(Clone, Copy)]
struct ProbeSeed {
    parent: ChareId,
    best: MonoVar<MinBoundU64>,
    reply_ep: EpId,
}
message!(ProbeSeed);

/// Round 1: probes race the (asynchronous, tree-relayed) updates and may
/// see any monotonically valid snapshot. Round 2, launched after
/// quiescence (all updates delivered), must see the global best on every
/// PE — the paper's convergence guarantee for monotonic variables.
struct MonoMain {
    probe: Kind<MonoProbe>,
    best: MonoVar<MinBoundU64>,
    waiting: usize,
    round: u32,
}

impl ChareInit for MonoMain {
    type Seed = MonoSeed;
    fn create(seed: MonoSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.mono_update(seed.best, 500);
        ctx.mono_update(seed.best, 100);
        ctx.mono_update(seed.best, 300); // worse: must be dropped
        let npes = ctx.npes();
        for pe in 0..npes {
            ctx.create_on(
                Pe::from(pe),
                seed.probe,
                ProbeSeed {
                    parent: me,
                    best: seed.best,
                    reply_ep: EP_SEEN,
                },
            );
        }
        MonoMain {
            probe: seed.probe,
            best: seed.best,
            waiting: npes,
            round: 1,
        }
    }
}

impl Chare for MonoMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        let me = ctx.self_id();
        match ep {
            EP_SEEN => {
                let seen = cast::<u64>(msg);
                assert!(
                    seen == u64::MAX || seen == 500 || seen == 100,
                    "snapshot {seen} is not a value that was ever current"
                );
                self.waiting -= 1;
                if self.waiting == 0 {
                    ctx.start_quiescence(Notify::Chare(me, EP_MONO_QD));
                }
            }
            EP_MONO_QD => {
                let _ = cast::<QuiescenceMsg>(msg);
                // All updates delivered: round 2 must see 100 everywhere.
                self.round = 2;
                self.waiting = ctx.npes();
                for pe in 0..ctx.npes() {
                    ctx.create_on(
                        Pe::from(pe),
                        self.probe,
                        ProbeSeed {
                            parent: me,
                            best: self.best,
                            reply_ep: EP_SEEN2,
                        },
                    );
                }
            }
            EP_SEEN2 => {
                let seen = cast::<u64>(msg);
                assert_eq!(seen, 100, "post-quiescence PE still stale");
                self.waiting -= 1;
                if self.waiting == 0 {
                    ctx.exit(ctx.mono_get(self.best));
                }
            }
            _ => unreachable!(),
        }
    }
}

struct MonoProbe;
impl ChareInit for MonoProbe {
    type Seed = ProbeSeed;
    fn create(seed: ProbeSeed, ctx: &mut Ctx) -> Self {
        let local = ctx.mono_get(seed.best);
        ctx.send(seed.parent, seed.reply_ep, local);
        ctx.destroy_self();
        MonoProbe
    }
}
impl Chare for MonoProbe {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!()
    }
}

#[test]
fn monotonic_converges_everywhere() {
    for mode in [BroadcastMode::Tree, BroadcastMode::Direct] {
        let mut b = ProgramBuilder::new();
        let probe = b.chare::<MonoProbe>();
        let main = b.chare::<MonoMain>();
        let best = b.monotonic::<MinBoundU64>();
        b.broadcast_mode(mode);
        b.main(main, MonoSeed { probe, best });
        let mut rep = b.build().run_sim_preset(8, MachinePreset::NcubeLike);
        assert_eq!(rep.take_result::<u64>(), Some(100), "{mode:?}");
    }
}
