//! The loss-shim acceptance suite: reliable delivery on the
//! multi-process backend driven against *real* (but seeded) socket
//! faults.
//!
//! The shim drops and reorders frames at the sender side of every data
//! link; the reliable layer's sequence numbers, acks, retransmits and
//! send windows must turn that into exactly-once in-order delivery.
//! "Exactly-once" is asserted through the kernel's own ledgers: a lost
//! seed shows up as a wrong answer (or a hang → watchdog), a duplicated
//! one as `chares_created > seeds_spawned`.
//!
//! The proptests at the bottom pin down the property that makes any of
//! this debuggable: a shim schedule is a pure function of
//! `(seed, src, dst)`, so a failing seeded run replays bit-for-bit.

use charm_repro::ck_apps::{fib, primes, spec};
use charm_repro::prelude::*;
use chare_kernel::proc::{loss_schedule, LossAction};
use chare_kernel::ProcConfig;
use proptest::prelude::*;

/// Reliable config for lossy-link runs: the 5 ms default timeout, a
/// modest window, and a generous seed-retry budget. The budget matters:
/// a seed whose acks are *all* lost can be redirected to another PE
/// while the original copy survives in flight — the one at-most-once
/// gap the cross-process seed ledger would catch. Thirty retries at
/// ≤10% loss puts that probability out of reach.
fn lossy_reliable() -> ReliableConfig {
    ReliableConfig {
        timeout: Cost::millis(5),
        seed_retry_limit: 30,
        window: 16,
    }
}

fn run_lossy(
    test_name: &str,
    spec_str: &str,
    npes: usize,
    permille: u16,
    shim_seed: u64,
) -> CkReport {
    let prog = spec::build_spec(spec_str).with_reliable(lossy_reliable());
    let cfg = ProcConfig::for_test(npes, spec_str, test_name)
        .with_loss(LossConfig::new(shim_seed, permille));
    let rep = prog.run_procs(&cfg);
    let detail = rep.proc.as_ref().expect("procs detail");
    assert!(
        detail.aborted.is_none(),
        "{spec_str} at {permille}‰ loss aborted: {}",
        detail.aborted.as_ref().unwrap()
    );
    assert!(!rep.timed_out, "{spec_str} at {permille}‰ loss timed out");
    rep
}

/// A wrong answer means a seed was lost or delivered twice; a ledger
/// imbalance pins which.
fn assert_exactly_once(rep: &CkReport, what: &str) {
    assert_eq!(rep.counter_total("backlog_end"), 0, "{what}: work abandoned");
    assert_eq!(
        rep.counter_total("seeds_spawned"),
        rep.counter_total("chares_created"),
        "{what}: seed ledger out of balance (lost or duplicated delivery)"
    );
    // A CkExit-terminated run can halt while a late retransmit gap is
    // still open on some link; frames parked behind it are post-answer
    // stragglers (the answer assertions above prove nothing user-visible
    // was behind them). Parked arrivals are only a bug once the
    // transport has drained: no unacked frame in flight means no open
    // gap to park behind — the same gate the desim oracle uses.
    if rep.counter_total("rel_inflight_end") == 0 {
        assert_eq!(
            rep.counter_total("rel_reorder_end"),
            0,
            "{what}: transport drained yet arrivals still parked behind a sequence gap"
        );
    }
}

#[test]
fn loss_exactly_once_primes() {
    spec::worker_hook();
    let spec_str = "primes:limit=3000,chunks=24";
    let want = primes::primes_seq(3000);
    // 1% and the acceptance-point 10%.
    for (permille, shim_seed) in [(10u16, 0xA11CE), (100u16, 0xB0B)] {
        let mut rep = run_lossy("loss_exactly_once_primes", spec_str, 4, permille, shim_seed);
        assert_eq!(
            rep.take_result::<u64>(),
            Some(want),
            "at {permille}‰ loss"
        );
        assert_exactly_once(&rep, spec_str);
        if permille >= 100 {
            // Enough traffic crosses the mesh that a 10% drop rate must
            // have forced retransmissions (and the duplicates they
            // create must have been discarded, not delivered).
            assert!(
                rep.counter_total("retransmits") > 0,
                "10% loss but no retransmits — shim not in the path?"
            );
        }
    }
}

#[test]
fn loss_exactly_once_fib_with_balancing() {
    // The adaptive tree under ACWN: seeds hop between PEs, so lost and
    // reordered frames hit the seed pool and the balancer, not just
    // chare messages. The answer and the ledger must still be exact.
    spec::worker_hook();
    let spec_str = "fib:n=17,grain=10,bal=acwn";
    let mut rep = run_lossy(
        "loss_exactly_once_fib_with_balancing",
        spec_str,
        4,
        100,
        0xF1B,
    );
    assert_eq!(rep.take_result::<u64>(), Some(fib::fib_seq(17)));
    assert_exactly_once(&rep, spec_str);
}

#[test]
fn loss_retransmits_bounded() {
    // Retransmissions must track the loss rate, not snowball: at 10%
    // drops a healthy run resends roughly one frame in ten (plus
    // backoff stragglers). Allowing 1x the user traffic leaves an order
    // of magnitude of headroom below a retransmit storm.
    spec::worker_hook();
    let spec_str = "primes:limit=3000,chunks=24";
    let rep = run_lossy("loss_retransmits_bounded", spec_str, 4, 100, 0xBEEF);
    let user = rep.counter_total("user_sent");
    let retx = rep.counter_total("retransmits");
    assert!(
        retx <= user + 200,
        "retransmit storm: {retx} retransmits for {user} user messages"
    );
}

#[test]
#[should_panic(expected = "reliable")]
fn loss_without_reliable_is_refused() {
    // Dropped frames with no retransmit layer would just hang the run
    // until the watchdog; the parent refuses the configuration outright.
    spec::worker_hook();
    let spec_str = "fib:n=10,grain=8";
    let prog = spec::build_spec(spec_str);
    let cfg = ProcConfig::for_test(2, spec_str, "loss_without_reliable_is_refused")
        .with_loss(LossConfig::new(1, 100));
    let _ = prog.run_procs(&cfg);
}

// ---- replay determinism of the fault schedule ---------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The schedule for a link is a pure function of (seed, src, dst):
    /// recomputing it — as every replay of a failing seeded run does —
    /// yields the identical decision sequence, and a longer look at the
    /// same link extends it without rewriting history.
    #[test]
    fn schedule_is_replay_deterministic(
        seed in any::<u64>(),
        drop in 0u16..400,
        reorder in 0u16..400,
        src in 0u32..16,
        dst in 0u32..16,
        n in 1usize..300,
    ) {
        let cfg = LossConfig { seed, drop_permille: drop, reorder_permille: reorder };
        let a = loss_schedule(&cfg, src, dst, n);
        let b = loss_schedule(&cfg, src, dst, n);
        prop_assert_eq!(&a, &b);
        let longer = loss_schedule(&cfg, src, dst, n * 2);
        prop_assert_eq!(&longer[..n], &a[..]);
    }

    /// Distinct seeds give distinct schedules (at fault rates high
    /// enough that agreement over 400 frames is astronomically
    /// unlikely), and the two directions of a PE pair are uncorrelated
    /// streams.
    #[test]
    fn schedule_varies_with_seed_and_direction(
        seed in any::<u64>(),
        src in 0u32..8,
        dst in 8u32..16,
    ) {
        let cfg = LossConfig { seed, drop_permille: 300, reorder_permille: 300 };
        let other = LossConfig { seed: seed ^ 0x5EED, ..cfg };
        prop_assert_ne!(
            loss_schedule(&cfg, src, dst, 400),
            loss_schedule(&other, src, dst, 400)
        );
        prop_assert_ne!(
            loss_schedule(&cfg, src, dst, 400),
            loss_schedule(&cfg, dst, src, 400)
        );
    }

    /// A zero-rate shim is a no-op: every frame delivers. (The procs
    /// backend relies on this to treat `loss: None` and a zero-rate
    /// config identically.)
    #[test]
    fn zero_rate_schedule_is_transparent(seed in any::<u64>(), n in 1usize..500) {
        let cfg = LossConfig { seed, drop_permille: 0, reorder_permille: 0 };
        prop_assert!(loss_schedule(&cfg, 0, 1, n)
            .into_iter()
            .all(|a| a == LossAction::Deliver));
    }
}
