//! Adversarial quiescence-detection tests: QD must never fire while any
//! user message is queued or in flight, and must fire exactly once per
//! request after the computation drains.

use charm_repro::prelude::*;

const EP_HOP: EpId = EpId(1);
const EP_QUIESCENT: EpId = EpId(2);

/// A long sequential chain of single messages hopping across PEs — the
/// classic QD stress: at any instant at most one user message exists in
/// the whole machine, so a naive detector would fire early.
#[derive(Clone)]
struct ChainSeed {
    hops: u32,
    relay: Kind<Relay>,
}
message!(ChainSeed);

#[derive(Clone, Copy)]
struct RelaySeed {
    main: ChareId,
}
message!(RelaySeed);

struct ChainMain {
    hops_done: u32,
    hops_wanted: u32,
    quiesced: bool,
    relays: Vec<ChareId>,
}

impl ChareInit for ChainMain {
    type Seed = ChainSeed;
    fn create(seed: ChainSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_QUIESCENT));
        // One relay per PE, explicitly placed.
        for pe in 0..ctx.npes() {
            ctx.create_on(Pe::from(pe), seed.relay, RelaySeed { main: me });
        }
        ChainMain {
            hops_done: 0,
            hops_wanted: seed.hops,
            quiesced: false,
            relays: Vec::new(),
        }
    }
}

impl Chare for ChainMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_HOP => {
                let relay = cast::<ChareId>(msg);
                self.relays.push(relay);
                if self.relays.len() == ctx.npes() {
                    // All relays registered: launch the chain.
                    self.relays.sort();
                    self.bounce(ctx);
                }
            }
            EP_QUIESCENT => {
                let _ = cast::<QuiescenceMsg>(msg);
                assert!(!self.quiesced, "quiescence fired twice");
                self.quiesced = true;
                assert_eq!(
                    self.hops_done, self.hops_wanted,
                    "quiescence fired while the chain was still running"
                );
                ctx.exit(self.hops_done);
            }
            _ => unreachable!(),
        }
    }
}

impl ChainMain {
    fn bounce(&mut self, ctx: &mut Ctx) {
        if self.hops_done < self.hops_wanted {
            let next = self.relays[self.hops_done as usize % self.relays.len()];
            self.hops_done += 1;
            ctx.send(next, EP_HOP, ());
        }
        // else: go quiet; QD should now fire.
    }
}

struct Relay {
    main: ChareId,
}

impl ChareInit for Relay {
    type Seed = RelaySeed;
    fn create(seed: RelaySeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.send(seed.main, EP_HOP, me);
        Relay { main: seed.main }
    }
}

impl Chare for Relay {
    fn entry(&mut self, ep: EpId, _msg: MsgBody, ctx: &mut Ctx) {
        assert_eq!(ep, EP_HOP);
        // Bounce back to main, which decides whether to continue.
        // (Relay -> main counts as the same "one message in flight".)
        ctx.send(self.main, EP_HOP_BACK, ());
    }
}

const EP_HOP_BACK: EpId = EpId(3);

#[test]
fn chain_does_not_trigger_early_quiescence() {
    let mut b = ProgramBuilder::new();
    let relay = b.chare::<Relay>();
    let main = b.chare::<ChainMainWrapper>();
    b.main(main, ChainSeed { hops: 57, relay });
    let mut rep = b.build().run_sim_preset(6, MachinePreset::NcubeLike);
    assert_eq!(rep.take_result::<u32>(), Some(57));
}

/// Wrapper handling both HOP (registration) and HOP_BACK (chain step).
struct ChainMainWrapper {
    inner: ChainMain,
}

impl ChareInit for ChainMainWrapper {
    type Seed = ChainSeed;
    fn create(seed: ChainSeed, ctx: &mut Ctx) -> Self {
        ChainMainWrapper {
            inner: ChainMain::create(seed, ctx),
        }
    }
}

impl Chare for ChainMainWrapper {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        if ep == EP_HOP_BACK {
            cast::<()>(msg);
            self.inner.bounce(ctx);
        } else {
            self.inner.entry(ep, msg, ctx);
        }
    }
}

// ---------------------------------------------------------------------

const EP_Q1: EpId = EpId(10);
const EP_Q2: EpId = EpId(11);

/// Two QD sessions in one program: the detector must be reusable.
#[derive(Clone)]
struct TwoPhaseSeed {
    worker: Kind<Burst>,
}
message!(TwoPhaseSeed);

#[derive(Clone, Copy)]
struct BurstSeed {
    fanout: u32,
    depth: u32,
    kind: Kind<Burst>,
}
message!(BurstSeed);

struct Burst;
impl ChareInit for Burst {
    type Seed = BurstSeed;
    fn create(seed: BurstSeed, ctx: &mut Ctx) -> Self {
        if seed.depth > 0 {
            for _ in 0..seed.fanout {
                ctx.create(
                    seed.kind,
                    BurstSeed {
                        fanout: seed.fanout,
                        depth: seed.depth - 1,
                        kind: seed.kind,
                    },
                );
            }
        }
        ctx.destroy_self();
        Burst
    }
}
impl Chare for Burst {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!()
    }
}

struct TwoPhase {
    worker: Kind<Burst>,
    phase: u32,
}

impl ChareInit for TwoPhase {
    type Seed = TwoPhaseSeed;
    fn create(seed: TwoPhaseSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_Q1));
        ctx.create(
            seed.worker,
            BurstSeed {
                fanout: 3,
                depth: 3,
                kind: seed.worker,
            },
        );
        TwoPhase {
            worker: seed.worker,
            phase: 1,
        }
    }
}

impl Chare for TwoPhase {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        let me = ctx.self_id();
        let _ = cast::<QuiescenceMsg>(msg);
        match ep {
            EP_Q1 => {
                assert_eq!(self.phase, 1);
                self.phase = 2;
                ctx.start_quiescence(Notify::Chare(me, EP_Q2));
                ctx.create(
                    self.worker,
                    BurstSeed {
                        fanout: 2,
                        depth: 4,
                        kind: self.worker,
                    },
                );
            }
            EP_Q2 => {
                assert_eq!(self.phase, 2);
                ctx.exit(self.phase);
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn quiescence_detector_is_reusable() {
    let mut b = ProgramBuilder::new();
    let worker = b.chare::<Burst>();
    let main = b.chare::<TwoPhase>();
    b.balance(BalanceStrategy::Random);
    b.main(main, TwoPhaseSeed { worker });
    let mut rep = b.build().run_sim_preset(8, MachinePreset::NcubeLike);
    assert_eq!(rep.take_result::<u32>(), Some(2));
}

#[test]
fn quiescence_works_on_threads() {
    let mut b = ProgramBuilder::new();
    let worker = b.chare::<Burst>();
    let main = b.chare::<TwoPhase>();
    b.balance(BalanceStrategy::Random);
    b.main(main, TwoPhaseSeed { worker });
    let mut rep = b.build().run_threads(4);
    assert!(!rep.timed_out, "quiescence never fired on threads");
    assert_eq!(rep.take_result::<u32>(), Some(2));
}
