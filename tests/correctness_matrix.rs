//! Cross-crate correctness matrix: every application × every strategy ×
//! several machine sizes must produce the sequential answer.

use charm_repro::ck_apps::{fib, jacobi, nqueens, primes, puzzle, tsp};
use charm_repro::prelude::*;

const BALANCES: [BalanceStrategy; 5] = [
    BalanceStrategy::Local,
    BalanceStrategy::Random,
    BalanceStrategy::CentralManager,
    BalanceStrategy::TokenIdle,
    BalanceStrategy::Acwn {
        max_hops: 4,
        low_mark: 2,
    },
];

#[test]
fn fib_matrix() {
    let params = fib::FibParams { n: 17, grain: 9 };
    let want = fib::fib_seq(17);
    for balance in &BALANCES {
        for q in QueueingStrategy::ALL {
            for npes in [1usize, 3, 8] {
                let prog = fib::build(params, q, balance.clone());
                let mut rep = prog.run_sim_preset(npes, MachinePreset::NcubeLike);
                assert_eq!(
                    rep.take_result::<u64>(),
                    Some(want),
                    "fib {balance:?} {q:?} npes={npes}"
                );
            }
        }
    }
}

#[test]
fn nqueens_matrix() {
    let params = nqueens::QueensParams { n: 8, grain: 4 };
    for balance in &BALANCES {
        for npes in [1usize, 5, 16] {
            let prog = nqueens::build(params, QueueingStrategy::Lifo, balance.clone());
            let mut rep = prog.run_sim_preset(npes, MachinePreset::IpscLike);
            assert_eq!(
                rep.take_result::<u64>(),
                Some(92),
                "nqueens {balance:?} npes={npes}"
            );
        }
    }
}

#[test]
fn tsp_matrix() {
    let params = tsp::TspParams {
        n: 9,
        seed: 3,
        seq_tail: 5,
    };
    let inst = tsp::TspInstance::random(9, 3);
    let (want, _) = tsp::tsp_seq(&inst);
    for balance in &BALANCES {
        for q in QueueingStrategy::ALL {
            let prog = tsp::build(params, q, balance.clone());
            let mut rep = prog.run_sim_preset(6, MachinePreset::NcubeLike);
            let got = rep.take_result::<tsp::TspResult>().expect("result");
            assert_eq!(got.best, want, "tsp {balance:?} {q:?}");
        }
    }
}

#[test]
fn puzzle_matrix() {
    let params = puzzle::PuzzleParams {
        scramble: 16,
        seed: 2,
        split_depth: 3,
    };
    let (want, _) = puzzle::ida_seq(puzzle::scramble(16, 2));
    for balance in &BALANCES {
        let prog = puzzle::build(params, QueueingStrategy::IntPriority, balance.clone());
        let mut rep = prog.run_sim_preset(5, MachinePreset::NcubeLike);
        let got = rep.take_result::<puzzle::PuzzleResult>().expect("result");
        assert_eq!(got.cost, want, "puzzle {balance:?}");
    }
}

#[test]
fn jacobi_matrix() {
    let params = jacobi::JacobiParams { n: 16, iters: 7 };
    let want = jacobi::jacobi_seq(params);
    for npes in [1usize, 2, 4, 7, 16, 20] {
        let prog = jacobi::build_default(params);
        let mut rep = prog.run_sim_preset(npes, MachinePreset::SharedBusLike);
        let got = rep.take_result::<f64>().expect("checksum");
        assert!(
            (got - want).abs() <= 1e-9 * want.abs().max(1.0),
            "jacobi npes={npes}: {got} vs {want}"
        );
    }
}

#[test]
fn primes_matrix() {
    let want = primes::primes_seq(3_000);
    for balance in &BALANCES {
        let prog = primes::build(
            primes::PrimesParams {
                limit: 3_000,
                chunks: 10,
            },
            QueueingStrategy::Fifo,
            balance.clone(),
        );
        let mut rep = prog.run_sim_preset(4, MachinePreset::NcubeLike);
        assert_eq!(rep.take_result::<u64>(), Some(want), "primes {balance:?}");
    }
}

#[test]
fn every_app_runs_on_every_preset() {
    for preset in [
        MachinePreset::NcubeLike,
        MachinePreset::IpscLike,
        MachinePreset::SharedBusLike,
        MachinePreset::Ideal,
    ] {
        let prog = fib::build_default(fib::FibParams { n: 14, grain: 8 });
        let mut rep = prog.run_sim_preset(4, preset);
        assert_eq!(rep.take_result::<u64>(), Some(fib::fib_seq(14)), "{preset:?}");
    }
}
