//! The everything-at-once regression: one program that simultaneously
//! uses dynamic chares with bitvector priorities, a branch-office chare,
//! every specifically shared variable, spanning-tree broadcasts, message
//! combining, load balancing and two quiescence-detection sessions —
//! then checks every result against closed-form expectations.
//!
//! Pipeline:
//!   1. main write-onces a lookup table of squares;
//!   2. on readiness, broadcasts a start to a per-PE BOC whose branches
//!      each `table_put` their PE id and create one prioritized worker
//!      chare per PE;
//!   3. workers read the read-only config and the write-once squares,
//!      `acc_add` their contribution, `mono_update` a global minimum,
//!      and `table_get` a neighbor's entry to verify routing;
//!   4. quiescence; main collects the accumulator, checks the monotonic
//!      minimum, then runs a second wave (delete table entries with
//!      acks) and a second quiescence before exiting.

use charm_repro::prelude::*;

const EP_START: EpId = EpId(1);
const EP_GOT: EpId = EpId(2);
const EP_WO_READY: EpId = EpId(3);
const EP_QD1: EpId = EpId(4);
const EP_ACC: EpId = EpId(5);
const EP_DEL_ACK: EpId = EpId(6);
const EP_QD2: EpId = EpId(7);

#[derive(Clone)]
struct Cfg {
    worker: Kind<Worker>,
    acc: Acc<SumU64>,
    best: MonoVar<MinBoundU64>,
    table: TableRef<u64>,
    ro: ReadOnly<Vec<u64>>,
}
message!(Cfg);

#[derive(Clone)]
struct MainSeed {
    cfg: Cfg,
    boc: Boc<Spawner>,
}
message!(MainSeed);

#[derive(Clone)]
struct StartMsg {
    cfg: Cfg,
    squares: WoId,
    main: ChareId,
}
message!(StartMsg);

#[derive(Clone)]
struct WorkerSeed {
    cfg: Cfg,
    squares: WoId,
    home_pe: u32,
}
message!(WorkerSeed);

/// Per-PE branch: registers itself in the distributed table and spawns
/// one worker with a depth-based bitvector priority.
struct Spawner;

impl BranchInit for Spawner {
    type Cfg = ();
    fn create(_cfg: (), _ctx: &mut Ctx) -> Self {
        Spawner
    }
}

impl Branch for Spawner {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        assert_eq!(ep, EP_START);
        let start = cast::<StartMsg>(msg);
        let pe = ctx.pe().0;
        // Table entry: pe -> pe * 10.
        ctx.table_put(start.cfg.table, pe as u64, (pe as u64) * 10, None);
        let prio = BitPrio::root().child(pe % 8, 3);
        let _ = start.main; // spare handle kept in the start message
        ctx.create_prio(
            start.cfg.worker,
            WorkerSeed {
                cfg: start.cfg.clone(),
                squares: start.squares,
                home_pe: pe,
            },
            Priority::Bits(prio),
        );
    }
}

/// The roaming worker: exercises every read path and contributes to
/// every reduction.
struct Worker {
    cfg: Cfg,
    home_pe: u32,
}

impl ChareInit for Worker {
    type Seed = WorkerSeed;
    fn create(seed: WorkerSeed, ctx: &mut Ctx) -> Self {
        let squares = ctx.wo_get::<Vec<u64>>(seed.squares);
        let ro = ctx.read_only(seed.cfg.ro);
        let pe = seed.home_pe as u64;
        // Contribution: square of the home PE id plus the read-only
        // offset — both checkable in closed form.
        ctx.acc_add(seed.cfg.acc, squares[seed.home_pe as usize] + ro[0]);
        ctx.mono_update(seed.cfg.best, 1000 - pe);
        // Look up a neighbor's table entry; the reply proves routing.
        let neighbor = (pe + 1) % ctx.npes() as u64;
        let me = ctx.self_id();
        ctx.table_get(seed.cfg.table, neighbor, Notify::Chare(me, EP_GOT));
        Worker {
            cfg: seed.cfg,
            home_pe: seed.home_pe,
        }
    }
}

impl Chare for Worker {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        assert_eq!(ep, EP_GOT);
        let got = cast::<TableGot<u64>>(msg);
        // The neighbor's put raced ours only through the table's own
        // serialization; by QD time it must exist — but this reply can
        // arrive before the neighbor's put. Both present and absent are
        // legal here; presence must carry the right value.
        if let Some(v) = got.value {
            assert_eq!(v, got.key * 10, "corrupted table entry");
        }
        let _ = self.home_pe;
        let _ = &self.cfg;
        ctx.destroy_self();
    }
}

struct Main {
    cfg: Cfg,
    boc: Boc<Spawner>,
    squares: Option<WoId>,
    phase: u32,
    acks: usize,
}

impl ChareInit for Main {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        let squares: Vec<u64> = (0..ctx.npes() as u64).map(|i| i * i).collect();
        ctx.write_once(squares, Notify::Chare(me, EP_WO_READY));
        Main {
            cfg: seed.cfg,
            boc: seed.boc,
            squares: None,
            phase: 0,
            acks: 0,
        }
    }
}

impl Chare for Main {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        let me = ctx.self_id();
        match ep {
            EP_WO_READY => {
                assert_eq!(self.phase, 0);
                self.phase = 1;
                let ready = cast::<WoReady>(msg);
                self.squares = Some(ready.id);
                ctx.broadcast_branch(
                    self.boc,
                    EP_START,
                    StartMsg {
                        cfg: self.cfg.clone(),
                        squares: ready.id,
                        main: me,
                    },
                );
                ctx.start_quiescence(Notify::Chare(me, EP_QD1));
            }
            EP_QD1 => {
                assert_eq!(self.phase, 1);
                self.phase = 2;
                let _ = cast::<QuiescenceMsg>(msg);
                ctx.acc_collect(self.cfg.acc, Notify::Chare(me, EP_ACC));
            }
            EP_ACC => {
                assert_eq!(self.phase, 2);
                self.phase = 3;
                let total = cast::<AccResult<u64>>(msg).value;
                let p = ctx.npes() as u64;
                // sum of squares of 0..P plus P * ro_offset(7).
                let want: u64 = (0..p).map(|i| i * i).sum::<u64>() + 7 * p;
                assert_eq!(total, want, "accumulator total wrong");
                // Monotonic: the deepest worker published 1000-(P-1).
                assert_eq!(ctx.mono_get(self.cfg.best), 1000 - (p - 1));
                // Second wave: delete every table entry with acks.
                for pe in 0..p {
                    ctx.table_delete(self.cfg.table, pe, Some(Notify::Chare(me, EP_DEL_ACK)));
                }
            }
            EP_DEL_ACK => {
                assert_eq!(self.phase, 3);
                let ack = cast::<TableAck>(msg);
                assert!(ack.existed, "entry {} vanished early", ack.key);
                self.acks += 1;
                if self.acks == ctx.npes() {
                    self.phase = 4;
                    ctx.start_quiescence(Notify::Chare(me, EP_QD2));
                }
            }
            EP_QD2 => {
                assert_eq!(self.phase, 4);
                let _ = cast::<QuiescenceMsg>(msg);
                ctx.exit(true);
            }
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

fn build(
    queueing: QueueingStrategy,
    balance: BalanceStrategy,
    bcast: BroadcastMode,
    combining: bool,
) -> Program {
    let mut b = ProgramBuilder::new();
    let worker = b.chare::<Worker>();
    let main = b.chare::<Main>();
    let boc = b.boc::<Spawner>(());
    let acc = b.accumulator::<SumU64>();
    let best = b.monotonic::<MinBoundU64>();
    let table = b.table::<u64>();
    let ro = b.read_only(vec![7u64, 8, 9]);
    b.queueing(queueing);
    b.balance(balance);
    b.broadcast_mode(bcast);
    b.combining(combining);
    let cfg = Cfg {
        worker,
        acc,
        best,
        table,
        ro,
    };
    b.main(main, MainSeed { cfg, boc });
    b.build()
}

#[test]
fn kitchen_sink_runs_under_every_configuration() {
    for queueing in QueueingStrategy::ALL {
        for balance in [BalanceStrategy::Random, BalanceStrategy::acwn()] {
            for bcast in [BroadcastMode::Tree, BroadcastMode::Direct] {
                for combining in [false, true] {
                    for npes in [1usize, 5, 8] {
                        let prog = build(queueing, balance.clone(), bcast, combining);
                        let mut rep = prog.run_sim_preset(npes, MachinePreset::NcubeLike);
                        assert_eq!(
                            rep.take_result::<bool>(),
                            Some(true),
                            "{queueing:?}/{balance:?}/{bcast:?}/combining={combining}/npes={npes}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn kitchen_sink_on_threads() {
    let prog = build(
        QueueingStrategy::BitvecPriority,
        BalanceStrategy::acwn(),
        BroadcastMode::Tree,
        true,
    );
    let mut rep = prog.run_threads(4);
    assert!(!rep.timed_out);
    assert_eq!(rep.take_result::<bool>(), Some(true));
}

#[test]
fn kitchen_sink_is_deterministic_on_sim() {
    let prog = build(
        QueueingStrategy::IntPriority,
        BalanceStrategy::Random,
        BroadcastMode::Tree,
        true,
    );
    let a = prog.run_sim_preset(6, MachinePreset::IpscLike);
    let b = prog.run_sim_preset(6, MachinePreset::IpscLike);
    assert_eq!(a.time_ns, b.time_ns);
    assert_eq!(
        a.sim.as_ref().unwrap().events,
        b.sim.as_ref().unwrap().events
    );
}
