//! Acceptance tests for the simulation-testing campaign itself:
//! determinism (A/B), the all-oracles smoke campaign, minimizer
//! convergence on a planted violation, and quiescence-under-crash
//! through the shared oracle checker.

use ck_desim::{campaign, minimize, oracle, CampaignConfig, Violation};
use ck_desim::scenario::{AppConfig, RelKnobs, Scenario};
use chare_kernel::prelude::*;
use multicomputer::{AbortReason, FaultClass, FaultPlan, SimTime};

/// The same campaign seed must reproduce the identical sequence of
/// scenarios, storms and per-run verdicts — the property that makes a
/// randomized campaign regressable at all.
#[test]
fn a_b_campaigns_are_identical() {
    let fingerprint = |seed: u64| -> Vec<(String, String, String, bool, bool, u64)> {
        (0..24)
            .map(|i| {
                let rec = campaign::run_one(seed, i, campaign::DEFAULT_MAX_EVENTS);
                (
                    rec.scenario.spec(),
                    rec.storm.spec(),
                    format!("{:?}", rec.violations),
                    rec.qd_used,
                    rec.gate_active,
                    rec.events,
                )
            })
            .collect()
    };
    let a = fingerprint(0xAB);
    let b = fingerprint(0xAB);
    assert_eq!(a, b, "same campaign seed, same everything");
    let c = fingerprint(0xAC);
    assert_ne!(
        a.iter().map(|r| &r.0).collect::<Vec<_>>(),
        c.iter().map(|r| &r.0).collect::<Vec<_>>(),
        "different campaign seed, different scenario sequence"
    );
}

/// Shards partition a campaign by index residue: the union of all
/// shards' records equals the unsharded campaign, record for record.
#[test]
fn shards_reassemble_into_the_whole_campaign() {
    let cfg = |shard| CampaignConfig {
        seed: 0x5AD,
        runs: 12,
        shard,
        max_events: campaign::DEFAULT_MAX_EVENTS,
    };
    let mut whole = Vec::new();
    campaign::run_campaign(&cfg((0, 1)), |rec| whole.push((rec.index, rec.storm.spec())));
    let mut merged = Vec::new();
    for k in 0..3 {
        campaign::run_campaign(&cfg((k, 3)), |rec| merged.push((rec.index, rec.storm.spec())));
    }
    merged.sort();
    assert_eq!(merged, whole);
}

/// The smoke campaign: every run inside the survivable envelope passes
/// every oracle, a healthy share of runs exercise quiescence detection
/// (activating the strict seed ledger), and crash storms appear.
#[test]
fn smoke_campaign_passes_all_oracles() {
    let cfg = CampaignConfig {
        seed: 1,
        runs: 120,
        shard: (0, 1),
        max_events: campaign::DEFAULT_MAX_EVENTS,
    };
    let mut crash_storms = 0u64;
    let summary = campaign::run_campaign(&cfg, |rec| {
        if rec.storm.classes().contains(&FaultClass::Crash) {
            crash_storms += 1;
        }
        assert!(
            rec.passed(),
            "run {} failed: {:?}\n  repro: {}",
            rec.index,
            rec.violations,
            rec.repro()
        );
    });
    assert!(summary.all_passed());
    assert_eq!(summary.attempted, 120);
    assert!(
        summary.qd_used > 120 / 3,
        "most non-fib runs detect quiescence; got {}",
        summary.qd_used
    );
    assert!(
        summary.gate_active > 120 / 3,
        "the strict seed ledger should gate a healthy share of runs; got {}",
        summary.gate_active
    );
    assert!(
        crash_storms >= 5,
        "crash scenarios (~1/8 of runs) should appear; got {crash_storms}"
    );
}

fn unprotected_nqueens() -> Scenario {
    Scenario {
        app: AppConfig::Nqueens { n: 7, grain: 4 },
        npes: 4,
        preset: MachinePreset::NcubeLike,
        queueing: QueueingStrategy::Fifo,
        balance: BalanceStrategy::acwn(),
        rel: None,
    }
}

/// Plant a known violation — an unprotected run under a multi-class
/// storm — and check the minimizer converges: the surviving plan is
/// drop-only, still fails, and removing that last class makes the run
/// pass (i.e. the minimum is genuine, not an artifact).
#[test]
fn minimizer_converges_on_a_planted_violation() {
    let sc = unprotected_nqueens();
    let storm = FaultPlan::new(0xDEAD)
        .drop(0.10)
        .duplicate(0.02)
        .delay(0.05, multicomputer::Cost::micros(100))
        .stall(multicomputer::Pe(2), SimTime(50_000), SimTime(500_000));
    let budget = 2_000_000;
    let min = minimize::minimize(&sc, &storm, budget);
    assert!(min.still_fails, "the planted violation must reproduce");
    assert_eq!(
        min.storm.classes(),
        vec![FaultClass::Drop],
        "minimization should strip every class but the causal one: {}",
        min.storm.spec()
    );
    assert!(
        min.probes < 60,
        "greedy minimization stays cheap; spent {} probes",
        min.probes
    );
    // The minimum still fails, and one step below it passes.
    let rec = campaign::execute(0, sc.clone(), min.storm.clone(), budget);
    assert!(!rec.passed(), "minimized storm must still reproduce");
    let calm = campaign::execute(0, sc, min.storm.without(FaultClass::Drop), budget);
    assert!(
        calm.passed(),
        "removing the causal class must make the run pass: {:?}",
        calm.violations
    );
}

/// Quiescence under a crashed PE, wired through the campaign's own
/// oracle checker:
///
/// * inside the recovery envelope (fib + Random placement + reliable
///   layer), the run completes after seed redirect and passes every
///   oracle;
/// * outside it (a QD-terminated accumulator app losing a PE), the run
///   either completes correctly or dies with the structured
///   `MaxEvents` abort — never a silent wrong answer, and never an
///   actual hang (the budget converts would-be hangs into aborts).
#[test]
fn quiescence_under_crash_is_structured() {
    // Envelope case: completes and passes all oracles.
    let sc = Scenario {
        app: AppConfig::Fib { n: 15, grain: 9 },
        npes: 8,
        preset: MachinePreset::NcubeLike,
        queueing: QueueingStrategy::Fifo,
        balance: BalanceStrategy::Random,
        rel: Some(RelKnobs {
            timeout_us: 500,
            retry: 2,
            window: 16,
        }),
    };
    assert!(sc.crash_survivable());
    let want = sc.reference().expect("reference");
    let storm = FaultPlan::new(0xC4A5).drop(0.05).crash(multicomputer::Pe(2), SimTime::ZERO);
    let rep = sc.run(&storm, campaign::DEFAULT_MAX_EVENTS);
    let v = oracle::judge(&sc, &rep, want);
    assert!(v.is_empty(), "crash in the envelope must recover: {v:?}");

    // Out-of-envelope case: a QD app losing a PE must end structurally.
    let sc = Scenario {
        app: AppConfig::Nqueens { n: 7, grain: 4 },
        npes: 8,
        preset: MachinePreset::NcubeLike,
        queueing: QueueingStrategy::Fifo,
        balance: BalanceStrategy::Random,
        rel: Some(RelKnobs {
            timeout_us: 500,
            retry: 2,
            window: 16,
        }),
    };
    let want = sc.reference().expect("reference");
    let budget = 2_000_000;
    let storm = FaultPlan::new(0xC4A6).crash(multicomputer::Pe(1), SimTime::ZERO);
    let rep = sc.run(&storm, budget);
    let v = oracle::judge(&sc, &rep, want);
    if !v.is_empty() {
        assert!(
            v.iter().all(|v| matches!(v, Violation::Hang { .. })),
            "a crashed QD run may only die as a structured hang: {v:?}"
        );
        let sim = rep.sim.as_ref().expect("simulator report");
        assert!(
            matches!(sim.aborted, Some(AbortReason::MaxEvents { .. })),
            "the hang must surface as a structured abort: {:?}",
            sim.aborted
        );
    }
    assert!(
        !v.iter().any(|v| matches!(v, Violation::WrongAnswer { .. })),
        "a crash must never produce a silently wrong answer: {v:?}"
    );
}
