//! The campaign's procs slice: seeded scenarios from the same stream
//! the sim campaign draws from, executed as real OS processes over
//! sockets with the deterministic loss shim as the storm, judged by the
//! unchanged oracle battery.
//!
//! This is the cross-backend half of the desim story: the sim campaign
//! proves the kernel against adversarial *simulated* schedules; the
//! slice proves the same oracles hold when the schedule is real
//! wall-clock preemption and the faults are real dropped socket frames.

use ck_desim::procs;
use ck_desim::scenario::{self, Scenario};
use ck_desim::{judge, Violation};
use chare_kernel::prelude::*;
use multicomputer::FaultRng;

/// Draw the first `want` wired, procs-sized scenarios from a campaign
/// stream (8 PEs is plenty of processes for a CI box; 16-PE draws are
/// skipped, not shrunk, to keep the stream aligned with the seed).
fn draw_slice(seed: u64, want: usize) -> Vec<Scenario> {
    let mut rng = FaultRng::new(seed);
    let mut out = Vec::new();
    for _ in 0..200 {
        if out.len() == want {
            break;
        }
        let sc = scenario::generate(&mut rng);
        if procs::wired(&sc) && sc.npes <= 8 {
            out.push(sc);
        }
    }
    assert_eq!(out.len(), want, "stream should yield {want} scenarios");
    out
}

#[test]
fn procs_slice_passes_all_oracles() {
    procs::worker_hook();
    let scenarios = draw_slice(0xD15C, 6);
    // The slice must not collapse onto one app: a stream that only ever
    // draws fib is a slice of nothing.
    let apps: std::collections::BTreeSet<&str> =
        scenarios.iter().map(|sc| sc.app.name()).collect();
    assert!(apps.len() >= 3, "slice too narrow: {apps:?}");
    for (i, sc) in scenarios.iter().enumerate() {
        let want = sc.reference().expect("fault-free reference");
        // 2% seeded loss on every link: enough that retransmission is
        // exercised on every run, low enough that six runs stay in CI
        // budget.
        let loss = LossConfig::new(0xD15C ^ i as u64, 20);
        let rep = procs::run_scenario_procs(sc, Some(loss), "procs_slice_passes_all_oracles");
        let v = judge(sc, &rep, want);
        assert!(
            v.is_empty(),
            "slice run {i} failed on procs\n  scenario: {}\n  violations: {v:?}",
            sc.spec()
        );
    }
}

#[test]
fn procs_slice_judges_worker_death_as_aborted() {
    // The oracle battery itself must classify a procs failure: kill a
    // worker mid-run and the judge reports `Violation::Aborted` (the
    // procs rendering of a structural failure), suppressing the
    // dependent answer oracle exactly like a sim hang.
    procs::worker_hook();
    // Pinned rather than drawn: the victim rank must be guaranteed
    // enough scheduling steps for the hook to fire mid-run.
    let sc = Scenario::parse("app=nqueens:8/4 npes=4 preset=ncube q=fifo b=acwn:4/2 rel=none")
        .expect("pinned spec parses");
    let want = sc.reference().expect("reference");
    let prog = procs::build_scenario(&sc.spec())
        .with_reliable(procs::slice_reliable())
        .with_metrics(MetricsConfig::default());
    let cfg = ProcConfig::for_test(
        sc.npes,
        sc.spec(),
        "procs_slice_judges_worker_death_as_aborted",
    )
    .with_crash("1:exit:9:2");
    let rep = prog.run_procs(&cfg);
    let v = judge(&sc, &rep, want);
    assert!(
        v.iter().any(|v| matches!(v, Violation::Aborted { .. })),
        "worker death must judge as Aborted: {v:?}"
    );
    assert!(
        !v.iter().any(|v| matches!(v, Violation::MissingAnswer)),
        "the abort suppresses the dependent answer oracle: {v:?}"
    );
}
