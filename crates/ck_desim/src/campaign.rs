//! Campaign driver: expand one seed into N (scenario, storm) runs,
//! execute each, and tally oracle verdicts.
//!
//! Everything downstream of the campaign seed is deterministic: run
//! `index` draws its scenario and storm from
//! `FaultRng::new(run_seed(campaign_seed, index))`, and the simulator
//! itself is deterministic, so `--campaign-seed S --only I` replays any
//! run bit-for-bit — on a laptop, in CI, or sharded `k/n` across CI
//! jobs (shards partition indices by residue, so the union of all
//! shards is exactly the unsharded campaign).

use multicomputer::FaultPlan;
use multicomputer::FaultRng;

use crate::oracle::{self, Violation};
use crate::scenario::{self, Answer, Scenario};
use crate::storm;

/// Default per-run event budget: ~40× the largest clean campaign run,
/// small enough that a genuine hang aborts in well under a second.
pub const DEFAULT_MAX_EVENTS: u64 = 20_000_000;

/// Per-run seed: a SplitMix64-style mix of the campaign seed and the
/// run index, so adjacent indices land in unrelated parts of the
/// scenario space and `(seed, index)` fully names a run.
pub fn run_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expand one campaign run index into its (scenario, storm) pair
/// without executing it.
pub fn make_run(campaign_seed: u64, index: u64) -> (Scenario, FaultPlan) {
    let mut rng = FaultRng::new(run_seed(campaign_seed, index));
    let sc = scenario::generate(&mut rng);
    let plan = storm::generate(&mut rng, &sc);
    (sc, plan)
}

/// Everything recorded about one executed run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Campaign index (0-based).
    pub index: u64,
    /// The victim configuration.
    pub scenario: Scenario,
    /// The fault storm it ran under.
    pub storm: FaultPlan,
    /// The fault-free reference answer.
    pub reference: Answer,
    /// Oracle verdicts (empty = pass).
    pub violations: Vec<Violation>,
    /// Whether quiescence was detected during the run (QD declared at
    /// least once) — such runs also activate the strict seed ledger.
    pub qd_used: bool,
    /// Whether the strict seed-ledger gate was active at run end.
    pub gate_active: bool,
    /// Simulator events consumed.
    pub events: u64,
    /// Forensics lines (flight-recorder tail + metrics snapshot),
    /// captured only when the run failed — passing runs stay light.
    pub forensics: Vec<String>,
}

impl RunRecord {
    /// Pass/fail.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The one-line replay command for this run.
    pub fn repro(&self) -> String {
        format!(
            "desim --scenario '{}' --storm '{}'",
            self.scenario.spec(),
            self.storm.spec()
        )
    }
}

/// Execute an explicit (scenario, storm) pair and judge it. `index` is
/// carried through for reporting only.
pub fn execute(index: u64, scenario: Scenario, storm: FaultPlan, max_events: u64) -> RunRecord {
    let reference = scenario
        .reference()
        .expect("fault-free reference run produced no result");
    let rep = scenario.run(&storm, max_events);
    let violations = oracle::judge(&scenario, &rep, reference);
    let sim = rep.sim.as_ref().expect("desim runs on the simulator");
    let forensics = if violations.is_empty() {
        Vec::new()
    } else {
        crate::forensics::render(&rep)
    };
    RunRecord {
        index,
        reference,
        violations,
        qd_used: rep.counter_total("qd_declares") > 0,
        gate_active: oracle::ledger_gate_active(&rep),
        events: sim.events,
        forensics,
        scenario,
        storm,
    }
}

/// Generate and execute campaign run `index`.
pub fn run_one(campaign_seed: u64, index: u64, max_events: u64) -> RunRecord {
    let (sc, plan) = make_run(campaign_seed, index);
    execute(index, sc, plan, max_events)
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// The seed everything expands from.
    pub seed: u64,
    /// Total run count (across all shards).
    pub runs: u64,
    /// `(k, n)`: this invocation executes indices with `index % n == k`.
    pub shard: (u64, u64),
    /// Per-run event budget (hang detection threshold).
    pub max_events: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 1,
            runs: 100,
            shard: (0, 1),
            max_events: DEFAULT_MAX_EVENTS,
        }
    }
}

/// Aggregate campaign outcome.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Runs executed by this shard.
    pub attempted: u64,
    /// Runs with no violations.
    pub passed: u64,
    /// Runs in which QD declared quiescence.
    pub qd_used: u64,
    /// Runs where the strict seed-ledger gate was active.
    pub gate_active: u64,
    /// Full records of every failing run.
    pub failures: Vec<RunRecord>,
}

impl CampaignSummary {
    /// Whether every attempted run passed.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run a (shard of a) campaign, invoking `on_run` after each run —
/// the CLI uses it for progress lines; tests usually pass `|_| {}`.
pub fn run_campaign(cfg: &CampaignConfig, mut on_run: impl FnMut(&RunRecord)) -> CampaignSummary {
    let (k, n) = cfg.shard;
    assert!(n > 0 && k < n, "shard must be k/n with k < n");
    let mut summary = CampaignSummary::default();
    for index in 0..cfg.runs {
        if index % n != k {
            continue;
        }
        let rec = run_one(cfg.seed, index, cfg.max_events);
        summary.attempted += 1;
        if rec.passed() {
            summary.passed += 1;
        }
        if rec.qd_used {
            summary.qd_used += 1;
        }
        if rec.gate_active {
            summary.gate_active += 1;
        }
        on_run(&rec);
        if !rec.passed() {
            summary.failures.push(rec);
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_seed_mixing_separates_neighbors() {
        let s: Vec<u64> = (0..64).map(|i| run_seed(1, i)).collect();
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "adjacent indices must not collide");
        assert_ne!(run_seed(1, 0), run_seed(2, 0), "campaign seed matters");
    }

    #[test]
    fn shards_partition_the_campaign() {
        let all: Vec<u64> = (0..20).collect();
        let mut merged: Vec<u64> = Vec::new();
        for k in 0..4 {
            merged.extend(all.iter().copied().filter(|i| i % 4 == k));
        }
        merged.sort_unstable();
        assert_eq!(merged, all);
    }

    #[test]
    fn make_run_is_deterministic() {
        let (sa, pa) = make_run(0xFEED, 17);
        let (sb, pb) = make_run(0xFEED, 17);
        assert_eq!(sa.spec(), sb.spec());
        assert_eq!(pa.spec(), pb.spec());
        let (sc, pc) = make_run(0xFEED, 18);
        assert!(
            sa.spec() != sc.spec() || pa.spec() != pc.spec(),
            "neighboring indices should differ"
        );
    }
}
