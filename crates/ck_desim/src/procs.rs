//! Running campaign scenarios on the multi-process socket backend.
//!
//! The sim campaign's storms are simulator constructs (event-level
//! drops, stalls, crashes at simulated instants); the procs backend has
//! its own native fault source — the deterministic loss shim on every
//! data link. A *procs slice* draws scenarios from the same seeded
//! stream the sim campaign uses, swaps the storm for a seeded
//! [`LossConfig`], runs each scenario as real OS processes over
//! sockets, and judges the report with the unchanged oracle battery
//! ([`crate::oracle::judge`] dispatches on the report's backend).
//!
//! Two translations happen at the boundary:
//!
//! * **Reliable knobs.** Scenario `rel=` knobs are in simulated
//!   microseconds — meaningful under the event clock, nonsense against
//!   wall-clock socket latency. Slice runs pin the wall-clock config
//!   ([`slice_reliable`]): the 5 ms socket-scale timeout and a retry
//!   budget deep enough that an all-acks-lost seed redirect (the known
//!   at-most-once gap) is out of statistical reach.
//! * **Worker program.** Workers rebuild the program from the
//!   scenario's own spec string via [`worker_hook`], so the wire-table
//!   fingerprint matches the parent's by construction. The reliable
//!   layer, metrics and the shim config ride the parent's
//!   `CK_PROC_OPTS` overrides; the spec only has to describe the base
//!   program.

use chare_kernel::prelude::*;
use chare_kernel::{CkReport, Program};

use crate::scenario::{AppConfig, Scenario};

/// Entry hook for test binaries that run procs slices: call first in
/// every such test. A worker invocation parses `CK_SPEC` as a
/// [`Scenario`] spec and rebuilds the base program; a normal invocation
/// returns immediately.
pub fn worker_hook() {
    chare_kernel::maybe_worker(build_scenario);
}

/// Build the base program a scenario spec describes — the shared
/// parent/worker constructor (both sides must register the same wire
/// table in the same order, so both call exactly this).
pub fn build_scenario(spec: &str) -> Program {
    let sc = Scenario::parse(spec).unwrap_or_else(|e| panic!("bad scenario spec {spec:?}: {e}"));
    sc.app.build(sc.queueing, &sc.balance)
}

/// Whether a scenario's app has wire codecs registered (the procs
/// backend needs every crossing type to be `Wire`). `jconv` is the one
/// holdout — its phased `Control` protocol is not wired yet.
pub fn wired(sc: &Scenario) -> bool {
    !matches!(sc.app, AppConfig::JacobiConv { .. })
}

/// Wall-clock reliable config for slice runs (see module docs for why
/// the scenario's own sim-time knobs are not used).
pub fn slice_reliable() -> ReliableConfig {
    ReliableConfig {
        timeout: Cost::millis(5),
        seed_retry_limit: 30,
        window: 16,
    }
}

/// Run one scenario on the procs backend under an optional loss shim,
/// returning the report for [`crate::oracle::judge`]. `test_name` is
/// the calling test's name (the backend re-invokes the test binary
/// filtered to it). The machine preset is ignored — processes run at
/// real speed — which is exactly what makes the slice interesting: the
/// answers and ledgers must hold on wall-clock scheduling too.
pub fn run_scenario_procs(sc: &Scenario, loss: Option<LossConfig>, test_name: &str) -> CkReport {
    let prog = build_scenario(&sc.spec())
        .with_reliable(slice_reliable())
        .with_metrics(MetricsConfig::default());
    let mut cfg = ProcConfig::for_test(sc.npes, sc.spec(), test_name);
    if let Some(loss) = loss {
        cfg = cfg.with_loss(loss);
    }
    prog.run_procs(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use multicomputer::FaultRng;

    #[test]
    fn scenario_specs_build_and_fingerprints_agree() {
        // Every wired scenario the generator can draw must build from
        // its own spec with a stable wire fingerprint — the procs
        // handshake precondition, checked here without spawning
        // processes.
        let mut rng = FaultRng::new(0x51DE);
        let mut checked = 0;
        for _ in 0..60 {
            let sc = crate::scenario::generate(&mut rng);
            if !wired(&sc) {
                continue;
            }
            let a = build_scenario(&sc.spec());
            let b = build_scenario(&sc.spec());
            assert_eq!(
                a.wire_fingerprint(),
                b.wire_fingerprint(),
                "unstable fingerprint for {}",
                sc.spec()
            );
            checked += 1;
        }
        assert!(checked > 30, "generator should mostly draw wired apps");
    }

    #[test]
    fn unwired_apps_are_excluded() {
        let sc = Scenario {
            app: AppConfig::JacobiConv { n: 16, max_iters: 100 },
            npes: 4,
            preset: MachinePreset::NcubeLike,
            queueing: QueueingStrategy::Fifo,
            balance: BalanceStrategy::acwn(),
            rel: None,
        };
        assert!(!wired(&sc));
    }
}
