//! Randomized fault storms within the survivable envelope.
//!
//! A storm is a [`FaultPlan`] drawn from the campaign stream. The
//! generator's job is to be vicious *inside* the envelope the kernel
//! promises to survive — drop/duplicate/delay rates the resilience
//! acceptance tests cover, bounded link outages and PE stalls, and PE
//! crashes only for scenarios in the crash-recovery envelope
//! ([`Scenario::crash_survivable`]) — so that every oracle violation a
//! campaign finds is a real kernel bug, not a storm that no protocol
//! could survive.
//!
//! Envelope bounds (and why):
//! * drop ≤ 15%, duplicate ≤ 5%, delay ≤ 10% up to 300 µs — the ranges
//!   the `resilience.rs` property tests prove recoverable;
//! * outages and stalls are always *bounded* windows (≤ ~2 ms): the
//!   head-of-line retransmit with capped backoff outlasts any bounded
//!   blackout, so delivery resumes when the window closes;
//! * crashes are permanent, so they only appear in crash-survivable
//!   scenarios, at boot time (`SimTime::ZERO`), never on PE 0 (the
//!   main chare and QD coordinator live there).

use multicomputer::{Cost, FaultPlan, FaultRng, Pe, SimTime};

use crate::scenario::Scenario;

/// Draw a storm for `sc` from the campaign stream. The storm's own
/// fault seed is drawn first, so the plan replays identically from its
/// spec string alone.
pub fn generate(rng: &mut FaultRng, sc: &Scenario) -> FaultPlan {
    let mut plan = FaultPlan::new(rng.next_u64());
    let npes = sc.npes as u64;
    if sc.crash_survivable() {
        // One crashed PE at boot (never PE 0), plus milder probabilistic
        // faults: the crash already stresses redirect, and recovery time
        // grows quickly when loss also slows the survivors.
        plan = plan.crash(Pe(1 + rng.below(npes - 1) as u32), SimTime::ZERO);
        if rng.chance(0.5) {
            plan = plan.drop(rng.below(80) as f64 / 1000.0);
        }
        if rng.chance(0.3) {
            plan = plan.duplicate(rng.below(30) as f64 / 1000.0);
        }
        if rng.chance(0.5) {
            plan = plan.delay(rng.below(80) as f64 / 1000.0, Cost::micros(50 + rng.below(150)));
        }
        return plan;
    }
    if rng.chance(0.8) {
        plan = plan.drop(rng.below(150) as f64 / 1000.0);
    }
    if rng.chance(0.5) {
        plan = plan.duplicate(rng.below(50) as f64 / 1000.0);
    }
    if rng.chance(0.7) {
        plan = plan.delay(
            rng.below(100) as f64 / 1000.0,
            Cost::micros(50 + rng.below(250)),
        );
    }
    for _ in 0..rng.below(3) {
        let from = rng.below(npes) as u32;
        let mut to = rng.below(npes) as u32;
        if to == from {
            to = (to + 1) % npes as u32;
        }
        let start = rng.below(1_500_000);
        let len = 50_000 + rng.below(500_000);
        plan = plan.outage(Pe(from), Pe(to), SimTime(start), SimTime(start + len));
    }
    if rng.chance(0.4) {
        let pe = rng.below(npes) as u32;
        let at = rng.below(1_000_000);
        let until = at + 100_000 + rng.below(1_000_000);
        plan = plan.stall(Pe(pe), SimTime(at), SimTime(until));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use multicomputer::FaultClass;

    #[test]
    fn storms_replay_from_their_specs() {
        let mut rng = FaultRng::new(0x5701214);
        for _ in 0..200 {
            let sc = scenario::generate(&mut rng);
            let storm = generate(&mut rng, &sc);
            let spec = storm.spec();
            assert_eq!(
                FaultPlan::parse(&spec).expect("storm specs parse").spec(),
                spec
            );
        }
    }

    #[test]
    fn crashes_only_hit_survivable_scenarios_and_never_pe0() {
        let mut rng = FaultRng::new(42);
        let mut crashes = 0;
        for _ in 0..500 {
            let sc = scenario::generate(&mut rng);
            let storm = generate(&mut rng, &sc);
            let has_crash = storm.classes().contains(&FaultClass::Crash);
            if has_crash {
                crashes += 1;
                assert!(sc.crash_survivable(), "crash outside the envelope");
                // The spec names the crashed PE; PE 0 must never appear.
                let spec = storm.spec();
                for tok in spec.split_whitespace() {
                    if let Some(rest) = tok.strip_prefix("crash=") {
                        let pe: u32 = rest.split('@').next().unwrap().parse().unwrap();
                        assert!(pe != 0, "crashed PE 0 in {spec}");
                        assert!((pe as usize) < sc.npes, "crashed PE out of range");
                    }
                }
            }
        }
        assert!(crashes > 20, "crash storms should appear (~1/8)");
    }

    #[test]
    fn storm_stream_is_deterministic() {
        let draw = |seed| {
            let mut rng = FaultRng::new(seed);
            (0..50)
                .map(|_| {
                    let sc = scenario::generate(&mut rng);
                    generate(&mut rng, &sc).spec()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }
}
