//! The desim campaign CLI.
//!
//! ```text
//! # run (a shard of) a randomized campaign
//! desim --campaign-seed 42 --runs 500 --shard 1/4 --minimize --out fails.txt
//!
//! # replay one campaign run by index
//! desim --campaign-seed 42 --only 137
//!
//! # replay an explicit (scenario, storm) pair — the repro one-liner
//! desim --scenario 'app=fib:16/9 npes=8 preset=ncube q=fifo b=random rel=500/2/16' \
//!       --storm 'seed=0xBEEF drop=0.05 crash=3@0'
//!
//! # replay the committed regression corpus
//! desim --corpus tests/desim_corpus
//! ```
//!
//! Exit status is 0 only when every executed run passed every oracle.

use std::io::Write as _;
use std::process::ExitCode;

use ck_desim::{campaign, corpus, minimize, CampaignConfig, RunRecord};
use multicomputer::FaultPlan;

struct Args {
    seed: u64,
    runs: u64,
    shard: (u64, u64),
    max_events: u64,
    minimize: bool,
    only: Option<u64>,
    scenario: Option<String>,
    storm: Option<String>,
    corpus: Option<String>,
    out: Option<String>,
    emit_corpus: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: desim [--campaign-seed N] [--runs N] [--shard K/N] [--max-events N]\n\
         \x20            [--minimize] [--only IDX] [--out FILE] [--emit-corpus FILE]\n\
         \x20      desim --scenario SPEC --storm SPEC [--minimize] [--emit-corpus FILE]\n\
         \x20      desim --corpus DIR"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 1,
        runs: 100,
        shard: (0, 1),
        max_events: campaign::DEFAULT_MAX_EVENTS,
        minimize: false,
        only: None,
        scenario: None,
        storm: None,
        corpus: None,
        out: None,
        emit_corpus: None,
    };
    let mut it = std::env::args().skip(1);
    let num = |s: Option<String>, what: &str| -> u64 {
        let s = s.unwrap_or_else(|| usage());
        let r = if let Some(hex) = s.strip_prefix("0x") {
            u64::from_str_radix(hex, 16)
        } else {
            s.parse()
        };
        r.unwrap_or_else(|e| {
            eprintln!("bad {what} '{s}': {e}");
            std::process::exit(2);
        })
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--campaign-seed" => args.seed = num(it.next(), "seed"),
            "--runs" => args.runs = num(it.next(), "run count"),
            "--shard" => {
                let v = it.next().unwrap_or_else(|| usage());
                let Some((k, n)) = v.split_once('/') else {
                    usage()
                };
                args.shard = (num(Some(k.into()), "shard"), num(Some(n.into()), "shard"));
                if args.shard.1 == 0 || args.shard.0 >= args.shard.1 {
                    eprintln!("shard must be K/N with K < N");
                    std::process::exit(2);
                }
            }
            "--max-events" => args.max_events = num(it.next(), "event budget"),
            "--minimize" => args.minimize = true,
            "--only" => args.only = Some(num(it.next(), "index")),
            "--scenario" => args.scenario = it.next().or_else(|| usage()),
            "--storm" => args.storm = it.next().or_else(|| usage()),
            "--corpus" => args.corpus = it.next().or_else(|| usage()),
            "--out" => args.out = it.next().or_else(|| usage()),
            "--emit-corpus" => args.emit_corpus = it.next().or_else(|| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag '{other}'");
                usage();
            }
        }
    }
    args
}

/// Report one failing run: violations, repro line, optional minimized
/// storm. Returns the artifact lines for `--out`.
fn report_failure(rec: &RunRecord, do_minimize: bool, max_events: u64) -> Vec<String> {
    let mut lines = Vec::new();
    lines.push(format!(
        "FAIL run {}: {} | {}",
        rec.index,
        rec.scenario.spec(),
        rec.storm.spec()
    ));
    for v in &rec.violations {
        lines.push(format!("  violation: {v}"));
    }
    lines.push(format!("  repro: {}", rec.repro()));
    lines.extend(rec.forensics.iter().cloned());
    if do_minimize {
        let min = minimize::minimize(&rec.scenario, &rec.storm, max_events);
        lines.push(format!(
            "  minimized ({} probes): {}",
            min.probes,
            min.storm.spec()
        ));
        lines.push(format!(
            "  repro (minimized): desim --scenario '{}' --storm '{}'",
            rec.scenario.spec(),
            min.storm.spec()
        ));
    }
    for l in &lines {
        eprintln!("{l}");
    }
    lines
}

fn write_out(path: &str, lines: &[String]) {
    let mut f = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    for l in lines {
        writeln!(f, "{l}").expect("write artifact");
    }
    eprintln!("wrote failure artifact to {path}");
}

fn emit_corpus(path: &str, rec: &RunRecord, provenance: &str) {
    let entry = corpus::CorpusEntry {
        scenario: rec.scenario.clone(),
        storm: rec.storm.clone(),
    };
    std::fs::write(path, corpus::format_entry(&entry, provenance)).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    });
    eprintln!("wrote corpus entry to {path}");
}

fn run_corpus(dir: &str, max_events: u64) -> ExitCode {
    let entries = match corpus::load_dir(std::path::Path::new(dir)) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot read corpus dir {dir}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut failed = 0u64;
    let total = entries.len();
    for (name, entry) in entries {
        match entry {
            Err(e) => {
                eprintln!("FAIL corpus entry {name}: malformed: {e}");
                failed += 1;
            }
            Ok(entry) => {
                let rec = corpus::replay(&entry, max_events);
                if rec.passed() {
                    println!("ok corpus {name}");
                } else {
                    eprintln!("FAIL corpus {name} regressed:");
                    for v in &rec.violations {
                        eprintln!("  violation: {v}");
                    }
                    eprintln!("  repro: {}", rec.repro());
                    for l in &rec.forensics {
                        eprintln!("{l}");
                    }
                    failed += 1;
                }
            }
        }
    }
    println!("corpus: {total} entries, {} passed, {failed} failed", total as u64 - failed);
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    if let Some(dir) = &args.corpus {
        return run_corpus(dir, args.max_events);
    }

    // Explicit (scenario, storm) replay — the repro one-liner.
    if args.scenario.is_some() || args.storm.is_some() {
        let (Some(sc), Some(st)) = (&args.scenario, &args.storm) else {
            eprintln!("--scenario and --storm must be given together");
            return ExitCode::from(2);
        };
        let scenario = match ck_desim::Scenario::parse(sc) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("bad --scenario: {e}");
                return ExitCode::from(2);
            }
        };
        let storm = match FaultPlan::parse(st) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("bad --storm: {e}");
                return ExitCode::from(2);
            }
        };
        let rec = campaign::execute(0, scenario, storm, args.max_events);
        if let Some(path) = &args.emit_corpus {
            emit_corpus(path, &rec, "replayed from an explicit scenario/storm pair");
        }
        return if rec.passed() {
            println!("ok: {} | {}", rec.scenario.spec(), rec.storm.spec());
            ExitCode::SUCCESS
        } else {
            let lines = report_failure(&rec, args.minimize, args.max_events);
            if let Some(path) = &args.out {
                write_out(path, &lines);
            }
            ExitCode::FAILURE
        };
    }

    // Single campaign index.
    if let Some(index) = args.only {
        let rec = campaign::run_one(args.seed, index, args.max_events);
        println!(
            "run {index} (campaign {:#x}): {} | {}",
            args.seed,
            rec.scenario.spec(),
            rec.storm.spec()
        );
        if let Some(path) = &args.emit_corpus {
            emit_corpus(
                path,
                &rec,
                &format!("campaign seed {:#x} run {index}", args.seed),
            );
        }
        return if rec.passed() {
            println!("ok ({} events, qd_used={})", rec.events, rec.qd_used);
            ExitCode::SUCCESS
        } else {
            let lines = report_failure(&rec, args.minimize, args.max_events);
            if let Some(path) = &args.out {
                write_out(path, &lines);
            }
            ExitCode::FAILURE
        };
    }

    // Full (shard of a) campaign.
    let cfg = CampaignConfig {
        seed: args.seed,
        runs: args.runs,
        shard: args.shard,
        max_events: args.max_events,
    };
    let mut artifact: Vec<String> = Vec::new();
    let summary = campaign::run_campaign(&cfg, |rec| {
        if !rec.passed() {
            artifact.extend(report_failure(rec, args.minimize, args.max_events));
        }
    });
    println!(
        "campaign seed {:#x}, runs {}, shard {}/{}: {} attempted, {} passed, {} failed",
        cfg.seed,
        cfg.runs,
        cfg.shard.0,
        cfg.shard.1,
        summary.attempted,
        summary.passed,
        summary.failures.len()
    );
    println!(
        "  qd-terminated {}, seed-ledger gate active {}",
        summary.qd_used, summary.gate_active
    );
    if !summary.all_passed() {
        if let Some(path) = &args.out {
            write_out(path, &artifact);
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
