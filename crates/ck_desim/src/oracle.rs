//! The campaign's oracles: what makes a faulted run *wrong*.
//!
//! Every run inside the survivable envelope must satisfy all of:
//!
//! 1. **Structured completion** — the run ends by exit or quiescence,
//!    never by exhausting the event budget. Hangs are converted into
//!    `AbortReason::MaxEvents` by the simulator, so "never hangs" is a
//!    checkable property, not a wall-clock timeout.
//! 2. **Reference answer** — the result equals the fault-free run's
//!    (memoized) answer: exact for counts, 1e-9 relative for
//!    floating-point accumulations.
//! 3. **Exactly-once seed accounting** — `Σ seeds_spawned` must equal
//!    `Σ chares_created` once everything drained. An excess of
//!    creations is *unconditionally* a duplication bug (nothing
//!    legitimate constructs a chare twice). A shortfall is only a
//!    verdict when the ledger gate is active: either quiescence was
//!    detected during the run (`qd_declares > 0` — QD only declares
//!    once every PE is idle and the reliable layer quiet, so every
//!    spawned seed was constructed by then, and post-declare
//!    collect/exit spawns nothing), or the end state is fully drained
//!    (no runnable backlog, no counted frames in flight). A run that
//!    exits by `Ctx::exit` mid-computation may legitimately strand
//!    queued seeds, so neither arm applies and the shortfall passes.
//! 4. **Quiescence soundness** — a run in which QD declared must end
//!    with an empty user backlog: QD declaring while runnable user
//!    work sits in any queue is exactly the four-counter unsoundness
//!    this oracle hunts. (Post-declare collect/exit traffic rides the
//!    *system* queues and does not trip this.)

use chare_kernel::CkReport;
use multicomputer::AbortReason;

use crate::scenario::{Answer, Scenario};

/// One oracle violation. A passing run has none.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The run burned through the event budget without terminating.
    Hang {
        /// The configured event limit.
        limit: u64,
    },
    /// The run terminated but produced no extractable result.
    MissingAnswer,
    /// The result differs from the fault-free reference.
    WrongAnswer {
        /// Reference answer.
        want: Answer,
        /// Faulted-run answer.
        got: Answer,
    },
    /// More chares were constructed than creations were requested.
    DuplicatedSeeds {
        /// Total `seeds_spawned`.
        spawned: u64,
        /// Total `chares_created`.
        created: u64,
    },
    /// Fewer chares were constructed than requested, with nothing left
    /// queued or in flight to account for the difference.
    LostSeeds {
        /// Total `seeds_spawned`.
        spawned: u64,
        /// Total `chares_created`.
        created: u64,
    },
    /// QD declared quiescence, yet runnable user work remained queued
    /// at run end.
    PrematureQuiescence {
        /// Total `backlog_end` across PEs.
        backlog: u64,
    },
    /// A multi-process run was cut short (worker death, protocol
    /// violation, or the parent watchdog — the procs backend's
    /// structured-completion failures, including its rendering of a
    /// hang).
    Aborted {
        /// The backend's structured reason, rendered.
        reason: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Hang { limit } => {
                write!(f, "hang: event budget {limit} exhausted without termination")
            }
            Violation::MissingAnswer => write!(f, "terminated without a result"),
            Violation::WrongAnswer { want, got } => {
                write!(f, "wrong answer: want {want}, got {got}")
            }
            Violation::DuplicatedSeeds { spawned, created } => write!(
                f,
                "seed ledger: {created} chares created from {spawned} spawns (duplication)"
            ),
            Violation::LostSeeds { spawned, created } => write!(
                f,
                "seed ledger: only {created} chares created from {spawned} spawns with nothing in flight (loss)"
            ),
            Violation::PrematureQuiescence { backlog } => write!(
                f,
                "quiescence declared with {backlog} runnable user messages still queued"
            ),
            Violation::Aborted { reason } => write!(f, "run aborted: {reason}"),
        }
    }
}

/// Whether the strict seed-ledger gate is active for this report:
/// either QD declared quiescence during the run (at declare time every
/// PE was idle with the reliable layer quiet, so the ledger must have
/// balanced then, and post-declare collect/exit constructs no chares),
/// or the end state is fully drained — no runnable user backlog and no
/// counted frames unacknowledged anywhere. Only then must the
/// spawn/create ledger balance exactly.
pub fn ledger_gate_active(rep: &CkReport) -> bool {
    rep.counter_total("qd_declares") > 0
        || (rep.counter_total("backlog_end") == 0 && rep.counter_total("rel_inflight_end") == 0)
}

/// Judge a finished run against every oracle. `want` is the fault-free
/// reference answer. Returns all violations found (empty = pass).
pub fn judge(sc: &Scenario, rep: &CkReport, want: Answer) -> Vec<Violation> {
    let mut out = Vec::new();
    // Structured completion, per backend: the simulator converts hangs
    // into `MaxEvents` aborts; the procs backend surfaces worker deaths
    // and watchdog expiry through its own abort reasons. Either way a
    // cut-short run fails this oracle and suppresses the dependent ones.
    let hung = if let Some(sim) = rep.sim.as_ref() {
        match sim.aborted {
            Some(AbortReason::MaxEvents { limit }) => {
                out.push(Violation::Hang { limit });
                true
            }
            None => false,
        }
    } else if let Some(proc) = rep.proc.as_ref() {
        match &proc.aborted {
            Some(reason) => {
                out.push(Violation::Aborted {
                    reason: reason.to_string(),
                });
                true
            }
            None => false,
        }
    } else {
        false
    };
    if !hung {
        match sc.app.extract(rep) {
            None => out.push(Violation::MissingAnswer),
            Some(got) if !want.matches(got) => out.push(Violation::WrongAnswer { want, got }),
            Some(_) => {}
        }
    }
    let spawned = rep.counter_total("seeds_spawned");
    let created = rep.counter_total("chares_created");
    if created > spawned {
        out.push(Violation::DuplicatedSeeds { spawned, created });
    }
    // The loss check needs the run to have actually drained; an aborted
    // run's shortfall is the hang's symptom, not a second bug.
    if !hung && created < spawned && ledger_gate_active(rep) {
        out.push(Violation::LostSeeds { spawned, created });
    }
    // `sim.quiesced` only covers the (rare) machine-level full stop;
    // apps that use QD end by notify → collect → exit, so the sound
    // signal that quiescence was *declared* is the qd_declares counter.
    if !hung && rep.counter_total("qd_declares") > 0 {
        let backlog = rep.counter_total("backlog_end");
        if backlog > 0 {
            out.push(Violation::PrematureQuiescence { backlog });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AppConfig, Scenario};
    use chare_kernel::prelude::*;
    use multicomputer::FaultPlan;

    fn clean_scenario() -> Scenario {
        Scenario {
            app: AppConfig::Nqueens { n: 7, grain: 4 },
            npes: 4,
            preset: MachinePreset::NcubeLike,
            queueing: QueueingStrategy::Fifo,
            balance: BalanceStrategy::acwn(),
            rel: None,
        }
    }

    #[test]
    fn a_clean_run_passes_every_oracle() {
        let sc = clean_scenario();
        let want = sc.reference().expect("reference");
        let rep = sc.run(&FaultPlan::new(1), 10_000_000);
        let v = judge(&sc, &rep, want);
        assert!(v.is_empty(), "violations: {v:?}");
        assert!(
            ledger_gate_active(&rep),
            "a fault-free quiesced run should end fully drained"
        );
    }

    #[test]
    fn wrong_reference_trips_the_answer_oracle() {
        let sc = clean_scenario();
        let rep = sc.run(&FaultPlan::new(1), 10_000_000);
        let v = judge(&sc, &rep, Answer::Int(41));
        assert!(
            v.iter()
                .any(|v| matches!(v, Violation::WrongAnswer { .. })),
            "violations: {v:?}"
        );
    }

    #[test]
    fn a_tiny_event_budget_reads_as_a_hang() {
        let sc = clean_scenario();
        let want = sc.reference().expect("reference");
        let rep = sc.run(&FaultPlan::new(1), 50);
        let v = judge(&sc, &rep, want);
        assert!(
            v.iter().any(|v| matches!(v, Violation::Hang { limit: 50 })),
            "violations: {v:?}"
        );
        // The hang suppresses the dependent oracles (answer, loss): an
        // interrupted run is one bug, not four.
        assert!(!v.iter().any(|v| matches!(v, Violation::LostSeeds { .. })));
        assert!(!v.iter().any(|v| matches!(v, Violation::MissingAnswer)));
    }

    #[test]
    fn an_unprotected_lossy_run_fails_structurally() {
        // Without the reliable layer a 10% drop rate loses counted
        // messages outright: QD can never balance sent against recv, so
        // the run must read as a hang (never a silent wrong answer that
        // goes unflagged).
        let sc = clean_scenario();
        let want = sc.reference().expect("reference");
        let storm = FaultPlan::new(0xDEAD).drop(0.10);
        let rep = sc.run(&storm, 2_000_000);
        let v = judge(&sc, &rep, want);
        assert!(!v.is_empty(), "an unprotected lossy run must fail an oracle");
    }
}
