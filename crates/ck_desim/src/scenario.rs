//! Randomized-but-replayable scenarios: which benchmark, on which
//! simulated machine, with which kernel strategies and reliable-layer
//! knobs.
//!
//! A [`Scenario`] is the *victim configuration* half of one campaign
//! run (the fault storm is the other half, see [`crate::storm`]). It is
//! fully described by a one-line spec string ([`Scenario::spec`] /
//! [`Scenario::parse`]) so failing runs can be replayed from a single
//! shell command and committed to the regression corpus as plain text.
//!
//! Scenarios are drawn from a [`FaultRng`] — the same deterministic
//! generator the fault layer uses — so a campaign seed expands into the
//! exact same scenario sequence on every machine, every time.

use chare_kernel::prelude::*;
use chare_kernel::CkReport;
use ck_apps::{fib, jacobi, jacobi_conv, mmr, nqueens, primes, quad, tablefill};
use multicomputer::{FaultPlan, FaultRng};

/// Convergence tolerance for the `jconv` app — fixed, because a looser
/// tolerance changes the iteration count (the app's *answer*) and the
/// spec string should carry every answer-relevant knob explicitly.
const CONV_EPS: f64 = 1e-3;

/// Leaf seed for the `mmr` app — fixed so the spec fragment stays two
/// numbers; the fragment carries every *shape* knob and the seed only
/// permutes digest values, never the protocol.
const MMR_SEED: u64 = 1;

/// Rows per block and base seed for the `tfill` app, fixed for the same
/// reason (rows scale work without changing the dependency structure).
const FILL_ROWS: u32 = 8;
/// Base seed for `tfill`.
const FILL_SEED: u64 = 1;

/// A comparable distillation of an app's result: exact for counts,
/// tolerant for floating-point accumulations whose addition order is
/// legitimately schedule-dependent (faults reorder message arrivals,
/// which reorders accumulator additions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Answer {
    /// An exact count (search totals, iteration counts).
    Int(u64),
    /// A floating-point accumulation, compared at 1e-9 relative.
    Float(f64),
}

impl Answer {
    /// Whether two answers agree (exact for `Int`, 1e-9 relative for
    /// `Float`).
    pub fn matches(self, other: Answer) -> bool {
        match (self, other) {
            (Answer::Int(a), Answer::Int(b)) => a == b,
            (Answer::Float(a), Answer::Float(b)) => {
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= 1e-9 * scale
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for Answer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Answer::Int(v) => write!(f, "{v}"),
            Answer::Float(v) => write!(f, "{v}"),
        }
    }
}

/// Which benchmark a run executes, with campaign-scale parameters
/// (small enough that one run takes milliseconds; a CI campaign does
/// hundreds of them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AppConfig {
    /// Recursive Fibonacci — ends by explicit `exit`, no global state,
    /// which makes it the one app in the crash-survivable envelope.
    Fib {
        /// Argument.
        n: u32,
        /// Sequential-evaluation threshold.
        grain: u32,
    },
    /// N-queens search — quiescence-terminated accumulator count.
    Nqueens {
        /// Board size.
        n: u8,
        /// Sequential threshold (remaining rows).
        grain: u8,
    },
    /// Prime counting over chunk chares.
    Primes {
        /// Count primes below this.
        limit: u64,
        /// Chunk chare count.
        chunks: u32,
    },
    /// Fixed-iteration Jacobi relaxation (BOC ghost exchange).
    Jacobi {
        /// Interior grid size.
        n: usize,
        /// Sweep count.
        iters: u32,
    },
    /// Convergence-tested Jacobi (phased protocol over the reliable
    /// layer's per-link FIFO guarantee).
    JacobiConv {
        /// Interior grid size.
        n: usize,
        /// Hard sweep cap.
        max_iters: u32,
    },
    /// Adaptive quadrature of the default integrand over `[0, 10]`.
    Quad {
        /// Grain width in thousandths (`grain = grain_milli / 1000`).
        grain_milli: u32,
    },
    /// Merkle-mountain-range build — table puts/gets, a write-once
    /// root, and a per-PE verification vote, all under fault storms.
    Mmr {
        /// Leaf count.
        leaves: u64,
        /// Leaves per table block (and per leaf-phase chare).
        grain: u64,
    },
    /// Pipelined multi-table fill — staged dependency windows through
    /// the distributed table with per-stage garbage collection.
    TableFill {
        /// Pipeline depth.
        stages: u32,
        /// Blocks per stage.
        blocks: u32,
        /// Dependency-window width.
        width: u32,
    },
}

impl AppConfig {
    /// Short app name (first token of the spec fragment, and the app
    /// component of the memoized-reference cache label).
    pub fn name(self) -> &'static str {
        match self {
            AppConfig::Fib { .. } => "fib",
            AppConfig::Nqueens { .. } => "nqueens",
            AppConfig::Primes { .. } => "primes",
            AppConfig::Jacobi { .. } => "jacobi",
            AppConfig::JacobiConv { .. } => "jconv",
            AppConfig::Quad { .. } => "quad",
            AppConfig::Mmr { .. } => "mmr",
            AppConfig::TableFill { .. } => "tfill",
        }
    }

    /// Spec fragment: `name:params`, e.g. `fib:16/9`.
    pub fn frag(self) -> String {
        match self {
            AppConfig::Fib { n, grain } => format!("fib:{n}/{grain}"),
            AppConfig::Nqueens { n, grain } => format!("nqueens:{n}/{grain}"),
            AppConfig::Primes { limit, chunks } => format!("primes:{limit}/{chunks}"),
            AppConfig::Jacobi { n, iters } => format!("jacobi:{n}/{iters}"),
            AppConfig::JacobiConv { n, max_iters } => format!("jconv:{n}/{max_iters}"),
            AppConfig::Quad { grain_milli } => format!("quad:{grain_milli}"),
            AppConfig::Mmr { leaves, grain } => format!("mmr:{leaves}/{grain}"),
            AppConfig::TableFill {
                stages,
                blocks,
                width,
            } => format!("tfill:{stages}/{blocks}/{width}"),
        }
    }

    /// Parse a [`AppConfig::frag`] fragment.
    pub fn parse(frag: &str) -> Result<AppConfig, String> {
        let (name, rest) = frag
            .split_once(':')
            .ok_or_else(|| format!("expected NAME:PARAMS, got '{frag}'"))?;
        fn two(rest: &str) -> Result<(u64, u64), String> {
            let (a, b) = rest
                .split_once('/')
                .ok_or_else(|| format!("expected A/B, got '{rest}'"))?;
            Ok((
                a.parse().map_err(|e| format!("bad number '{a}': {e}"))?,
                b.parse().map_err(|e| format!("bad number '{b}': {e}"))?,
            ))
        }
        Ok(match name {
            "fib" => {
                let (n, grain) = two(rest)?;
                AppConfig::Fib {
                    n: n as u32,
                    grain: grain as u32,
                }
            }
            "nqueens" => {
                let (n, grain) = two(rest)?;
                AppConfig::Nqueens {
                    n: n as u8,
                    grain: grain as u8,
                }
            }
            "primes" => {
                let (limit, chunks) = two(rest)?;
                AppConfig::Primes {
                    limit,
                    chunks: chunks as u32,
                }
            }
            "jacobi" => {
                let (n, iters) = two(rest)?;
                AppConfig::Jacobi {
                    n: n as usize,
                    iters: iters as u32,
                }
            }
            "jconv" => {
                let (n, max_iters) = two(rest)?;
                AppConfig::JacobiConv {
                    n: n as usize,
                    max_iters: max_iters as u32,
                }
            }
            "quad" => AppConfig::Quad {
                grain_milli: rest
                    .parse()
                    .map_err(|e| format!("bad number '{rest}': {e}"))?,
            },
            "mmr" => {
                let (leaves, grain) = two(rest)?;
                AppConfig::Mmr { leaves, grain }
            }
            "tfill" => {
                let parts: Vec<&str> = rest.split('/').collect();
                if parts.len() != 3 {
                    return Err(format!("expected STAGES/BLOCKS/WIDTH, got '{rest}'"));
                }
                AppConfig::TableFill {
                    stages: parts[0].parse().map_err(|e| format!("bad stages: {e}"))?,
                    blocks: parts[1].parse().map_err(|e| format!("bad blocks: {e}"))?,
                    width: parts[2].parse().map_err(|e| format!("bad width: {e}"))?,
                }
            }
            other => return Err(format!("unknown app '{other}'")),
        })
    }

    /// The `Debug` rendering of the app's parameter struct — the
    /// injective-label component the memoized runner requires.
    pub fn params_debug(self) -> String {
        match self {
            AppConfig::Fib { n, grain } => format!("{:?}", fib::FibParams { n, grain }),
            AppConfig::Nqueens { n, grain } => {
                format!("{:?}", nqueens::QueensParams { n, grain })
            }
            AppConfig::Primes { limit, chunks } => {
                format!("{:?}", primes::PrimesParams { limit, chunks })
            }
            AppConfig::Jacobi { n, iters } => format!("{:?}", jacobi::JacobiParams { n, iters }),
            AppConfig::JacobiConv { n, max_iters } => format!(
                "{:?}",
                jacobi_conv::ConvParams {
                    n,
                    eps: CONV_EPS,
                    max_iters,
                }
            ),
            AppConfig::Quad { grain_milli } => format!("{:?}", Self::quad_params(grain_milli)),
            AppConfig::Mmr { leaves, grain } => format!(
                "{:?}",
                mmr::MmrParams {
                    leaves,
                    grain,
                    seed: MMR_SEED,
                }
            ),
            AppConfig::TableFill {
                stages,
                blocks,
                width,
            } => format!("{:?}", Self::fill_params(stages, blocks, width)),
        }
    }

    fn fill_params(stages: u32, blocks: u32, width: u32) -> tablefill::FillParams {
        tablefill::FillParams {
            stages,
            blocks,
            rows: FILL_ROWS,
            width,
            seed: FILL_SEED,
        }
    }

    fn quad_params(grain_milli: u32) -> quad::QuadParams {
        quad::QuadParams {
            a: 0.0,
            b: 10.0,
            tol: 1e-6,
            grain: f64::from(grain_milli) / 1000.0,
        }
    }

    /// Build the program with the given strategies. `jconv` takes no
    /// strategy knobs (its build fixes them); scenarios pin the
    /// generated strategies for it so the spec stays truthful.
    pub fn build(self, queueing: QueueingStrategy, balance: &BalanceStrategy) -> Program {
        match self {
            AppConfig::Fib { n, grain } => {
                fib::build(fib::FibParams { n, grain }, queueing, balance.clone())
            }
            AppConfig::Nqueens { n, grain } => nqueens::build(
                nqueens::QueensParams { n, grain },
                queueing,
                balance.clone(),
            ),
            AppConfig::Primes { limit, chunks } => primes::build(
                primes::PrimesParams { limit, chunks },
                queueing,
                balance.clone(),
            ),
            AppConfig::Jacobi { n, iters } => jacobi::build(
                jacobi::JacobiParams { n, iters },
                queueing,
                balance.clone(),
            ),
            AppConfig::JacobiConv { n, max_iters } => jacobi_conv::build(jacobi_conv::ConvParams {
                n,
                eps: CONV_EPS,
                max_iters,
            }),
            AppConfig::Quad { grain_milli } => {
                quad::build(Self::quad_params(grain_milli), queueing, balance.clone())
            }
            AppConfig::Mmr { leaves, grain } => mmr::build(
                mmr::MmrParams {
                    leaves,
                    grain,
                    seed: MMR_SEED,
                },
                queueing,
                balance.clone(),
            ),
            AppConfig::TableFill {
                stages,
                blocks,
                width,
            } => tablefill::build(
                Self::fill_params(stages, blocks, width),
                queueing,
                balance.clone(),
            ),
        }
    }

    /// Extract the comparable answer from a finished report, without
    /// consuming it (reference reports are shared behind `Rc`).
    pub fn extract(self, rep: &CkReport) -> Option<Answer> {
        Some(match self {
            AppConfig::Fib { .. }
            | AppConfig::Nqueens { .. }
            | AppConfig::Primes { .. } => Answer::Int(*rep.result_ref::<u64>()?),
            AppConfig::Jacobi { .. } | AppConfig::Quad { .. } => {
                Answer::Float(*rep.result_ref::<f64>()?)
            }
            AppConfig::JacobiConv { .. } => {
                Answer::Int(rep.result_ref::<jacobi_conv::ConvResult>()?.iters as u64)
            }
            // Both hash-family answers are already order-independent
            // digests; fold the MMR root to one comparable word.
            AppConfig::Mmr { .. } => {
                Answer::Int(rep.result_ref::<mmr::MmrResult>()?.root.fold())
            }
            AppConfig::TableFill { .. } => {
                Answer::Int(rep.result_ref::<tablefill::FillResult>()?.digest)
            }
        })
    }
}

/// Reliable-delivery knobs a scenario runs with, in spec-friendly
/// units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelKnobs {
    /// Base retransmission timeout, microseconds.
    pub timeout_us: u64,
    /// Seed retry budget before redirect.
    pub retry: u32,
    /// Per-destination send window.
    pub window: u32,
}

impl RelKnobs {
    /// The kernel-facing config (validated at program construction).
    pub fn to_config(self) -> ReliableConfig {
        ReliableConfig {
            timeout: Cost::micros(self.timeout_us),
            seed_retry_limit: self.retry,
            window: self.window,
        }
    }
}

/// One campaign run's victim configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Benchmark and parameters.
    pub app: AppConfig,
    /// Simulated machine size.
    pub npes: usize,
    /// Machine cost preset (also fixes the topology).
    pub preset: MachinePreset,
    /// Scheduler queueing strategy.
    pub queueing: QueueingStrategy,
    /// Dynamic load-balancing strategy.
    pub balance: BalanceStrategy,
    /// Reliable-layer knobs; `None` runs unprotected (only storm-free
    /// or deliberately-failing runs survive that).
    pub rel: Option<RelKnobs>,
}

fn preset_str(p: MachinePreset) -> &'static str {
    match p {
        MachinePreset::NcubeLike => "ncube",
        MachinePreset::IpscLike => "ipsc",
        MachinePreset::SharedBusLike => "bus",
        MachinePreset::Ideal => "ideal",
    }
}

fn queueing_str(q: QueueingStrategy) -> &'static str {
    match q {
        QueueingStrategy::Fifo => "fifo",
        QueueingStrategy::Lifo => "lifo",
        QueueingStrategy::IntPriority => "int",
        QueueingStrategy::BitvecPriority => "bitvec",
    }
}

fn balance_frag(b: &BalanceStrategy) -> String {
    match b {
        BalanceStrategy::Local => "local".into(),
        BalanceStrategy::Random => "random".into(),
        BalanceStrategy::CentralManager => "central".into(),
        BalanceStrategy::TokenIdle => "token".into(),
        BalanceStrategy::Acwn { max_hops, low_mark } => format!("acwn:{max_hops}/{low_mark}"),
    }
}

impl Scenario {
    /// One-line spec, parseable by [`Scenario::parse`]. Example:
    /// `app=nqueens:8/4 npes=8 preset=ncube q=fifo b=acwn:4/2 rel=800/3/16`.
    pub fn spec(&self) -> String {
        let rel = match self.rel {
            Some(k) => format!("{}/{}/{}", k.timeout_us, k.retry, k.window),
            None => "none".into(),
        };
        format!(
            "app={} npes={} preset={} q={} b={} rel={rel}",
            self.app.frag(),
            self.npes,
            preset_str(self.preset),
            queueing_str(self.queueing),
            balance_frag(&self.balance),
        )
    }

    /// Parse a spec produced by [`Scenario::spec`]. Tokens may appear
    /// in any order; all six are required.
    pub fn parse(spec: &str) -> Result<Scenario, String> {
        let (mut app, mut npes, mut preset, mut queueing, mut balance, mut rel) =
            (None, None, None, None, None, None);
        for tok in spec.split_whitespace() {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected KEY=VALUE, got '{tok}'"))?;
            match key {
                "app" => app = Some(AppConfig::parse(val)?),
                "npes" => {
                    npes = Some(
                        val.parse::<usize>()
                            .map_err(|e| format!("bad npes '{val}': {e}"))?,
                    )
                }
                "preset" => {
                    preset = Some(match val {
                        "ncube" => MachinePreset::NcubeLike,
                        "ipsc" => MachinePreset::IpscLike,
                        "bus" => MachinePreset::SharedBusLike,
                        "ideal" => MachinePreset::Ideal,
                        other => return Err(format!("unknown preset '{other}'")),
                    })
                }
                "q" => {
                    queueing = Some(match val {
                        "fifo" => QueueingStrategy::Fifo,
                        "lifo" => QueueingStrategy::Lifo,
                        "int" => QueueingStrategy::IntPriority,
                        "bitvec" => QueueingStrategy::BitvecPriority,
                        other => return Err(format!("unknown queueing '{other}'")),
                    })
                }
                "b" => {
                    balance = Some(match val.split_once(':') {
                        None => match val {
                            "local" => BalanceStrategy::Local,
                            "random" => BalanceStrategy::Random,
                            "central" => BalanceStrategy::CentralManager,
                            "token" => BalanceStrategy::TokenIdle,
                            other => return Err(format!("unknown balance '{other}'")),
                        },
                        Some(("acwn", params)) => {
                            let (h, l) = params
                                .split_once('/')
                                .ok_or_else(|| format!("expected acwn:H/L, got '{val}'"))?;
                            BalanceStrategy::Acwn {
                                max_hops: h.parse().map_err(|e| format!("bad hops: {e}"))?,
                                low_mark: l.parse().map_err(|e| format!("bad low mark: {e}"))?,
                            }
                        }
                        Some((other, _)) => return Err(format!("unknown balance '{other}'")),
                    })
                }
                "rel" => {
                    rel = Some(if val == "none" {
                        None
                    } else {
                        let parts: Vec<&str> = val.split('/').collect();
                        if parts.len() != 3 {
                            return Err(format!("expected rel=TIMEOUT_US/RETRY/WINDOW, got '{val}'"));
                        }
                        Some(RelKnobs {
                            timeout_us: parts[0]
                                .parse()
                                .map_err(|e| format!("bad timeout: {e}"))?,
                            retry: parts[1].parse().map_err(|e| format!("bad retry: {e}"))?,
                            window: parts[2].parse().map_err(|e| format!("bad window: {e}"))?,
                        })
                    })
                }
                other => return Err(format!("unknown scenario token '{other}'")),
            }
        }
        Ok(Scenario {
            app: app.ok_or("missing app=")?,
            npes: npes.ok_or("missing npes=")?,
            preset: preset.ok_or("missing preset=")?,
            queueing: queueing.ok_or("missing q=")?,
            balance: balance.ok_or("missing b=")?,
            rel: rel.ok_or("missing rel=")?,
        })
    }

    /// Whether this scenario tolerates a PE crash. Crashing destroys
    /// whatever state lived on the PE; only `fib` (stateless recursion
    /// ending by explicit exit, no BOC or accumulator residency) under
    /// `Random` placement, protected by the reliable layer, is in the
    /// recovery envelope the kernel guarantees — matching the
    /// `seeds_outrun_a_crashed_pe` acceptance test.
    pub fn crash_survivable(&self) -> bool {
        matches!(self.app, AppConfig::Fib { .. })
            && self.balance == BalanceStrategy::Random
            && self.rel.is_some()
    }

    /// The fault-free reference answer, memoized through the bench
    /// runner (identical scenarios across a campaign are simulated
    /// once). The reference runs *without* the reliable layer: the
    /// zero-cost-off property says answers are unaffected, and it keeps
    /// the reference cache shared with the bench tables.
    pub fn reference(&self) -> Option<Answer> {
        let label = ck_bench::runner::scenario_label(
            self.app.name(),
            &self.app.params_debug(),
            self.queueing,
            &self.balance,
            false,
        );
        let rep = ck_bench::runner::run_preset(&label, self.npes, self.preset, || {
            self.app.build(self.queueing, &self.balance)
        });
        self.app.extract(&rep)
    }

    /// Run this scenario under a fault storm, converting hangs into
    /// structured `MaxEvents` aborts at `max_events`.
    pub fn run(&self, storm: &FaultPlan, max_events: u64) -> CkReport {
        let mut prog = self.app.build(self.queueing, &self.balance);
        if let Some(knobs) = self.rel {
            prog = prog.with_reliable(knobs.to_config());
        }
        // Streaming metrics ride along on every campaign run: bounded
        // memory, zero perturbation (the simulation is byte-identical
        // with them off), and on failure the flight recorder and final
        // snapshot become the forensics attached to the repro report.
        let prog = prog.with_metrics(MetricsConfig::default());
        let cfg = SimConfig::preset(self.npes, self.preset)
            .with_faults(storm.clone())
            .with_max_events(max_events);
        prog.run_sim(cfg)
    }
}

/// Draw a scenario from the campaign stream. Roughly one run in eight
/// is a crash scenario (pinned to the crash-survivable envelope); the
/// rest sweep apps × machine sizes × presets × strategies × reliable
/// knobs.
pub fn generate(rng: &mut FaultRng) -> Scenario {
    let crashy = rng.chance(0.125);
    let npes = [4usize, 8, 16][rng.below(3) as usize];
    let preset = [
        MachinePreset::NcubeLike,
        MachinePreset::IpscLike,
        MachinePreset::SharedBusLike,
    ][rng.below(3) as usize];
    if crashy {
        // Aggressive-but-proven recovery knobs (short timeout, small
        // retry budget) so redirects land within a short simulated run.
        return Scenario {
            app: AppConfig::Fib {
                n: 14 + rng.below(5) as u32,
                grain: 8 + rng.below(3) as u32,
            },
            npes,
            preset,
            queueing: QueueingStrategy::Fifo,
            balance: BalanceStrategy::Random,
            rel: Some(RelKnobs {
                timeout_us: 500,
                retry: 2,
                window: [8, 16, 32][rng.below(3) as usize],
            }),
        };
    }
    let app = match rng.below(8) {
        0 => AppConfig::Fib {
            n: 14 + rng.below(5) as u32,
            grain: 8 + rng.below(3) as u32,
        },
        1 => AppConfig::Nqueens {
            n: 7 + rng.below(2) as u8,
            grain: 4,
        },
        2 => AppConfig::Primes {
            limit: [1_500, 2_000, 3_000][rng.below(3) as usize],
            chunks: [6, 8, 12][rng.below(3) as usize],
        },
        3 => AppConfig::Jacobi {
            n: [16, 24][rng.below(2) as usize],
            iters: [4, 6][rng.below(2) as usize],
        },
        4 => AppConfig::JacobiConv {
            n: 16,
            max_iters: [100, 200][rng.below(2) as usize],
        },
        5 => AppConfig::Quad {
            grain_milli: [200, 300, 500][rng.below(3) as usize],
        },
        6 => AppConfig::Mmr {
            leaves: [40, 64, 90][rng.below(3) as usize],
            grain: [4, 8][rng.below(2) as usize],
        },
        _ => AppConfig::TableFill {
            stages: [2, 3][rng.below(2) as usize],
            blocks: [4, 6][rng.below(2) as usize],
            width: [1, 2][rng.below(2) as usize],
        },
    };
    // jconv's build fixes its strategies; pin them in the scenario so
    // the spec matches what actually runs. Both Jacobi variants are
    // pinned to FIFO queueing: their phased ghost exchange is
    // processing-order-sensitive, and LIFO scheduling of fault-delayed
    // ghost rows mixes sweep generations into a (legitimately
    // different) chaotic relaxation — an out-of-envelope scenario, not
    // a kernel bug.
    let queueing = match app {
        AppConfig::Jacobi { .. } | AppConfig::JacobiConv { .. } => QueueingStrategy::Fifo,
        // The hash-family apps attach bitvector priorities to every
        // send; give the priority ready-queue fault coverage too.
        AppConfig::Mmr { .. } | AppConfig::TableFill { .. } => [
            QueueingStrategy::Fifo,
            QueueingStrategy::Lifo,
            QueueingStrategy::BitvecPriority,
        ][rng.below(3) as usize],
        _ => [QueueingStrategy::Fifo, QueueingStrategy::Lifo][rng.below(2) as usize],
    };
    let balance = if matches!(app, AppConfig::JacobiConv { .. }) {
        BalanceStrategy::acwn()
    } else {
        match rng.below(4) {
            0 => BalanceStrategy::acwn(),
            1 => BalanceStrategy::Random,
            2 => BalanceStrategy::TokenIdle,
            _ => BalanceStrategy::CentralManager,
        }
    };
    Scenario {
        app,
        npes,
        preset,
        queueing,
        balance,
        rel: Some(RelKnobs {
            timeout_us: [300, 500, 800, 1_200, 2_000][rng.below(5) as usize],
            retry: 2 + rng.below(4) as u32,
            window: [4, 8, 16, 32][rng.below(4) as usize],
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_roundtrip() {
        let mut rng = FaultRng::new(0xC0FFEE);
        for _ in 0..200 {
            let sc = generate(&mut rng);
            let spec = sc.spec();
            let back = Scenario::parse(&spec).expect("generated specs parse");
            assert_eq!(back, sc, "spec: {spec}");
            assert_eq!(back.spec(), spec);
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "app=fib:14/8",                                              // missing fields
            "app=warp:1/2 npes=4 preset=ncube q=fifo b=local rel=none",  // unknown app
            "app=fib:14/8 npes=4 preset=vax q=fifo b=local rel=none",    // unknown preset
            "app=fib:14/8 npes=4 preset=ncube q=gpu b=local rel=none",   // unknown queueing
            "app=fib:14/8 npes=4 preset=ncube q=fifo b=magic rel=none",  // unknown balance
            "app=fib:14/8 npes=4 preset=ncube q=fifo b=local rel=1/2",   // short rel
            "app=tfill:2/4 npes=4 preset=ncube q=fifo b=local rel=none", // short tfill
            "app=fib:14/8 npes=x preset=ncube q=fifo b=local rel=none",  // bad number
            "whatever",                                                  // no key=value
        ] {
            assert!(Scenario::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a: Vec<String> = {
            let mut rng = FaultRng::new(7);
            (0..50).map(|_| generate(&mut rng).spec()).collect()
        };
        let b: Vec<String> = {
            let mut rng = FaultRng::new(7);
            (0..50).map(|_| generate(&mut rng).spec()).collect()
        };
        let c: Vec<String> = {
            let mut rng = FaultRng::new(8);
            (0..50).map(|_| generate(&mut rng).spec()).collect()
        };
        assert_eq!(a, b, "same seed, same scenarios");
        assert_ne!(a, c, "different seed, different scenarios");
    }

    #[test]
    fn crash_scenarios_stay_in_the_survivable_envelope() {
        let mut rng = FaultRng::new(11);
        let mut crashy = 0;
        for _ in 0..400 {
            let sc = generate(&mut rng);
            if sc.balance == BalanceStrategy::Random
                && matches!(sc.app, AppConfig::Fib { .. })
            {
                crashy += 1;
                assert!(sc.crash_survivable());
            }
        }
        assert!(crashy > 10, "crash scenarios should appear (~1/8)");
    }

    #[test]
    fn reference_answers_are_stable_and_extractable() {
        let sc = Scenario {
            app: AppConfig::Nqueens { n: 7, grain: 4 },
            npes: 4,
            preset: MachinePreset::NcubeLike,
            queueing: QueueingStrategy::Fifo,
            balance: BalanceStrategy::acwn(),
            rel: None,
        };
        let a = sc.reference().expect("reference answer");
        let b = sc.reference().expect("reference answer");
        assert_eq!(a, b);
        assert_eq!(a, Answer::Int(40), "7-queens has 40 solutions");
    }
}
