//! # ck_desim — deterministic simulation-testing for the Chare Kernel
//!
//! FoundationDB-style simulation testing over the repo's deterministic
//! discrete-event multicomputer: one *campaign seed* expands into
//! hundreds of randomized (scenario × fault storm) runs, each checked
//! against oracles that know what a correct message-driven kernel must
//! preserve under faults, with automatic storm minimization and a
//! committed regression corpus for everything ever found.
//!
//! The pipeline, seed to verdict:
//!
//! 1. [`campaign::run_seed`] mixes the campaign seed with a run index;
//! 2. [`scenario::generate`] draws the victim configuration — app ×
//!    PE count × machine preset × strategies × reliable-layer knobs;
//! 3. [`storm::generate`] draws a fault storm inside the survivable
//!    envelope (drop/dup/delay rates, bounded outages and stalls,
//!    crashes only where recovery is guaranteed);
//! 4. the run executes on the simulator with an event budget that
//!    converts hangs into structured aborts;
//! 5. [`oracle::judge`] compares against the memoized fault-free
//!    reference and the kernel's exactly-once seed ledger and
//!    quiescence-soundness counters;
//! 6. on failure, [`minimize::minimize`] shrinks the storm while the
//!    failure persists and emits a one-line repro;
//! 7. fixed failures join the corpus ([`corpus`]) and are replayed by
//!    tier-1 CI forever.
//!
//! Every step is a pure function of the seed: the same campaign seed
//! produces the same scenarios, storms and verdicts anywhere, which is
//! what makes a randomized campaign *regressable*.
//!
//! The same scenario stream also feeds a *procs slice* ([`procs`]):
//! scenarios replayed as real OS processes over sockets, faulted by the
//! backend's deterministic loss shim instead of a simulator storm, and
//! judged by the unchanged oracle battery.

pub mod campaign;
pub mod corpus;
pub mod forensics;
pub mod minimize;
pub mod oracle;
pub mod procs;
pub mod scenario;
pub mod storm;

pub use campaign::{
    make_run, run_campaign, run_one, CampaignConfig, CampaignSummary, RunRecord,
    DEFAULT_MAX_EVENTS,
};
pub use corpus::CorpusEntry;
pub use minimize::{minimize, Minimized};
pub use oracle::{judge, ledger_gate_active, Violation};
pub use scenario::{Answer, AppConfig, RelKnobs, Scenario};
