//! Storm minimization: shrink a failing fault plan while the failure
//! persists.
//!
//! A campaign failure arrives as a storm with up to six active fault
//! classes, several scheduled windows and three probability knobs —
//! far more than the bug needs. The minimizer greedily reduces it in
//! four phases, re-running the scenario after every candidate
//! reduction and keeping only reductions under which *some* oracle
//! still fails:
//!
//! 1. **class elimination** — drop whole fault classes
//!    ([`FaultPlan::without`]) to a fixed point;
//! 2. **item elimination** — drop individual scheduled events
//!    (`out=`/`stall=`/`crash=` spec tokens) to a fixed point;
//! 3. **rate halving** — halve `drop`/`dup`/`delay` probabilities
//!    while the failure persists;
//! 4. **window narrowing** — halve the length of remaining
//!    outage/stall windows while the failure persists.
//!
//! Phases 2–4 operate on the plan's canonical *spec string* (drop a
//! token, rewrite a value, re-parse): the spec grammar is the plan's
//! single source of truth, so the minimizer needs no private access to
//! plan internals — and every intermediate candidate is by construction
//! expressible as a replayable one-liner.
//!
//! Each probe is individually deterministic (a plan replays from its
//! spec), but probes are *not* pointwise comparable to the original
//! run: disabled classes still consume their per-packet draw, while
//! dropped packets early-out and firing delays draw an extra word, so
//! reducing a plan shifts the shared decision stream. Greedy
//! keep-if-still-failing search is exactly the discipline that remains
//! sound under that model.

use multicomputer::FaultPlan;

use crate::campaign;
use crate::scenario::Scenario;

/// Result of a minimization.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The reduced storm (equal to the input when `still_fails` is
    /// false).
    pub storm: FaultPlan,
    /// Simulator probes spent.
    pub probes: u32,
    /// Whether the input storm failed at all (and therefore the output
    /// still does).
    pub still_fails: bool,
}

fn rewrite(tokens: &[String]) -> FaultPlan {
    FaultPlan::parse(&tokens.join(" ")).expect("minimizer candidates stay within the spec grammar")
}

/// Halve the probability of a `drop=`/`dup=`/`delay=` token; `None`
/// when the token is absent or already negligible.
fn halve_rate(plan: &FaultPlan, key: &str) -> Option<FaultPlan> {
    let mut tokens: Vec<String> = plan.spec().split_whitespace().map(String::from).collect();
    let prefix = format!("{key}=");
    let tok = tokens.iter_mut().find(|t| t.starts_with(&prefix))?;
    let val = &tok[prefix.len()..];
    let (p_str, suffix) = match val.split_once('/') {
        Some((p, rest)) => (p, format!("/{rest}")),
        None => (val, String::new()),
    };
    let p: f64 = p_str.parse().ok()?;
    if p < 0.002 {
        return None;
    }
    *tok = format!("{prefix}{}{suffix}", p / 2.0);
    Some(rewrite(&tokens))
}

/// Halve the window length of the `i`-th token if it is an
/// `out=`/`stall=` window; `None` when it is not, or the window is
/// already minimal.
fn narrow_window(tokens: &[String], i: usize) -> Option<FaultPlan> {
    let tok = &tokens[i];
    if !(tok.starts_with("out=") || tok.starts_with("stall=")) {
        return None;
    }
    let (head, span) = tok.rsplit_once('@')?;
    let (start, end) = span.split_once('-')?;
    let (start, end): (u64, u64) = (start.parse().ok()?, end.parse().ok()?);
    let len = end - start;
    if len < 2 {
        return None;
    }
    let mut reduced = tokens.to_vec();
    reduced[i] = format!("{head}@{start}-{}", start + len / 2);
    Some(rewrite(&reduced))
}

/// Minimize `storm` against `sc`: greedily shrink while at least one
/// oracle still fails. Deterministic — same inputs, same output, same
/// probe count.
pub fn minimize(sc: &Scenario, storm: &FaultPlan, max_events: u64) -> Minimized {
    let mut probes = 0u32;
    let mut fails = |plan: &FaultPlan| {
        probes += 1;
        !campaign::execute(0, sc.clone(), plan.clone(), max_events)
            .violations
            .is_empty()
    };
    let mut plan = storm.clone();
    if !fails(&plan) {
        return Minimized {
            storm: plan,
            probes,
            still_fails: false,
        };
    }
    // Phase 1: whole-class elimination to a fixed point.
    loop {
        let mut changed = false;
        for class in plan.classes() {
            let candidate = plan.without(class);
            if fails(&candidate) {
                plan = candidate;
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
    }
    // Phase 2: drop individual scheduled events.
    loop {
        let mut changed = false;
        let tokens: Vec<String> = plan.spec().split_whitespace().map(String::from).collect();
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if !(t.starts_with("out=") || t.starts_with("stall=") || t.starts_with("crash=")) {
                continue;
            }
            let mut reduced = tokens.clone();
            reduced.remove(i);
            let candidate = rewrite(&reduced);
            if fails(&candidate) {
                plan = candidate;
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
    }
    // Phase 3: halve surviving probabilistic rates.
    for key in ["drop", "dup", "delay"] {
        for _ in 0..6 {
            let Some(candidate) = halve_rate(&plan, key) else {
                break;
            };
            if fails(&candidate) {
                plan = candidate;
            } else {
                break;
            }
        }
    }
    // Phase 4: narrow surviving scheduled windows.
    loop {
        let mut changed = false;
        let tokens: Vec<String> = plan.spec().split_whitespace().map(String::from).collect();
        for i in 0..tokens.len() {
            if let Some(candidate) = narrow_window(&tokens, i) {
                if fails(&candidate) {
                    plan = candidate;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Minimized {
        storm: plan,
        probes,
        still_fails: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multicomputer::Cost;

    #[test]
    fn halve_rate_rewrites_only_its_key() {
        let plan = FaultPlan::new(5).drop(0.1).delay(0.08, Cost::micros(100));
        let halved = halve_rate(&plan, "drop").expect("drop present");
        assert!(halved.spec().contains("drop=0.05"), "{}", halved.spec());
        assert!(halved.spec().contains("delay=0.08/"), "{}", halved.spec());
        assert!(halve_rate(&plan, "dup").is_none(), "dup absent");
    }

    #[test]
    fn narrow_window_halves_the_span() {
        let tokens: Vec<String> = "seed=0x5 out=0>1@100-900"
            .split_whitespace()
            .map(String::from)
            .collect();
        let narrowed = narrow_window(&tokens, 1).expect("window token");
        assert!(
            narrowed.spec().contains("out=0>1@100-500"),
            "{}",
            narrowed.spec()
        );
        assert!(narrow_window(&tokens, 0).is_none(), "seed is not a window");
    }
}
