//! The regression-seed corpus: failures that were found, minimized and
//! fixed, committed as plain-text entries and replayed forever.
//!
//! An entry is a small text file (committed under `tests/desim_corpus/`
//! at the repo root) of `key = value` lines:
//!
//! ```text
//! # minimized from campaign seed 0x2A run 137 (lost-seed ledger)
//! scenario = app=fib:16/9 npes=8 preset=ncube q=fifo b=random rel=500/2/16
//! storm = seed=0xBEEF drop=0.05 crash=3@0
//! expect = pass
//! ```
//!
//! `expect = pass` is the only verdict: the corpus records storms that
//! *used to* break the kernel; replaying them green is the regression
//! guarantee. Comments (for provenance) and blank lines are ignored.

use std::fs;
use std::path::Path;

use multicomputer::FaultPlan;

use crate::campaign::{self, RunRecord};
use crate::scenario::Scenario;

/// One parsed corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The victim configuration.
    pub scenario: Scenario,
    /// The (typically minimized) storm.
    pub storm: FaultPlan,
}

/// Render an entry to file text. `comment` lines (may be empty) record
/// provenance — where the storm was found and what it used to break.
pub fn format_entry(entry: &CorpusEntry, comment: &str) -> String {
    let mut out = String::new();
    for line in comment.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&format!("scenario = {}\n", entry.scenario.spec()));
    out.push_str(&format!("storm = {}\n", entry.storm.spec()));
    out.push_str("expect = pass\n");
    out
}

/// Parse entry text (the inverse of [`format_entry`]).
pub fn parse_entry(text: &str) -> Result<CorpusEntry, String> {
    let (mut scenario, mut storm, mut expect) = (None, None, None);
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, val) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected KEY = VALUE", lineno + 1))?;
        match key.trim() {
            "scenario" => scenario = Some(Scenario::parse(val.trim())?),
            "storm" => storm = Some(FaultPlan::parse(val.trim())?),
            "expect" => {
                let v = val.trim();
                if v != "pass" {
                    return Err(format!("line {}: only 'expect = pass' is supported", lineno + 1));
                }
                expect = Some(());
            }
            other => return Err(format!("line {}: unknown key '{other}'", lineno + 1)),
        }
    }
    expect.ok_or("missing 'expect = pass'")?;
    Ok(CorpusEntry {
        scenario: scenario.ok_or("missing 'scenario ='")?,
        storm: storm.ok_or("missing 'storm ='")?,
    })
}

/// Load every `*.desim` entry in `dir`, sorted by file name for
/// deterministic replay order. Each element carries the file stem and
/// the parse result (a malformed entry should fail the replay loudly,
/// not vanish).
pub fn load_dir(dir: &Path) -> std::io::Result<Vec<(String, Result<CorpusEntry, String>)>> {
    let mut names: Vec<_> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "desim"))
        .collect();
    names.sort();
    let mut out = Vec::new();
    for path in names {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let entry = match fs::read_to_string(&path) {
            Ok(text) => parse_entry(&text),
            Err(e) => Err(format!("read {}: {e}", path.display())),
        };
        out.push((name, entry));
    }
    Ok(out)
}

/// Replay one corpus entry; the record's violations must be empty for
/// the regression to be considered still fixed.
pub fn replay(entry: &CorpusEntry, max_events: u64) -> RunRecord {
    campaign::execute(0, entry.scenario.clone(), entry.storm.clone(), max_events)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# provenance comment
scenario = app=fib:16/9 npes=8 preset=ncube q=fifo b=random rel=500/2/16
storm = seed=0xBEEF drop=0.05 crash=3@0
expect = pass
";

    #[test]
    fn entries_roundtrip() {
        let entry = parse_entry(SAMPLE).expect("sample parses");
        let text = format_entry(&entry, "provenance comment");
        let back = parse_entry(&text).expect("formatted entry parses");
        assert_eq!(back.scenario, entry.scenario);
        assert_eq!(back.storm.spec(), entry.storm.spec());
    }

    #[test]
    fn malformed_entries_are_rejected() {
        for bad in [
            "",
            "scenario = app=fib:16/9 npes=8 preset=ncube q=fifo b=random rel=none",
            "storm = seed=0x1\nexpect = pass",
            "scenario = nonsense\nstorm = seed=0x1\nexpect = pass",
            "scenario = app=fib:16/9 npes=8 preset=ncube q=fifo b=random rel=none\nstorm = seed=0x1\nexpect = fail",
        ] {
            assert!(parse_entry(bad).is_err(), "accepted: {bad:?}");
        }
    }
}
