//! Failure forensics: what the machine was doing when the oracle fired.
//!
//! Every campaign run carries the kernel's streaming metrics (bounded
//! memory, zero perturbation), so a failing run has two artifacts "for
//! free": the **flight recorder** — each PE's ring of most recent
//! structured events — and the **final metrics snapshot** — per-PE busy
//! time, traffic, seed decisions, retransmits and queue high-watermark.
//! This module renders both as the indented lines `report_failure`
//! appends after the violation and repro lines, turning "run 77
//! regressed" into something a human can start debugging without
//! replaying anything.

use chare_kernel::metrics::{flight_line, MetricsLog};
use chare_kernel::CkReport;

/// Flight-recorder events shown in a failure report (machine-wide,
/// newest last).
const FLIGHT_TAIL: usize = 40;

/// Render the forensics block for one failing run: flight-recorder
/// tail first (the "what just happened"), then the per-PE snapshot
/// (the "where the run's effort went"). Empty when the run carried no
/// metrics (feature compiled out).
pub fn render(rep: &CkReport) -> Vec<String> {
    let Some(log) = rep.metrics.as_ref() else {
        return Vec::new();
    };
    let mut lines = Vec::new();
    render_flight(log, &mut lines);
    render_snapshot(log, &mut lines);
    lines
}

fn render_flight(log: &MetricsLog, lines: &mut Vec<String>) {
    let tail = log.flight_tail(FLIGHT_TAIL);
    let dropped = log.flight_dropped();
    if tail.is_empty() {
        lines.push("  flight recorder: empty (no events recorded)".to_string());
        return;
    }
    lines.push(format!(
        "  flight recorder (last {} events machine-wide{}):",
        tail.len(),
        if dropped > 0 {
            format!(", {dropped} older overwritten")
        } else {
            String::new()
        }
    ));
    for ev in &tail {
        lines.push(format!("    {}", flight_line(ev)));
    }
}

fn render_snapshot(log: &MetricsLog, lines: &mut Vec<String>) {
    lines.push(format!(
        "  metrics snapshot ({} PEs, {:.3} ms simulated):",
        log.npes,
        log.end_ns as f64 / 1e6
    ));
    for pe in &log.per_pe {
        let mut busy = 0u64;
        let mut sent = 0u64;
        let mut recv = 0u64;
        let mut kept = 0u64;
        let mut fwd = 0u64;
        let mut rxmit = 0u64;
        for s in &pe.slices {
            busy += s.busy_ns();
            sent += s.msgs_sent;
            recv += s.msgs_recv;
            kept += s.seeds_kept;
            fwd += s.seeds_forwarded;
            rxmit += s.retransmits;
        }
        let util = busy as f64 / log.end_ns.max(1) as f64 * 100.0;
        lines.push(format!(
            "    PE {:<3} busy {:>5.1}%  sent {:>6}  recv {:>6}  seeds {kept}+{fwd}fwd  \
             rxmit {rxmit}  queue hwm {}",
            pe.pe.index(),
            util.min(100.0),
            sent,
            recv,
            pe.queue_hwm,
        ));
    }
    let lat = log.latency_all();
    let grain = log.grain_all();
    lines.push(format!(
        "    latency p50 <= {:.1} us, p99 <= {:.1} us ({} deliveries); \
         grain p50 <= {:.1} us ({} entries)",
        lat.quantile_bound(0.5) as f64 / 1e3,
        lat.quantile_bound(0.99) as f64 / 1e3,
        lat.count,
        grain.quantile_bound(0.5) as f64 / 1e3,
        grain.count,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use multicomputer::FaultPlan;

    #[test]
    fn failing_style_run_renders_forensics() {
        // Any metered run renders; use a small clean scenario.
        let sc = Scenario::parse(
            "app=fib:12/8 npes=4 preset=ncube q=fifo b=acwn:4/2 rel=none",
        )
        .unwrap();
        let rep = sc.run(&FaultPlan::new(0), 10_000_000);
        let lines = render(&rep);
        assert!(
            lines.iter().any(|l| l.contains("flight recorder")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.contains("metrics snapshot (4 PEs")),
            "{lines:?}"
        );
        // One snapshot line per PE.
        assert_eq!(lines.iter().filter(|l| l.contains("busy ")).count(), 4);
        assert!(lines.iter().any(|l| l.contains("latency p50")));
    }

    #[test]
    fn report_without_metrics_renders_nothing() {
        // A bare program run without .with_metrics() carries no log.
        let rep = ck_apps::fib::build_default(ck_apps::fib::FibParams { n: 10, grain: 6 })
            .run_sim_preset(4, multicomputer::MachinePreset::NcubeLike);
        assert!(render(&rep).is_empty());
    }
}
