//! The README's fault-injection example, runnable — and, with flags,
//! a one-command replay harness for anything the desim campaign finds.
//!
//! ```text
//! # the showcase demo: nqueens on a lossy stalling machine, then fib
//! # with a PE crashed at boot
//! cargo run --release -p ck_desim --example faulty_run
//!
//! # same demo under a different storm seed
//! cargo run --release -p ck_desim --example faulty_run -- --seed 0xFEED
//!
//! # replay a campaign failure verbatim (specs from the FAIL line),
//! # judging it with the campaign's own oracles
//! cargo run --release -p ck_desim --example faulty_run -- \
//!     --scenario 'app=nqueens:8/4 npes=16 preset=ncube q=fifo b=token rel=800/3/16' \
//!     --storm 'seed=0xBEEF drop=0.05 stall=5@500000-2000000' --minimize
//! ```

use chare_kernel::prelude::*;
use ck_apps::{fib, nqueens};
use ck_desim::{campaign, minimize, Scenario};
use multicomputer::SimTime;

struct Args {
    seed: u64,
    scenario: Option<String>,
    storm: Option<String>,
    minimize: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 0xBAD_5EED,
        scenario: None,
        storm: None,
        minimize: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--seed" => {
                let v = val();
                args.seed = v
                    .strip_prefix("0x")
                    .map(|h| u64::from_str_radix(h, 16))
                    .unwrap_or_else(|| v.parse())
                    .expect("--seed takes a decimal or 0x-hex integer");
            }
            "--scenario" => args.scenario = Some(val()),
            "--storm" => args.storm = Some(val()),
            "--minimize" => args.minimize = true,
            other => panic!("unknown flag '{other}' (try --seed/--scenario/--storm/--minimize)"),
        }
    }
    args
}

/// Replay an explicit (scenario, storm) pair under the campaign's
/// oracles; optionally minimize a failing storm.
fn replay(args: &Args) {
    let sc = args
        .scenario
        .as_deref()
        .map(|s| Scenario::parse(s).expect("valid --scenario spec"))
        .unwrap_or_else(|| {
            Scenario::parse("app=nqueens:8/4 npes=16 preset=ncube q=fifo b=local rel=800/3/16")
                .unwrap()
        });
    let storm = match args.storm.as_deref() {
        Some(spec) => FaultPlan::parse(spec).expect("valid --storm spec"),
        None => FaultPlan::new(args.seed)
            .drop(0.05)
            .duplicate(0.02)
            .delay(0.05, Cost::micros(200)),
    };
    let rec = campaign::execute(0, sc, storm, campaign::DEFAULT_MAX_EVENTS);
    println!("scenario: {}", rec.scenario.spec());
    println!("storm:    {}", rec.storm.spec());
    println!("reference answer: {}", rec.reference);
    if rec.passed() {
        println!("verdict: pass ({} events, qd_used={})", rec.events, rec.qd_used);
        return;
    }
    println!("verdict: FAIL");
    for v in &rec.violations {
        println!("  violation: {v}");
    }
    println!("  repro: {}", rec.repro());
    if args.minimize {
        let min = minimize::minimize(&rec.scenario, &rec.storm, campaign::DEFAULT_MAX_EVENTS);
        println!(
            "  minimized ({} probes): desim --scenario '{}' --storm '{}'",
            min.probes,
            rec.scenario.spec(),
            min.storm.spec()
        );
    }
    std::process::exit(1);
}

/// The original README showcase, parameterized by `--seed`.
fn showcase(seed: u64) {
    let program = nqueens::build_default(nqueens::QueensParams { n: 8, grain: 4 });

    // Drop 5% of packets, duplicate 2%, delay 5% by 200 µs, and freeze
    // PE 5 between 0.5 ms and 2 ms of simulated time.
    let plan = FaultPlan::new(seed)
        .drop(0.05)
        .duplicate(0.02)
        .delay(0.05, Cost::micros(200))
        .stall(Pe(5), SimTime(500_000), SimTime(2_000_000));

    let cfg = SimConfig::preset(16, MachinePreset::NcubeLike).with_faults(plan);
    let mut report = program
        .with_reliable(ReliableConfig::default())
        .run_sim(cfg);

    assert!(report.sim.as_ref().unwrap().aborted.is_none());
    println!("nqueens(8) under 5% loss + stall (storm seed {seed:#x}):");
    println!("  solutions:    {:?}", report.take_result::<u64>());
    println!("  retransmits:  {}", report.counter_total("retransmits"));
    println!("  dups dropped: {}", report.counter_total("dup_dropped"));

    let crash = FaultPlan::new(9).crash(Pe(3), SimTime::ZERO);
    let cfg = SimConfig::preset(16, MachinePreset::NcubeLike).with_faults(crash);
    let mut report = fib::build(
        fib::FibParams { n: 16, grain: 9 },
        QueueingStrategy::Fifo,
        BalanceStrategy::Random,
    )
    .with_reliable(ReliableConfig {
        timeout: Cost::micros(500),
        seed_retry_limit: 2,
        ..ReliableConfig::default()
    })
    .run_sim(cfg);
    println!("fib(16) with PE 3 dead from boot:");
    println!("  result:           {:?}", report.take_result::<u64>());
    println!("  seeds redirected: {}", report.counter_total("seeds_redirected"));
}

fn main() {
    let args = parse_args();
    if args.scenario.is_some() || args.storm.is_some() {
        replay(&args);
    } else {
        showcase(args.seed);
    }
}
