//! Jacobi relaxation **to convergence** — the reduction-per-iteration
//! pattern.
//!
//! Where [`crate::jacobi`] runs a fixed sweep count and needs only
//! quiescence at the end, this variant iterates until the global maximum
//! cell change drops below a tolerance. That requires a *global
//! decision every iteration*: each branch contributes its local maximum
//! change to a [`MaxF64`] accumulator and reports done; the main chare
//! collects the reduction, decides, and broadcasts continue-or-stop.
//! The pattern costs one collective per sweep — the price of global
//! control that the fixed-iteration variant avoids, measurable by
//! comparing the two programs' times at equal sweep counts.

use chare_kernel::prelude::*;

use crate::costs::{work, JACOBI_CELL_NS};
use crate::jacobi::{block_rows, JacobiParams};

/// Entry point on each branch: ghost row from a neighbor.
pub const EP_GHOST: EpId = EpId(1);
/// Entry point on each branch: continue with the next sweep, or stop.
pub const EP_CONTROL: EpId = EpId(2);
/// Entry point on the main chare: a branch finished its sweep.
pub const EP_SWEPT: EpId = EpId(3);
/// Entry point on the main chare: the collected max change.
pub const EP_MAXDIFF: EpId = EpId(4);
/// Entry point on the main chare: quiescence before the final collect.
pub const EP_QUIESCENT: EpId = EpId(5);
/// Entry point on the main chare: the collected checksum.
pub const EP_SUM: EpId = EpId(6);

/// Parameters of a convergent run.
#[derive(Clone, Copy, Debug)]
pub struct ConvParams {
    /// Interior grid size.
    pub n: usize,
    /// Stop when the max cell change of a sweep falls below this.
    pub eps: f64,
    /// Hard sweep cap (safety for loose tolerances).
    pub max_iters: u32,
}

impl Default for ConvParams {
    fn default() -> Self {
        ConvParams {
            n: 48,
            eps: 1e-4,
            max_iters: 10_000,
        }
    }
}

/// Result: sweeps performed and final checksum.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvResult {
    /// Sweeps executed.
    pub iters: u32,
    /// Interior sum at termination.
    pub checksum: f64,
}

/// Sequential reference: same sweep/tolerance logic.
pub fn jacobi_conv_seq(params: ConvParams) -> ConvResult {
    let n = params.n;
    let w = n + 2;
    let mut cur = vec![0.0f64; w * w];
    for cell in cur.iter_mut().take(w) {
        *cell = 1.0;
    }
    let mut next = cur.clone();
    let mut iters = 0;
    while iters < params.max_iters {
        let mut maxdiff = 0.0f64;
        for r in 1..=n {
            for c in 1..=n {
                let v = 0.25
                    * (cur[(r - 1) * w + c]
                        + cur[(r + 1) * w + c]
                        + cur[r * w + c - 1]
                        + cur[r * w + c + 1]);
                maxdiff = maxdiff.max((v - cur[r * w + c]).abs());
                next[r * w + c] = v;
            }
        }
        std::mem::swap(&mut cur, &mut next);
        iters += 1;
        if maxdiff < params.eps {
            break;
        }
    }
    let mut checksum = 0.0;
    for r in 1..=n {
        for c in 1..=n {
            checksum += cur[r * w + c];
        }
    }
    ConvResult { iters, checksum }
}

/// Ghost row between neighbors.
#[derive(Clone)]
pub struct GhostMsg {
    /// True if from the block above.
    pub from_above: bool,
    /// Row values.
    pub row: Vec<f64>,
}
impl Message for GhostMsg {
    fn bytes(&self) -> u32 {
        2 + (self.row.len() * 8) as u32
    }
}

/// Control broadcast each sweep.
#[derive(Clone, Copy)]
pub enum Control {
    /// Run one more sweep, then report.
    Sweep(ChareId),
    /// Converged (or capped): contribute your checksum and go quiet.
    Stop,
}
message!(Control);

/// BOC configuration.
#[derive(Clone)]
pub struct ConvCfg {
    /// Parameters.
    pub params: ConvParams,
    /// Per-sweep max-change reduction.
    pub maxdiff: Acc<MaxF64>,
    /// Final checksum reduction.
    pub checksum: Acc<SumF64>,
}

/// One PE's block, lock-stepped by the per-sweep barrier.
pub struct ConvBranch {
    cfg: ConvCfg,
    nblocks: usize,
    rows: usize,
    cur: Vec<f64>,
    next: Vec<f64>,
    ghosts_in: usize,
    sweep_armed: Option<ChareId>,
}

impl ConvBranch {
    fn width(&self) -> usize {
        self.cfg.params.n + 2
    }

    fn ghosts_needed(&self, pe: Pe) -> usize {
        usize::from(pe.index() > 0) + usize::from(pe.index() + 1 < self.nblocks)
    }

    fn send_edges(&self, ctx: &mut Ctx) {
        let me = ctx.pe();
        let boc = ctx.self_boc::<ConvBranch>();
        let w = self.width();
        if me.index() > 0 {
            ctx.send_branch(
                boc,
                Pe::from(me.index() - 1),
                EP_GHOST,
                GhostMsg {
                    from_above: false,
                    row: self.cur[w..2 * w].to_vec(),
                },
            );
        }
        if me.index() + 1 < self.nblocks {
            ctx.send_branch(
                boc,
                Pe::from(me.index() + 1),
                EP_GHOST,
                GhostMsg {
                    from_above: true,
                    row: self.cur[self.rows * w..(self.rows + 1) * w].to_vec(),
                },
            );
        }
    }

    /// Run the sweep if both the control signal and all ghosts arrived.
    fn try_sweep(&mut self, ctx: &mut Ctx) {
        let me = ctx.pe();
        let Some(main) = self.sweep_armed else {
            return;
        };
        if self.ghosts_in < self.ghosts_needed(me) {
            return;
        }
        self.sweep_armed = None;
        self.ghosts_in = 0;
        let w = self.width();
        let n = self.cfg.params.n;
        let mut maxdiff = 0.0f64;
        for r in 1..=self.rows {
            for c in 1..=n {
                let v = 0.25
                    * (self.cur[(r - 1) * w + c]
                        + self.cur[(r + 1) * w + c]
                        + self.cur[r * w + c - 1]
                        + self.cur[r * w + c + 1]);
                maxdiff = maxdiff.max((v - self.cur[r * w + c]).abs());
                self.next[r * w + c] = v;
            }
        }
        // Ghost/boundary rows carry over to the next buffer.
        self.next[..w].copy_from_slice(&self.cur[..w]);
        let lo = (self.rows + 1) * w;
        self.next[lo..].copy_from_slice(&self.cur[lo..]);
        std::mem::swap(&mut self.cur, &mut self.next);
        ctx.charge(work((self.rows * n) as u64, JACOBI_CELL_NS));
        ctx.acc_add(self.cfg.maxdiff, maxdiff);
        ctx.send(main, EP_SWEPT, ());
    }

    fn interior_sum(&self) -> f64 {
        let w = self.width();
        let mut s = 0.0;
        for r in 1..=self.rows {
            for c in 1..=self.cfg.params.n {
                s += self.cur[r * w + c];
            }
        }
        s
    }
}

impl BranchInit for ConvBranch {
    type Cfg = ConvCfg;
    fn create(cfg: ConvCfg, ctx: &mut Ctx) -> Self {
        let n = cfg.params.n;
        let nblocks = ctx.npes().min(n);
        let pe = ctx.pe();
        let rows = if pe.index() < nblocks {
            block_rows(n, nblocks, pe.index()).1
        } else {
            0
        };
        let w = n + 2;
        let mut cur = vec![0.0f64; (rows + 2) * w];
        if pe.index() == 0 && rows > 0 {
            for cell in cur.iter_mut().take(w) {
                *cell = 1.0;
            }
        }
        let next = cur.clone();
        ConvBranch {
            cfg,
            nblocks,
            rows,
            cur,
            next,
            ghosts_in: 0,
            sweep_armed: None,
        }
    }
}

impl Branch for ConvBranch {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        if self.rows == 0 {
            // Inactive PE: still answer the barrier so main's count adds
            // up.
            if ep == EP_CONTROL {
                if let Control::Sweep(main) = cast::<Control>(msg) {
                    ctx.send(main, EP_SWEPT, ());
                }
            }
            return;
        }
        match ep {
            EP_GHOST => {
                let g = cast::<GhostMsg>(msg);
                let w = self.width();
                if g.from_above {
                    self.cur[..w].copy_from_slice(&g.row);
                } else {
                    self.cur[(self.rows + 1) * w..].copy_from_slice(&g.row);
                }
                self.ghosts_in += 1;
                self.try_sweep(ctx);
            }
            EP_CONTROL => match cast::<Control>(msg) {
                Control::Sweep(main) => {
                    self.sweep_armed = Some(main);
                    self.send_edges(ctx);
                    self.try_sweep(ctx);
                }
                Control::Stop => {
                    ctx.acc_add(self.cfg.checksum, self.interior_sum());
                }
            },
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

/// Seed of the main chare.
#[derive(Clone)]
pub struct MainSeed {
    /// Parameters.
    pub params: ConvParams,
    /// BOC handle.
    pub boc: Boc<ConvBranch>,
    /// Max-change reduction.
    pub maxdiff: Acc<MaxF64>,
    /// Checksum reduction.
    pub checksum: Acc<SumF64>,
}
message!(MainSeed);

/// The main chare: per-sweep barrier + convergence decision.
pub struct ConvMain {
    seedv: MainSeed,
    swept: usize,
    iters: u32,
}

impl ConvMain {
    fn launch_sweep(&mut self, ctx: &mut Ctx) {
        let me = ctx.self_id();
        self.iters += 1;
        ctx.broadcast_branch(self.seedv.boc, EP_CONTROL, Control::Sweep(me));
    }
}

impl ChareInit for ConvMain {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let mut m = ConvMain {
            seedv: seed,
            swept: 0,
            iters: 0,
        };
        m.launch_sweep(ctx);
        m
    }
}

impl Chare for ConvMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        let me = ctx.self_id();
        match ep {
            EP_SWEPT => {
                cast::<()>(msg);
                self.swept += 1;
                if self.swept == ctx.npes() {
                    self.swept = 0;
                    ctx.acc_collect(self.seedv.maxdiff, Notify::Chare(me, EP_MAXDIFF));
                }
            }
            EP_MAXDIFF => {
                let maxdiff = cast::<AccResult<f64>>(msg).value;
                if maxdiff < self.seedv.params.eps || self.iters >= self.seedv.params.max_iters {
                    ctx.broadcast_branch(self.seedv.boc, EP_CONTROL, Control::Stop);
                    ctx.start_quiescence(Notify::Chare(me, EP_QUIESCENT));
                } else {
                    self.launch_sweep(ctx);
                }
            }
            EP_QUIESCENT => {
                let _ = cast::<QuiescenceMsg>(msg);
                ctx.acc_collect(self.seedv.checksum, Notify::Chare(me, EP_SUM));
            }
            EP_SUM => {
                let checksum = cast::<AccResult<f64>>(msg).value;
                ctx.exit(ConvResult {
                    iters: self.iters,
                    checksum,
                });
            }
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

/// Build the convergent Jacobi program.
pub fn build(params: ConvParams) -> Program {
    let mut b = ProgramBuilder::new();
    let maxdiff = b.accumulator::<MaxF64>();
    let checksum = b.accumulator::<SumF64>();
    let main = b.chare::<ConvMain>();
    let boc = b.boc::<ConvBranch>(ConvCfg {
        params,
        maxdiff,
        checksum,
    });
    b.main(
        main,
        MainSeed {
            params,
            boc,
            maxdiff,
            checksum,
        },
    );
    b.build()
}

/// Fixed-iteration twin at the same sweep count (for the
/// barrier-overhead comparison).
pub fn fixed_twin(n: usize, iters: u32) -> Program {
    crate::jacobi::build_default(JacobiParams { n, iters })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn seq_converges_and_tightening_eps_takes_longer() {
        let loose = jacobi_conv_seq(ConvParams {
            n: 24,
            eps: 1e-3,
            max_iters: 10_000,
        });
        let tight = jacobi_conv_seq(ConvParams {
            n: 24,
            eps: 1e-5,
            max_iters: 10_000,
        });
        assert!(loose.iters > 0 && tight.iters > loose.iters);
    }

    #[test]
    fn parallel_matches_sequential_iterations_and_checksum() {
        let params = ConvParams {
            n: 24,
            eps: 1e-3,
            max_iters: 500,
        };
        let want = jacobi_conv_seq(params);
        for npes in [1usize, 3, 6] {
            let mut rep = build(params).run_sim_preset(npes, MachinePreset::NcubeLike);
            let got = rep.take_result::<ConvResult>().expect("result");
            assert_eq!(got.iters, want.iters, "npes={npes}");
            assert!(
                close(got.checksum, want.checksum),
                "npes={npes}: {} vs {}",
                got.checksum,
                want.checksum
            );
        }
    }

    #[test]
    fn iteration_cap_is_respected() {
        let params = ConvParams {
            n: 16,
            eps: 0.0, // unreachable tolerance
            max_iters: 7,
        };
        let mut rep = build(params).run_sim_preset(4, MachinePreset::NcubeLike);
        assert_eq!(rep.take_result::<ConvResult>().unwrap().iters, 7);
    }

    #[test]
    fn per_sweep_barrier_costs_over_fixed_iteration_twin() {
        // Same grid, same sweep count: the convergent version pays a
        // collective per sweep and must be slower.
        let params = ConvParams {
            n: 32,
            eps: 0.0,
            max_iters: 12,
        };
        let conv_t = build(params)
            .run_sim_preset(4, MachinePreset::NcubeLike)
            .time_ns;
        let fixed_t = fixed_twin(32, 12)
            .run_sim_preset(4, MachinePreset::NcubeLike)
            .time_ns;
        assert!(
            conv_t > fixed_t,
            "barrier version should cost more: {conv_t} vs {fixed_t}"
        );
    }

    #[test]
    fn works_on_threads() {
        let params = ConvParams {
            n: 20,
            eps: 1e-3,
            max_iters: 500,
        };
        let want = jacobi_conv_seq(params);
        let mut rep = build(params).run_threads(3);
        assert!(!rep.timed_out);
        let got = rep.take_result::<ConvResult>().expect("result");
        assert_eq!(got.iters, want.iters);
        assert!(close(got.checksum, want.checksum));
    }
}
