//! Merkle-mountain-range construction — the hash-tree workload.
//!
//! An MMR over `n` leaves is a forest of perfect binary trees ("peaks"),
//! one per set bit of `n`, over consecutive leaf ranges; the published
//! root "bags" the peaks left to right. The parallel build exercises the
//! kernel surfaces none of the divide-and-conquer apps touch at scale:
//!
//! * **Distributed table** — producer chares hash leaf blocks and stream
//!   the digests through the table (`table_put`, one grain-sized block
//!   per entry — per-leaf round trips would drown in the era's ~150 us
//!   per-message software overhead); subtree chares later pull their
//!   covering blocks back out (`table_get`). The table is the only
//!   rendezvous between producers and consumers.
//! * **Bitvector priorities** — each peak's subtree chares carry a
//!   [`BitPrio::from_path`] priority extended one bit per split, so
//!   under priority queueing the forest drains leftmost-peak first.
//! * **Write-once variable** — the bagged root is published with
//!   `write_once`; a verifier BOC on every PE reads its replica and
//!   votes a checksum into an accumulator, proving the replication
//!   actually delivered one identical root per PE.
//!
//! The serial reference ([`mmr_root_seq`]) is the oracle: every backend
//! must produce the byte-identical root.

use chare_kernel::prelude::*;

use crate::costs::{work, MMR_LEAF_NS, MMR_NODE_NS};
use crate::hashes::{leaf_digest, node_digest, Digest};

/// Modulus for the per-PE verification checksum (keeps `npes` votes far
/// from u64 overflow).
const CHECK_MOD: u64 = 1_000_003;

/// Main chare entry points.
pub const EP_BLOCK: EpId = EpId(1);
pub const EP_PEAK: EpId = EpId(2);
pub const EP_PUBLISHED: EpId = EpId(3);
pub const EP_VOTE: EpId = EpId(4);
pub const EP_TOTAL: EpId = EpId(5);
/// Producer entry point: one `TableAck` per streamed leaf.
pub const EP_ACK: EpId = EpId(1);
/// Subtree entry points.
pub const EP_LEAF: EpId = EpId(1);
pub const EP_CHILD: EpId = EpId(2);
/// Verifier-branch entry point.
pub const EP_CHECK: EpId = EpId(1);

/// Parameters of an MMR build.
#[derive(Clone, Copy, Debug)]
pub struct MmrParams {
    /// Number of leaves (any value, including 0).
    pub leaves: u64,
    /// Subtrees with `span <= grain` hash their range inside one chare;
    /// leaf producers also stream `grain` leaves per chare.
    pub grain: u64,
    /// Seed mixed into every leaf hash.
    pub seed: u64,
}

impl Default for MmrParams {
    fn default() -> Self {
        MmrParams { leaves: 512, grain: 32, seed: 1 }
    }
}

// -- Serial reference -----------------------------------------------------

/// Peak decomposition: one `(first_leaf, span)` per set bit of `leaves`,
/// most significant first, over consecutive leaf ranges.
pub fn peak_spans(leaves: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut start = 0u64;
    for bit in (0..64).rev() {
        if (leaves >> bit) & 1 == 1 {
            let span = 1u64 << bit;
            out.push((start, span));
            start += span;
        }
    }
    out
}

/// Digest of the perfect subtree over leaves `[start, start + span)`.
pub fn subtree_digest_seq(seed: u64, start: u64, span: u64) -> Digest {
    if span == 1 {
        leaf_digest(seed, start)
    } else {
        let half = span / 2;
        node_digest(
            subtree_digest_seq(seed, start, half),
            subtree_digest_seq(seed, start + half, half),
        )
    }
}

/// Serial reference: the peak digests, leftmost first.
pub fn mmr_peaks_seq(seed: u64, leaves: u64) -> Vec<Digest> {
    peak_spans(leaves)
        .into_iter()
        .map(|(start, span)| subtree_digest_seq(seed, start, span))
        .collect()
}

/// Bag peaks left to right into the MMR root.
pub fn bag_peaks(peaks: &[Digest]) -> Digest {
    match peaks.split_first() {
        None => Digest::empty(),
        Some((first, rest)) => rest.iter().fold(*first, |acc, p| node_digest(acc, *p)),
    }
}

/// Serial reference root.
pub fn mmr_root_seq(seed: u64, leaves: u64) -> Digest {
    bag_peaks(&mmr_peaks_seq(seed, leaves))
}

// -- Messages and handles -------------------------------------------------

/// Program result: the bagged root plus the peak count (a structural
/// fingerprint of the forest shape).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmrResult {
    /// The published MMR root.
    pub root: Digest,
    /// Number of peaks (`leaves.count_ones()`).
    pub peaks: u32,
}

/// Handles every phase of the build needs (all `Copy` id wrappers).
#[derive(Clone, Copy)]
struct Handles {
    producer: Kind<Producer>,
    subtree: Kind<SubtreeChare>,
    table: TableRef<Vec<Digest>>,
    verify: Boc<VerifyBranch>,
    check: Acc<SumU64>,
}

/// Seed of the main chare.
#[derive(Clone)]
pub struct MainSeed {
    params: MmrParams,
    handles: Handles,
}
message!(MainSeed);

/// Seed of a leaf producer: hash leaves `[first, first + count)` into
/// one digest block and stream it through the table under its block
/// index (`first / grain`).
#[derive(Clone)]
pub struct ProducerSeed {
    first: u64,
    count: u64,
    grain: u64,
    seed: u64,
    main: ChareId,
    table: TableRef<Vec<Digest>>,
}
message!(ProducerSeed);

/// Seed of a subtree chare over leaves `[start, start + span)`.
#[derive(Clone)]
pub struct SubtreeSeed {
    start: u64,
    span: u64,
    grain: u64,
    seed: u64,
    /// Who to report the subtree digest to, and at which entry point
    /// (`EP_PEAK` on the main chare for peaks, `EP_CHILD` on the parent
    /// subtree chare otherwise).
    parent: ChareId,
    report_ep: EpId,
    /// Peak index for peaks; 0 = left / 1 = right child below that.
    slot: u32,
    prio: BitPrio,
    subtree: Kind<SubtreeChare>,
    table: TableRef<Vec<Digest>>,
}
message!(SubtreeSeed);

/// A completed subtree (or peak) digest.
#[derive(Clone, Copy)]
pub struct SubDone {
    slot: u32,
    digest: Digest,
}
message!(SubDone);

/// Broadcast to the verifier BOC once the root is replicated.
#[derive(Clone, Copy)]
pub struct CheckMsg {
    wo: WoId,
    main: ChareId,
}
message!(CheckMsg);

wire_struct!(MmrParams { leaves, grain, seed });
wire_struct!(MmrResult { root, peaks });
wire_struct!(Handles { producer, subtree, table, verify, check });
wire_struct!(MainSeed { params, handles });
wire_struct!(ProducerSeed { first, count, grain, seed, main, table });
wire_struct!(SubtreeSeed {
    start,
    span,
    grain,
    seed,
    parent,
    report_ep,
    slot,
    prio,
    subtree,
    table
});
wire_struct!(SubDone { slot, digest });
wire_struct!(CheckMsg { wo, main });

// -- Chares ---------------------------------------------------------------

/// The main chare: streams leaves, gates the forest build on table
/// completion, bags the peaks, publishes and verifies the root.
pub struct MmrMain {
    params: MmrParams,
    handles: Handles,
    acked: u64,
    peaks: Vec<Option<Digest>>,
    peaks_pending: usize,
    root: Digest,
    votes: usize,
    wo_ready: bool,
}

impl MmrMain {
    /// All leaf puts are acknowledged: create one prioritized subtree
    /// chare per peak. Gating on the acks is what makes the later
    /// `table_get`s safe — a get can never race its put.
    fn start_peaks(&mut self, ctx: &mut Ctx) {
        let spans = peak_spans(self.params.leaves);
        self.peaks = vec![None; spans.len()];
        self.peaks_pending = spans.len();
        let me = ctx.self_id();
        for (i, (start, span)) in spans.into_iter().enumerate() {
            let prio = BitPrio::from_path(&[i as u32]);
            ctx.create_prio(
                self.handles.subtree,
                SubtreeSeed {
                    start,
                    span,
                    grain: self.params.grain,
                    seed: self.params.seed,
                    parent: me,
                    report_ep: EP_PEAK,
                    slot: i as u32,
                    prio: prio.clone(),
                    subtree: self.handles.subtree,
                    table: self.handles.table,
                },
                Priority::Bits(prio),
            );
        }
    }

    /// All peaks arrived: bag them and publish the root.
    fn publish(&mut self, ctx: &mut Ctx) {
        let peaks: Vec<Digest> = self.peaks.iter().map(|p| p.expect("peak missing")).collect();
        ctx.charge(work(peaks.len() as u64, MMR_NODE_NS));
        self.root = bag_peaks(&peaks);
        let me = ctx.self_id();
        ctx.write_once(self.root, Notify::Chare(me, EP_PUBLISHED));
    }

    /// Collect the verification accumulator once replication finished
    /// *and* every PE's branch has voted (the votes gate the collect, so
    /// it can never race an outstanding `acc_add`).
    fn maybe_collect(&mut self, ctx: &mut Ctx) {
        if self.wo_ready && self.votes == ctx.npes() {
            let me = ctx.self_id();
            ctx.acc_collect(self.handles.check, Notify::Chare(me, EP_TOTAL));
        }
    }
}

impl ChareInit for MmrMain {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let mut main = MmrMain {
            params: seed.params,
            handles: seed.handles,
            acked: 0,
            peaks: Vec::new(),
            peaks_pending: 0,
            root: Digest::empty(),
            votes: 0,
            wo_ready: false,
        };
        assert!(main.params.grain >= 1, "grain must be at least 1");
        if main.params.leaves == 0 {
            // Empty tree: nothing to stream or combine; publish the
            // canonical empty digest and still run the verification
            // round so every backend exercises the same protocol tail.
            main.publish(ctx);
            return main;
        }
        let me = ctx.self_id();
        let mut first = 0u64;
        while first < main.params.leaves {
            let count = main.params.grain.min(main.params.leaves - first);
            ctx.create(
                main.handles.producer,
                ProducerSeed {
                    first,
                    count,
                    grain: main.params.grain,
                    seed: main.params.seed,
                    main: me,
                    table: main.handles.table,
                },
            );
            first += count;
        }
        main
    }
}

impl Chare for MmrMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_BLOCK => {
                self.acked += cast::<u64>(msg);
                debug_assert!(self.acked <= self.params.leaves);
                if self.acked == self.params.leaves {
                    self.start_peaks(ctx);
                }
            }
            EP_PEAK => {
                let done = cast::<SubDone>(msg);
                let slot = done.slot as usize;
                assert!(self.peaks[slot].is_none(), "peak {slot} reported twice");
                self.peaks[slot] = Some(done.digest);
                self.peaks_pending -= 1;
                if self.peaks_pending == 0 {
                    self.publish(ctx);
                }
            }
            EP_PUBLISHED => {
                let ready = cast::<WoReady>(msg);
                self.wo_ready = true;
                let me = ctx.self_id();
                ctx.broadcast_branch(
                    self.handles.verify,
                    EP_CHECK,
                    CheckMsg { wo: ready.id, main: me },
                );
                self.maybe_collect(ctx);
            }
            EP_VOTE => {
                self.votes += cast::<u64>(msg) as usize;
                self.maybe_collect(ctx);
            }
            EP_TOTAL => {
                let total = cast::<AccResult<u64>>(msg).value;
                let expect = ctx.npes() as u64 * (self.root.fold() % CHECK_MOD);
                assert_eq!(
                    total, expect,
                    "write-once replication delivered a diverging root"
                );
                ctx.exit(MmrResult {
                    root: self.root,
                    peaks: self.params.leaves.count_ones(),
                });
            }
            _ => unreachable!("unexpected entry point {ep:?}"),
        }
    }
}

/// Hashes one block of leaves and streams it through the distributed
/// table, acking completion to the main chare.
pub struct Producer {
    main: ChareId,
    count: u64,
}

impl ChareInit for Producer {
    type Seed = ProducerSeed;
    fn create(seed: ProducerSeed, ctx: &mut Ctx) -> Self {
        ctx.charge(work(seed.count, MMR_LEAF_NS));
        let block: Vec<Digest> = (seed.first..seed.first + seed.count)
            .map(|leaf| leaf_digest(seed.seed, leaf))
            .collect();
        let me = ctx.self_id();
        ctx.table_put(
            seed.table,
            seed.first / seed.grain,
            block,
            Some(Notify::Chare(me, EP_ACK)),
        );
        Producer { main: seed.main, count: seed.count }
    }
}

impl Chare for Producer {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        debug_assert_eq!(ep, EP_ACK);
        let ack = cast::<TableAck>(msg);
        assert!(!ack.existed, "block {} streamed twice", ack.key);
        ctx.send(self.main, EP_BLOCK, self.count);
        ctx.destroy_self();
    }
}

/// One subtree of a peak: splits in half down to the grain, then pulls
/// the digest blocks covering its leaf range from the table and folds
/// them.
pub struct SubtreeChare {
    seed: SubtreeSeed,
    /// Covering digest blocks by block offset (leaf phase only).
    blocks: Vec<Option<Vec<Digest>>>,
    /// First covering block index (leaf phase only).
    first_block: u64,
    /// Child digests (interior phase only): `[left, right]`.
    children: [Option<Digest>; 2],
    pending: u64,
}

impl SubtreeChare {
    fn report(&self, digest: Digest, ctx: &mut Ctx) {
        ctx.send(
            self.seed.parent,
            self.seed.report_ep,
            SubDone { slot: self.seed.slot, digest },
        );
        ctx.destroy_self();
    }

    /// Fold an in-order slice of leaf digests exactly like the serial
    /// recursion does (pairwise halving), so the digest is
    /// shape-identical to [`subtree_digest_seq`].
    fn fold(digests: &[Digest]) -> Digest {
        if digests.len() == 1 {
            digests[0]
        } else {
            let half = digests.len() / 2;
            node_digest(Self::fold(&digests[..half]), Self::fold(&digests[half..]))
        }
    }
}

impl ChareInit for SubtreeChare {
    type Seed = SubtreeSeed;
    fn create(seed: SubtreeSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        if seed.span <= seed.grain {
            // Leaf phase: pull the covering digest blocks from the
            // table (the producers' grain-sized put granularity).
            let first_block = seed.start / seed.grain;
            let last_block = (seed.start + seed.span - 1) / seed.grain;
            let pending = last_block - first_block + 1;
            let blocks = vec![None; pending as usize];
            for block in first_block..=last_block {
                ctx.table_get(seed.table, block, Notify::Chare(me, EP_LEAF));
            }
            return SubtreeChare {
                seed,
                blocks,
                first_block,
                children: [None, None],
                pending,
            };
        }
        // Interior: split in half; the left child extends the priority
        // path with 0, the right with 1, preserving leftmost-first
        // drain order under priority queueing.
        let half = seed.span / 2;
        for (slot, start) in [(0u32, seed.start), (1u32, seed.start + half)] {
            let prio = seed.prio.child_bit(slot == 1);
            ctx.create_prio(
                seed.subtree,
                SubtreeSeed {
                    start,
                    span: half,
                    grain: seed.grain,
                    seed: seed.seed,
                    parent: me,
                    report_ep: EP_CHILD,
                    slot,
                    prio: prio.clone(),
                    subtree: seed.subtree,
                    table: seed.table,
                },
                Priority::Bits(prio),
            );
        }
        SubtreeChare {
            seed,
            blocks: Vec::new(),
            first_block: 0,
            children: [None, None],
            pending: 2,
        }
    }
}

impl Chare for SubtreeChare {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_LEAF => {
                let got = cast::<TableGot<Vec<Digest>>>(msg);
                let value = got.value.expect("digest block missing from table");
                let offset = (got.key - self.first_block) as usize;
                assert!(self.blocks[offset].is_none(), "block {} pulled twice", got.key);
                self.blocks[offset] = Some(value);
                self.pending -= 1;
                if self.pending == 0 {
                    let grain = self.seed.grain;
                    let digests: Vec<Digest> = (self.seed.start
                        ..self.seed.start + self.seed.span)
                        .map(|leaf| {
                            let block = &self.blocks[(leaf / grain - self.first_block) as usize];
                            block.as_ref().expect("gap in block range")
                                [(leaf % grain) as usize]
                        })
                        .collect();
                    ctx.charge(work(digests.len() as u64 - 1, MMR_NODE_NS));
                    let digest = Self::fold(&digests);
                    self.report(digest, ctx);
                }
            }
            EP_CHILD => {
                let done = cast::<SubDone>(msg);
                let slot = done.slot as usize;
                assert!(self.children[slot].is_none(), "child {slot} reported twice");
                self.children[slot] = Some(done.digest);
                self.pending -= 1;
                if self.pending == 0 {
                    ctx.charge(work(1, MMR_NODE_NS));
                    let digest = node_digest(
                        self.children[0].expect("left child"),
                        self.children[1].expect("right child"),
                    );
                    self.report(digest, ctx);
                }
            }
            _ => unreachable!("unexpected entry point {ep:?}"),
        }
    }
}

/// Per-PE verifier branch: reads the replicated root and votes a
/// checksum into the accumulator.
pub struct VerifyBranch {
    check: Acc<SumU64>,
}

/// BOC configuration (cloned to every PE at boot).
#[derive(Clone)]
pub struct VerifyCfg {
    check: Acc<SumU64>,
}

impl BranchInit for VerifyBranch {
    type Cfg = VerifyCfg;
    fn create(cfg: VerifyCfg, _ctx: &mut Ctx) -> Self {
        VerifyBranch { check: cfg.check }
    }
}

impl Branch for VerifyBranch {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        debug_assert_eq!(ep, EP_CHECK);
        let check = cast::<CheckMsg>(msg);
        let root = ctx.wo_get::<Digest>(check.wo);
        ctx.acc_add(self.check, root.fold() % CHECK_MOD);
        ctx.send(check.main, EP_VOTE, 1u64);
    }
}

// -- Program construction -------------------------------------------------

/// Build the MMR program with the given strategies.
pub fn build(
    params: MmrParams,
    queueing: QueueingStrategy,
    balance: BalanceStrategy,
) -> Program {
    let mut b = ProgramBuilder::new();
    let producer = b.chare::<Producer>();
    let subtree = b.chare::<SubtreeChare>();
    let main = b.chare::<MmrMain>();
    let table = b.table::<Vec<Digest>>();
    let check = b.accumulator::<SumU64>();
    let verify = b.boc::<VerifyBranch>(VerifyCfg { check });
    b.wire::<Digest>();
    b.wire::<Vec<Digest>>();
    b.wire::<MmrResult>();
    b.wire::<MainSeed>();
    b.wire::<ProducerSeed>();
    b.wire::<SubtreeSeed>();
    b.wire::<SubDone>();
    b.wire::<CheckMsg>();
    b.wire::<TableGot<Vec<Digest>>>();
    b.wire::<AccResult<u64>>();
    b.queueing(queueing);
    b.balance(balance);
    b.main(
        main,
        MainSeed {
            params,
            handles: Handles { producer, subtree, table, verify, check },
        },
    );
    b.build()
}

/// Build with the defaults the speedup tables use (bitvector priorities +
/// random placement: the forest drains leftmost-peak first).
pub fn build_default(params: MmrParams) -> Program {
    build(params, QueueingStrategy::BitvecPriority, BalanceStrategy::Random)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_spans_follow_binary_decomposition() {
        assert_eq!(peak_spans(0), vec![]);
        assert_eq!(peak_spans(1), vec![(0, 1)]);
        assert_eq!(peak_spans(8), vec![(0, 8)]);
        assert_eq!(peak_spans(11), vec![(0, 8), (8, 2), (10, 1)]);
    }

    #[test]
    fn serial_root_is_stable_and_shape_sensitive() {
        // Regression anchor: any change to the hash or the tree shape
        // changes these values, which also pin the cross-backend oracle.
        assert_eq!(mmr_root_seq(1, 0), Digest::empty());
        assert_ne!(mmr_root_seq(1, 5), mmr_root_seq(1, 6));
        assert_ne!(mmr_root_seq(1, 5), mmr_root_seq(2, 5));
        // Bagging is order-sensitive: reversing the peaks changes the
        // root whenever there are at least two distinct peaks.
        let peaks = mmr_peaks_seq(1, 11);
        let rev: Vec<Digest> = peaks.iter().rev().copied().collect();
        assert_ne!(bag_peaks(&peaks), bag_peaks(&rev));
    }

    #[test]
    fn parallel_matches_serial_on_sim() {
        let params = MmrParams { leaves: 100, grain: 8, seed: 3 };
        for balance in [
            BalanceStrategy::Local,
            BalanceStrategy::Random,
            BalanceStrategy::acwn(),
        ] {
            let prog = build(params, QueueingStrategy::BitvecPriority, balance.clone());
            let mut rep = prog.run_sim_preset(8, MachinePreset::NcubeLike);
            let got = rep.take_result::<MmrResult>().expect("result");
            assert_eq!(got.root, mmr_root_seq(3, 100), "balance {balance:?}");
            assert_eq!(got.peaks, 3);
        }
    }

    #[test]
    fn queueing_strategy_does_not_change_the_root() {
        let params = MmrParams { leaves: 64, grain: 4, seed: 9 };
        for q in QueueingStrategy::ALL {
            let prog = build(params, q, BalanceStrategy::Random);
            let mut rep = prog.run_sim_preset(4, MachinePreset::NcubeLike);
            let got = rep.take_result::<MmrResult>().expect("result");
            assert_eq!(got.root, mmr_root_seq(9, 64), "queueing {q:?}");
        }
    }

    #[test]
    fn edge_sizes_run_on_sim() {
        for leaves in [0u64, 1, 2, 3, 31, 32, 33] {
            let params = MmrParams { leaves, grain: 4, seed: 1 };
            let mut rep = build_default(params).run_sim_preset(4, MachinePreset::NcubeLike);
            let got = rep.take_result::<MmrResult>().expect("result");
            assert_eq!(got.root, mmr_root_seq(1, leaves), "leaves {leaves}");
            assert_eq!(got.peaks, leaves.count_ones(), "leaves {leaves}");
        }
    }

    #[test]
    fn works_on_threads() {
        let params = MmrParams { leaves: 200, grain: 16, seed: 5 };
        let mut rep = build_default(params).run_threads(4);
        assert!(!rep.timed_out);
        let got = rep.take_result::<MmrResult>().expect("result");
        assert_eq!(got.root, mmr_root_seq(5, 200));
    }

    #[test]
    fn deterministic_on_sim() {
        let params = MmrParams { leaves: 128, grain: 8, seed: 2 };
        let prog = build_default(params);
        let a = prog.run_sim_preset(8, MachinePreset::NcubeLike);
        let b = prog.run_sim_preset(8, MachinePreset::NcubeLike);
        assert_eq!(a.time_ns, b.time_ns);
        assert_eq!(
            a.counter_total("chares_created"),
            b.counter_total("chares_created")
        );
    }

    #[test]
    fn parallel_run_beats_one_pe() {
        let params = MmrParams { leaves: 2048, grain: 32, seed: 1 };
        let prog = build_default(params);
        let t1 = prog.run_sim_preset(1, MachinePreset::NcubeLike).time_ns;
        let t16 = prog.run_sim_preset(16, MachinePreset::NcubeLike).time_ns;
        assert!(
            t16 * 3 < t1,
            "expected >3x speedup on 16 PEs: t1={t1} t16={t16}"
        );
    }
}
