//! Hand-coded message-passing baselines.
//!
//! The paper's overhead experiment compares Chare Kernel programs against
//! the same computations written directly against the machine's message
//! layer — no scheduler queues, no balancer, no quiescence detection.
//! This module provides both sides:
//!
//! * [`kernel_pingpong`] / [`raw_pingpong`] — per-message overhead
//!   microbenchmark;
//! * [`raw_jacobi`] — the Jacobi relaxation of [`crate::jacobi`] written
//!   as a bare [`NodeProgram`], for the application-level comparison.

use std::collections::VecDeque;

use chare_kernel::prelude::*;
use multicomputer::{
    FnFactory, MachinePreset, NetCtx, NodeProgram, Packet, SimConfig, SimMachine, StepKind,
};

use crate::costs::{work, JACOBI_CELL_NS};
use crate::jacobi::{block_rows, JacobiParams};

// ---------------------------------------------------------------------
// Kernel ping-pong.
// ---------------------------------------------------------------------

/// Entry point: the ball.
pub const EP_BALL: EpId = EpId(1);
/// Entry point: the responder introduces itself.
pub const EP_HELLO: EpId = EpId(2);

/// Seed of the kernel ping-pong main chare.
#[derive(Clone)]
pub struct PingSeed {
    /// Round trips to play.
    pub rounds: u32,
    /// Payload size in bytes (the ball carries a `Vec<u8>` this long).
    pub bytes: u32,
    /// Kind handle of the responder.
    pub pong: Kind<Pong>,
}
message!(PingSeed);

/// Seed of the responder: the main chare's id.
#[derive(Clone, Copy)]
pub struct PongSeed {
    ping: ChareId,
}
message!(PongSeed);

/// The ball. Carries the number of legs still to fly.
pub struct Ball {
    remaining: u32,
    payload: Vec<u8>,
}

impl Message for Ball {
    fn bytes(&self) -> u32 {
        4 + self.payload.len() as u32
    }
}

/// The serving chare (main, PE 0).
pub struct Ping {
    rounds: u32,
    bytes: u32,
    pong: Option<ChareId>,
}

impl ChareInit for Ping {
    type Seed = PingSeed;
    fn create(seed: PingSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        // The responder lives on PE 1 (or PE 0 on a 1-PE machine).
        let target = Pe::from(1 % ctx.npes());
        ctx.create_on(target, seed.pong, PongSeed { ping: me });
        Ping {
            rounds: seed.rounds,
            bytes: seed.bytes,
            pong: None,
        }
    }
}

impl Chare for Ping {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_HELLO => {
                // The responder is up; serve 2 * rounds legs.
                let pong = cast::<ChareId>(msg);
                self.pong = Some(pong);
                ctx.send(
                    pong,
                    EP_BALL,
                    Ball {
                        remaining: 2 * self.rounds - 1,
                        payload: vec![0u8; self.bytes as usize],
                    },
                );
            }
            EP_BALL => {
                let ball = cast::<Ball>(msg);
                if ball.remaining == 0 {
                    ctx.exit(self.rounds);
                } else {
                    ctx.send(
                        self.pong.expect("rally implies hello"),
                        EP_BALL,
                        Ball {
                            remaining: ball.remaining - 1,
                            payload: ball.payload,
                        },
                    );
                }
            }
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

/// The responding chare. Introduces itself to the server, then returns
/// every ball (alternating with the server via its stored id).
pub struct Pong {
    ping: ChareId,
}

impl ChareInit for Pong {
    type Seed = PongSeed;
    fn create(seed: PongSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.send(seed.ping, EP_HELLO, me);
        Pong { ping: seed.ping }
    }
}

impl Chare for Pong {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        debug_assert_eq!(ep, EP_BALL);
        let ball = cast::<Ball>(msg);
        ctx.send(
            self.ping,
            EP_BALL,
            Ball {
                remaining: ball.remaining.saturating_sub(1),
                payload: ball.payload,
            },
        );
    }
}

/// Build the kernel ping-pong program. `rounds` must be ≥ 1.
pub fn kernel_pingpong(rounds: u32, bytes: u32) -> Program {
    assert!(rounds >= 1);
    let mut b = ProgramBuilder::new();
    let pong = b.chare::<Pong>();
    let ping = b.chare::<Ping>();
    b.main(
        ping,
        PingSeed {
            rounds,
            bytes,
            pong,
        },
    );
    b.build()
}

// ---------------------------------------------------------------------
// Raw ping-pong (no kernel).
// ---------------------------------------------------------------------

/// Raw two-PE ping-pong on the bare machine layer. Returns the
/// simulated end time in nanoseconds for `rounds` round trips of
/// `bytes`-byte messages on the given preset.
pub fn raw_pingpong(rounds: u32, bytes: u32, preset: MachinePreset) -> u64 {
    struct Node {
        pe: Pe,
        queue: VecDeque<Packet>,
        bytes: u32,
        rounds: u32,
    }
    impl NodeProgram for Node {
        fn boot(&mut self, net: &mut dyn NetCtx) {
            if self.pe == Pe::ZERO {
                net.send(
                    Pe::from(1 % net.num_pes()),
                    self.bytes,
                    Box::new(2 * self.rounds - 1),
                );
            }
        }
        fn incoming(&mut self, pkt: Packet) {
            self.queue.push_back(pkt);
        }
        fn step(&mut self, net: &mut dyn NetCtx) -> Option<StepKind> {
            let pkt = self.queue.pop_front()?;
            let remaining = *pkt.payload.downcast::<u32>().unwrap();
            if remaining == 0 {
                net.deposit(Box::new(()));
                net.stop();
            } else {
                net.send(pkt.from, self.bytes, Box::new(remaining - 1));
            }
            Some(StepKind::User)
        }
        fn has_work(&self) -> bool {
            !self.queue.is_empty()
        }
    }
    assert!(rounds >= 1);
    let factory = FnFactory(move |pe, _npes| Node {
        pe,
        queue: VecDeque::new(),
        bytes,
        rounds,
    });
    let cfg = SimConfig::preset(2, preset);
    let rep = SimMachine::run_factory(cfg, &factory);
    rep.end_time.as_nanos()
}

// ---------------------------------------------------------------------
// Raw Jacobi (no kernel).
// ---------------------------------------------------------------------

/// One ghost row on the wire.
struct RawGhost {
    iter: u32,
    from_above: bool,
    row: Vec<f64>,
}

/// Raw Jacobi node: the same computation and communication pattern as
/// [`crate::jacobi::JacobiBranch`], minus every kernel service.
struct RawJacobiNode {
    pe: Pe,
    nblocks: usize,
    n: usize,
    iters: u32,
    rows: usize,
    cur: Vec<f64>,
    next: Vec<f64>,
    done: u32,
    from_above: VecDeque<Vec<f64>>,
    from_below: VecDeque<Vec<f64>>,
    queue: VecDeque<Packet>,
    finished: usize, // PE0: blocks done
    sum: f64,
}

impl RawJacobiNode {
    fn new(pe: Pe, npes: usize, params: JacobiParams) -> Self {
        let n = params.n;
        let nblocks = npes.min(n);
        let rows = if pe.index() < nblocks {
            block_rows(n, nblocks, pe.index()).1
        } else {
            0
        };
        let w = n + 2;
        let mut cur = vec![0.0f64; (rows + 2) * w];
        if pe.index() == 0 && rows > 0 {
            for cell in cur.iter_mut().take(w) {
                *cell = 1.0;
            }
        }
        let next = cur.clone();
        RawJacobiNode {
            pe,
            nblocks,
            n,
            iters: params.iters,
            rows,
            cur,
            next,
            done: 0,
            from_above: VecDeque::new(),
            from_below: VecDeque::new(),
            queue: VecDeque::new(),
            finished: 0,
            sum: 0.0,
        }
    }

    fn w(&self) -> usize {
        self.n + 2
    }

    fn send_edges(&self, net: &mut dyn NetCtx) {
        let w = self.w();
        if self.pe.index() > 0 {
            let row = self.cur[w..2 * w].to_vec();
            let bytes = (row.len() * 8) as u32 + 8;
            net.send(
                Pe::from(self.pe.index() - 1),
                bytes,
                Box::new(RawGhost {
                    iter: self.done,
                    from_above: false,
                    row,
                }),
            );
        }
        if self.pe.index() + 1 < self.nblocks {
            let row = self.cur[self.rows * self.w()..(self.rows + 1) * self.w()].to_vec();
            let bytes = (row.len() * 8) as u32 + 8;
            net.send(
                Pe::from(self.pe.index() + 1),
                bytes,
                Box::new(RawGhost {
                    iter: self.done,
                    from_above: true,
                    row,
                }),
            );
        }
    }

    fn advance(&mut self, net: &mut dyn NetCtx) {
        let w = self.w();
        while self.done < self.iters {
            let need_above = self.pe.index() > 0;
            let need_below = self.pe.index() + 1 < self.nblocks;
            if (need_above && self.from_above.is_empty())
                || (need_below && self.from_below.is_empty())
            {
                return;
            }
            if need_above {
                let row = self.from_above.pop_front().expect("checked");
                self.cur[..w].copy_from_slice(&row);
            }
            if need_below {
                let row = self.from_below.pop_front().expect("checked");
                self.cur[(self.rows + 1) * w..].copy_from_slice(&row);
            }
            for r in 1..=self.rows {
                for c in 1..=self.n {
                    self.next[r * w + c] = 0.25
                        * (self.cur[(r - 1) * w + c]
                            + self.cur[(r + 1) * w + c]
                            + self.cur[r * w + c - 1]
                            + self.cur[r * w + c + 1]);
                }
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            net.charge(work((self.rows * self.n) as u64, JACOBI_CELL_NS));
            self.done += 1;
            if self.done < self.iters {
                self.send_edges(net);
            } else {
                // Report the block checksum to PE 0.
                let mut s = 0.0;
                for r in 1..=self.rows {
                    for c in 1..=self.n {
                        s += self.cur[r * w + c];
                    }
                }
                net.send(Pe::ZERO, 8, Box::new(s));
            }
        }
    }
}

impl NodeProgram for RawJacobiNode {
    fn boot(&mut self, net: &mut dyn NetCtx) {
        if self.rows > 0 && self.iters > 0 {
            self.send_edges(net);
            self.advance(net);
        } else if self.rows > 0 {
            net.send(Pe::ZERO, 8, Box::new(0.0f64));
        }
    }

    fn incoming(&mut self, pkt: Packet) {
        self.queue.push_back(pkt);
    }

    fn step(&mut self, net: &mut dyn NetCtx) -> Option<StepKind> {
        let pkt = self.queue.pop_front()?;
        if pkt.payload.is::<RawGhost>() {
            let ghost = pkt.payload.downcast::<RawGhost>().unwrap();
            debug_assert!(ghost.iter >= self.done);
            if ghost.from_above {
                self.from_above.push_back(ghost.row);
            } else {
                self.from_below.push_back(ghost.row);
            }
            self.advance(net);
        } else {
            // A block checksum arriving at PE 0.
            let s = *pkt.payload.downcast::<f64>().unwrap();
            debug_assert_eq!(self.pe, Pe::ZERO);
            self.sum += s;
            self.finished += 1;
            if self.finished == self.nblocks {
                net.deposit(Box::new(self.sum));
                net.stop();
            }
        }
        Some(StepKind::User)
    }

    fn has_work(&self) -> bool {
        !self.queue.is_empty()
    }
}

/// Run the hand-coded Jacobi on the simulator: returns `(checksum,
/// simulated ns)`.
pub fn raw_jacobi(params: JacobiParams, npes: usize, preset: MachinePreset) -> (f64, u64) {
    let factory = FnFactory(move |pe, n| RawJacobiNode::new(pe, n, params));
    let cfg = SimConfig::preset(npes, preset);
    let mut rep = SimMachine::run_factory(cfg, &factory);
    let sum = rep.take_result::<f64>().expect("checksum deposited");
    (sum, rep.end_time.as_nanos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::jacobi_seq;

    #[test]
    fn raw_pingpong_time_matches_cost_model() {
        let preset = MachinePreset::NcubeLike;
        let model = preset.cost_model();
        let rounds = 100;
        let bytes = 64;
        let t = raw_pingpong(rounds, bytes, preset);
        let per_msg = (model.latency(bytes, 1) + model.dispatch).as_nanos();
        let expect = (2 * rounds + 1) as u64 * per_msg;
        let tol = 2 * per_msg;
        assert!(
            t >= expect - tol && t <= expect + tol,
            "t={t} expect~{expect}"
        );
    }

    #[test]
    fn kernel_pingpong_completes() {
        let prog = kernel_pingpong(50, 64);
        let mut rep = prog.run_sim_preset(2, MachinePreset::NcubeLike);
        assert_eq!(rep.take_result::<u32>(), Some(50));
    }

    #[test]
    fn kernel_overhead_is_bounded() {
        // The kernel adds queueing and envelope overhead per message but
        // must stay within a small factor of raw message passing.
        let preset = MachinePreset::NcubeLike;
        let raw = raw_pingpong(200, 64, preset) as f64;
        let prog = kernel_pingpong(200, 64);
        let kernel = prog.run_sim_preset(2, preset).time_ns as f64;
        let ratio = kernel / raw;
        assert!(
            (1.0..2.5).contains(&ratio),
            "kernel/raw per-message ratio {ratio:.2} out of expected band"
        );
    }

    #[test]
    fn raw_jacobi_matches_sequential() {
        let params = JacobiParams { n: 24, iters: 10 };
        let want = jacobi_seq(params);
        for npes in [1usize, 3, 8] {
            let (got, _) = raw_jacobi(params, npes, MachinePreset::NcubeLike);
            let close = (got - want).abs() <= 1e-9 * want.abs().max(1.0);
            assert!(close, "npes={npes}: got {got}, want {want}");
        }
    }

    #[test]
    fn kernel_jacobi_overhead_vs_raw() {
        let params = JacobiParams { n: 64, iters: 8 };
        let (_, raw_t) = raw_jacobi(params, 4, MachinePreset::NcubeLike);
        let prog = crate::jacobi::build_default(params);
        let kernel_t = prog.run_sim_preset(4, MachinePreset::NcubeLike).time_ns;
        let ratio = kernel_t as f64 / raw_t as f64;
        assert!(
            (0.9..2.0).contains(&ratio),
            "kernel/raw jacobi ratio {ratio:.2} out of expected band"
        );
    }
}
