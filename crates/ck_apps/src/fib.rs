//! Parallel Fibonacci — the canonical adaptive tree computation.
//!
//! Every node of the recursion above the grain threshold becomes a
//! chare; below it the subtree is evaluated sequentially inside one
//! entry method. The value of fib is irrelevant (it's the classic
//! exponential recursion); what the benchmark measures is the kernel's
//! ability to spread an *unpredictable* tree of small tasks across PEs —
//! the workload the paper's load-balancing experiments are built on.

use chare_kernel::prelude::*;

use crate::costs::{work, FIB_NODE_NS};

/// Entry point: a child reports its subtree's value.
pub const EP_RESULT: EpId = EpId(1);

/// Parameters of a fib run.
#[derive(Clone, Copy, Debug)]
pub struct FibParams {
    /// Argument.
    pub n: u32,
    /// Subtrees with `n < grain` are evaluated sequentially.
    pub grain: u32,
}

impl Default for FibParams {
    fn default() -> Self {
        FibParams { n: 25, grain: 16 }
    }
}

/// Sequential fib (u64; exact for n ≤ 93).
pub fn fib_seq(n: u32) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..n {
        let c = a + b;
        a = b;
        b = c;
    }
    a
}

/// Number of calls the naive recursion performs for `n` — the work
/// model for charging simulated time.
pub fn fib_calls(n: u32) -> u64 {
    // calls(n) = 1 + calls(n-1) + calls(n-2); calls(0) = calls(1) = 1
    // which solves to 2 * fib(n+1) - 1.
    2 * fib_seq(n + 1) - 1
}

/// Seed of the main chare.
#[derive(Clone)]
pub struct MainSeed {
    /// Parameters.
    pub params: FibParams,
    /// Kind handle for spawning the tree.
    pub fib: Kind<FibChare>,
}
message!(MainSeed);

/// Seed of a tree-node chare.
#[derive(Clone)]
pub struct FibSeed {
    n: u32,
    grain: u32,
    parent: ChareId,
    fib: Kind<FibChare>,
}
message!(FibSeed);

// Wire codecs for the multi-process backend (positional field lists).
wire_struct!(FibParams { n, grain });
wire_struct!(MainSeed { params, fib });
wire_struct!(FibSeed { n, grain, parent, fib });

/// The main chare: spawns the root and exits with its result.
pub struct FibMain;

impl ChareInit for FibMain {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.create(
            seed.fib,
            FibSeed {
                n: seed.params.n,
                grain: seed.params.grain,
                parent: me,
                fib: seed.fib,
            },
        );
        FibMain
    }
}

impl Chare for FibMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        debug_assert_eq!(ep, EP_RESULT);
        let value = cast::<u64>(msg);
        ctx.exit(value);
    }
}

/// One node of the fib tree.
pub struct FibChare {
    parent: ChareId,
    pending: u8,
    sum: u64,
}

impl ChareInit for FibChare {
    type Seed = FibSeed;
    fn create(seed: FibSeed, ctx: &mut Ctx) -> Self {
        if seed.n < seed.grain {
            // Sequential leaf: charge the cost of the whole subtree.
            ctx.charge(work(fib_calls(seed.n), FIB_NODE_NS));
            ctx.send(seed.parent, EP_RESULT, fib_seq(seed.n));
            ctx.destroy_self();
            return FibChare {
                parent: seed.parent,
                pending: 0,
                sum: 0,
            };
        }
        ctx.charge(work(1, FIB_NODE_NS));
        let me = ctx.self_id();
        for d in [1, 2] {
            ctx.create(
                seed.fib,
                FibSeed {
                    n: seed.n - d,
                    grain: seed.grain,
                    parent: me,
                    fib: seed.fib,
                },
            );
        }
        FibChare {
            parent: seed.parent,
            pending: 2,
            sum: 0,
        }
    }
}

impl Chare for FibChare {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        debug_assert_eq!(ep, EP_RESULT);
        self.sum += cast::<u64>(msg);
        self.pending -= 1;
        if self.pending == 0 {
            ctx.charge(work(1, FIB_NODE_NS));
            ctx.send(self.parent, EP_RESULT, self.sum);
            ctx.destroy_self();
        }
    }
}

/// Build the fib program with the given strategies.
pub fn build(
    params: FibParams,
    queueing: QueueingStrategy,
    balance: BalanceStrategy,
) -> Program {
    let mut b = ProgramBuilder::new();
    let fib = b.chare::<FibChare>();
    let main = b.chare::<FibMain>();
    b.wire::<MainSeed>();
    b.wire::<FibSeed>();
    b.queueing(queueing);
    b.balance(balance);
    b.main(main, MainSeed { params, fib });
    b.build()
}

/// Build with the defaults the speedup tables use (FIFO + ACWN).
pub fn build_default(params: FibParams) -> Program {
    build(params, QueueingStrategy::Fifo, BalanceStrategy::acwn())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_values() {
        assert_eq!(fib_seq(0), 0);
        assert_eq!(fib_seq(1), 1);
        assert_eq!(fib_seq(10), 55);
        assert_eq!(fib_seq(25), 75025);
    }

    #[test]
    fn calls_recurrence_holds() {
        fn naive(n: u32) -> u64 {
            if n < 2 {
                1
            } else {
                1 + naive(n - 1) + naive(n - 2)
            }
        }
        for n in 0..15 {
            assert_eq!(fib_calls(n), naive(n), "n={n}");
        }
    }

    #[test]
    fn computes_fib_on_sim() {
        let params = FibParams { n: 18, grain: 10 };
        for balance in [
            BalanceStrategy::Local,
            BalanceStrategy::Random,
            BalanceStrategy::acwn(),
        ] {
            let prog = build(params, QueueingStrategy::Fifo, balance.clone());
            let mut rep = prog.run_sim_preset(8, MachinePreset::NcubeLike);
            assert_eq!(
                rep.take_result::<u64>(),
                Some(fib_seq(18)),
                "balance {balance:?}"
            );
        }
    }

    #[test]
    fn computes_fib_with_token_and_central() {
        let params = FibParams { n: 16, grain: 8 };
        for balance in [BalanceStrategy::TokenIdle, BalanceStrategy::CentralManager] {
            let prog = build(params, QueueingStrategy::Fifo, balance.clone());
            let mut rep = prog.run_sim_preset(4, MachinePreset::NcubeLike);
            assert_eq!(
                rep.take_result::<u64>(),
                Some(fib_seq(16)),
                "balance {balance:?}"
            );
        }
    }

    #[test]
    fn grain_equal_n_is_fully_sequential() {
        let prog = build_default(FibParams { n: 15, grain: 16 });
        let mut rep = prog.run_sim_preset(4, MachinePreset::NcubeLike);
        assert_eq!(rep.take_result::<u64>(), Some(fib_seq(15)));
        // Only the main chare and one leaf chare were created.
        assert_eq!(rep.counter_total("chares_created"), 2);
    }

    #[test]
    fn parallel_run_beats_one_pe() {
        let params = FibParams { n: 22, grain: 12 };
        let prog = build_default(params);
        let t1 = prog.run_sim_preset(1, MachinePreset::NcubeLike).time_ns;
        let t16 = prog.run_sim_preset(16, MachinePreset::NcubeLike).time_ns;
        assert!(
            t16 * 3 < t1 * 2,
            "expected >1.5x speedup on 16 PEs: t1={t1} t16={t16}"
        );
    }

    #[test]
    fn works_on_threads() {
        let params = FibParams { n: 20, grain: 14 };
        let prog = build_default(params);
        let mut rep = prog.run_threads(4);
        assert!(!rep.timed_out);
        assert_eq!(rep.take_result::<u64>(), Some(fib_seq(20)));
    }

    #[test]
    fn deterministic_on_sim() {
        let params = FibParams { n: 18, grain: 10 };
        let prog = build(params, QueueingStrategy::Fifo, BalanceStrategy::Random);
        let a = prog.run_sim_preset(8, MachinePreset::NcubeLike);
        let b = prog.run_sim_preset(8, MachinePreset::NcubeLike);
        assert_eq!(a.time_ns, b.time_ns);
        assert_eq!(
            a.counter_total("chares_created"),
            b.counter_total("chares_created")
        );
    }
}
