//! Simulated work costs for the benchmark applications.
//!
//! On the discrete-event simulator, application handlers charge compute
//! time through `Ctx::charge`; these constants set the cost of one unit
//! of each benchmark's inner-loop work. The absolute values approximate
//! a late-1980s microprocessor (a few MFLOPS) so that the ratio between
//! computation grain and the network cost model's message latencies is
//! in the regime the paper's experiments explore. On the thread backend
//! the real work is the real cost and these are ignored.

use multicomputer::Cost;

/// One recursive call of the fib tree (one addition plus call overhead).
pub const FIB_NODE_NS: u64 = 120;

/// One node of the N-queens search tree (bitmask candidate generation).
pub const QUEENS_NODE_NS: u64 = 250;

/// One node of the TSP branch & bound tree (bound computation).
pub const TSP_NODE_NS: u64 = 900;

/// One node of the 15-puzzle IDA* search (move generation + Manhattan
/// update).
pub const PUZZLE_NODE_NS: u64 = 400;

/// One 5-point-stencil cell update of Jacobi relaxation.
pub const JACOBI_CELL_NS: u64 = 160;

/// One trial division in the primes benchmark.
pub const PRIMES_DIV_NS: u64 = 45;

/// Hashing one MMR leaf (models hashing a whole data block into its
/// leaf digest, the dominant cost of a Merkle build — deliberately
/// heavy so production-grain runs are compute-bound and near-linear
/// against the era's ~150 us per-message software overhead).
pub const MMR_LEAF_NS: u64 = 25_000;

/// Combining two MMR child digests into an interior node.
pub const MMR_NODE_NS: u64 = 400;

/// Producing one row of one pipelined table-fill block (per dependency
/// consumed plus the base hash).
pub const FILL_ROW_NS: u64 = 700;

/// Charge for `units` of work at `ns_per_unit`.
pub fn work(units: u64, ns_per_unit: u64) -> Cost {
    Cost::nanos(units.saturating_mul(ns_per_unit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_scales() {
        assert_eq!(work(10, 100), Cost::nanos(1000));
        assert_eq!(work(0, 100), Cost::ZERO);
    }

    #[test]
    fn work_saturates() {
        assert_eq!(work(u64::MAX, 2), Cost::nanos(u64::MAX));
    }
}
