//! Pipelined multi-table fill — the staged-dependency workload.
//!
//! `stages` tables of `blocks` row-blocks each are filled in dependency
//! order: stage 0 is seeded directly, and block `b` of stage `s > 0` is
//! a row-wise hash over blocks `[b-width+1, b]` of stage `s-1` (clipped
//! at the left edge) — the shape of a proof-system trace: each table
//! derived from a sliding window of the previous one. Completed blocks
//! are published into the distributed table; consumers pull their
//! dependency window back out, and a stage's blocks are deleted as soon
//! as the following stage has completely consumed them (bounded-memory
//! streaming — at most two stages are ever resident).
//!
//! The scheduling story is the point: every block chare carries the
//! lexicographic priority `(stage, block)` via [`BitPrio::from_path`].
//! Under FIFO queueing, downstream blocks run as soon as their window
//! closes, interleaving stages; under bitvector-priority queueing the
//! kernel drains early stages first, which visibly shifts per-stage
//! completion times while leaving the digest byte-identical (Table H
//! renders both profiles).
//!
//! The serial reference ([`fill_seq`]) is the oracle on every backend.

use chare_kernel::prelude::*;

use crate::costs::{work, FILL_ROW_NS};
use crate::hashes::{mix64, row_mix};

/// Main chare entry points.
pub const EP_DONE: EpId = EpId(1);
pub const EP_DELETED: EpId = EpId(2);
/// Block chare entry points.
pub const EP_DEP: EpId = EpId(1);
pub const EP_PUT: EpId = EpId(2);

/// Parameters of a pipelined fill.
#[derive(Clone, Copy, Debug)]
pub struct FillParams {
    /// Number of dependent stages (>= 1).
    pub stages: u32,
    /// Row-blocks per stage (>= 1).
    pub blocks: u32,
    /// Rows per block (>= 1).
    pub rows: u32,
    /// Dependency-window width: block `b` of a stage reads blocks
    /// `[b-width+1, b]` of the previous stage (>= 1).
    pub width: u32,
    /// Seed mixed into every stage-0 row.
    pub seed: u64,
}

impl Default for FillParams {
    fn default() -> Self {
        FillParams { stages: 4, blocks: 16, rows: 32, width: 2, seed: 1 }
    }
}

impl FillParams {
    fn validate(&self) {
        assert!(self.stages >= 1, "need at least one stage");
        assert!(self.blocks >= 1, "need at least one block");
        assert!(self.rows >= 1, "need at least one row");
        assert!(self.width >= 1, "need a dependency window of at least 1");
    }
}

/// Program result: the fill digest plus per-stage completion times
/// (simulated ns on the simulator, wall-clock ns elsewhere — only the
/// digest is backend-portable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FillResult {
    /// XOR of every block digest — order-independent, so arrival order
    /// doesn't matter, while each block digest pins its exact content
    /// and position.
    pub digest: u64,
    /// Completion time of each stage (last block done), in ns.
    pub stage_done: Vec<u64>,
}

wire_struct!(FillParams { stages, blocks, rows, width, seed });
wire_struct!(FillResult { digest, stage_done });

// -- Serial reference -----------------------------------------------------

/// Dependency blocks of `(stage, block)`: the previous stage's window
/// `[block-width+1, block]`, ascending.
pub fn dep_blocks(block: u32, width: u32) -> std::ops::RangeInclusive<u32> {
    block.saturating_sub(width - 1)..=block
}

/// The base hash a block's rows start from.
fn base_hash(seed: u64, stage: u32, block: u32, row: u32) -> u64 {
    mix64(seed ^ ((stage as u64) << 40) ^ ((block as u64) << 20) ^ row as u64)
}

/// Compute one block's rows from its (ascending) dependency rows.
pub fn block_rows(params: &FillParams, stage: u32, block: u32, deps: &[&[u64]]) -> Vec<u64> {
    (0..params.rows)
        .map(|r| {
            let mut acc = base_hash(params.seed, stage, block, r);
            for dep in deps {
                acc = row_mix(acc, dep[r as usize]);
            }
            acc
        })
        .collect()
}

/// Digest of one completed block (position- and content-sensitive).
pub fn block_digest(stage: u32, block: u32, rows: &[u64]) -> u64 {
    let mut d = mix64(((stage as u64) << 32) | block as u64);
    for &row in rows {
        d = row_mix(d, row);
    }
    d
}

/// Serial reference: fill every stage in order, returning the digest
/// and each stage's full row matrix (for the proptests).
pub fn fill_seq_full(params: &FillParams) -> (u64, Vec<Vec<Vec<u64>>>) {
    params.validate();
    let mut digest = 0u64;
    let mut stages: Vec<Vec<Vec<u64>>> = Vec::new();
    for s in 0..params.stages {
        let mut stage_rows: Vec<Vec<u64>> = Vec::new();
        for b in 0..params.blocks {
            let rows = if s == 0 {
                block_rows(params, s, b, &[])
            } else {
                let prev = &stages[s as usize - 1];
                let deps: Vec<&[u64]> =
                    dep_blocks(b, params.width).map(|d| prev[d as usize].as_slice()).collect();
                block_rows(params, s, b, &deps)
            };
            digest ^= block_digest(s, b, &rows);
            stage_rows.push(rows);
        }
        stages.push(stage_rows);
    }
    (digest, stages)
}

/// Serial reference digest.
pub fn fill_seq(params: &FillParams) -> u64 {
    fill_seq_full(params).0
}

// -- Messages -------------------------------------------------------------

/// Table key of `(stage, block)`.
fn key(stage: u32, block: u32) -> u64 {
    ((stage as u64) << 32) | block as u64
}

/// Seed of the main coordinator.
#[derive(Clone)]
pub struct MainSeed {
    params: FillParams,
    block_kind: Kind<BlockChare>,
    table: TableRef<Vec<u64>>,
}
message!(MainSeed);

/// Seed of one block chare.
#[derive(Clone)]
pub struct BlockSeed {
    params: FillParams,
    stage: u32,
    block: u32,
    main: ChareId,
    table: TableRef<Vec<u64>>,
}
message!(BlockSeed);

/// A block finished: its digest, for the main coordinator's fold.
#[derive(Clone, Copy)]
pub struct BlockDone {
    stage: u32,
    block: u32,
    digest: u64,
}
message!(BlockDone);

wire_struct!(MainSeed { params, block_kind, table });
wire_struct!(BlockSeed { params, stage, block, main, table });
wire_struct!(BlockDone { stage, block, digest });

// -- Chares ---------------------------------------------------------------

/// The coordinator: releases blocks when their dependency window
/// closes, folds digests, times stage completion, and garbage-collects
/// consumed stages from the table.
pub struct FillMain {
    params: FillParams,
    block_kind: Kind<BlockChare>,
    table: TableRef<Vec<u64>>,
    /// Outstanding dependency count per `(stage, block)`, row-major.
    deps_left: Vec<u32>,
    /// Blocks not yet done, per stage.
    stage_left: Vec<u32>,
    /// `now_ns` when each stage completed.
    stage_done: Vec<u64>,
    digest: u64,
    blocks_left: u64,
    deletes_left: u64,
}

impl FillMain {
    fn idx(&self, stage: u32, block: u32) -> usize {
        (stage * self.params.blocks + block) as usize
    }

    fn release(&self, stage: u32, block: u32, ctx: &mut Ctx) {
        let me = ctx.self_id();
        ctx.create_prio(
            self.block_kind,
            BlockSeed {
                params: self.params,
                stage,
                block,
                main: me,
                table: self.table,
            },
            Priority::Bits(BitPrio::from_path(&[stage, block])),
        );
    }

    fn maybe_exit(&mut self, ctx: &mut Ctx) {
        if self.blocks_left == 0 && self.deletes_left == 0 {
            ctx.exit(FillResult {
                digest: self.digest,
                stage_done: self.stage_done.clone(),
            });
        }
    }
}

impl ChareInit for FillMain {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let p = seed.params;
        p.validate();
        let mut deps_left = vec![0u32; (p.stages * p.blocks) as usize];
        for s in 1..p.stages {
            for b in 0..p.blocks {
                deps_left[(s * p.blocks + b) as usize] = dep_blocks(b, p.width).count() as u32;
            }
        }
        let main = FillMain {
            params: p,
            block_kind: seed.block_kind,
            table: seed.table,
            deps_left,
            stage_left: vec![p.blocks; p.stages as usize],
            stage_done: vec![0; p.stages as usize],
            digest: 0,
            blocks_left: p.stages as u64 * p.blocks as u64,
            deletes_left: p.stages as u64 * p.blocks as u64,
        };
        // Release stage 0 in a seed-derived shuffled order. Under FIFO
        // the shuffle *is* the drain order; under bitvector priorities
        // the kernel re-sorts the backlog to (stage, block) — the
        // contrast Table H's completion profiles render.
        let mut order: Vec<u32> = (0..p.blocks).collect();
        order.sort_by_key(|&b| mix64(p.seed ^ (0xB10C_0000_0000 + b as u64)));
        for b in order {
            main.release(0, b, ctx);
        }
        main
    }
}

impl Chare for FillMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_DONE => {
                let done = cast::<BlockDone>(msg);
                self.digest ^= done.digest;
                self.blocks_left -= 1;
                let s = done.stage;
                self.stage_left[s as usize] -= 1;
                if self.stage_left[s as usize] == 0 {
                    self.stage_done[s as usize] = ctx.now_ns();
                    // Every consumer of stage s-1 has now finished (a
                    // block only reports done after its put is acked),
                    // so the previous stage can be garbage-collected.
                    // The final stage is collected too: the digest is
                    // the product; the tables are scratch space.
                    let me = ctx.self_id();
                    let last = s + 1 == self.params.stages;
                    let mut gc_stages: Vec<u32> = Vec::new();
                    if s > 0 {
                        gc_stages.push(s - 1);
                    }
                    if last {
                        gc_stages.push(s);
                    }
                    for &g in &gc_stages {
                        for b in 0..self.params.blocks {
                            ctx.table_delete(
                                self.table,
                                key(g, b),
                                Some(Notify::Chare(me, EP_DELETED)),
                            );
                        }
                    }
                }
                // Open the next stage's windows.
                if s + 1 < self.params.stages {
                    for nb in done.block..(done.block + self.params.width).min(self.params.blocks)
                    {
                        let i = self.idx(s + 1, nb);
                        self.deps_left[i] -= 1;
                        if self.deps_left[i] == 0 {
                            self.release(s + 1, nb, ctx);
                        }
                    }
                }
                self.maybe_exit(ctx);
            }
            EP_DELETED => {
                let ack = cast::<TableAck>(msg);
                assert!(ack.existed, "deleted a block that was never published");
                self.deletes_left -= 1;
                self.maybe_exit(ctx);
            }
            _ => unreachable!("unexpected entry point {ep:?}"),
        }
    }
}

/// One block of one stage: pulls its dependency window, computes its
/// rows, publishes them, and reports its digest.
pub struct BlockChare {
    seed: BlockSeed,
    /// Dependency rows by window offset.
    deps: Vec<Option<Vec<u64>>>,
    pending: u32,
    digest: u64,
}

impl BlockChare {
    fn compute_and_put(&mut self, ctx: &mut Ctx) {
        let p = &self.seed.params;
        let deps: Vec<&[u64]> =
            self.deps.iter().map(|d| d.as_ref().expect("missing dep").as_slice()).collect();
        let units = p.rows as u64 * (deps.len() as u64 + 1);
        ctx.charge(work(units, FILL_ROW_NS));
        let rows = block_rows(p, self.seed.stage, self.seed.block, &deps);
        self.digest = block_digest(self.seed.stage, self.seed.block, &rows);
        self.deps.clear();
        let me = ctx.self_id();
        // The put must be acked before the done report: the report is
        // what releases dependent blocks, so their gets can never race
        // this put.
        ctx.table_put(
            self.seed.table,
            key(self.seed.stage, self.seed.block),
            rows,
            Some(Notify::Chare(me, EP_PUT)),
        );
    }
}

impl ChareInit for BlockChare {
    type Seed = BlockSeed;
    fn create(seed: BlockSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        let mut chare = BlockChare { seed, deps: Vec::new(), pending: 0, digest: 0 };
        if chare.seed.stage == 0 {
            chare.compute_and_put(ctx);
            return chare;
        }
        let window = dep_blocks(chare.seed.block, chare.seed.params.width);
        chare.deps = vec![None; window.clone().count()];
        chare.pending = chare.deps.len() as u32;
        for d in window {
            ctx.table_get(chare.seed.table, key(chare.seed.stage - 1, d), Notify::Chare(me, EP_DEP));
        }
        chare
    }
}

impl Chare for BlockChare {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_DEP => {
                let got = cast::<TableGot<Vec<u64>>>(msg);
                let rows = got.value.expect("dependency block missing from table");
                let first = *dep_blocks(self.seed.block, self.seed.params.width).start();
                let offset = ((got.key & 0xFFFF_FFFF) as u32 - first) as usize;
                assert!(self.deps[offset].is_none(), "dep {} pulled twice", got.key);
                self.deps[offset] = Some(rows);
                self.pending -= 1;
                if self.pending == 0 {
                    self.compute_and_put(ctx);
                }
            }
            EP_PUT => {
                let _ack = cast::<TableAck>(msg);
                ctx.send(
                    self.seed.main,
                    EP_DONE,
                    BlockDone {
                        stage: self.seed.stage,
                        block: self.seed.block,
                        digest: self.digest,
                    },
                );
                ctx.destroy_self();
            }
            _ => unreachable!("unexpected entry point {ep:?}"),
        }
    }
}

// -- Program construction -------------------------------------------------

/// Build the pipelined fill with the given strategies.
pub fn build(
    params: FillParams,
    queueing: QueueingStrategy,
    balance: BalanceStrategy,
) -> Program {
    let mut b = ProgramBuilder::new();
    let block_kind = b.chare::<BlockChare>();
    let main = b.chare::<FillMain>();
    let table = b.table::<Vec<u64>>();
    b.wire::<FillParams>();
    b.wire::<FillResult>();
    b.wire::<MainSeed>();
    b.wire::<BlockSeed>();
    b.wire::<BlockDone>();
    b.wire::<Vec<u64>>();
    b.wire::<TableGot<Vec<u64>>>();
    b.queueing(queueing);
    b.balance(balance);
    b.main(main, MainSeed { params, block_kind, table });
    b.build()
}

/// Build with the defaults the tables use (bitvector `(stage, block)`
/// priorities + random placement).
pub fn build_default(params: FillParams) -> Program {
    build(params, QueueingStrategy::BitvecPriority, BalanceStrategy::Random)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_reference_is_stable() {
        let p = FillParams::default();
        assert_eq!(fill_seq(&p), fill_seq(&p));
        // Every knob moves the digest.
        assert_ne!(fill_seq(&p), fill_seq(&FillParams { seed: 2, ..p }));
        assert_ne!(fill_seq(&p), fill_seq(&FillParams { width: 3, ..p }));
        assert_ne!(fill_seq(&p), fill_seq(&FillParams { stages: 3, ..p }));
        assert_ne!(fill_seq(&p), fill_seq(&FillParams { rows: 31, ..p }));
    }

    #[test]
    fn dep_window_clips_at_the_left_edge() {
        assert_eq!(dep_blocks(0, 3).collect::<Vec<_>>(), vec![0]);
        assert_eq!(dep_blocks(1, 3).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(dep_blocks(5, 3).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert_eq!(dep_blocks(5, 1).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn parallel_matches_serial_on_sim() {
        let p = FillParams { stages: 3, blocks: 8, rows: 8, width: 2, seed: 7 };
        for balance in [
            BalanceStrategy::Local,
            BalanceStrategy::Random,
            BalanceStrategy::acwn(),
        ] {
            let prog = build(p, QueueingStrategy::BitvecPriority, balance.clone());
            let mut rep = prog.run_sim_preset(8, MachinePreset::NcubeLike);
            let got = rep.take_result::<FillResult>().expect("result");
            assert_eq!(got.digest, fill_seq(&p), "balance {balance:?}");
            assert_eq!(got.stage_done.len(), 3);
        }
    }

    #[test]
    fn queueing_strategy_changes_profile_not_digest() {
        let p = FillParams { stages: 4, blocks: 24, rows: 16, width: 1, seed: 1 };
        let run = |q| {
            let mut rep = build(p, q, BalanceStrategy::Random).run_sim_preset(4, MachinePreset::NcubeLike);
            rep.take_result::<FillResult>().expect("result")
        };
        let fifo = run(QueueingStrategy::Fifo);
        let bitvec = run(QueueingStrategy::BitvecPriority);
        assert_eq!(fifo.digest, bitvec.digest);
        // The pipeline profile is the observable difference: priority
        // queueing drains stage 0 strictly earlier (relative to the
        // run) than FIFO's stage-interleaved schedule.
        assert_ne!(
            fifo.stage_done, bitvec.stage_done,
            "expected FIFO and bitvector priority to schedule differently"
        );
    }

    #[test]
    fn edge_shapes_run_on_sim() {
        for p in [
            FillParams { stages: 1, blocks: 4, rows: 4, width: 2, seed: 1 },
            FillParams { stages: 3, blocks: 1, rows: 2, width: 2, seed: 1 },
            FillParams { stages: 2, blocks: 5, rows: 1, width: 99, seed: 1 },
        ] {
            let mut rep = build_default(p).run_sim_preset(4, MachinePreset::NcubeLike);
            let got = rep.take_result::<FillResult>().expect("result");
            assert_eq!(got.digest, fill_seq(&p), "{p:?}");
        }
    }

    #[test]
    fn works_on_threads() {
        let p = FillParams { stages: 3, blocks: 6, rows: 8, width: 2, seed: 4 };
        let mut rep = build_default(p).run_threads(4);
        assert!(!rep.timed_out);
        assert_eq!(rep.take_result::<FillResult>().expect("result").digest, fill_seq(&p));
    }

    #[test]
    fn deterministic_on_sim() {
        let p = FillParams { stages: 3, blocks: 8, rows: 8, width: 2, seed: 2 };
        let prog = build_default(p);
        let a = prog.run_sim_preset(8, MachinePreset::NcubeLike);
        let b = prog.run_sim_preset(8, MachinePreset::NcubeLike);
        assert_eq!(a.time_ns, b.time_ns);
    }
}
