//! Jacobi relaxation on a 2-D grid — the regular, communication-bound
//! benchmark, built on **branch-office chares**.
//!
//! The `(n+2) x (n+2)` grid (fixed boundary) is split into horizontal
//! blocks, one per PE, each held by that PE's branch of a single BOC.
//! Every iteration a branch exchanges ghost rows with its neighbors and
//! applies the 5-point stencil to its block. Jacobi (as opposed to
//! Gauss-Seidel) reads only the previous iteration, so the parallel
//! computation is bitwise identical to the sequential one regardless of
//! partitioning — only the final checksum summation order differs.
//!
//! Termination: after `iters` sweeps every branch contributes its block
//! checksum to an accumulator and goes quiet; quiescence detection then
//! triggers the collect.

use chare_kernel::prelude::*;

use crate::costs::{work, JACOBI_CELL_NS};

/// Entry point on each branch: a ghost row from a neighbor.
pub const EP_GHOST: EpId = EpId(1);
/// Entry point on the main chare: quiescence notification.
pub const EP_QUIESCENT: EpId = EpId(2);
/// Entry point on the main chare: collected checksum.
pub const EP_SUM: EpId = EpId(3);

/// Parameters of a Jacobi run.
#[derive(Clone, Copy, Debug)]
pub struct JacobiParams {
    /// Interior grid size (the full grid is `(n+2)^2`).
    pub n: usize,
    /// Number of sweeps.
    pub iters: u32,
}

impl Default for JacobiParams {
    fn default() -> Self {
        JacobiParams { n: 128, iters: 20 }
    }
}

/// Initial value of interior cells.
const INTERIOR0: f64 = 0.0;
/// Fixed value of the top boundary row (heat source).
const TOP: f64 = 1.0;
/// Fixed value of the other boundaries.
const EDGE: f64 = 0.0;

/// Sequential reference: run `iters` sweeps, return the interior sum.
pub fn jacobi_seq(params: JacobiParams) -> f64 {
    let n = params.n;
    let w = n + 2;
    let mut cur = vec![INTERIOR0; w * w];
    for c in 0..w {
        cur[c] = TOP; // top boundary row
        cur[(w - 1) * w + c] = EDGE;
    }
    for r in 0..w {
        cur[r * w] = EDGE;
        cur[r * w + w - 1] = EDGE;
    }
    cur[0] = TOP;
    cur[w - 1] = TOP;
    let mut next = cur.clone();
    for _ in 0..params.iters {
        for r in 1..=n {
            for c in 1..=n {
                next[r * w + c] = 0.25
                    * (cur[(r - 1) * w + c]
                        + cur[(r + 1) * w + c]
                        + cur[r * w + c - 1]
                        + cur[r * w + c + 1]);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    interior_sum(&cur, n, n, w)
}

/// Sum of the interior cells of a block grid of `rows` interior rows,
/// `n` interior columns and total width `w`.
fn interior_sum(grid: &[f64], rows: usize, n: usize, w: usize) -> f64 {
    let mut s = 0.0;
    for r in 1..=rows {
        for c in 1..=n {
            s += grid[r * w + c];
        }
    }
    s
}

/// Interior rows assigned to block `b` of `nblocks` over `n` rows:
/// `[start, start + len)`, 1-based (row 0 is the boundary).
pub fn block_rows(n: usize, nblocks: usize, b: usize) -> (usize, usize) {
    let base = n / nblocks;
    let extra = n % nblocks;
    let len = base + usize::from(b < extra);
    let start = 1 + b * base + b.min(extra);
    (start, len)
}

/// A ghost row exchanged between neighboring blocks.
#[derive(Clone)]
pub struct GhostMsg {
    /// Iteration the row belongs to.
    pub iter: u32,
    /// True if the row comes from the block above (smaller PE).
    pub from_above: bool,
    /// The row values (interior columns plus the two side boundary
    /// cells).
    pub row: Vec<f64>,
}

impl Message for GhostMsg {
    fn bytes(&self) -> u32 {
        8 + (self.row.len() * 8) as u32
    }
}

// Wire codecs for the multi-process backend.
wire_struct!(GhostMsg { iter, from_above, row });
wire_struct!(MainSeed { acc });

/// Per-program BOC configuration.
#[derive(Clone)]
pub struct JacobiCfg {
    /// Parameters.
    pub params: JacobiParams,
    /// Checksum accumulator.
    pub acc: Acc<SumF64>,
}

/// One PE's block of the grid.
pub struct JacobiBranch {
    cfg: JacobiCfg,
    /// Number of active blocks (= min(npes, n)).
    nblocks: usize,
    /// This branch's block index (== PE index), or None if inactive.
    rows: usize,
    /// Block data: `(rows + 2) x (n + 2)`, row 0 and row rows+1 are
    /// ghost/boundary rows.
    cur: Vec<f64>,
    next: Vec<f64>,
    /// Completed iterations.
    done: u32,
    /// Ghost rows from above/below, queued in iteration order.
    from_above: std::collections::VecDeque<Vec<f64>>,
    from_below: std::collections::VecDeque<Vec<f64>>,
}

impl JacobiBranch {
    fn width(&self) -> usize {
        self.cfg.params.n + 2
    }

    fn is_first(&self, pe: Pe) -> bool {
        pe.index() == 0
    }

    fn is_last(&self, pe: Pe) -> bool {
        pe.index() + 1 == self.nblocks
    }

    fn active(&self) -> bool {
        self.rows > 0
    }

    /// Send this block's edge rows (current state) to its neighbors.
    fn send_edges(&self, ctx: &mut Ctx) {
        let me = ctx.pe();
        let boc = ctx.self_boc::<JacobiBranch>();
        let w = self.width();
        if !self.is_first(me) {
            let row = self.cur[w..2 * w].to_vec();
            ctx.send_branch(
                boc,
                Pe::from(me.index() - 1),
                EP_GHOST,
                GhostMsg {
                    iter: self.done,
                    from_above: false,
                    row,
                },
            );
        }
        if !self.is_last(me) {
            let row = self.cur[self.rows * w..(self.rows + 1) * w].to_vec();
            ctx.send_branch(
                boc,
                Pe::from(me.index() + 1),
                EP_GHOST,
                GhostMsg {
                    iter: self.done,
                    from_above: true,
                    row,
                },
            );
        }
    }

    /// Run as many iterations as the available ghosts allow.
    fn advance(&mut self, ctx: &mut Ctx) {
        let me = ctx.pe();
        let w = self.width();
        while self.done < self.cfg.params.iters {
            let need_above = !self.is_first(me);
            let need_below = !self.is_last(me);
            if (need_above && self.from_above.is_empty())
                || (need_below && self.from_below.is_empty())
            {
                return;
            }
            if need_above {
                let row = self.from_above.pop_front().expect("checked");
                self.cur[..w].copy_from_slice(&row);
            }
            if need_below {
                let row = self.from_below.pop_front().expect("checked");
                self.cur[(self.rows + 1) * w..].copy_from_slice(&row);
            }
            for r in 1..=self.rows {
                for c in 1..=self.cfg.params.n {
                    self.next[r * w + c] = 0.25
                        * (self.cur[(r - 1) * w + c]
                            + self.cur[(r + 1) * w + c]
                            + self.cur[r * w + c - 1]
                            + self.cur[r * w + c + 1]);
                }
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            ctx.charge(work(
                (self.rows * self.cfg.params.n) as u64,
                JACOBI_CELL_NS,
            ));
            self.done += 1;
            if self.done < self.cfg.params.iters {
                self.send_edges(ctx);
            } else {
                // Finished: contribute the block checksum and go quiet.
                let sum = interior_sum(&self.cur, self.rows, self.cfg.params.n, w);
                ctx.acc_add(self.cfg.acc, sum);
            }
        }
    }
}

impl BranchInit for JacobiBranch {
    type Cfg = JacobiCfg;
    fn create(cfg: JacobiCfg, ctx: &mut Ctx) -> Self {
        let n = cfg.params.n;
        let nblocks = ctx.npes().min(n);
        let pe = ctx.pe();
        let (_, rows) = if pe.index() < nblocks {
            block_rows(n, nblocks, pe.index())
        } else {
            (0, 0)
        };
        let w = n + 2;
        let mut cur = vec![INTERIOR0; (rows + 2) * w];
        // Side boundaries.
        for r in 0..rows + 2 {
            cur[r * w] = EDGE;
            cur[r * w + w - 1] = EDGE;
        }
        // Global top/bottom boundaries live in the edge blocks' ghost
        // rows and never change.
        if pe.index() == 0 && rows > 0 {
            for cell in cur.iter_mut().take(w) {
                *cell = TOP;
            }
        }
        if pe.index() + 1 == nblocks && rows > 0 {
            for c in 0..w {
                cur[(rows + 1) * w + c] = EDGE;
            }
            cur[(rows + 1) * w] = EDGE;
        }
        let next = cur.clone();
        let mut branch = JacobiBranch {
            cfg,
            nblocks,
            rows,
            cur,
            next,
            done: 0,
            from_above: Default::default(),
            from_below: Default::default(),
        };
        if branch.active() && branch.cfg.params.iters > 0 {
            branch.send_edges(ctx);
            branch.advance(ctx); // single-block case completes here
        } else if branch.active() {
            // Zero iterations: checksum of the initial state.
            let sum = interior_sum(&branch.cur, branch.rows, branch.cfg.params.n, branch.width());
            ctx.acc_add(branch.cfg.acc, sum);
        }
        branch
    }
}

impl Branch for JacobiBranch {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        debug_assert_eq!(ep, EP_GHOST);
        let ghost = cast::<GhostMsg>(msg);
        debug_assert!(ghost.iter >= self.done, "stale ghost row");
        if ghost.from_above {
            self.from_above.push_back(ghost.row);
        } else {
            self.from_below.push_back(ghost.row);
        }
        self.advance(ctx);
    }
}

/// Seed of the main chare.
#[derive(Clone)]
pub struct MainSeed {
    /// Checksum accumulator (same handle the branches hold).
    pub acc: Acc<SumF64>,
}
message!(MainSeed);

/// The main chare: waits for quiescence, collects the checksum.
pub struct JacobiMain {
    acc: Acc<SumF64>,
}

impl ChareInit for JacobiMain {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_QUIESCENT));
        JacobiMain { acc: seed.acc }
    }
}

impl Chare for JacobiMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_QUIESCENT => {
                let _ = cast::<QuiescenceMsg>(msg);
                let me = ctx.self_id();
                ctx.acc_collect(self.acc, Notify::Chare(me, EP_SUM));
            }
            EP_SUM => {
                let sum = cast::<AccResult<f64>>(msg);
                ctx.exit(sum.value);
            }
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

/// Build the Jacobi program. Queueing/balancing are irrelevant to this
/// regular computation but accepted for interface uniformity.
pub fn build(
    params: JacobiParams,
    queueing: QueueingStrategy,
    balance: BalanceStrategy,
) -> Program {
    let mut b = ProgramBuilder::new();
    let acc = b.accumulator::<SumF64>();
    let main = b.chare::<JacobiMain>();
    let _boc = b.boc::<JacobiBranch>(JacobiCfg { params, acc });
    b.wire::<MainSeed>();
    b.wire::<GhostMsg>();
    b.wire::<AccResult<f64>>();
    b.queueing(queueing);
    b.balance(balance);
    b.main(main, MainSeed { acc });
    b.build()
}

/// Build with defaults (FIFO, no balancing — the work is static).
pub fn build_default(params: JacobiParams) -> Program {
    build(params, QueueingStrategy::Fifo, BalanceStrategy::Local)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn block_rows_cover_exactly() {
        for n in [7usize, 16, 33] {
            for nblocks in 1..=n.min(9) {
                let mut covered = 0;
                let mut next_start = 1;
                for b in 0..nblocks {
                    let (start, len) = block_rows(n, nblocks, b);
                    assert_eq!(start, next_start, "n={n} blocks={nblocks} b={b}");
                    next_start = start + len;
                    covered += len;
                }
                assert_eq!(covered, n, "n={n} blocks={nblocks}");
            }
        }
    }

    #[test]
    fn seq_heat_flows_down() {
        // With a hot top boundary the interior warms up monotonically.
        let s0 = jacobi_seq(JacobiParams { n: 16, iters: 0 });
        let s5 = jacobi_seq(JacobiParams { n: 16, iters: 5 });
        let s50 = jacobi_seq(JacobiParams { n: 16, iters: 50 });
        assert_eq!(s0, 0.0);
        assert!(s5 > 0.0);
        assert!(s50 > s5);
    }

    #[test]
    fn parallel_matches_sequential() {
        let params = JacobiParams { n: 24, iters: 10 };
        let want = jacobi_seq(params);
        for npes in [1usize, 2, 3, 8] {
            let prog = build_default(params);
            let mut rep = prog.run_sim_preset(npes, MachinePreset::NcubeLike);
            let got = rep.take_result::<f64>().expect("checksum");
            assert!(close(got, want), "npes={npes}: got {got}, want {want}");
        }
    }

    #[test]
    fn more_pes_than_rows() {
        let params = JacobiParams { n: 4, iters: 6 };
        let want = jacobi_seq(params);
        let prog = build_default(params);
        let mut rep = prog.run_sim_preset(8, MachinePreset::NcubeLike);
        let got = rep.take_result::<f64>().expect("checksum");
        assert!(close(got, want), "got {got}, want {want}");
    }

    #[test]
    fn zero_iters_returns_initial_checksum() {
        let params = JacobiParams { n: 10, iters: 0 };
        let prog = build_default(params);
        let mut rep = prog.run_sim_preset(4, MachinePreset::NcubeLike);
        assert_eq!(rep.take_result::<f64>(), Some(0.0));
    }

    #[test]
    fn parallel_speedup_with_compute_heavy_grid() {
        // On NCUBE-class links (0.57 us/byte) a 1.5 KB ghost row costs
        // ~1 ms — comparable to a block's compute — so Jacobi speedups
        // are honestly modest at this size, as they were in 1991.
        let params = JacobiParams { n: 192, iters: 12 };
        let prog = build_default(params);
        let t1 = prog.run_sim_preset(1, MachinePreset::NcubeLike).time_ns;
        let t8 = prog.run_sim_preset(8, MachinePreset::NcubeLike).time_ns;
        let speedup = t1 as f64 / t8 as f64;
        assert!(speedup > 1.8, "expected >1.8x on 8 PEs, got {speedup:.2}");
    }

    #[test]
    fn bigger_grids_scale_better() {
        // Compute grows as n^2/P while ghost traffic grows as n: the
        // surface-to-volume argument, visible in the cost model.
        let speedup = |n: usize| {
            let prog = build_default(JacobiParams { n, iters: 6 });
            let t1 = prog.run_sim_preset(1, MachinePreset::NcubeLike).time_ns;
            let t8 = prog.run_sim_preset(8, MachinePreset::NcubeLike).time_ns;
            t1 as f64 / t8 as f64
        };
        let small = speedup(64);
        let large = speedup(256);
        assert!(
            large > small,
            "speedup should improve with grid size: n=64 {small:.2} vs n=256 {large:.2}"
        );
    }

    #[test]
    fn works_on_threads() {
        let params = JacobiParams { n: 32, iters: 8 };
        let want = jacobi_seq(params);
        let prog = build_default(params);
        let mut rep = prog.run_threads(4);
        assert!(!rep.timed_out);
        let got = rep.take_result::<f64>().expect("checksum");
        assert!(close(got, want), "got {got}, want {want}");
    }
}
