//! Spec strings: a tiny textual program description shared by the
//! multi-process backend's parent and its worker processes.
//!
//! The procs backend re-invokes the current binary per PE; the worker
//! must rebuild *exactly* the program the parent holds (same chare
//! registration order, same wire-table fingerprint). A spec string like
//! `"fib:n=18,grain=10,bal=acwn"` is shipped to workers in `CK_SPEC`,
//! and both sides call [`build_spec`] on it.
//!
//! Format: `app[:key=val,...]`. Omitted keys take the app's defaults.
//! Every app accepts `bal` (`local`, `random`, `acwn`, `central`,
//! `token`) and `q` (`fifo`, `lifo`, `int`, `bitvec`) plus its own
//! parameter keys:
//!
//! | app         | keys                                    |
//! |-------------|-----------------------------------------|
//! | `fib`       | `n`, `grain`                            |
//! | `jacobi`    | `n`, `iters`                            |
//! | `matmul`    | `n`                                     |
//! | `mmr`       | `leaves`, `grain`, `seed`               |
//! | `nqueens`   | `n`, `grain`                            |
//! | `primes`    | `limit`, `chunks`                       |
//! | `quad`      | `grain` (thousandths)                   |
//! | `tablefill` | `stages`, `blocks`, `rows`, `width`, `seed` |

use chare_kernel::prelude::*;
use chare_kernel::Program;

use crate::{fib, jacobi, matmul, mmr, nqueens, primes, quad, tablefill};

/// Entry hook for binaries that may be re-invoked as procs-backend
/// workers: call this first in `main` (and first in any test that runs
/// the procs backend). A normal invocation returns immediately; a
/// worker invocation (`CK_PE_RANK` set) builds the program from the
/// spec string, runs the PE loop and exits the process.
pub fn worker_hook() {
    chare_kernel::maybe_worker(build_spec);
}

/// Build the program a spec string describes. Panics on a malformed
/// spec — parent and worker must agree on the string, so an error here
/// is a bug, not an input condition.
pub fn build_spec(spec: &str) -> Program {
    let (app, rest) = match spec.split_once(':') {
        Some((app, rest)) => (app, rest),
        None => (spec, ""),
    };
    let mut kv: Vec<(&str, &str)> = Vec::new();
    for pair in rest.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = pair
            .split_once('=')
            .unwrap_or_else(|| panic!("bad spec pair {pair:?} in {spec:?}"));
        kv.push((k, v));
    }
    let mut opts = CommonOpts::default();
    kv.retain(|&(k, v)| !opts.take(spec, k, v));
    let get = |key: &str| kv.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
    let num = |key: &str| -> Option<u64> {
        get(key).map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("bad number {v:?} for {key:?} in {spec:?}"))
        })
    };
    let known = |keys: &[&str]| {
        for &(k, _) in &kv {
            assert!(keys.contains(&k), "unknown key {k:?} in spec {spec:?}");
        }
    };
    match app {
        "fib" => {
            known(&["n", "grain"]);
            let d = fib::FibParams::default();
            let params = fib::FibParams {
                n: num("n").map_or(d.n, |v| v as u32),
                grain: num("grain").map_or(d.grain, |v| v as u32),
            };
            fib::build(params, opts.queueing(), opts.balance_or(BalanceStrategy::acwn()))
        }
        "jacobi" => {
            known(&["n", "iters"]);
            let d = jacobi::JacobiParams::default();
            let params = jacobi::JacobiParams {
                n: num("n").map_or(d.n, |v| v as usize),
                iters: num("iters").map_or(d.iters, |v| v as u32),
            };
            jacobi::build(params, opts.queueing(), opts.balance_or(BalanceStrategy::Local))
        }
        "matmul" => {
            known(&["n"]);
            let d = matmul::MatmulParams::default();
            let params = matmul::MatmulParams {
                n: num("n").map_or(d.n, |v| v as usize),
            };
            matmul::build(params, opts.queueing(), opts.balance_or(BalanceStrategy::Local))
        }
        "nqueens" => {
            known(&["n", "grain"]);
            let d = nqueens::QueensParams::default();
            let params = nqueens::QueensParams {
                n: num("n").map_or(d.n, |v| v as u8),
                grain: num("grain").map_or(d.grain, |v| v as u8),
            };
            nqueens::build(params, opts.queueing(), opts.balance_or(BalanceStrategy::acwn()))
        }
        "primes" => {
            known(&["limit", "chunks"]);
            let d = primes::PrimesParams::default();
            let params = primes::PrimesParams {
                limit: num("limit").unwrap_or(d.limit),
                chunks: num("chunks").map_or(d.chunks, |v| v as u32),
            };
            primes::build(params, opts.queueing(), opts.balance_or(BalanceStrategy::Random))
        }
        "mmr" => {
            known(&["leaves", "grain", "seed"]);
            let d = mmr::MmrParams::default();
            let params = mmr::MmrParams {
                leaves: num("leaves").unwrap_or(d.leaves),
                grain: num("grain").unwrap_or(d.grain),
                seed: num("seed").unwrap_or(d.seed),
            };
            mmr::build(
                params,
                opts.queueing_or(QueueingStrategy::BitvecPriority),
                opts.balance_or(BalanceStrategy::Random),
            )
        }
        "tablefill" => {
            known(&["stages", "blocks", "rows", "width", "seed"]);
            let d = tablefill::FillParams::default();
            let params = tablefill::FillParams {
                stages: num("stages").map_or(d.stages, |v| v as u32),
                blocks: num("blocks").map_or(d.blocks, |v| v as u32),
                rows: num("rows").map_or(d.rows, |v| v as u32),
                width: num("width").map_or(d.width, |v| v as u32),
                seed: num("seed").unwrap_or(d.seed),
            };
            tablefill::build(
                params,
                opts.queueing_or(QueueingStrategy::BitvecPriority),
                opts.balance_or(BalanceStrategy::Random),
            )
        }
        "quad" => {
            // `grain` is in thousandths so the spec stays integer-only.
            known(&["grain"]);
            let d = quad::QuadParams::default();
            let params = quad::QuadParams {
                grain: num("grain").map_or(d.grain, |v| v as f64 / 1000.0),
                ..d
            };
            quad::build(params, opts.queueing(), opts.balance_or(BalanceStrategy::acwn()))
        }
        other => panic!("unknown app {other:?} in spec {spec:?}"),
    }
}

/// Strategy keys shared by every app.
#[derive(Default)]
struct CommonOpts {
    queueing: Option<QueueingStrategy>,
    balance: Option<BalanceStrategy>,
}

impl CommonOpts {
    /// Consume `k=v` if it is a common key; true if consumed.
    fn take(&mut self, spec: &str, k: &str, v: &str) -> bool {
        match k {
            "q" => {
                self.queueing = Some(match v {
                    "fifo" => QueueingStrategy::Fifo,
                    "lifo" => QueueingStrategy::Lifo,
                    "int" => QueueingStrategy::IntPriority,
                    "bitvec" => QueueingStrategy::BitvecPriority,
                    _ => panic!("unknown queueing {v:?} in spec {spec:?}"),
                });
                true
            }
            "bal" => {
                self.balance = Some(match v {
                    "local" => BalanceStrategy::Local,
                    "random" => BalanceStrategy::Random,
                    "acwn" => BalanceStrategy::acwn(),
                    "central" => BalanceStrategy::CentralManager,
                    "token" => BalanceStrategy::TokenIdle,
                    _ => panic!("unknown balance {v:?} in spec {spec:?}"),
                });
                true
            }
            _ => false,
        }
    }

    fn queueing(&self) -> QueueingStrategy {
        self.queueing_or(QueueingStrategy::Fifo)
    }

    /// Like [`CommonOpts::queueing`] for apps whose table default is not
    /// FIFO (the priority-driven hash-tree family).
    fn queueing_or(&self, default: QueueingStrategy) -> QueueingStrategy {
        self.queueing.unwrap_or(default)
    }

    fn balance_or(&mut self, default: BalanceStrategy) -> BalanceStrategy {
        self.balance.take().unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_build_default() {
        // A bare app name builds a runnable program with the app's
        // default parameters and table-default strategies.
        let mut rep = build_spec("fib:n=16,grain=10").run_sim_preset(4, MachinePreset::NcubeLike);
        assert_eq!(rep.take_result::<u64>(), Some(fib::fib_seq(16)));
    }

    #[test]
    fn params_are_applied() {
        let mut rep =
            build_spec("primes:limit=1000,chunks=8").run_sim_preset(4, MachinePreset::NcubeLike);
        assert_eq!(rep.take_result::<u64>(), Some(primes::primes_seq(1000)));
    }

    #[test]
    fn strategies_parse() {
        let mut rep = build_spec("nqueens:n=7,grain=4,bal=random,q=lifo")
            .run_sim_preset(4, MachinePreset::NcubeLike);
        assert_eq!(rep.take_result::<u64>(), Some(nqueens::nqueens_seq(7)));
    }

    #[test]
    #[should_panic(expected = "unknown app")]
    fn unknown_app_panics() {
        build_spec("sudoku");
    }

    #[test]
    #[should_panic(expected = "unknown key")]
    fn unknown_key_panics() {
        build_spec("fib:m=3");
    }

    #[test]
    fn hash_tree_family_specs_run() {
        let mut rep =
            build_spec("mmr:leaves=60,grain=8,seed=2").run_sim_preset(4, MachinePreset::NcubeLike);
        let got = rep.take_result::<mmr::MmrResult>().expect("mmr result");
        assert_eq!(got.root, mmr::mmr_root_seq(2, 60));
        let p = tablefill::FillParams { stages: 2, blocks: 4, rows: 4, width: 2, seed: 3 };
        let mut rep = build_spec("tablefill:stages=2,blocks=4,rows=4,width=2,seed=3,q=fifo")
            .run_sim_preset(4, MachinePreset::NcubeLike);
        let got = rep.take_result::<tablefill::FillResult>().expect("fill result");
        assert_eq!(got.digest, tablefill::fill_seq(&p));
    }

    #[test]
    fn priority_queueing_strategies_parse() {
        for q in ["int", "bitvec"] {
            let mut rep = build_spec(&format!("fib:n=14,grain=8,q={q}"))
                .run_sim_preset(2, MachinePreset::NcubeLike);
            assert_eq!(rep.take_result::<u64>(), Some(fib::fib_seq(14)), "q={q}");
        }
    }

    #[test]
    fn fingerprints_agree_between_two_builds() {
        // The procs handshake hinges on this: two independent builds of
        // the same spec must produce identical wire-table fingerprints.
        let a = build_spec("jacobi:n=16,iters=4");
        let b = build_spec("jacobi:n=16,iters=4");
        assert_eq!(a.wire_fingerprint(), b.wire_fingerprint());
        // ...and a different app must not (the registries differ).
        let c = build_spec("fib");
        assert_ne!(a.wire_fingerprint(), c.wire_fingerprint());
    }
}
