//! Adaptive quadrature: numerically integrate a function with sharp
//! features by recursive interval splitting.
//!
//! The classic irregular floating-point workload of the era: the
//! recursion depth — and therefore the work — depends on the integrand's
//! local behavior, so the tree is *data-dependent* and unpredictable,
//! unlike fib's fixed shape. Intervals whose Simpson error estimate is
//! small are finished sequentially; the rest split into two child
//! chares. The integral accumulates in a `SumF64`; quiescence detection
//! ends the run.

use chare_kernel::prelude::*;

use crate::costs::work;

/// Cost of one integrand evaluation (transcendental functions on a
/// late-1980s FPU).
pub const QUAD_EVAL_NS: u64 = 600;

/// Entry point on the main chare: quiescence notification.
pub const EP_QUIESCENT: EpId = EpId(1);
/// Entry point on the main chare: collected integral.
pub const EP_TOTAL: EpId = EpId(2);

/// Parameters of a quadrature run.
#[derive(Clone, Copy, Debug)]
pub struct QuadParams {
    /// Integration domain `[a, b]`.
    pub a: f64,
    /// Upper bound.
    pub b: f64,
    /// Absolute error tolerance for the whole domain.
    pub tol: f64,
    /// Intervals narrower than this are finished sequentially inside
    /// one chare (the grain control).
    pub grain: f64,
}

impl Default for QuadParams {
    fn default() -> Self {
        QuadParams {
            a: 0.0,
            b: 10.0,
            tol: 1e-9,
            grain: 0.05,
        }
    }
}

/// The integrand: smooth background plus two sharp peaks and an
/// oscillatory tail — adaptive refinement concentrates around x = 2 and
/// x = 7.5.
pub fn f(x: f64) -> f64 {
    let peak1 = 1.0 / (0.001 + (x - 2.0) * (x - 2.0));
    let peak2 = 0.5 / (0.004 + (x - 7.5) * (x - 7.5));
    peak1 + peak2 + (8.0 * x).sin()
}

/// Simpson's rule on `[a, b]` (3 evaluations).
fn simpson(a: f64, b: f64) -> f64 {
    let m = 0.5 * (a + b);
    (b - a) / 6.0 * (f(a) + 4.0 * f(m) + f(b))
}

/// Sequential adaptive Simpson with the same splitting rule the
/// parallel version uses. Returns `(integral, evaluations)`.
pub fn quad_seq(a: f64, b: f64, tol: f64) -> (f64, u64) {
    let whole = simpson(a, b);
    seq_rec(a, b, tol, whole)
}

fn seq_rec(a: f64, b: f64, tol: f64, whole: f64) -> (f64, u64) {
    let m = 0.5 * (a + b);
    let left = simpson(a, m);
    let right = simpson(m, b);
    let evals = 6; // 2 sub-Simpsons (shared endpoints not modeled)
    if (left + right - whole).abs() <= 15.0 * tol {
        // Richardson extrapolation.
        (left + right + (left + right - whole) / 15.0, evals)
    } else {
        let (li, le) = seq_rec(a, m, tol * 0.5, left);
        let (ri, re) = seq_rec(m, b, tol * 0.5, right);
        (li + ri, evals + le + re)
    }
}

/// Reference integral at tight tolerance (for verification).
pub fn quad_reference(params: QuadParams) -> f64 {
    quad_seq(params.a, params.b, params.tol * 0.01).0
}

/// Handles threaded through the seeds.
#[derive(Clone, Copy)]
pub struct Handles {
    node: Kind<QuadChare>,
    acc: Acc<SumF64>,
    grain: f64,
}

/// Seed of the main chare.
#[derive(Clone)]
pub struct MainSeed {
    /// Parameters.
    pub params: QuadParams,
    /// Handles for the tree.
    pub h: Handles,
}
message!(MainSeed);

/// Seed of one interval chare.
#[derive(Clone, Copy)]
pub struct NodeSeed {
    a: f64,
    b: f64,
    tol: f64,
    whole: f64,
    h: Handles,
}
message!(NodeSeed);

// Wire codecs for the multi-process backend.
wire_struct!(QuadParams { a, b, tol, grain });
wire_struct!(Handles { node, acc, grain });
wire_struct!(MainSeed { params, h });
wire_struct!(NodeSeed { a, b, tol, whole, h });

/// The main chare.
pub struct QuadMain {
    acc: Acc<SumF64>,
}

impl ChareInit for QuadMain {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_QUIESCENT));
        let p = seed.params;
        ctx.charge(work(3, QUAD_EVAL_NS));
        ctx.create(
            seed.h.node,
            NodeSeed {
                a: p.a,
                b: p.b,
                tol: p.tol,
                whole: simpson(p.a, p.b),
                h: seed.h,
            },
        );
        QuadMain { acc: seed.h.acc }
    }
}

impl Chare for QuadMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_QUIESCENT => {
                let _ = cast::<QuiescenceMsg>(msg);
                let me = ctx.self_id();
                ctx.acc_collect(self.acc, Notify::Chare(me, EP_TOTAL));
            }
            EP_TOTAL => {
                let total = cast::<AccResult<f64>>(msg);
                ctx.exit(total.value);
            }
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

/// One interval of the adaptive recursion.
pub struct QuadChare;

impl ChareInit for QuadChare {
    type Seed = NodeSeed;
    fn create(seed: NodeSeed, ctx: &mut Ctx) -> Self {
        ctx.destroy_self();
        let h = seed.h;
        let m = 0.5 * (seed.a + seed.b);
        let left = simpson(seed.a, m);
        let right = simpson(m, seed.b);
        ctx.charge(work(6, QUAD_EVAL_NS));
        if (left + right - seed.whole).abs() <= 15.0 * seed.tol {
            ctx.acc_add(h.acc, left + right + (left + right - seed.whole) / 15.0);
            return QuadChare;
        }
        if seed.b - seed.a <= h.grain {
            // Finish this interval sequentially (identical arithmetic to
            // the parallel split, so the result is schedule-invariant).
            let (li, le) = seq_rec(seed.a, m, seed.tol * 0.5, left);
            let (ri, re) = seq_rec(m, seed.b, seed.tol * 0.5, right);
            ctx.charge(work(le + re, QUAD_EVAL_NS));
            ctx.acc_add(h.acc, li + ri);
            return QuadChare;
        }
        ctx.create(
            h.node,
            NodeSeed {
                a: seed.a,
                b: m,
                tol: seed.tol * 0.5,
                whole: left,
                h,
            },
        );
        ctx.create(
            h.node,
            NodeSeed {
                a: m,
                b: seed.b,
                tol: seed.tol * 0.5,
                whole: right,
                h,
            },
        );
        QuadChare
    }
}

impl Chare for QuadChare {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!("QuadChare receives no messages")
    }
}

/// Build the quadrature program with the given strategies.
pub fn build(params: QuadParams, queueing: QueueingStrategy, balance: BalanceStrategy) -> Program {
    let mut b = ProgramBuilder::new();
    let node = b.chare::<QuadChare>();
    let main = b.chare::<QuadMain>();
    let acc = b.accumulator::<SumF64>();
    b.wire::<MainSeed>();
    b.wire::<NodeSeed>();
    b.wire::<AccResult<f64>>();
    b.queueing(queueing);
    b.balance(balance);
    b.main(
        main,
        MainSeed {
            params,
            h: Handles {
                node,
                acc,
                grain: params.grain,
            },
        },
    );
    b.build()
}

/// Build with the defaults the tables use (FIFO + ACWN — adaptive work
/// wants adaptive balancing).
pub fn build_default(params: QuadParams) -> Program {
    build(params, QueueingStrategy::Fifo, BalanceStrategy::acwn())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn seq_converges_with_tolerance() {
        let loose = quad_seq(0.0, 10.0, 1e-4).0;
        let tight = quad_seq(0.0, 10.0, 1e-10).0;
        assert!(close(loose, tight, 1e-3), "{loose} vs {tight}");
    }

    #[test]
    fn adaptive_refinement_concentrates_work() {
        // The peak region must cost far more evaluations than a smooth
        // region of the same width.
        let (_, smooth) = quad_seq(4.0, 6.0, 1e-9);
        let (_, peaky) = quad_seq(1.0, 3.0, 1e-9);
        assert!(
            peaky > 5 * smooth,
            "peak region {peaky} evals vs smooth {smooth}"
        );
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        // The split rule and arithmetic are identical; only the
        // accumulator's combine order differs.
        let params = QuadParams::default();
        let (want, _) = quad_seq(params.a, params.b, params.tol);
        for npes in [1usize, 4, 16] {
            let prog = build_default(params);
            let mut rep = prog.run_sim_preset(npes, MachinePreset::NcubeLike);
            let got = rep.take_result::<f64>().expect("integral");
            assert!(close(got, want, 1e-12), "npes={npes}: {got} vs {want}");
        }
    }

    #[test]
    fn all_balancers_agree() {
        let params = QuadParams::default();
        let (want, _) = quad_seq(params.a, params.b, params.tol);
        for balance in [
            BalanceStrategy::Local,
            BalanceStrategy::Random,
            BalanceStrategy::TokenIdle,
            BalanceStrategy::CentralManager,
        ] {
            let prog = build(params, QueueingStrategy::Fifo, balance.clone());
            let mut rep = prog.run_sim_preset(8, MachinePreset::NcubeLike);
            let got = rep.take_result::<f64>().expect("integral");
            assert!(close(got, want, 1e-12), "{balance:?}: {got} vs {want}");
        }
    }

    #[test]
    fn speedup_on_sim() {
        let params = QuadParams {
            tol: 1e-10,
            ..QuadParams::default()
        };
        let prog = build_default(params);
        let t1 = prog.run_sim_preset(1, MachinePreset::NcubeLike).time_ns;
        let t16 = prog.run_sim_preset(16, MachinePreset::NcubeLike).time_ns;
        let speedup = t1 as f64 / t16 as f64;
        assert!(speedup > 3.0, "expected >3x on 16 PEs, got {speedup:.2}");
    }

    #[test]
    fn works_on_threads() {
        let params = QuadParams::default();
        let (want, _) = quad_seq(params.a, params.b, params.tol);
        let prog = build_default(params);
        let mut rep = prog.run_threads(4);
        assert!(!rep.timed_out);
        let got = rep.take_result::<f64>().expect("integral");
        assert!(close(got, want, 1e-12), "{got} vs {want}");
    }
}
