//! Traveling salesman by parallel branch & bound.
//!
//! The showcase for two kernel features working together:
//!
//! * a **monotonic variable** holds the best tour found anywhere; every
//!   PE prunes against its (possibly slightly stale) local copy — stale
//!   reads only cost extra work, never correctness;
//! * **bitvector priorities** give every search node its root-path as a
//!   priority, so the distributed scheduler approximates the sequential
//!   best-first/depth-first order. Under FIFO the same program explodes
//!   the search space — the paper's queueing-strategy experiment.
//!
//! Node counts (work performed) are gathered in an accumulator;
//! termination is quiescence detection.

use chare_kernel::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::costs::{work, TSP_NODE_NS};

/// Entry point on the main chare: quiescence notification.
pub const EP_QUIESCENT: EpId = EpId(1);
/// Entry point on the main chare: collected node count.
pub const EP_NODES: EpId = EpId(2);

/// Parameters of a TSP run.
#[derive(Clone, Copy, Debug)]
pub struct TspParams {
    /// Number of cities (≤ 32).
    pub n: u8,
    /// Instance RNG seed.
    pub seed: u64,
    /// Subtrees with at most this many unvisited cities are solved
    /// sequentially inside one chare.
    pub seq_tail: u8,
}

impl Default for TspParams {
    fn default() -> Self {
        TspParams {
            n: 12,
            seed: 7,
            seq_tail: 7,
        }
    }
}

/// A symmetric Euclidean TSP instance.
#[derive(Clone, Debug)]
pub struct TspInstance {
    /// Number of cities.
    pub n: usize,
    /// Row-major distance matrix.
    pub dist: Vec<u32>,
    /// Per-city minimum outgoing edge (for the lower bound).
    pub min_edge: Vec<u32>,
}

impl TspInstance {
    /// Random cities on a 1000x1000 grid, rounded Euclidean distances.
    pub fn random(n: usize, seed: u64) -> Self {
        assert!((2..=32).contains(&n), "n must be in 2..=32");
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random_range(0.0..1000.0), rng.random_range(0.0..1000.0)))
            .collect();
        let mut dist = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let dx = pts[i].0 - pts[j].0;
                    let dy = pts[i].1 - pts[j].1;
                    dist[i * n + j] = (dx * dx + dy * dy).sqrt().round() as u32;
                }
            }
        }
        let min_edge = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| dist[i * n + j])
                    .min()
                    .unwrap_or(0)
            })
            .collect();
        TspInstance { n, dist, min_edge }
    }

    /// Distance between cities `i` and `j`.
    #[inline]
    pub fn d(&self, i: usize, j: usize) -> u32 {
        self.dist[i * self.n + j]
    }

    /// Nearest-neighbor tour cost from city 0 — the initial upper bound.
    pub fn greedy_tour(&self) -> u64 {
        let mut visited = 1u32;
        let mut city = 0usize;
        let mut cost = 0u64;
        for _ in 1..self.n {
            let next = (0..self.n)
                .filter(|&j| visited & (1 << j) == 0)
                .min_by_key(|&j| self.d(city, j))
                .expect("unvisited city exists");
            cost += self.d(city, next) as u64;
            visited |= 1 << next;
            city = next;
        }
        cost + self.d(city, 0) as u64
    }

    /// Admissible lower bound for completing a partial tour: current
    /// cost plus, for the current city and every unvisited city, the
    /// cheapest edge leaving it (each must be departed exactly once).
    pub fn lower_bound(&self, visited: u32, city: usize, cost: u64) -> u64 {
        let mut lb = cost + self.min_edge[city] as u64;
        for j in 0..self.n {
            if visited & (1 << j) == 0 {
                lb += self.min_edge[j] as u64;
            }
        }
        lb
    }
}

/// Sequential branch & bound from a partial tour. Improves `best` in
/// place and returns nodes expanded.
pub fn solve_from(inst: &TspInstance, visited: u32, city: usize, cost: u64, best: &mut u64) -> u64 {
    let mut nodes = 1u64;
    let full = (1u32 << inst.n) - 1;
    if visited == full {
        let tour = cost + inst.d(city, 0) as u64;
        if tour < *best {
            *best = tour;
        }
        return nodes;
    }
    if inst.lower_bound(visited, city, cost) >= *best {
        return nodes;
    }
    // Nearest-first child order — the same order the parallel version
    // encodes in bitvector priorities.
    let mut children: Vec<usize> = (0..inst.n).filter(|&j| visited & (1 << j) == 0).collect();
    children.sort_by_key(|&j| inst.d(city, j));
    for next in children {
        let c = cost + inst.d(city, next) as u64;
        if c < *best {
            nodes += solve_from(inst, visited | (1 << next), next, c, best);
        }
    }
    nodes
}

/// Sequential TSP: optimal tour cost and nodes expanded.
pub fn tsp_seq(inst: &TspInstance) -> (u64, u64) {
    let mut best = inst.greedy_tour();
    let nodes = solve_from(inst, 1, 0, 0, &mut best);
    (best, nodes)
}

/// Result of a parallel run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TspResult {
    /// Optimal tour cost.
    pub best: u64,
    /// Total search nodes expanded (schedule-dependent).
    pub nodes: u64,
}

/// Handles threaded through every seed.
#[derive(Clone, Copy)]
pub struct Handles {
    ro: ReadOnly<TspInstance>,
    node: Kind<TspChare>,
    best: MonoVar<MinBoundU64>,
    nodes: Acc<SumU64>,
    seq_tail: u8,
}

/// Seed of the main chare.
#[derive(Clone)]
pub struct MainSeed {
    h: Handles,
}
message!(MainSeed);

/// Seed of a search-node chare.
#[derive(Clone)]
pub struct NodeSeed {
    visited: u32,
    city: u8,
    cost: u64,
    prio: BitPrio,
    h: Handles,
}

impl Message for NodeSeed {
    fn bytes(&self) -> u32 {
        16 + self.prio.len().div_ceil(8)
    }
}

/// The main chare.
pub struct TspMain {
    h: Handles,
}

impl ChareInit for TspMain {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let h = seed.h;
        let inst = ctx.read_only(h.ro);
        // Seed the bound with the greedy tour so pruning works from the
        // first node.
        ctx.mono_update(h.best, inst.greedy_tour());
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_QUIESCENT));
        ctx.create_prio(
            h.node,
            NodeSeed {
                visited: 1,
                city: 0,
                cost: 0,
                prio: BitPrio::root(),
                h,
            },
            Priority::Bits(BitPrio::root()),
        );
        TspMain { h }
    }
}

impl Chare for TspMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_QUIESCENT => {
                let _ = cast::<QuiescenceMsg>(msg);
                let me = ctx.self_id();
                ctx.acc_collect(self.h.nodes, Notify::Chare(me, EP_NODES));
            }
            EP_NODES => {
                let nodes = cast::<AccResult<u64>>(msg);
                let best = ctx.mono_get(self.h.best);
                ctx.exit(TspResult {
                    best,
                    nodes: nodes.value,
                });
            }
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

/// One node of the branch & bound tree.
pub struct TspChare;

impl ChareInit for TspChare {
    type Seed = NodeSeed;
    fn create(seed: NodeSeed, ctx: &mut Ctx) -> Self {
        let h = seed.h;
        let inst = ctx.read_only(h.ro);
        let n = inst.n;
        let full = (1u32 << n) - 1;
        let best = ctx.mono_get(h.best);
        ctx.charge(work(1, TSP_NODE_NS));

        if seed.visited == full {
            ctx.acc_add(h.nodes, 1);
            let tour = seed.cost + inst.d(seed.city as usize, 0) as u64;
            if tour < best {
                ctx.mono_update(h.best, tour);
            }
            ctx.destroy_self();
            return TspChare;
        }
        if inst.lower_bound(seed.visited, seed.city as usize, seed.cost) >= best {
            ctx.acc_add(h.nodes, 1);
            ctx.destroy_self();
            return TspChare;
        }
        let remaining = n as u32 - seed.visited.count_ones();
        if remaining <= h.seq_tail as u32 {
            let mut local_best = best;
            let nodes = solve_from(
                &inst,
                seed.visited,
                seed.city as usize,
                seed.cost,
                &mut local_best,
            );
            ctx.charge(work(nodes, TSP_NODE_NS));
            ctx.acc_add(h.nodes, nodes);
            if local_best < best {
                ctx.mono_update(h.best, local_best);
            }
            ctx.destroy_self();
            return TspChare;
        }

        ctx.acc_add(h.nodes, 1);
        let mut children: Vec<usize> = (0..n).filter(|&j| seed.visited & (1 << j) == 0).collect();
        children.sort_by_key(|&j| inst.d(seed.city as usize, j));
        for (rank, next) in children.into_iter().enumerate() {
            let cost = seed.cost + inst.d(seed.city as usize, next) as u64;
            if cost >= best {
                continue;
            }
            let prio = seed.prio.child(rank as u32, 5);
            ctx.create_prio(
                h.node,
                NodeSeed {
                    visited: seed.visited | (1 << next),
                    city: next as u8,
                    cost,
                    prio: prio.clone(),
                    h,
                },
                Priority::Bits(prio),
            );
        }
        ctx.destroy_self();
        TspChare
    }
}

impl Chare for TspChare {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!("TspChare receives no messages")
    }
}

/// Build the TSP program with the given strategies.
pub fn build(params: TspParams, queueing: QueueingStrategy, balance: BalanceStrategy) -> Program {
    let inst = TspInstance::random(params.n as usize, params.seed);
    let mut b = ProgramBuilder::new();
    let node = b.chare::<TspChare>();
    let main = b.chare::<TspMain>();
    let ro = b.read_only(inst);
    let best = b.monotonic::<MinBoundU64>();
    let nodes = b.accumulator::<SumU64>();
    b.queueing(queueing);
    b.balance(balance);
    b.main(
        main,
        MainSeed {
            h: Handles {
                ro,
                node,
                best,
                nodes,
                seq_tail: params.seq_tail,
            },
        },
    );
    b.build()
}

/// Build with the defaults the tables use (bitvector priorities + ACWN).
pub fn build_default(params: TspParams) -> Program {
    build(
        params,
        QueueingStrategy::BitvecPriority,
        BalanceStrategy::acwn(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_is_symmetric_with_zero_diagonal() {
        let inst = TspInstance::random(10, 3);
        for i in 0..10 {
            assert_eq!(inst.d(i, i), 0);
            for j in 0..10 {
                assert_eq!(inst.d(i, j), inst.d(j, i));
            }
        }
    }

    #[test]
    fn greedy_bounds_optimal() {
        let inst = TspInstance::random(10, 3);
        let (best, _) = tsp_seq(&inst);
        assert!(best <= inst.greedy_tour());
        assert!(best > 0);
    }

    #[test]
    fn lower_bound_is_admissible_at_root() {
        let inst = TspInstance::random(11, 5);
        let (best, _) = tsp_seq(&inst);
        assert!(inst.lower_bound(1, 0, 0) <= best);
    }

    #[test]
    fn parallel_finds_optimal_all_queueing_strategies() {
        let params = TspParams {
            n: 10,
            seed: 11,
            seq_tail: 5,
        };
        let inst = TspInstance::random(10, 11);
        let (want, _) = tsp_seq(&inst);
        for q in QueueingStrategy::ALL {
            let prog = build(params, q, BalanceStrategy::Random);
            let mut rep = prog.run_sim_preset(8, MachinePreset::NcubeLike);
            let got = rep.take_result::<TspResult>().expect("result");
            assert_eq!(got.best, want, "queueing {q:?}");
            assert!(got.nodes > 0);
        }
    }

    #[test]
    fn priorities_reduce_search_space_vs_fifo() {
        let params = TspParams {
            n: 12,
            seed: 23,
            seq_tail: 6,
        };
        let fifo = build(params, QueueingStrategy::Fifo, BalanceStrategy::Random);
        let prio = build(
            params,
            QueueingStrategy::BitvecPriority,
            BalanceStrategy::Random,
        );
        let n_fifo = {
            let mut r = fifo.run_sim_preset(8, MachinePreset::NcubeLike);
            r.take_result::<TspResult>().unwrap().nodes
        };
        let n_prio = {
            let mut r = prio.run_sim_preset(8, MachinePreset::NcubeLike);
            r.take_result::<TspResult>().unwrap().nodes
        };
        assert!(
            n_prio <= n_fifo,
            "bitvector priorities should not expand more nodes: prio={n_prio} fifo={n_fifo}"
        );
    }

    #[test]
    fn works_on_threads() {
        let params = TspParams {
            n: 10,
            seed: 11,
            seq_tail: 6,
        };
        let inst = TspInstance::random(10, 11);
        let (want, _) = tsp_seq(&inst);
        let prog = build_default(params);
        let mut rep = prog.run_threads(4);
        assert!(!rep.timed_out);
        assert_eq!(rep.take_result::<TspResult>().unwrap().best, want);
    }
}
