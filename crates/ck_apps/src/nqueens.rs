//! N-queens: count all solutions with speculative tree parallelism.
//!
//! The search tree is expanded as chares down to a grain depth, below
//! which subtrees are counted sequentially inside one entry method.
//! Solution counts flow into an *accumulator* variable (PE-local adds,
//! one collect at the end), and the end itself is detected by the
//! kernel's *quiescence detection* — there is no natural "last message"
//! in an unbalanced search tree, which is exactly why the kernel has a
//! QD module.

use chare_kernel::prelude::*;

use crate::costs::{work, QUEENS_NODE_NS};

/// Entry point on the main chare: quiescence notification.
pub const EP_QUIESCENT: EpId = EpId(1);
/// Entry point on the main chare: collected total.
pub const EP_TOTAL: EpId = EpId(2);

/// Parameters of an N-queens run.
#[derive(Clone, Copy, Debug)]
pub struct QueensParams {
    /// Board size.
    pub n: u8,
    /// Subtrees with fewer than `grain` remaining rows are counted
    /// sequentially.
    pub grain: u8,
}

impl Default for QueensParams {
    fn default() -> Self {
        QueensParams { n: 10, grain: 6 }
    }
}

/// Sequential solution count from a partial position, also reporting
/// nodes visited (the work model). `cols`/`dl`/`dr` are the standard
/// bitmask encodings of attacked columns and diagonals.
pub fn count_from(n: u8, cols: u32, dl: u32, dr: u32) -> (u64, u64) {
    let full = (1u32 << n) - 1;
    if cols == full {
        return (1, 1);
    }
    let mut solutions = 0;
    let mut nodes = 1;
    let mut free = full & !(cols | dl | dr);
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free -= bit;
        let (s, v) = count_from(n, cols | bit, (dl | bit) << 1, (dr | bit) >> 1);
        solutions += s;
        nodes += v;
    }
    (solutions, nodes)
}

/// Sequential N-queens solution count.
pub fn nqueens_seq(n: u8) -> u64 {
    count_from(n, 0, 0, 0).0
}

/// Seed of the main chare.
#[derive(Clone)]
pub struct MainSeed {
    /// Parameters.
    pub params: QueensParams,
    /// Kind handle for tree nodes.
    pub node: Kind<QueensChare>,
    /// Solution-count accumulator.
    pub acc: Acc<SumU64>,
}
message!(MainSeed);

/// Seed of a tree-node chare.
#[derive(Clone)]
pub struct NodeSeed {
    n: u8,
    grain: u8,
    row: u8,
    cols: u32,
    dl: u32,
    dr: u32,
    node: Kind<QueensChare>,
    acc: Acc<SumU64>,
}
message!(NodeSeed);

// Wire codecs for the multi-process backend.
wire_struct!(QueensParams { n, grain });
wire_struct!(MainSeed { params, node, acc });
wire_struct!(NodeSeed { n, grain, row, cols, dl, dr, node, acc });

/// The main chare: seeds the root, waits for quiescence, collects.
pub struct QueensMain {
    acc: Acc<SumU64>,
}

impl ChareInit for QueensMain {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_QUIESCENT));
        ctx.create(
            seed.node,
            NodeSeed {
                n: seed.params.n,
                grain: seed.params.grain,
                row: 0,
                cols: 0,
                dl: 0,
                dr: 0,
                node: seed.node,
                acc: seed.acc,
            },
        );
        QueensMain { acc: seed.acc }
    }
}

impl Chare for QueensMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_QUIESCENT => {
                let _ = cast::<QuiescenceMsg>(msg);
                let me = ctx.self_id();
                ctx.acc_collect(self.acc, Notify::Chare(me, EP_TOTAL));
            }
            EP_TOTAL => {
                let total = cast::<AccResult<u64>>(msg);
                ctx.exit(total.value);
            }
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

/// One node of the search tree. Does all its work in the constructor
/// and destroys itself — the pure "seed computation" pattern.
pub struct QueensChare;

impl ChareInit for QueensChare {
    type Seed = NodeSeed;
    fn create(seed: NodeSeed, ctx: &mut Ctx) -> Self {
        let full = (1u32 << seed.n) - 1;
        if seed.n - seed.row <= seed.grain {
            let (solutions, nodes) = count_from(seed.n, seed.cols, seed.dl, seed.dr);
            ctx.charge(work(nodes, QUEENS_NODE_NS));
            if solutions > 0 {
                ctx.acc_add(seed.acc, solutions);
            }
        } else {
            ctx.charge(work(1, QUEENS_NODE_NS));
            let mut free = full & !(seed.cols | seed.dl | seed.dr);
            while free != 0 {
                let bit = free & free.wrapping_neg();
                free -= bit;
                ctx.create(
                    seed.node,
                    NodeSeed {
                        n: seed.n,
                        grain: seed.grain,
                        row: seed.row + 1,
                        cols: seed.cols | bit,
                        dl: (seed.dl | bit) << 1,
                        dr: (seed.dr | bit) >> 1,
                        node: seed.node,
                        acc: seed.acc,
                    },
                );
            }
        }
        ctx.destroy_self();
        QueensChare
    }
}

impl Chare for QueensChare {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!("QueensChare receives no messages")
    }
}

/// Build the N-queens program with the given strategies.
pub fn build(
    params: QueensParams,
    queueing: QueueingStrategy,
    balance: BalanceStrategy,
) -> Program {
    let mut b = ProgramBuilder::new();
    let node = b.chare::<QueensChare>();
    let main = b.chare::<QueensMain>();
    let acc = b.accumulator::<SumU64>();
    b.wire::<MainSeed>();
    b.wire::<NodeSeed>();
    b.wire::<AccResult<u64>>();
    b.queueing(queueing);
    b.balance(balance);
    b.main(main, MainSeed { params, node, acc });
    b.build()
}

/// Build with the defaults the speedup tables use (FIFO + ACWN).
pub fn build_default(params: QueensParams) -> Program {
    build(params, QueueingStrategy::Fifo, BalanceStrategy::acwn())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_known_values() {
        assert_eq!(nqueens_seq(4), 2);
        assert_eq!(nqueens_seq(6), 4);
        assert_eq!(nqueens_seq(8), 92);
        assert_eq!(nqueens_seq(10), 724);
    }

    #[test]
    fn parallel_count_matches_sequential() {
        let params = QueensParams { n: 8, grain: 4 };
        for balance in [
            BalanceStrategy::Local,
            BalanceStrategy::Random,
            BalanceStrategy::acwn(),
            BalanceStrategy::CentralManager,
            BalanceStrategy::TokenIdle,
        ] {
            let prog = build(params, QueueingStrategy::Fifo, balance.clone());
            let mut rep = prog.run_sim_preset(8, MachinePreset::NcubeLike);
            assert_eq!(rep.take_result::<u64>(), Some(92), "balance {balance:?}");
        }
    }

    #[test]
    fn lifo_queueing_also_correct() {
        let prog = build(
            QueensParams { n: 8, grain: 4 },
            QueueingStrategy::Lifo,
            BalanceStrategy::Random,
        );
        let mut rep = prog.run_sim_preset(4, MachinePreset::IpscLike);
        assert_eq!(rep.take_result::<u64>(), Some(92));
    }

    #[test]
    fn speedup_on_many_pes() {
        let params = QueensParams { n: 10, grain: 5 };
        let prog = build_default(params);
        let t1 = prog.run_sim_preset(1, MachinePreset::NcubeLike).time_ns;
        let t16 = prog.run_sim_preset(16, MachinePreset::NcubeLike).time_ns;
        assert!(t16 * 2 < t1, "expected >2x speedup: t1={t1} t16={t16}");
    }

    #[test]
    fn works_on_threads() {
        let prog = build_default(QueensParams { n: 9, grain: 5 });
        let mut rep = prog.run_threads(4);
        assert!(!rep.timed_out);
        assert_eq!(rep.take_result::<u64>(), Some(352));
    }
}
