//! # ck_apps — the benchmark suite of the SC '91 evaluation
//!
//! Six applications spanning the paper's workload classes, each built on
//! the `chare_kernel` public API, plus sequential and hand-coded
//! message-passing baselines:
//!
//! | Module | Workload class | Kernel features exercised |
//! |--------|----------------|---------------------------|
//! | [`fib`] | adaptive tree | dynamic creation, load balancing |
//! | [`nqueens`] | irregular search, count all | accumulators, quiescence |
//! | [`tsp`] | branch & bound | monotonic variables, bitvector priorities |
//! | [`puzzle`] | IDA* search | repeated quiescence phases, int priorities |
//! | [`jacobi`] | regular grid | branch-office chares, ghost exchange |
//! | [`primes`] | embarrassingly parallel | accumulators (control case) |
//! | [`quad`] | adaptive quadrature | data-dependent tree, ACWN |
//! | [`matmul`] | Cannon's matrix multiply | mesh BOC, bulk data |
//! | [`jacobi_conv`] | Jacobi to convergence | reduction-per-iteration barrier |
//! | [`sortbench`] | sample sort | all-to-all communication |
//! | [`mmr`] | Merkle-mountain-range build | distributed table, write-once, bitvector priorities |
//! | [`tablefill`] | pipelined staged table fill | distributed table streaming, `(stage, block)` priorities |
//! | [`baseline`] | — | raw machine layer (kernel-overhead comparison) |
//!
//! Every app exposes `build(params, queueing, balance) -> Program`,
//! `build_default(params)`, and a sequential reference implementation
//! used both for verification and as the speedup denominator.
//!
//! The [`spec`] module maps a textual spec (`"fib:n=18,grain=10"`) to a
//! built program; the multi-process backend uses it so parent and
//! re-invoked worker processes construct identical programs (see
//! [`spec::worker_hook`]).

pub mod baseline;
pub mod costs;
pub mod hashes;
pub mod jacobi;
pub mod jacobi_conv;
pub mod puzzle;
pub mod quad;
pub mod sortbench;
pub mod tsp;
pub mod fib;
pub mod matmul;
pub mod mmr;
pub mod nqueens;
pub mod primes;
pub mod spec;
pub mod tablefill;
