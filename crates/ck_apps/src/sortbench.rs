//! Parallel sample sort over branch-office chares — the all-to-all
//! benchmark.
//!
//! Every PE holds a block of keys. PE 0 gathers a regular sample,
//! chooses P-1 splitters, and broadcasts them; each branch partitions
//! its block and sends one bucket to every other PE (the all-to-all
//! phase that stresses the network differently from any other program
//! in the suite); each branch merges what it receives and verifies local
//! sortedness. Correctness is checked with an order-independent
//! fingerprint (count + sum + xor of keys) plus boundary checks against
//! the splitters.

use chare_kernel::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::costs::work;

/// Cost of one comparison/move in sort phases.
pub const SORT_OP_NS: u64 = 150;

/// Entry point on each branch: the sample request / splitters.
pub const EP_SPLITTERS: EpId = EpId(1);
/// Entry point on each branch: a bucket from a peer.
pub const EP_BUCKET: EpId = EpId(2);
/// Entry point on the main chare: one PE's sample.
pub const EP_SAMPLE: EpId = EpId(3);
/// Entry point on the main chare: quiescence notification.
pub const EP_QUIESCENT: EpId = EpId(4);
/// Entry point on the main chare: collected fingerprint.
pub const EP_SUM: EpId = EpId(5);

/// Parameters of a sort run.
#[derive(Clone, Copy, Debug)]
pub struct SortParams {
    /// Total keys across the machine (strong scaling: the same problem
    /// splits over however many PEs run it).
    pub total_keys: usize,
    /// Instance RNG seed.
    pub seed: u64,
    /// Sample size per PE (oversampling factor).
    pub sample_per_pe: usize,
}

impl Default for SortParams {
    fn default() -> Self {
        SortParams {
            total_keys: 64_000,
            seed: 12,
            sample_per_pe: 16,
        }
    }
}

/// Number of keys PE `pe` of `npes` holds (even split, remainder to the
/// low PEs).
pub fn block_len(pe: usize, npes: usize, params: SortParams) -> usize {
    let base = params.total_keys / npes;
    base + usize::from(pe < params.total_keys % npes)
}

/// Deterministic per-PE key block.
pub fn gen_block(pe: usize, npes: usize, params: SortParams) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(params.seed ^ (pe as u64).wrapping_mul(0xA5A5_5A5A));
    (0..block_len(pe, npes, params))
        .map(|_| rng.random_range(0..1_000_000_000u64))
        .collect()
}

/// Order-independent fingerprint of a key multiset: (count, sum, xor).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Fingerprint {
    /// Number of keys.
    pub count: u64,
    /// Wrapping sum of keys.
    pub sum: u64,
    /// Xor of keys.
    pub xor: u64,
}

impl Fingerprint {
    /// Fingerprint of a slice.
    pub fn of(keys: &[u64]) -> Fingerprint {
        let mut f = Fingerprint {
            count: keys.len() as u64,
            ..Default::default()
        };
        for &k in keys {
            f.sum = f.sum.wrapping_add(k);
            f.xor ^= k;
        }
        f
    }

    fn merge(&mut self, other: Fingerprint) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.xor ^= other.xor;
    }
}

/// The fingerprint of the whole (unsorted) input — what any correct
/// sort must preserve.
pub fn input_fingerprint(params: SortParams, npes: usize) -> Fingerprint {
    let mut f = Fingerprint::default();
    for pe in 0..npes {
        f.merge(Fingerprint::of(&gen_block(pe, npes, params)));
    }
    f
}

/// Accumulator combining per-PE fingerprints (commutative).
pub struct FpAcc;
impl Accum for FpAcc {
    type V = Fingerprint;
    fn identity() -> Fingerprint {
        Fingerprint::default()
    }
    fn combine(into: &mut Fingerprint, from: Fingerprint) {
        into.merge(from);
    }
}

/// Messages.
#[derive(Clone)]
pub struct SampleMsg {
    /// Sampled keys from one PE.
    pub keys: Vec<u64>,
}
impl Message for SampleMsg {
    fn bytes(&self) -> u32 {
        (self.keys.len() * 8) as u32
    }
}

/// Splitters broadcast to every branch.
#[derive(Clone)]
pub struct SplitterMsg {
    /// P-1 ascending splitters.
    pub splitters: Vec<u64>,
}
impl Message for SplitterMsg {
    fn bytes(&self) -> u32 {
        (self.splitters.len() * 8) as u32
    }
}

/// One bucket of keys bound for its destination PE.
pub struct BucketMsg {
    /// Keys in `[splitter[d-1], splitter[d])`.
    pub keys: Vec<u64>,
}
impl Message for BucketMsg {
    fn bytes(&self) -> u32 {
        (self.keys.len() * 8) as u32
    }
}

/// BOC configuration.
#[derive(Clone)]
pub struct SortCfg {
    /// Parameters.
    pub params: SortParams,
    /// Fingerprint accumulator.
    pub acc: Acc<FpAcc>,
}

/// One PE's sort state.
pub struct SortBranch {
    cfg: SortCfg,
    block: Vec<u64>,
    splitters: Option<Vec<u64>>,
    received: Vec<u64>,
    buckets_in: usize,
}

impl SortBranch {
    /// Partition the local block by the splitters and ship the buckets.
    fn scatter(&mut self, ctx: &mut Ctx) {
        let splitters = self.splitters.as_ref().expect("splitters set");
        let npes = ctx.npes();
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); npes];
        let block = std::mem::take(&mut self.block);
        let ops = block.len() as u64;
        for k in block {
            let d = splitters.partition_point(|&s| s <= k);
            buckets[d].push(k);
        }
        ctx.charge(work(ops * 5, SORT_OP_NS)); // partition_point ~ log P
        let boc = ctx.self_boc::<SortBranch>();
        let me = ctx.pe();
        for (d, bucket) in buckets.into_iter().enumerate() {
            let dest = Pe::from(d);
            if dest == me {
                self.take_bucket(bucket, ctx);
            } else {
                ctx.send_branch(boc, dest, EP_BUCKET, BucketMsg { keys: bucket });
            }
        }
    }

    fn take_bucket(&mut self, keys: Vec<u64>, ctx: &mut Ctx) {
        self.received.extend(keys);
        self.buckets_in += 1;
        if self.buckets_in == ctx.npes() {
            // All buckets in: sort, verify locally, contribute the
            // fingerprint.
            let n = self.received.len() as u64;
            self.received.sort_unstable();
            let logn = (n.max(2)).ilog2() as u64;
            ctx.charge(work(n * logn, SORT_OP_NS));
            if let Some(splitters) = &self.splitters {
                let pe = ctx.pe().index();
                if let (Some(&first), Some(&last)) = (self.received.first(), self.received.last())
                {
                    if pe > 0 {
                        assert!(first >= splitters[pe - 1], "bucket boundary violated");
                    }
                    if pe < splitters.len() {
                        assert!(last < splitters[pe], "bucket boundary violated");
                    }
                }
            }
            ctx.acc_add(self.cfg.acc, Fingerprint::of(&self.received));
        }
    }
}

impl BranchInit for SortBranch {
    type Cfg = SortCfg;
    fn create(cfg: SortCfg, ctx: &mut Ctx) -> Self {
        let block = gen_block(ctx.pe().index(), ctx.npes(), cfg.params);
        SortBranch {
            cfg,
            block,
            splitters: None,
            received: Vec::new(),
            buckets_in: 0,
        }
    }
}

impl Branch for SortBranch {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_SPLITTERS => {
                // Phase 1 request carries the main chare's id; phase 2
                // carries the splitters.
                let m = cast::<SplitterPhase>(msg);
                match m {
                    SplitterPhase::SendSample(main) => {
                        let params = self.cfg.params;
                        let step = (self.block.len() / params.sample_per_pe.max(1)).max(1);
                        let mut sample: Vec<u64> =
                            self.block.iter().copied().step_by(step).collect();
                        sample.truncate(params.sample_per_pe);
                        ctx.charge(work(sample.len() as u64, SORT_OP_NS));
                        ctx.send(main, EP_SAMPLE, SampleMsg { keys: sample });
                    }
                    SplitterPhase::Splitters(s) => {
                        self.splitters = Some(s.splitters);
                        self.scatter(ctx);
                    }
                }
            }
            EP_BUCKET => {
                let bucket = cast::<BucketMsg>(msg);
                self.take_bucket(bucket.keys, ctx);
            }
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

/// Two-phase splitter protocol message.
#[derive(Clone)]
pub enum SplitterPhase {
    /// Reply with your sample to this chare.
    SendSample(ChareId),
    /// The chosen splitters.
    Splitters(SplitterMsg),
}
impl Message for SplitterPhase {
    fn bytes(&self) -> u32 {
        match self {
            SplitterPhase::SendSample(_) => 12,
            SplitterPhase::Splitters(s) => 4 + s.bytes(),
        }
    }
}

/// Seed of the main chare.
#[derive(Clone)]
pub struct MainSeed {
    /// BOC handle.
    pub boc: Boc<SortBranch>,
    /// Fingerprint accumulator.
    pub acc: Acc<FpAcc>,
}
message!(MainSeed);

/// The main chare: sample gather → splitter broadcast → quiescence →
/// fingerprint collect.
pub struct SortMain {
    boc: Boc<SortBranch>,
    acc: Acc<FpAcc>,
    samples: Vec<u64>,
    replies: usize,
}

impl ChareInit for SortMain {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.broadcast_branch(seed.boc, EP_SPLITTERS, SplitterPhase::SendSample(me));
        SortMain {
            boc: seed.boc,
            acc: seed.acc,
            samples: Vec::new(),
            replies: 0,
        }
    }
}

impl Chare for SortMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        let me = ctx.self_id();
        match ep {
            EP_SAMPLE => {
                let s = cast::<SampleMsg>(msg);
                self.samples.extend(s.keys);
                self.replies += 1;
                if self.replies == ctx.npes() {
                    self.samples.sort_unstable();
                    let npes = ctx.npes();
                    let splitters: Vec<u64> = (1..npes)
                        .map(|d| self.samples[d * self.samples.len() / npes])
                        .collect();
                    ctx.charge(work(self.samples.len() as u64 * 8, SORT_OP_NS));
                    ctx.broadcast_branch(
                        self.boc,
                        EP_SPLITTERS,
                        SplitterPhase::Splitters(SplitterMsg { splitters }),
                    );
                    ctx.start_quiescence(Notify::Chare(me, EP_QUIESCENT));
                }
            }
            EP_QUIESCENT => {
                let _ = cast::<QuiescenceMsg>(msg);
                ctx.acc_collect(self.acc, Notify::Chare(me, EP_SUM));
            }
            EP_SUM => {
                let f = cast::<AccResult<Fingerprint>>(msg);
                ctx.exit(f.value);
            }
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

/// Build the sort program with the given strategies.
pub fn build(params: SortParams, queueing: QueueingStrategy, balance: BalanceStrategy) -> Program {
    let mut b = ProgramBuilder::new();
    let acc = b.accumulator::<FpAcc>();
    let main = b.chare::<SortMain>();
    let boc = b.boc::<SortBranch>(SortCfg { params, acc });
    b.queueing(queueing);
    b.balance(balance);
    b.main(main, MainSeed { boc, acc });
    b.build()
}

/// Build with defaults (FIFO, no balancing — placement is structural).
pub fn build_default(params: SortParams) -> Program {
    build(params, QueueingStrategy::Fifo, BalanceStrategy::Local)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_independent() {
        let a = vec![5u64, 1, 9, 9, 3];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));
        assert_ne!(Fingerprint::of(&a), Fingerprint::of(&a[1..]));
    }

    #[test]
    fn sort_preserves_the_multiset() {
        let params = SortParams {
            total_keys: 4_000,
            seed: 3,
            sample_per_pe: 8,
        };
        for npes in [1usize, 2, 5, 8] {
            let want = input_fingerprint(params, npes);
            let prog = build_default(params);
            let mut rep = prog.run_sim_preset(npes, MachinePreset::NcubeLike);
            let got = rep.take_result::<Fingerprint>().expect("fingerprint");
            assert_eq!(got, want, "npes={npes}");
        }
    }

    #[test]
    fn boundary_assertions_hold_under_skew() {
        // Heavily skewed input (many duplicate keys) still respects
        // bucket boundaries (asserted inside the branches).
        let params = SortParams {
            total_keys: 1_800,
            seed: 999,
            sample_per_pe: 4,
        };
        let prog = build_default(params);
        let mut rep = prog.run_sim_preset(6, MachinePreset::IpscLike);
        assert!(rep.take_result::<Fingerprint>().is_some());
    }

    #[test]
    fn works_on_threads() {
        let params = SortParams {
            total_keys: 4_000,
            seed: 3,
            sample_per_pe: 8,
        };
        let want = input_fingerprint(params, 4);
        let prog = build_default(params);
        let mut rep = prog.run_threads(4);
        assert!(!rep.timed_out);
        assert_eq!(rep.take_result::<Fingerprint>(), Some(want));
    }

    #[test]
    fn speedup_on_sim() {
        let params = SortParams {
            total_keys: 160_000,
            seed: 3,
            sample_per_pe: 32,
        };
        let t1 = build_default(params)
            .run_sim_preset(1, MachinePreset::NcubeLike)
            .time_ns;
        let t8 = build_default(params)
            .run_sim_preset(8, MachinePreset::NcubeLike)
            .time_ns;
        let speedup = t1 as f64 / t8 as f64;
        assert!(speedup > 2.0, "expected >2x on 8 PEs, got {speedup:.2}");
    }
}
