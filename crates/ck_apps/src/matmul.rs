//! Dense matrix multiply by Cannon's algorithm on a logical q×q mesh of
//! branch-office chares.
//!
//! The bulk-data benchmark: each of the q² active PEs holds one block of
//! A, B and C; after an initial skew, q multiply-shift rounds rotate the
//! A blocks left and the B blocks up. Messages here are kilobytes, not
//! the searches' tens of bytes, exercising the bandwidth term of the
//! cost model.
//!
//! Matrix entries are small integers (stored as `f64`), so every product
//! and partial sum is exact and the parallel checksum equals the
//! sequential one bit-for-bit regardless of accumulation order.

use chare_kernel::prelude::*;

use crate::costs::work;

/// Cost of one multiply-accumulate (late-1980s FPU).
pub const MATMUL_MAC_NS: u64 = 400;

/// Entry point on each branch: an A block arriving.
pub const EP_A: EpId = EpId(1);
/// Entry point on each branch: a B block arriving.
pub const EP_B: EpId = EpId(2);
/// Entry point on the main chare: quiescence notification.
pub const EP_QUIESCENT: EpId = EpId(3);
/// Entry point on the main chare: collected checksum.
pub const EP_SUM: EpId = EpId(4);

/// Parameters of a matmul run.
#[derive(Clone, Copy, Debug)]
pub struct MatmulParams {
    /// Matrix dimension (must be divisible by the mesh side; the branch
    /// rounds down the mesh side until it divides).
    pub n: usize,
}

impl Default for MatmulParams {
    fn default() -> Self {
        MatmulParams { n: 96 }
    }
}

/// Deterministic matrix entries: small integers, so all arithmetic is
/// exact in `f64`.
pub fn a_elem(i: usize, j: usize) -> f64 {
    ((i.wrapping_mul(31) + j.wrapping_mul(17)) % 23) as f64 - 11.0
}

/// Entries of B.
pub fn b_elem(i: usize, j: usize) -> f64 {
    ((i.wrapping_mul(13) + j.wrapping_mul(29)) % 19) as f64 - 9.0
}

/// Mesh side for `npes` PEs: the largest q with q² ≤ npes that divides
/// `n`.
pub fn mesh_side(n: usize, npes: usize) -> usize {
    let mut q = (npes as f64).sqrt() as usize;
    while q > 1 && (q * q > npes || !n.is_multiple_of(q)) {
        q -= 1;
    }
    q.max(1)
}

/// Sequential reference: full multiply, returning the checksum
/// (sum of all elements of C).
pub fn matmul_seq(n: usize) -> f64 {
    let mut checksum = 0.0;
    for i in 0..n {
        for j in 0..n {
            let mut c = 0.0;
            for k in 0..n {
                c += a_elem(i, k) * b_elem(k, j);
            }
            checksum += c;
        }
    }
    checksum
}

/// One block in flight.
pub struct BlockMsg {
    /// Round the block is for (consistency checks).
    pub round: u32,
    /// Row-major block data.
    pub data: Vec<f64>,
}

impl Message for BlockMsg {
    fn bytes(&self) -> u32 {
        4 + (self.data.len() * 8) as u32
    }
}

// Wire codecs for the multi-process backend.
wire_struct!(BlockMsg { round, data });
wire_struct!(MainSeed { acc });

/// BOC configuration.
#[derive(Clone)]
pub struct MatmulCfg {
    /// Parameters.
    pub params: MatmulParams,
    /// Checksum accumulator.
    pub acc: Acc<SumF64>,
}

/// One PE's blocks and round state.
pub struct MatmulBranch {
    cfg: MatmulCfg,
    q: usize,
    bs: usize,
    bi: usize,
    bj: usize,
    active: bool,
    a: Vec<f64>,
    b: Vec<f64>,
    c: Vec<f64>,
    rounds_done: usize,
    /// Blocks keyed by the round they belong to. Round 0 comes from the
    /// skew source, later rounds from the rotation neighbor — two
    /// different senders, so arrival order across them is not guaranteed
    /// (FIFO holds only per ordered PE pair).
    pending_a: std::collections::HashMap<u32, Vec<f64>>,
    pending_b: std::collections::HashMap<u32, Vec<f64>>,
}

impl MatmulBranch {
    fn pe_of(&self, bi: usize, bj: usize) -> Pe {
        Pe::from(bi * self.q + bj)
    }

    /// Generate this branch's initial (unskewed) block of A or B.
    fn gen_block(&self, which_a: bool) -> Vec<f64> {
        let bs = self.bs;
        let mut out = vec![0.0; bs * bs];
        for r in 0..bs {
            for c in 0..bs {
                let gi = self.bi * bs + r;
                let gj = self.bj * bs + c;
                out[r * bs + c] = if which_a {
                    a_elem(gi, gj)
                } else {
                    b_elem(gi, gj)
                };
            }
        }
        out
    }

    /// Multiply-accumulate while blocks for the current round are
    /// available; send them onward for the next round.
    fn advance(&mut self, ctx: &mut Ctx) {
        let q = self.q;
        let bs = self.bs;
        loop {
            if self.rounds_done >= q {
                return;
            }
            let round = self.rounds_done as u32;
            if !self.pending_a.contains_key(&round) || !self.pending_b.contains_key(&round) {
                return;
            }
            let a = self.pending_a.remove(&round).expect("checked");
            let b = self.pending_b.remove(&round).expect("checked");
            for i in 0..bs {
                for k in 0..bs {
                    let aik = a[i * bs + k];
                    for j in 0..bs {
                        self.c[i * bs + j] += aik * b[k * bs + j];
                    }
                }
            }
            ctx.charge(work((bs * bs * bs) as u64, MATMUL_MAC_NS));
            self.rounds_done += 1;
            let round = self.rounds_done as u32;
            if self.rounds_done < q {
                // Rotate: A one step left, B one step up.
                let boc = ctx.self_boc::<MatmulBranch>();
                let left = self.pe_of(self.bi, (self.bj + q - 1) % q);
                let up = self.pe_of((self.bi + q - 1) % q, self.bj);
                ctx.send_branch(boc, left, EP_A, BlockMsg { round, data: a });
                ctx.send_branch(boc, up, EP_B, BlockMsg { round, data: b });
            } else {
                let sum: f64 = self.c.iter().sum();
                ctx.acc_add(self.cfg.acc, sum);
            }
        }
    }
}

impl BranchInit for MatmulBranch {
    type Cfg = MatmulCfg;
    fn create(cfg: MatmulCfg, ctx: &mut Ctx) -> Self {
        let n = cfg.params.n;
        let q = mesh_side(n, ctx.npes());
        let pe = ctx.pe().index();
        let active = pe < q * q;
        let (bi, bj) = (pe / q, pe % q);
        let bs = n / q;
        let mut branch = MatmulBranch {
            cfg,
            q,
            bs,
            bi,
            bj,
            active,
            a: Vec::new(),
            b: Vec::new(),
            c: vec![0.0; if active { bs * bs } else { 0 }],
            rounds_done: 0,
            pending_a: Default::default(),
            pending_b: Default::default(),
        };
        if branch.active {
            // Initial skew: my A block goes q-steps left by bi, my B
            // block up by bj (Cannon's alignment).
            branch.a = branch.gen_block(true);
            branch.b = branch.gen_block(false);
            let boc = ctx.self_boc::<MatmulBranch>();
            let a_dst = branch.pe_of(bi, (bj + q - bi % q) % q);
            let b_dst = branch.pe_of((bi + q - bj % q) % q, bj);
            let a = std::mem::take(&mut branch.a);
            let b = std::mem::take(&mut branch.b);
            ctx.send_branch(boc, a_dst, EP_A, BlockMsg { round: 0, data: a });
            ctx.send_branch(boc, b_dst, EP_B, BlockMsg { round: 0, data: b });
        }
        branch
    }
}

impl Branch for MatmulBranch {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        let block = cast::<BlockMsg>(msg);
        match ep {
            EP_A => self.pending_a.insert(block.round, block.data),
            EP_B => self.pending_b.insert(block.round, block.data),
            _ => unreachable!("unknown entry point {ep:?}"),
        };
        self.advance(ctx);
    }
}

/// Seed of the main chare.
#[derive(Clone)]
pub struct MainSeed {
    /// Checksum accumulator (shared with the branches).
    pub acc: Acc<SumF64>,
}
message!(MainSeed);

/// The main chare: waits for quiescence, collects the checksum.
pub struct MatmulMain {
    acc: Acc<SumF64>,
}

impl ChareInit for MatmulMain {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_QUIESCENT));
        MatmulMain { acc: seed.acc }
    }
}

impl Chare for MatmulMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_QUIESCENT => {
                let _ = cast::<QuiescenceMsg>(msg);
                let me = ctx.self_id();
                ctx.acc_collect(self.acc, Notify::Chare(me, EP_SUM));
            }
            EP_SUM => {
                let sum = cast::<AccResult<f64>>(msg);
                ctx.exit(sum.value);
            }
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

/// Build the matmul program. Placement is fixed by the algorithm, so
/// queueing/balancing are accepted only for interface uniformity.
pub fn build(
    params: MatmulParams,
    queueing: QueueingStrategy,
    balance: BalanceStrategy,
) -> Program {
    let mut b = ProgramBuilder::new();
    let acc = b.accumulator::<SumF64>();
    let main = b.chare::<MatmulMain>();
    let _boc = b.boc::<MatmulBranch>(MatmulCfg { params, acc });
    b.wire::<MainSeed>();
    b.wire::<BlockMsg>();
    b.wire::<AccResult<f64>>();
    b.queueing(queueing);
    b.balance(balance);
    b.main(main, MainSeed { acc });
    b.build()
}

/// Build with the defaults (FIFO, no balancing — Cannon's placement is
/// the whole point).
pub fn build_default(params: MatmulParams) -> Program {
    build(params, QueueingStrategy::Fifo, BalanceStrategy::Local)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_side_divides_and_fits() {
        assert_eq!(mesh_side(96, 1), 1);
        assert_eq!(mesh_side(96, 4), 2);
        assert_eq!(mesh_side(96, 16), 4);
        assert_eq!(mesh_side(96, 17), 4);
        assert_eq!(mesh_side(96, 9), 3);
        // 10 is not a divisor-friendly side for 96: falls back to 8.
        assert_eq!(mesh_side(96, 100), 8);
    }

    #[test]
    fn entries_are_small_integers() {
        for i in 0..40 {
            for j in 0..40 {
                let a = a_elem(i, j);
                assert_eq!(a, a.round());
                assert!((-11.0..=11.0).contains(&a));
            }
        }
    }

    #[test]
    fn parallel_checksum_is_exact() {
        let n = 48;
        let want = matmul_seq(n);
        for npes in [1usize, 4, 9, 16, 20] {
            let prog = build_default(MatmulParams { n });
            let mut rep = prog.run_sim_preset(npes, MachinePreset::NcubeLike);
            let got = rep.take_result::<f64>().expect("checksum");
            assert_eq!(got, want, "npes={npes} (exact integer arithmetic)");
        }
    }

    #[test]
    fn speedup_with_enough_pes() {
        let prog = build_default(MatmulParams { n: 96 });
        let t1 = prog.run_sim_preset(1, MachinePreset::NcubeLike).time_ns;
        let t16 = prog.run_sim_preset(16, MachinePreset::NcubeLike).time_ns;
        let speedup = t1 as f64 / t16 as f64;
        assert!(speedup > 4.0, "expected >4x on a 4x4 mesh, got {speedup:.2}");
    }

    #[test]
    fn works_on_threads() {
        let n = 32;
        let want = matmul_seq(n);
        let prog = build_default(MatmulParams { n });
        let mut rep = prog.run_threads(4);
        assert!(!rep.timed_out);
        assert_eq!(rep.take_result::<f64>(), Some(want));
    }
}
