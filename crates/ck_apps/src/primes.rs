//! Primes: count primes below a limit — the embarrassingly parallel
//! control case.
//!
//! The range is split into chunks, one chare per chunk, each counting by
//! trial division. With uniform chunks this needs no load balancing and
//! scales almost linearly, which makes it the control benchmark against
//! which the adaptive tree workloads are compared (and a clean grain-size
//! knob: the number of chunks).

use chare_kernel::prelude::*;

use crate::costs::{work, PRIMES_DIV_NS};

/// Entry point on the main chare: quiescence notification.
pub const EP_QUIESCENT: EpId = EpId(1);
/// Entry point on the main chare: collected total.
pub const EP_TOTAL: EpId = EpId(2);

/// Parameters of a primes run.
#[derive(Clone, Copy, Debug)]
pub struct PrimesParams {
    /// Count primes in `[2, limit)`.
    pub limit: u64,
    /// Number of chunk chares.
    pub chunks: u32,
}

impl Default for PrimesParams {
    fn default() -> Self {
        PrimesParams {
            limit: 200_000,
            chunks: 64,
        }
    }
}

/// Trial-division primality test, also reporting divisions performed.
fn is_prime(n: u64) -> (bool, u64) {
    if n < 2 {
        return (false, 1);
    }
    if n.is_multiple_of(2) {
        return (n == 2, 1);
    }
    let mut divs = 1;
    let mut d = 3;
    while d * d <= n {
        divs += 1;
        if n.is_multiple_of(d) {
            return (false, divs);
        }
        d += 2;
    }
    (true, divs)
}

/// Count primes in `[lo, hi)`, also reporting divisions (work model).
pub fn count_range(lo: u64, hi: u64) -> (u64, u64) {
    let mut count = 0;
    let mut divs = 0;
    for n in lo..hi {
        let (p, d) = is_prime(n);
        count += u64::from(p);
        divs += d;
    }
    (count, divs)
}

/// Sequential prime count below `limit`.
pub fn primes_seq(limit: u64) -> u64 {
    count_range(2, limit).0
}

/// Seed of the main chare.
#[derive(Clone)]
pub struct MainSeed {
    /// Parameters.
    pub params: PrimesParams,
    /// Kind handle for chunks.
    pub chunk: Kind<ChunkChare>,
    /// Count accumulator.
    pub acc: Acc<SumU64>,
}
message!(MainSeed);

/// Seed of one chunk chare.
#[derive(Clone, Copy)]
pub struct ChunkSeed {
    lo: u64,
    hi: u64,
    acc: Acc<SumU64>,
}
message!(ChunkSeed);

// Wire codecs for the multi-process backend.
wire_struct!(PrimesParams { limit, chunks });
wire_struct!(MainSeed { params, chunk, acc });
wire_struct!(ChunkSeed { lo, hi, acc });

/// The main chare.
pub struct PrimesMain {
    acc: Acc<SumU64>,
}

impl ChareInit for PrimesMain {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_QUIESCENT));
        let lo = 2u64;
        let hi = seed.params.limit.max(lo);
        let chunks = seed.params.chunks.max(1) as u64;
        // Trial-division work per candidate grows like sqrt(n), so equal
        // -width chunks would be badly skewed toward the top of the
        // range. Cut at boundaries proportional to (c/chunks)^(2/3),
        // which equalizes the integral of sqrt.
        let boundary = |c: u64| -> u64 {
            let frac = (c as f64 / chunks as f64).powf(2.0 / 3.0);
            lo + ((hi - lo) as f64 * frac).round() as u64
        };
        for c in 0..chunks {
            let clo = boundary(c);
            let chi = boundary(c + 1).min(hi);
            if clo >= chi {
                continue;
            }
            ctx.create(
                seed.chunk,
                ChunkSeed {
                    lo: clo,
                    hi: chi,
                    acc: seed.acc,
                },
            );
        }
        PrimesMain { acc: seed.acc }
    }
}

impl Chare for PrimesMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_QUIESCENT => {
                let _ = cast::<QuiescenceMsg>(msg);
                let me = ctx.self_id();
                ctx.acc_collect(self.acc, Notify::Chare(me, EP_TOTAL));
            }
            EP_TOTAL => {
                let total = cast::<AccResult<u64>>(msg);
                ctx.exit(total.value);
            }
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

/// One chunk: counts primes in its range and dies.
pub struct ChunkChare;

impl ChareInit for ChunkChare {
    type Seed = ChunkSeed;
    fn create(seed: ChunkSeed, ctx: &mut Ctx) -> Self {
        let (count, divs) = count_range(seed.lo, seed.hi);
        ctx.charge(work(divs, PRIMES_DIV_NS));
        if count > 0 {
            ctx.acc_add(seed.acc, count);
        }
        ctx.destroy_self();
        ChunkChare
    }
}

impl Chare for ChunkChare {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!("ChunkChare receives no messages")
    }
}

/// Build the primes program with the given strategies.
pub fn build(
    params: PrimesParams,
    queueing: QueueingStrategy,
    balance: BalanceStrategy,
) -> Program {
    let mut b = ProgramBuilder::new();
    let chunk = b.chare::<ChunkChare>();
    let main = b.chare::<PrimesMain>();
    let acc = b.accumulator::<SumU64>();
    b.wire::<MainSeed>();
    b.wire::<ChunkSeed>();
    b.wire::<AccResult<u64>>();
    b.queueing(queueing);
    b.balance(balance);
    b.main(main, MainSeed { params, chunk, acc });
    b.build()
}

/// Build with the defaults the speedup tables use (FIFO + random
/// placement — uniform chunks need no adaptivity).
pub fn build_default(params: PrimesParams) -> Program {
    build(params, QueueingStrategy::Fifo, BalanceStrategy::Random)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_known_values() {
        assert_eq!(primes_seq(10), 4);
        assert_eq!(primes_seq(100), 25);
        assert_eq!(primes_seq(1000), 168);
        assert_eq!(primes_seq(10_000), 1229);
    }

    #[test]
    fn parallel_count_matches() {
        let params = PrimesParams {
            limit: 5_000,
            chunks: 16,
        };
        let prog = build_default(params);
        let mut rep = prog.run_sim_preset(8, MachinePreset::NcubeLike);
        assert_eq!(rep.take_result::<u64>(), Some(primes_seq(5_000)));
    }

    #[test]
    fn single_chunk_still_works() {
        let params = PrimesParams {
            limit: 1_000,
            chunks: 1,
        };
        let prog = build_default(params);
        let mut rep = prog.run_sim_preset(4, MachinePreset::IpscLike);
        assert_eq!(rep.take_result::<u64>(), Some(168));
    }

    #[test]
    fn near_linear_speedup() {
        // Enough chunks per PE that random placement balances, and
        // enough work per chunk to amortize messaging.
        let params = PrimesParams {
            limit: 200_000,
            chunks: 512,
        };
        let prog = build_default(params);
        let t1 = prog.run_sim_preset(1, MachinePreset::NcubeLike).time_ns;
        let t16 = prog.run_sim_preset(16, MachinePreset::NcubeLike).time_ns;
        let speedup = t1 as f64 / t16 as f64;
        assert!(speedup > 8.0, "expected >8x speedup on 16 PEs, got {speedup:.2}");
    }

    #[test]
    fn works_on_threads() {
        let params = PrimesParams {
            limit: 20_000,
            chunks: 32,
        };
        let prog = build_default(params);
        let mut rep = prog.run_threads(4);
        assert!(!rep.timed_out);
        assert_eq!(rep.take_result::<u64>(), Some(primes_seq(20_000)));
    }
}
