//! 15-puzzle by parallel iterative-deepening A* (IDA*).
//!
//! Each deepening phase is one message-driven wave: the root position is
//! expanded into chares down to a split depth, below which subtrees run
//! the classic sequential bounded DFS. Three specifically shared
//! variables coordinate the phase:
//!
//! * a **monotonic** bound holds the best solution length found;
//! * a **min-accumulator** gathers the smallest f-value that exceeded
//!   the threshold (the next threshold);
//! * a **sum-accumulator** counts nodes expanded.
//!
//! The end of each phase is detected by quiescence; the main chare then
//! either starts the next phase with a bigger threshold or exits — a use
//! of *repeated* quiescence-detection sessions that stresses the QD
//! module harder than single-wave programs.

use chare_kernel::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::costs::{work, PUZZLE_NODE_NS};

/// Entry point on the main chare: quiescence (phase end).
pub const EP_QUIESCENT: EpId = EpId(1);
/// Entry point on the main chare: collected next threshold.
pub const EP_NEXT: EpId = EpId(2);
/// Entry point on the main chare: collected node count.
pub const EP_NODES: EpId = EpId(3);

/// A 15-puzzle position: 16 nibbles packed into a `u64`, cell 0 at the
/// least significant nibble; value 0 is the blank. Goal: cell `i` holds
/// `i + 1`, blank last.
pub type Board = u64;

/// The solved position.
pub const GOAL: Board = {
    let mut b = 0u64;
    let mut i = 0;
    while i < 15 {
        b |= ((i + 1) as u64) << (4 * i);
        i += 1;
    }
    b
};

/// Tile at cell `i`.
#[inline]
pub fn tile(b: Board, i: usize) -> u8 {
    ((b >> (4 * i)) & 0xF) as u8
}

/// Board with cell `i` set to `v`.
#[inline]
pub fn with_tile(b: Board, i: usize, v: u8) -> Board {
    (b & !(0xFu64 << (4 * i))) | ((v as u64) << (4 * i))
}

/// Position of the blank.
pub fn blank_of(b: Board) -> usize {
    (0..16).find(|&i| tile(b, i) == 0).expect("board has a blank")
}

/// Sum of Manhattan distances of all tiles to their goal cells — the
/// admissible heuristic.
pub fn manhattan(b: Board) -> u32 {
    let mut h = 0;
    for i in 0..16 {
        let t = tile(b, i);
        if t == 0 {
            continue;
        }
        let goal = (t - 1) as usize;
        h += (i / 4).abs_diff(goal / 4) + (i % 4).abs_diff(goal % 4);
    }
    h as u32
}

/// Cells adjacent to `i` (legal blank destinations), with the move
/// index (0=up, 1=down, 2=left, 3=right) for inverse-move pruning.
pub fn moves(i: usize) -> impl Iterator<Item = (u8, usize)> {
    let row = i / 4;
    let col = i % 4;
    [
        (0u8, row > 0, i.wrapping_sub(4)),
        (1, row < 3, i + 4),
        (2, col > 0, i.wrapping_sub(1)),
        (3, col < 3, i + 1),
    ]
    .into_iter()
    .filter(|&(_, ok, _)| ok)
    .map(|(m, _, j)| (m, j))
}

/// The inverse of a move index.
fn inverse(m: u8) -> u8 {
    match m {
        0 => 1,
        1 => 0,
        2 => 3,
        3 => 2,
        _ => 4,
    }
}

/// Apply a blank move: swap the blank at `blank` with the tile at `j`.
#[inline]
pub fn apply(b: Board, blank: usize, j: usize) -> Board {
    let t = tile(b, j);
    with_tile(with_tile(b, blank, t), j, 0)
}

/// Scramble the goal with `k` random moves (never undoing the previous
/// move), returning a solvable board with solution length ≤ `k`.
pub fn scramble(k: u32, seed: u64) -> Board {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GOAL;
    let mut blank = 15;
    let mut last = 4u8;
    for _ in 0..k {
        let opts: Vec<(u8, usize)> = moves(blank).filter(|&(m, _)| m != inverse(last)).collect();
        let (m, j) = opts[rng.random_range(0..opts.len())];
        b = apply(b, blank, j);
        blank = j;
        last = m;
    }
    b
}

/// Bounded DFS of one IDA* phase. Returns nodes visited; updates `best`
/// (smallest solution ≤ threshold found) and `next` (smallest exceeded
/// f) in place.
pub fn bounded_dfs(
    b: Board,
    blank: usize,
    g: u32,
    last: u8,
    threshold: u32,
    best: &mut u64,
    next: &mut u64,
) -> u64 {
    let h = manhattan(b);
    let f = g + h;
    if f as u64 >= *best {
        return 1;
    }
    if f > threshold {
        if (f as u64) < *next {
            *next = f as u64;
        }
        return 1;
    }
    if h == 0 {
        *best = g as u64;
        return 1;
    }
    let mut nodes = 1;
    for (m, j) in moves(blank) {
        if m == inverse(last) {
            continue;
        }
        nodes += bounded_dfs(apply(b, blank, j), j, g + 1, m, threshold, best, next);
    }
    nodes
}

/// Sequential IDA*: solution length and total nodes over all phases.
pub fn ida_seq(start: Board) -> (u32, u64) {
    let mut threshold = manhattan(start);
    let mut nodes = 0;
    loop {
        let mut best = u64::MAX;
        let mut next = u64::MAX;
        nodes += bounded_dfs(start, blank_of(start), 0, 4, threshold, &mut best, &mut next);
        if best < u64::MAX {
            return (best as u32, nodes);
        }
        assert!(next < u64::MAX, "puzzle must be solvable");
        threshold = next as u32;
    }
}

/// Parameters of a puzzle run.
#[derive(Clone, Copy, Debug)]
pub struct PuzzleParams {
    /// Scramble length.
    pub scramble: u32,
    /// Instance RNG seed.
    pub seed: u64,
    /// Tree depth expanded as chares before going sequential.
    pub split_depth: u32,
}

impl Default for PuzzleParams {
    fn default() -> Self {
        PuzzleParams {
            scramble: 28,
            seed: 5,
            split_depth: 5,
        }
    }
}

/// Result of a parallel run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PuzzleResult {
    /// Solution length (optimal).
    pub cost: u32,
    /// Total nodes expanded across all phases (schedule-dependent).
    pub nodes: u64,
    /// Number of deepening phases.
    pub phases: u32,
}

/// Handles threaded through every seed.
#[derive(Clone, Copy)]
pub struct Handles {
    node: Kind<PuzzleChare>,
    best: MonoVar<MinBoundU64>,
    next: Acc<MinU64>,
    nodes: Acc<SumU64>,
    split_depth: u32,
}

/// Seed of the main chare.
#[derive(Clone)]
pub struct MainSeed {
    start: Board,
    h: Handles,
}
message!(MainSeed);

/// Seed of a search-node chare.
#[derive(Clone, Copy)]
pub struct NodeSeed {
    board: Board,
    blank: u8,
    g: u32,
    last: u8,
    threshold: u32,
    h: Handles,
}
message!(NodeSeed);

/// The main chare: runs deepening phases until a solution is found.
pub struct PuzzleMain {
    start: Board,
    threshold: u32,
    phases: u32,
    total_nodes: u64,
    h: Handles,
}

impl PuzzleMain {
    fn launch_phase(&mut self, ctx: &mut Ctx) {
        self.phases += 1;
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_QUIESCENT));
        ctx.create_prio(
            self.h.node,
            NodeSeed {
                board: self.start,
                blank: blank_of(self.start) as u8,
                g: 0,
                last: 4,
                threshold: self.threshold,
                h: self.h,
            },
            Priority::Int(manhattan(self.start) as i64),
        );
    }
}

impl ChareInit for PuzzleMain {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let mut main = PuzzleMain {
            start: seed.start,
            threshold: manhattan(seed.start),
            phases: 0,
            total_nodes: 0,
            h: seed.h,
        };
        main.launch_phase(ctx);
        main
    }
}

impl Chare for PuzzleMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        let me = ctx.self_id();
        match ep {
            EP_QUIESCENT => {
                let _ = cast::<QuiescenceMsg>(msg);
                ctx.acc_collect(self.h.next, Notify::Chare(me, EP_NEXT));
            }
            EP_NEXT => {
                let next = cast::<AccResult<u64>>(msg).value;
                ctx.acc_collect(self.h.nodes, Notify::Chare(me, EP_NODES));
                // Stash the next threshold; applied in EP_NODES once the
                // node count for this phase is in.
                if ctx.mono_get(self.h.best) == u64::MAX {
                    assert!(next < u64::MAX, "puzzle must be solvable");
                    self.threshold = next as u32;
                }
            }
            EP_NODES => {
                self.total_nodes += cast::<AccResult<u64>>(msg).value;
                let best = ctx.mono_get(self.h.best);
                if best < u64::MAX {
                    ctx.exit(PuzzleResult {
                        cost: best as u32,
                        nodes: self.total_nodes,
                        phases: self.phases,
                    });
                } else {
                    self.launch_phase(ctx);
                }
            }
            _ => unreachable!("unknown entry point {ep:?}"),
        }
    }
}

/// One node of the search tree.
pub struct PuzzleChare;

impl ChareInit for PuzzleChare {
    type Seed = NodeSeed;
    fn create(seed: NodeSeed, ctx: &mut Ctx) -> Self {
        let h = seed.h;
        ctx.destroy_self();
        let blank = seed.blank as usize;
        let hv = manhattan(seed.board);
        let f = seed.g + hv;
        let best = ctx.mono_get(h.best);
        ctx.charge(work(1, PUZZLE_NODE_NS));

        if f as u64 >= best {
            ctx.acc_add(h.nodes, 1);
            return PuzzleChare;
        }
        if f > seed.threshold {
            ctx.acc_add(h.next, f as u64);
            ctx.acc_add(h.nodes, 1);
            return PuzzleChare;
        }
        if hv == 0 {
            ctx.acc_add(h.nodes, 1);
            ctx.mono_update(h.best, seed.g as u64);
            return PuzzleChare;
        }
        if seed.g >= h.split_depth {
            let mut local_best = best;
            let mut local_next = u64::MAX;
            let nodes = bounded_dfs(
                seed.board,
                blank,
                seed.g,
                seed.last,
                seed.threshold,
                &mut local_best,
                &mut local_next,
            );
            ctx.charge(work(nodes, PUZZLE_NODE_NS));
            ctx.acc_add(h.nodes, nodes);
            if local_next < u64::MAX {
                ctx.acc_add(h.next, local_next);
            }
            if local_best < best {
                ctx.mono_update(h.best, local_best);
            }
            return PuzzleChare;
        }
        ctx.acc_add(h.nodes, 1);
        for (m, j) in moves(blank) {
            if m == inverse(seed.last) {
                continue;
            }
            let board = apply(seed.board, blank, j);
            let child_f = seed.g + 1 + manhattan(board);
            ctx.create_prio(
                h.node,
                NodeSeed {
                    board,
                    blank: j as u8,
                    g: seed.g + 1,
                    last: m,
                    threshold: seed.threshold,
                    h,
                },
                Priority::Int(child_f as i64),
            );
        }
        PuzzleChare
    }
}

impl Chare for PuzzleChare {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!("PuzzleChare receives no messages")
    }
}

/// Build the puzzle program with the given strategies.
pub fn build(
    params: PuzzleParams,
    queueing: QueueingStrategy,
    balance: BalanceStrategy,
) -> Program {
    let start = scramble(params.scramble, params.seed);
    let mut b = ProgramBuilder::new();
    let node = b.chare::<PuzzleChare>();
    let main = b.chare::<PuzzleMain>();
    let best = b.monotonic::<MinBoundU64>();
    let next = b.accumulator::<MinU64>();
    let nodes = b.accumulator::<SumU64>();
    b.queueing(queueing);
    b.balance(balance);
    b.main(
        main,
        MainSeed {
            start,
            h: Handles {
                node,
                best,
                next,
                nodes,
                split_depth: params.split_depth,
            },
        },
    );
    b.build()
}

/// Build with the defaults the tables use (integer f-priorities + ACWN).
pub fn build_default(params: PuzzleParams) -> Program {
    build(params, QueueingStrategy::IntPriority, BalanceStrategy::acwn())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_properties() {
        assert_eq!(manhattan(GOAL), 0);
        assert_eq!(blank_of(GOAL), 15);
        assert_eq!(tile(GOAL, 0), 1);
        assert_eq!(tile(GOAL, 14), 15);
    }

    #[test]
    fn tile_roundtrip() {
        let b = with_tile(GOAL, 3, 9);
        assert_eq!(tile(b, 3), 9);
        // Other cells untouched.
        assert_eq!(tile(b, 4), 5);
    }

    #[test]
    fn moves_respect_edges() {
        assert_eq!(moves(0).count(), 2); // corner
        assert_eq!(moves(1).count(), 3); // edge
        assert_eq!(moves(5).count(), 4); // center
        assert_eq!(moves(15).count(), 2); // corner
    }

    #[test]
    fn scramble_is_solvable_within_k() {
        for k in [4, 10, 20] {
            let b = scramble(k, 9);
            let (cost, _) = ida_seq(b);
            assert!(cost <= k, "k={k} cost={cost}");
            // Parity: scramble length and solution length have the same
            // parity (each move flips permutation parity).
            assert_eq!(cost % 2, k % 2, "k={k} cost={cost}");
        }
    }

    #[test]
    fn manhattan_admissible_on_scrambles() {
        for seed in 0..5 {
            let b = scramble(14, seed);
            let (cost, _) = ida_seq(b);
            assert!(manhattan(b) <= cost);
        }
    }

    #[test]
    fn parallel_matches_sequential_cost() {
        let params = PuzzleParams {
            scramble: 20,
            seed: 5,
            split_depth: 4,
        };
        let (want, _) = ida_seq(scramble(20, 5));
        for q in [QueueingStrategy::Fifo, QueueingStrategy::IntPriority] {
            let prog = build(params, q, BalanceStrategy::Random);
            let mut rep = prog.run_sim_preset(8, MachinePreset::NcubeLike);
            let got = rep.take_result::<PuzzleResult>().expect("result");
            assert_eq!(got.cost, want, "queueing {q:?}");
            assert!(got.phases >= 1);
        }
    }

    #[test]
    fn works_on_threads() {
        let params = PuzzleParams {
            scramble: 18,
            seed: 3,
            split_depth: 4,
        };
        let (want, _) = ida_seq(scramble(18, 3));
        let prog = build_default(params);
        let mut rep = prog.run_threads(4);
        assert!(!rep.timed_out);
        assert_eq!(rep.take_result::<PuzzleResult>().unwrap().cost, want);
    }
}
