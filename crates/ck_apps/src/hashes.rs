//! Deterministic non-cryptographic hashing for the hash-tree workload
//! family ([`crate::mmr`], [`crate::tablefill`]).
//!
//! The workloads need a hash that is (a) dependency-free, (b) identical
//! on every backend and platform, and (c) order-sensitive, so a tree
//! built with the wrong shape or a pipeline filled in the wrong
//! dependency order produces a loudly different digest. A 128-bit
//! digest built from the splitmix64 finalizer does all three; nothing
//! here pretends to be cryptographic.

use chare_kernel::prelude::*;

/// Domain tag mixed into leaf hashes.
const LEAF_TAG: u64 = 0x6c65_6166_2d74_6167; // "leaf-tag"
/// Domain tags mixed into interior-node hashes.
const NODE_TAG_A: u64 = 0x6e6f_6465_2d74_6167; // "node-tag"
const NODE_TAG_B: u64 = 0x6261_672d_7065_616b; // "bag-peak"

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A 128-bit digest: two independently-mixed 64-bit lanes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Digest {
    /// First lane.
    pub a: u64,
    /// Second lane.
    pub b: u64,
}

wire_struct!(Digest { a, b });

impl Digest {
    /// Digest of the empty tree (zero leaves).
    pub fn empty() -> Digest {
        Digest { a: 0, b: 0 }
    }

    /// Hex rendering (32 nibbles), for table cells and logs.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.a, self.b)
    }

    /// Fold the two lanes into one word (for checksums and desim
    /// answers).
    pub fn fold(&self) -> u64 {
        mix64(self.a ^ self.b.rotate_left(32))
    }
}

/// Hash of leaf `index` in a tree parameterized by `seed`.
pub fn leaf_digest(seed: u64, index: u64) -> Digest {
    let a = mix64(seed ^ mix64(index ^ LEAF_TAG));
    let b = mix64(a ^ mix64(index.wrapping_add(seed)));
    Digest { a, b }
}

/// Hash of an interior node from its two children. Deliberately
/// non-commutative: swapping children changes the digest.
pub fn node_digest(left: Digest, right: Digest) -> Digest {
    let a = mix64(left.a.wrapping_mul(3).wrapping_add(right.a) ^ NODE_TAG_A);
    let b = mix64(left.b.wrapping_mul(5).wrapping_add(right.b) ^ a ^ NODE_TAG_B);
    Digest { a, b }
}

/// Combine rows of one table cell-stream: fold `value` into a running
/// row hash.
pub fn row_mix(acc: u64, value: u64) -> u64 {
    mix64(acc ^ value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_a_bijection_sample() {
        // Distinct inputs must map to distinct outputs (spot check —
        // splitmix64's finalizer is invertible, so this can't fail).
        let outs: Vec<u64> = (0..1000u64).map(mix64).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), outs.len());
    }

    #[test]
    fn leaves_depend_on_seed_and_index() {
        assert_ne!(leaf_digest(1, 0), leaf_digest(1, 1));
        assert_ne!(leaf_digest(1, 0), leaf_digest(2, 0));
    }

    #[test]
    fn node_is_order_sensitive() {
        let l = leaf_digest(7, 0);
        let r = leaf_digest(7, 1);
        assert_ne!(node_digest(l, r), node_digest(r, l));
        assert_ne!(node_digest(l, r), l);
    }

    #[test]
    fn digest_hex_round_trip_width() {
        let d = leaf_digest(3, 4);
        assert_eq!(d.hex().len(), 32);
        assert_eq!(Digest::empty().hex(), "0".repeat(32));
    }

    #[test]
    fn fold_mixes_both_lanes() {
        let d = leaf_digest(9, 9);
        assert_ne!(d.fold(), Digest { a: d.a, b: 0 }.fold());
        assert_ne!(d.fold(), Digest { a: 0, b: d.b }.fold());
    }
}
