//! Tracing must observe, never perturb.
//!
//! The kernel's event log (PR: Projections-style tracing) is a passive
//! recorder: it sends no messages, charges no simulated time and takes
//! no scheduling decisions. These tests pin that down on real
//! benchmarks — a traced run must be *byte-identical* to an untraced
//! one — and check that what the log says agrees with what the kernel's
//! own counters say happened.

use chare_kernel::prelude::*;
use ck_apps::{fib, nqueens};

fn fib_prog() -> Program {
    fib::build_default(fib::FibParams { n: 16, grain: 9 })
}

/// Tracing on vs. off: identical completion time, simulator event
/// count, packet/byte totals and kernel counters. This is the
/// zero-perturbation guarantee — the analogue of the reliability
/// layer's zero-cost-off test.
#[test]
fn tracing_on_is_byte_identical_to_tracing_off() {
    let plain = fib_prog();
    let traced = plain.with_tracing(TraceConfig::default());
    let a = plain.run_sim_preset(8, MachinePreset::NcubeLike);
    let b = traced.run_sim_preset(8, MachinePreset::NcubeLike);
    assert_eq!(a.time_ns, b.time_ns);
    let (sa, sb) = (a.sim.as_ref().unwrap(), b.sim.as_ref().unwrap());
    assert_eq!(sa.events, sb.events);
    assert_eq!(sa.packets, sb.packets);
    assert_eq!(sa.bytes, sb.bytes);
    for name in ["user_sent", "user_recv", "entries_executed", "seeds_forwarded"] {
        assert_eq!(a.counter_total(name), b.counter_total(name), "{name}");
    }
    assert!(a.trace.is_none());
    assert!(b.trace.is_some());
}

/// A fixed-seed traced run replays to the identical event log.
#[test]
fn traced_run_replays_identically() {
    let prog = nqueens::build_default(nqueens::QueensParams { n: 8, grain: 4 })
        .with_tracing(TraceConfig::default());
    let a = prog.run_sim_preset(8, MachinePreset::NcubeLike);
    let b = prog.run_sim_preset(8, MachinePreset::NcubeLike);
    let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
    assert_eq!(ta.events.len(), tb.events.len());
    assert_eq!(ta.dropped, tb.dropped);
    assert_eq!(ta.events, tb.events);
}

/// The log agrees with the kernel's own books: one EntryBegin/EntryEnd
/// pair per counted entry execution, and at least one record of every
/// seed placement decision.
#[test]
fn event_log_agrees_with_kernel_counters() {
    let prog = fib_prog().with_tracing(TraceConfig::default());
    let rep = prog.run_sim_preset(8, MachinePreset::NcubeLike);
    let log = rep.trace.as_ref().unwrap();
    assert_eq!(log.dropped, 0, "default capacity must hold this workload");
    let begins = log.count(|k| matches!(k, EventKind::EntryBegin { .. }));
    let ends = log.count(|k| matches!(k, EventKind::EntryEnd { .. }));
    assert_eq!(begins, ends);
    assert_eq!(begins, rep.counter_total("entries_executed"));
    let kept = log.count(|k| matches!(k, EventKind::SeedKept { .. }));
    let fwd = log.count(|k| matches!(k, EventKind::SeedForwarded { .. }));
    assert_eq!(kept, rep.counter_total("seeds_kept"));
    assert_eq!(fwd, rep.counter_total("seeds_forwarded"));
    let sends = log.count(|k| matches!(k, EventKind::MsgSend { .. }));
    let recvs = log.count(|k| matches!(k, EventKind::MsgRecv { .. }));
    assert!(sends > 0 && recvs > 0);
}

/// A deliberately tiny ring buffer overflows gracefully: newest events
/// are kept, the drop count says how many were lost, and the run's
/// results are untouched.
#[test]
fn tiny_ring_buffer_drops_oldest_but_never_perturbs() {
    let plain = fib_prog();
    let tiny = plain.with_tracing(TraceConfig::with_capacity(16));
    let a = plain.run_sim_preset(8, MachinePreset::NcubeLike);
    let b = tiny.run_sim_preset(8, MachinePreset::NcubeLike);
    assert_eq!(a.time_ns, b.time_ns, "overflow must not change the run");
    let log = b.trace.as_ref().unwrap();
    assert!(log.dropped > 0, "16-slot rings must overflow on fib");
    assert!(log.events.len() <= 16 * 8, "npes rings of 16 events each");
    // What survives is the newest tail: every PE's surviving events end
    // at that PE's last recorded instant.
    for pe in multicomputer::Pe::all(8) {
        let evs: Vec<_> = log.events_for(pe).collect();
        assert!(evs.len() <= 16);
    }
}
