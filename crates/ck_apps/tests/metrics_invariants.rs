//! Streaming metrics must observe, never perturb.
//!
//! The metrics subsystem (interval slices, latency/grain histograms,
//! queue high-watermarks, flight recorder) is a passive recorder with
//! the same zero-perturbation contract as the trace module: no
//! messages, no charged time, no scheduling decisions. These tests pin
//! that down on real benchmarks — a metered run must be
//! *byte-identical* to an unmetered one — and check that the streaming
//! aggregates agree with the kernel's own counters, which were
//! accumulated by entirely separate code.

use chare_kernel::metrics::MetricsConfig;
use chare_kernel::prelude::*;
use ck_apps::{fib, nqueens};

fn fib_prog() -> Program {
    fib::build_default(fib::FibParams { n: 16, grain: 9 })
}

/// Metrics on vs. off: identical completion time, simulator event
/// count, packet/byte totals and kernel counters — the analogue of the
/// trace layer's zero-perturbation test.
#[test]
fn metrics_on_is_byte_identical_to_metrics_off() {
    let plain = fib_prog();
    let metered = plain.with_metrics(MetricsConfig::default());
    let a = plain.run_sim_preset(8, MachinePreset::NcubeLike);
    let b = metered.run_sim_preset(8, MachinePreset::NcubeLike);
    assert_eq!(a.time_ns, b.time_ns);
    let (sa, sb) = (a.sim.as_ref().unwrap(), b.sim.as_ref().unwrap());
    assert_eq!(sa.events, sb.events);
    assert_eq!(sa.packets, sb.packets);
    assert_eq!(sa.bytes, sb.bytes);
    for name in ["user_sent", "user_recv", "entries_executed", "seeds_forwarded"] {
        assert_eq!(a.counter_total(name), b.counter_total(name), "{name}");
    }
    assert!(a.metrics.is_none());
    assert!(b.metrics.is_some());
}

/// A fixed configuration replays to the identical metrics snapshot —
/// slices, histograms, watermarks and flight recorder all match.
#[test]
fn metered_run_replays_identically() {
    let prog = nqueens::build_default(nqueens::QueensParams { n: 8, grain: 4 })
        .with_metrics(MetricsConfig::default());
    let a = prog.run_sim_preset(8, MachinePreset::NcubeLike);
    let b = prog.run_sim_preset(8, MachinePreset::NcubeLike);
    assert_eq!(a.metrics.as_ref().unwrap(), b.metrics.as_ref().unwrap());
}

/// The streaming aggregates agree with the kernel's own books: one
/// grain sample per counted entry execution, per-slice seed totals
/// matching the balance counters, and one latency sample per received
/// envelope.
#[test]
fn metrics_agree_with_kernel_counters() {
    let rep = fib_prog()
        .with_metrics(MetricsConfig::default())
        .run_sim_preset(8, MachinePreset::NcubeLike);
    let log = rep.metrics.as_ref().unwrap();
    assert_eq!(log.grain_all().count, rep.counter_total("entries_executed"));
    let mut kept = 0u64;
    let mut fwd = 0u64;
    let mut recv = 0u64;
    for pe in &log.per_pe {
        for s in &pe.slices {
            kept += s.seeds_kept;
            fwd += s.seeds_forwarded;
            recv += s.msgs_recv;
        }
    }
    assert_eq!(kept, rep.counter_total("seeds_kept"));
    assert_eq!(fwd, rep.counter_total("seeds_forwarded"));
    // One latency sample per received envelope — the histogram and the
    // slice counters watch the same hook.
    assert_eq!(log.latency_all().count, recv);
    assert!(recv > 0);
    assert!(log.queue_hwm_max() > 0, "fib must queue work somewhere");
}

/// Busy time never exceeds the time that existed: every slice's
/// work+dispatch+control fits its interval, and the whole run's busy
/// total fits PEs × end time.
#[test]
fn slice_busy_time_is_bounded_by_the_interval() {
    let rep = fib_prog()
        .with_metrics(MetricsConfig::default())
        .run_sim_preset(8, MachinePreset::NcubeLike);
    let log = rep.metrics.as_ref().unwrap();
    assert!(log.nslices() > 1, "default width must resolve this run");
    let mut total_busy = 0u64;
    for pe in &log.per_pe {
        for (i, s) in pe.slices.iter().enumerate() {
            assert!(
                s.busy_ns() <= log.slice_ns,
                "PE {} slice {i}: busy {} > width {}",
                pe.pe.index(),
                s.busy_ns(),
                log.slice_ns
            );
            total_busy += s.busy_ns();
        }
    }
    assert!(total_busy > 0);
    assert!(total_busy <= log.end_ns * log.npes as u64);
}

/// A deliberately tiny flight ring overflows gracefully: newest events
/// kept, drop count says how many were overwritten, run untouched.
#[test]
fn tiny_flight_ring_drops_oldest_but_never_perturbs() {
    let plain = fib_prog();
    let tiny = plain.with_metrics(MetricsConfig {
        flight_cap: 8,
        ..MetricsConfig::default()
    });
    let a = plain.run_sim_preset(8, MachinePreset::NcubeLike);
    let b = tiny.run_sim_preset(8, MachinePreset::NcubeLike);
    assert_eq!(a.time_ns, b.time_ns, "overflow must not change the run");
    let log = b.metrics.as_ref().unwrap();
    assert!(log.flight_dropped() > 0, "8-slot rings must overflow on fib");
    for pe in &log.per_pe {
        assert!(pe.flight.len() <= 8);
        // What survives is each PE's newest tail, in time order.
        for w in pe.flight.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns);
        }
    }
    // The machine-wide tail is globally time-ordered.
    let tail = log.flight_tail(20);
    assert!(!tail.is_empty());
    for w in tail.windows(2) {
        assert!(w[0].at_ns <= w[1].at_ns);
    }
}

/// A run long enough to overflow the slice budget coarsens (doubles
/// width) instead of growing: the drained log stays within budget and
/// still covers the whole run.
#[test]
fn slice_budget_coarsens_instead_of_growing() {
    let prog = fib_prog().with_metrics(MetricsConfig {
        slice_ns: 64, // absurdly fine: forces repeated doubling
        max_slices: 16,
        ..MetricsConfig::default()
    });
    let rep = prog.run_sim_preset(8, MachinePreset::NcubeLike);
    let log = rep.metrics.as_ref().unwrap();
    assert!(log.slice_ns > 64, "width must have doubled");
    assert_eq!(log.slice_ns % 64, 0, "width stays a power-of-two multiple");
    assert!(log.nslices() <= 16 + 1);
    // Coverage: the last slice must reach the end of the run.
    assert!(log.nslices() as u64 * log.slice_ns >= log.end_ns);
}
