//! Property tests for the hash-tree workload family: the parallel MMR
//! build and the pipelined table fill must agree with their serial
//! reference implementations for *arbitrary* problem shapes, not just
//! the hand-picked sizes in the unit tests. Edge shapes (zero leaves,
//! one leaf, exact powers of two, grain larger than the input, pipeline
//! width wider than the block count) are pinned explicitly; random
//! shapes cover the interior.

use ck_apps::{mmr, tablefill};
use chare_kernel::prelude::*;
use proptest::prelude::*;

fn run_mmr(params: mmr::MmrParams, npes: usize) -> mmr::MmrResult {
    let mut rep = mmr::build_default(params).run_sim_preset(npes, MachinePreset::NcubeLike);
    rep.take_result::<mmr::MmrResult>().expect("mmr result")
}

fn run_fill(params: tablefill::FillParams, npes: usize) -> tablefill::FillResult {
    let mut rep =
        tablefill::build_default(params).run_sim_preset(npes, MachinePreset::NcubeLike);
    rep.take_result::<tablefill::FillResult>().expect("fill result")
}

#[test]
fn mmr_edge_shapes_match_serial() {
    // Zero leaves (empty root), one leaf, exact powers of two (single
    // peak), and a grain larger than the whole input (one block, one
    // leaf-phase chare) all match the serial reference.
    for (leaves, grain) in [
        (0, 4),
        (1, 4),
        (2, 1),
        (8, 2),
        (64, 8),
        (64, 128),
        (5, 100),
    ] {
        let params = mmr::MmrParams {
            leaves,
            grain,
            seed: 3,
        };
        let got = run_mmr(params, 4);
        assert_eq!(
            got.root,
            mmr::mmr_root_seq(3, leaves),
            "leaves={leaves} grain={grain}"
        );
        assert_eq!(got.peaks, leaves.count_ones(), "leaves={leaves}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mmr_matches_serial_for_arbitrary_shapes(
        leaves in 0u64..200,
        grain in 1u64..24,
        seed in 0u64..1000,
        npes in 1usize..6,
    ) {
        let got = run_mmr(mmr::MmrParams { leaves, grain, seed }, npes);
        prop_assert_eq!(got.root, mmr::mmr_root_seq(seed, leaves));
        prop_assert_eq!(got.peaks, leaves.count_ones());
    }

    #[test]
    fn tablefill_matches_serial_for_arbitrary_shapes(
        stages in 1u32..5,
        blocks in 1u32..10,
        rows in 1u32..8,
        width in 1u32..12,
        seed in 0u64..1000,
        npes in 1usize..6,
    ) {
        // `width` may exceed `blocks`: dependency windows clamp at
        // block 0, which is exactly the edge worth hammering.
        let params = tablefill::FillParams { stages, blocks, rows, width, seed };
        let got = run_fill(params, npes);
        prop_assert_eq!(got.digest, tablefill::fill_seq(&params));
        prop_assert_eq!(got.stage_done.len(), stages as usize);
        // Stage completion times are nondecreasing: a stage can only
        // finish after the one feeding it.
        for w in got.stage_done.windows(2) {
            prop_assert!(w[0] <= w[1], "stage profile not monotone: {:?}", got.stage_done);
        }
    }
}
