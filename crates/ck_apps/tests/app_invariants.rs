//! Cross-application invariants: every benchmark, run at modest scale,
//! must satisfy the kernel's accounting laws — balanced send/receive
//! counters, zero dead letters, and sane backlog high-water marks.

use chare_kernel::prelude::*;
use chare_kernel::CkReport;
use ck_apps::{fib, jacobi, jacobi_conv, matmul, nqueens, primes, puzzle, quad, sortbench, tsp};

fn all_programs() -> Vec<(&'static str, Program)> {
    vec![
        (
            "fib",
            fib::build_default(fib::FibParams { n: 18, grain: 10 }),
        ),
        (
            "nqueens",
            nqueens::build_default(nqueens::QueensParams { n: 8, grain: 4 }),
        ),
        (
            "tsp",
            tsp::build_default(tsp::TspParams {
                n: 9,
                seed: 3,
                seq_tail: 5,
            }),
        ),
        (
            "puzzle",
            puzzle::build_default(puzzle::PuzzleParams {
                scramble: 16,
                seed: 2,
                split_depth: 3,
            }),
        ),
        (
            "jacobi",
            jacobi::build_default(jacobi::JacobiParams { n: 24, iters: 6 }),
        ),
        (
            "jacobi_conv",
            jacobi_conv::build(jacobi_conv::ConvParams {
                n: 16,
                eps: 1e-3,
                max_iters: 200,
            }),
        ),
        (
            "matmul",
            matmul::build_default(matmul::MatmulParams { n: 32 }),
        ),
        (
            "quad",
            quad::build_default(quad::QuadParams {
                a: 0.0,
                b: 10.0,
                tol: 1e-6,
                grain: 0.2,
            }),
        ),
        (
            "sort",
            sortbench::build_default(sortbench::SortParams {
                total_keys: 2_400,
                seed: 12,
                sample_per_pe: 8,
            }),
        ),
        (
            "primes",
            primes::build_default(primes::PrimesParams {
                limit: 2_000,
                chunks: 8,
            }),
        ),
    ]
}

fn check(name: &str, rep: &CkReport) {
    // Exit discards in-flight messages, so sent >= recv; but no dead
    // letters and non-trivial execution are universal.
    let sent = rep.counter_total("user_sent");
    let recv = rep.counter_total("user_recv");
    assert!(sent >= recv, "{name}: recv {recv} > sent {sent}");
    assert!(
        sent - recv <= 8,
        "{name}: {} messages lost beyond the exit window",
        sent - recv
    );
    assert_eq!(rep.counter_total("dead_letters"), 0, "{name}");
    assert!(rep.counter_total("entries_executed") > 0, "{name}");
    // Something was enqueued somewhere.
    assert!(rep.counter_total("queue_hwm") >= 1, "{name}");
}

#[test]
fn accounting_invariants_hold_for_every_app() {
    for (name, prog) in all_programs() {
        let rep = prog.run_sim_preset(6, MachinePreset::NcubeLike);
        check(name, &rep);
    }
}

#[test]
fn invariants_hold_at_one_pe() {
    for (name, prog) in all_programs() {
        let rep = prog.run_sim_preset(1, MachinePreset::NcubeLike);
        check(name, &rep);
    }
}

#[test]
fn utilization_and_imbalance_are_sane() {
    for (name, prog) in all_programs() {
        let rep = prog.run_sim_preset(4, MachinePreset::NcubeLike);
        let sim = rep.sim.as_ref().expect("sim detail");
        assert!(
            sim.utilization > 0.0 && sim.utilization <= 1.0,
            "{name}: utilization {}",
            sim.utilization
        );
        assert!(
            sim.imbalance >= 1.0 - 1e-9 && sim.imbalance <= 4.0 + 1e-9,
            "{name}: imbalance {} out of [1, P]",
            sim.imbalance
        );
        assert!(!sim.quiesced, "{name}: programs end with exit, not quiescence");
    }
}
