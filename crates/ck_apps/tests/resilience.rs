//! Fault-tolerance acceptance tests: every benchmark app, run on a
//! 16-PE simulated machine that drops, duplicates and delays packets
//! (and stalls one PE mid-run), must still produce the fault-free
//! answer when the kernel's reliable-delivery layer is enabled.
//!
//! Also checks determinism (a fixed fault seed replays to identical
//! reports) and the zero-cost-off property (a reliable-capable build
//! with faults disabled and reliability off matches the seed tables).

use chare_kernel::prelude::*;
use chare_kernel::CkReport;
use ck_apps::{fib, jacobi, jacobi_conv, matmul, nqueens, primes, puzzle, quad, sortbench, tsp};
use multicomputer::SimTime;
use proptest::prelude::*;

/// A comparable distillation of an app's result: exact for counts,
/// tolerant for floating-point accumulations whose addition order is
/// legitimately schedule-dependent.
#[derive(Debug, Clone, Copy)]
enum Answer {
    Int(u64),
    Float(f64),
}

impl Answer {
    fn matches(self, other: Answer) -> bool {
        match (self, other) {
            (Answer::Int(a), Answer::Int(b)) => a == b,
            (Answer::Float(a), Answer::Float(b)) => {
                let scale = a.abs().max(b.abs()).max(1.0);
                (a - b).abs() <= 1e-9 * scale
            }
            _ => false,
        }
    }
}

type Extract = fn(&mut CkReport) -> Answer;

/// Every benchmark at accounting-test scale, with a result extractor.
fn suite() -> Vec<(&'static str, Program, Extract)> {
    vec![
        (
            "fib",
            fib::build_default(fib::FibParams { n: 18, grain: 10 }),
            |r| Answer::Int(r.take_result::<u64>().expect("fib result")),
        ),
        (
            "nqueens",
            nqueens::build_default(nqueens::QueensParams { n: 8, grain: 4 }),
            |r| Answer::Int(r.take_result::<u64>().expect("queens result")),
        ),
        (
            "tsp",
            tsp::build_default(tsp::TspParams {
                n: 9,
                seed: 3,
                seq_tail: 5,
            }),
            |r| Answer::Int(r.take_result::<tsp::TspResult>().expect("tsp result").best),
        ),
        (
            "puzzle",
            puzzle::build_default(puzzle::PuzzleParams {
                scramble: 16,
                seed: 2,
                split_depth: 3,
            }),
            |r| {
                Answer::Int(
                    r.take_result::<puzzle::PuzzleResult>()
                        .expect("puzzle result")
                        .cost as u64,
                )
            },
        ),
        (
            "jacobi",
            jacobi::build_default(jacobi::JacobiParams { n: 24, iters: 6 }),
            |r| Answer::Float(r.take_result::<f64>().expect("jacobi checksum")),
        ),
        (
            "jacobi_conv",
            jacobi_conv::build(jacobi_conv::ConvParams {
                n: 16,
                eps: 1e-3,
                max_iters: 200,
            }),
            |r| {
                Answer::Int(
                    r.take_result::<jacobi_conv::ConvResult>()
                        .expect("conv result")
                        .iters as u64,
                )
            },
        ),
        (
            "matmul",
            matmul::build_default(matmul::MatmulParams { n: 32 }),
            |r| Answer::Float(r.take_result::<f64>().expect("matmul checksum")),
        ),
        (
            "quad",
            quad::build_default(quad::QuadParams {
                a: 0.0,
                b: 10.0,
                tol: 1e-6,
                grain: 0.2,
            }),
            |r| Answer::Float(r.take_result::<f64>().expect("quad integral")),
        ),
        (
            "sort",
            sortbench::build_default(sortbench::SortParams {
                total_keys: 2_400,
                seed: 12,
                sample_per_pe: 8,
            }),
            |r| {
                let f = r
                    .take_result::<sortbench::Fingerprint>()
                    .expect("fingerprint");
                Answer::Int(f.sum ^ f.xor.rotate_left(17) ^ f.count)
            },
        ),
        (
            "primes",
            primes::build_default(primes::PrimesParams {
                limit: 2_000,
                chunks: 8,
            }),
            |r| Answer::Int(r.take_result::<u64>().expect("primes count")),
        ),
    ]
}

const NPES: usize = 16;

/// Fast-retry config so redirect paths trigger within short sim runs.
fn rel_cfg() -> ReliableConfig {
    ReliableConfig {
        timeout: Cost::micros(800),
        seed_retry_limit: 3,
        ..ReliableConfig::default()
    }
}

/// The acceptance fault plan: 5% drop, 2% duplication, 5% extra delay,
/// plus PE 5 stalled for a window in the middle of the run.
fn rough_network(seed: u64) -> SimConfig {
    let plan = FaultPlan::new(seed)
        .drop(0.05)
        .duplicate(0.02)
        .delay(0.05, Cost::micros(200))
        .stall(
            Pe(5),
            SimTime(300_000),   // 300 µs in
            SimTime(1_200_000), // out at 1.2 ms
        );
    SimConfig::preset(NPES, MachinePreset::NcubeLike).with_faults(plan)
}

#[test]
fn every_app_survives_a_rough_network() {
    for (name, prog, extract) in suite() {
        let mut clean = prog.run_sim_preset(NPES, MachinePreset::NcubeLike);
        let want = extract(&mut clean);

        let mut rough = prog.with_reliable(rel_cfg()).run_sim(rough_network(0xBAD_5EED));
        let got = extract(&mut rough);
        assert!(
            want.matches(got),
            "{name}: fault-free {want:?} != faulty {got:?}"
        );

        let sim = rough.sim.as_ref().expect("sim detail");
        assert!(sim.aborted.is_none(), "{name}: aborted {:?}", sim.aborted);
        let faults = sim.faults.clone().expect("fault stats");
        assert!(
            faults.dropped + faults.delayed + faults.duplicated > 0,
            "{name}: the fault plan never fired — test is vacuous"
        );
        // Every genuinely dropped frame must have been repaired.
        if faults.dropped > 0 {
            assert!(
                rough.counter_total("retransmits") > 0,
                "{name}: drops occurred but nothing was retransmitted"
            );
        }
        if faults.duplicated > 0 {
            assert!(
                rough.counter_total("dup_dropped") > 0,
                "{name}: duplicates were injected but none discarded"
            );
        }
    }
}

#[test]
fn fixed_fault_seed_replays_identically() {
    let prog = nqueens::build_default(nqueens::QueensParams { n: 8, grain: 4 })
        .with_reliable(rel_cfg());
    let a = prog.run_sim(rough_network(0xD5));
    let b = prog.run_sim(rough_network(0xD5));
    assert_eq!(a.time_ns, b.time_ns);
    let (sa, sb) = (a.sim.as_ref().unwrap(), b.sim.as_ref().unwrap());
    assert_eq!(sa.events, sb.events);
    assert_eq!(sa.packets, sb.packets);
    assert_eq!(sa.bytes, sb.bytes);
    assert_eq!(sa.faults, sb.faults);
    for name in ["user_sent", "user_recv", "retransmits", "dup_dropped", "acks_sent"] {
        assert_eq!(a.counter_total(name), b.counter_total(name), "{name}");
    }
}

#[test]
fn different_fault_seeds_diverge() {
    // Sanity check that the plan seed actually steers the injection —
    // otherwise the replay test above proves nothing.
    let prog = fib::build_default(fib::FibParams { n: 16, grain: 9 }).with_reliable(rel_cfg());
    let a = prog.run_sim(rough_network(1));
    let b = prog.run_sim(rough_network(2));
    assert_ne!(
        a.sim.as_ref().unwrap().faults,
        b.sim.as_ref().unwrap().faults
    );
}

#[test]
fn reliable_layer_off_is_free() {
    // With no fault plan and reliability off, the kernel must behave
    // byte-for-byte as before the resilience work: identical time,
    // packets and counters (zero-cost-off).
    let prog = fib::build_default(fib::FibParams { n: 16, grain: 9 });
    let a = prog.run_sim_preset(8, MachinePreset::NcubeLike);
    let b = prog.run_sim_preset(8, MachinePreset::NcubeLike);
    assert_eq!(a.time_ns, b.time_ns);
    assert_eq!(a.counter_total("retransmits"), 0);
    assert_eq!(a.counter_total("acks_sent"), 0);
    assert_eq!(
        a.sim.as_ref().unwrap().packets,
        b.sim.as_ref().unwrap().packets
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Recovery equivalence: for arbitrary (bounded) drop/duplication/
    /// delay probabilities and fault seeds, a run with the reliable
    /// layer produces the exact fault-free answer.
    #[test]
    fn recovery_is_equivalent_to_a_clean_run(
        fault_seed in 0u64..1_000_000,
        drop_pm in 0u32..150u32,   // per-mille: up to 15% drop
        dup_pm in 0u32..50u32,     // up to 5% duplication
        delay_pm in 0u32..100u32,  // up to 10% delayed
    ) {
        let (drop_p, dup_p, delay_p) = (
            f64::from(drop_pm) / 1000.0,
            f64::from(dup_pm) / 1000.0,
            f64::from(delay_pm) / 1000.0,
        );
        let params = nqueens::QueensParams { n: 7, grain: 4 };
        let prog = nqueens::build_default(params);
        let want = prog
            .run_sim_preset(8, MachinePreset::NcubeLike)
            .take_result::<u64>()
            .expect("queens result");

        let plan = FaultPlan::new(fault_seed)
            .drop(drop_p)
            .duplicate(dup_p)
            .delay(delay_p, Cost::micros(150));
        let cfg = SimConfig::preset(8, MachinePreset::NcubeLike).with_faults(plan);
        let got = prog
            .with_reliable(rel_cfg())
            .run_sim(cfg)
            .take_result::<u64>()
            .expect("queens result under faults");
        prop_assert_eq!(want, got);
    }
}

#[test]
fn seeds_outrun_a_crashed_pe() {
    // Crash PE 3 at boot: seeds the balancer sends there are black-holed
    // by the machine, time out, and must be re-dispatched to live PEs.
    // fib ends by explicit exit (no all-PE reduction), so the answer
    // must still be exact.
    let params = fib::FibParams { n: 16, grain: 9 };
    let prog = fib::build(
        params,
        QueueingStrategy::Fifo,
        BalanceStrategy::Random,
    )
    .with_reliable(ReliableConfig {
        timeout: Cost::micros(500),
        seed_retry_limit: 2,
        ..ReliableConfig::default()
    });
    let plan = FaultPlan::new(9).crash(Pe(3), SimTime::ZERO);
    let cfg = SimConfig::preset(NPES, MachinePreset::NcubeLike).with_faults(plan);
    let mut rep = prog.run_sim(cfg);
    assert_eq!(rep.take_result::<u64>(), Some(fib::fib_seq(16)));
    assert!(
        rep.counter_total("seeds_redirected") > 0,
        "no seed was ever re-homed away from the crashed PE"
    );
}
