//! Streaming-metrics walkthrough: run fib with telemetry on and read
//! the `MetricsLog` back through the public API — interval utilization,
//! machine-wide histograms, and the flight-recorder tail.
//!
//! ```text
//! cargo run --release -p ck_apps --example metered_fib
//! ```

use chare_kernel::metrics::MetricsConfig;
use ck_apps::fib;
use multicomputer::{MachinePreset, SimConfig};

fn main() {
    let params = fib::FibParams { n: 18, grain: 10 };
    let prog = fib::build_default(params).with_metrics(MetricsConfig::default());
    let mut report = prog.run_sim(SimConfig::preset(8, MachinePreset::NcubeLike));

    let result = report.take_result::<u64>().expect("fib must produce a result");
    assert_eq!(result, fib::fib_seq(18));
    println!("fib(18) = {result} in {:.2} ms simulated", report.time_ns as f64 / 1e6);

    let log = report.metrics.expect("metrics were enabled");
    println!(
        "telemetry: {} PEs x {} slices of {} us",
        log.npes,
        log.nslices(),
        log.slice_ns / 1_000
    );
    // Fold the full-resolution profile to 8 rows for display (the
    // `tables --timeline` view does the same via ck_trace).
    let rows = 8usize;
    let chunk = log.nslices().div_ceil(rows);
    for r in 0..log.nslices().div_ceil(chunk) {
        let (mut busy, mut cap, mut msgs, mut bytes) = (0u64, 0u64, 0u64, 0u64);
        for i in (r * chunk)..((r + 1) * chunk).min(log.nslices()) {
            let s = log.slice_totals(i);
            busy += s.work_ns + s.dispatch_ns + s.ctl_ns;
            cap += log.slice_ns * log.npes as u64;
            msgs += s.msgs_sent;
            bytes += s.bytes_sent;
        }
        println!(
            "  t[{r}] busy {:5.1}%  msgs {msgs:4}  bytes {bytes:6}",
            busy as f64 / cap as f64 * 100.0
        );
    }

    let lat = log.latency_all();
    let grain = log.grain_all();
    println!(
        "latency p50 <= {:.1} us (n={}), grain p50 <= {:.1} us (n={}), queue hwm {}",
        lat.quantile_bound(0.5) as f64 / 1e3,
        lat.count,
        grain.quantile_bound(0.5) as f64 / 1e3,
        grain.count,
        log.queue_hwm_max()
    );

    println!("flight tail (last 5 events machine-wide):");
    for ev in log.flight_tail(5) {
        println!("  {}", chare_kernel::metrics::flight_line(&ev));
    }
}
