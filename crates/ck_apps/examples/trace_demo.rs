//! Drive the tracing pipeline end-to-end from the library boundary:
//! run fib with kernel tracing on, print the event-class census and a
//! few per-PE counts the post-mortem analyzer consumes.
//!
//! ```bash
//! cargo run --release -p ck_apps --example trace_demo
//! ```

use chare_kernel::prelude::*;
use ck_apps::fib;

fn main() {
    let prog = fib::build_default(fib::FibParams { n: 18, grain: 10 })
        .with_tracing(TraceConfig::default());
    let cfg = SimConfig::preset(8, MachinePreset::NcubeLike).with_trace();
    let mut rep = prog.run_sim(cfg);
    println!("fib(18) on 8 PEs: {:?}, {:.2} ms simulated", rep.take_result::<u64>(), rep.time_secs() * 1e3);
    let log = rep.trace.as_ref().expect("tracing was enabled");
    println!("{} events captured, {} dropped", log.events.len(), log.dropped);
    let census = |name: &str, pred: fn(&EventKind) -> bool| {
        println!("  {:<12} {}", name, log.count(pred));
    };
    census("entries", |k| matches!(k, EventKind::EntryBegin { .. }));
    census("sends", |k| matches!(k, EventKind::MsgSend { .. }));
    census("recvs", |k| matches!(k, EventKind::MsgRecv { .. }));
    census("seeds kept", |k| matches!(k, EventKind::SeedKept { .. }));
    census("seeds fwd", |k| matches!(k, EventKind::SeedForwarded { .. }));
    for pe in Pe::all(8) {
        let n = log.events_for(pe).count();
        println!("  PE{pe}: {n} events");
    }
    assert_eq!(
        log.count(|k| matches!(k, EventKind::EntryBegin { .. })),
        rep.counter_total("entries_executed"),
        "log must agree with the kernel's books"
    );
    println!("log agrees with kernel counters");
}
