//! The README's fault-injection example, runnable: nqueens on a lossy
//! stalling machine, then fib with a PE crashed at boot.

use chare_kernel::prelude::*;
use ck_apps::{fib, nqueens};
use multicomputer::SimTime;

fn main() {
    let program = nqueens::build_default(nqueens::QueensParams { n: 8, grain: 4 });

    // Drop 5% of packets, duplicate 2%, delay 5% by 200 µs, and freeze
    // PE 5 between 0.5 ms and 2 ms of simulated time.
    let plan = FaultPlan::new(0xBAD_5EED)
        .drop(0.05)
        .duplicate(0.02)
        .delay(0.05, Cost::micros(200))
        .stall(Pe(5), SimTime(500_000), SimTime(2_000_000));

    let cfg = SimConfig::preset(16, MachinePreset::NcubeLike).with_faults(plan);
    let mut report = program
        .with_reliable(ReliableConfig::default())
        .run_sim(cfg);

    assert!(report.sim.as_ref().unwrap().aborted.is_none());
    println!("nqueens(8) under 5% loss + stall:");
    println!("  solutions:    {:?}", report.take_result::<u64>());
    println!("  retransmits:  {}", report.counter_total("retransmits"));
    println!("  dups dropped: {}", report.counter_total("dup_dropped"));

    let crash = FaultPlan::new(9).crash(Pe(3), SimTime::ZERO);
    let cfg = SimConfig::preset(16, MachinePreset::NcubeLike).with_faults(crash);
    let mut report = fib::build(
        fib::FibParams { n: 16, grain: 9 },
        QueueingStrategy::Fifo,
        BalanceStrategy::Random,
    )
    .with_reliable(ReliableConfig {
        timeout: Cost::micros(500),
        seed_retry_limit: 2,
        ..ReliableConfig::default()
    })
    .run_sim(cfg);
    println!("fib(16) with PE 3 dead from boot:");
    println!("  result:           {:?}", report.take_result::<u64>());
    println!("  seeds redirected: {}", report.counter_total("seeds_redirected"));
}
