//! Model test of the distributed table: a chare performs a random
//! (seeded) sequence of put/get/delete operations, mirroring each in a
//! local `HashMap` model, and asserts every reply matches the model.

use std::collections::HashMap;

use chare_kernel::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EP_REPLY: EpId = EpId(1);

#[derive(Clone, Debug, PartialEq)]
enum Op {
    Put(u64, u64),
    Get(u64),
    Delete(u64),
}

fn random_ops(seed: u64, count: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let key = rng.random_range(0..24u64); // small space → collisions
            match rng.random_range(0..10u32) {
                0..=4 => Op::Put(key, rng.random_range(0..1000)),
                5..=7 => Op::Get(key),
                _ => Op::Delete(key),
            }
        })
        .collect()
}

#[derive(Clone)]
struct DriverSeed {
    ops: Vec<Op>,
    table: TableRef<u64>,
}
impl Message for DriverSeed {
    fn bytes(&self) -> u32 {
        (self.ops.len() * 24) as u32
    }
}

/// Executes the op sequence strictly one at a time: issue op, wait for
/// its reply, check against the model, continue.
struct Driver {
    ops: Vec<Op>,
    next: usize,
    table: TableRef<u64>,
    model: HashMap<u64, u64>,
    checks: u64,
}

impl Driver {
    fn issue(&mut self, ctx: &mut Ctx) {
        let me = ctx.self_id();
        let notify = Notify::Chare(me, EP_REPLY);
        match self.ops[self.next].clone() {
            Op::Put(k, v) => ctx.table_put(self.table, k, v, Some(notify)),
            Op::Get(k) => ctx.table_get(self.table, k, notify),
            Op::Delete(k) => ctx.table_delete(self.table, k, Some(notify)),
        }
    }
}

impl ChareInit for Driver {
    type Seed = DriverSeed;
    fn create(seed: DriverSeed, ctx: &mut Ctx) -> Self {
        let mut d = Driver {
            ops: seed.ops,
            next: 0,
            table: seed.table,
            model: HashMap::new(),
            checks: 0,
        };
        if d.ops.is_empty() {
            ctx.exit(0u64);
        } else {
            d.issue(ctx);
        }
        d
    }
}

impl Chare for Driver {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        assert_eq!(ep, EP_REPLY);
        // Check the reply for the op we just issued against the model,
        // then apply it to the model.
        match self.ops[self.next].clone() {
            Op::Put(k, v) => {
                let ack = cast::<TableAck>(msg);
                assert_eq!(ack.key, k);
                assert_eq!(ack.existed, self.model.contains_key(&k), "put {k}");
                self.model.insert(k, v);
            }
            Op::Get(k) => {
                let got = cast::<TableGot<u64>>(msg);
                assert_eq!(got.key, k);
                assert_eq!(got.value, self.model.get(&k).copied(), "get {k}");
            }
            Op::Delete(k) => {
                let ack = cast::<TableAck>(msg);
                assert_eq!(ack.key, k);
                assert_eq!(ack.existed, self.model.contains_key(&k), "delete {k}");
                self.model.remove(&k);
            }
        }
        self.checks += 1;
        self.next += 1;
        if self.next == self.ops.len() {
            ctx.exit(self.checks);
        } else {
            self.issue(ctx);
        }
    }
}

fn run_model(seed: u64, count: usize, npes: usize) {
    let ops = random_ops(seed, count);
    let mut b = ProgramBuilder::new();
    let driver = b.chare::<Driver>();
    let table = b.table::<u64>();
    b.main(
        main_kind(driver),
        DriverSeed {
            ops: ops.clone(),
            table,
        },
    );
    let mut rep = b.build().run_sim_preset(npes, MachinePreset::NcubeLike);
    assert_eq!(
        rep.take_result::<u64>(),
        Some(count as u64),
        "seed {seed} npes {npes}"
    );
}

// `main` takes the driver kind directly (the driver is the main chare).
fn main_kind(k: Kind<Driver>) -> Kind<Driver> {
    k
}

#[test]
fn table_matches_hashmap_model_single_pe() {
    run_model(1, 200, 1);
}

#[test]
fn table_matches_hashmap_model_many_pes() {
    for seed in 0..6 {
        run_model(seed, 150, 7);
    }
}

#[test]
fn table_matches_model_on_threads() {
    let ops = random_ops(42, 120);
    let count = ops.len();
    let mut b = ProgramBuilder::new();
    let driver = b.chare::<Driver>();
    let table = b.table::<u64>();
    b.main(driver, DriverSeed { ops, table });
    let mut rep = b.build().run_threads(4);
    assert!(!rep.timed_out);
    assert_eq!(rep.take_result::<u64>(), Some(count as u64));
}
