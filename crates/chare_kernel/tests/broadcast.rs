//! Broadcast semantics under both distribution modes: exactly-once
//! delivery to every branch, message-count accounting, and equivalence
//! of results between tree and direct modes.

use chare_kernel::prelude::*;

const EP_MARK: EpId = EpId(1);
const EP_PROBE: EpId = EpId(2);
const EP_REPORT: EpId = EpId(3);

/// Branch that counts broadcast deliveries.
struct MarkBranch {
    marks: u64,
}

impl BranchInit for MarkBranch {
    type Cfg = ();
    fn create(_cfg: (), _ctx: &mut Ctx) -> Self {
        MarkBranch { marks: 0 }
    }
}

impl Branch for MarkBranch {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_MARK => {
                let _ = cast::<u32>(msg);
                self.marks += 1;
            }
            EP_PROBE => {
                let target = cast::<ChareId>(msg);
                ctx.send(target, EP_REPORT, self.marks);
            }
            _ => unreachable!(),
        }
    }
}

#[derive(Clone)]
struct Seed {
    boc: Boc<MarkBranch>,
    broadcasts: u32,
}
message!(Seed);

struct Main {
    boc: Boc<MarkBranch>,
    broadcasts: u32,
    reports: Vec<u64>,
    probed: bool,
}

impl ChareInit for Main {
    type Seed = Seed;
    fn create(seed: Seed, ctx: &mut Ctx) -> Self {
        for i in 0..seed.broadcasts {
            ctx.broadcast_branch(seed.boc, EP_MARK, i);
        }
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_REPORT));
        Main {
            boc: seed.boc,
            broadcasts: seed.broadcasts,
            reports: Vec::new(),
            probed: false,
        }
    }
}

impl Chare for Main {
    fn entry(&mut self, _ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        if !self.probed {
            // Quiescence: all broadcasts delivered; ask every branch for
            // its count.
            let _ = cast::<QuiescenceMsg>(msg);
            self.probed = true;
            let me = ctx.self_id();
            for pe in 0..ctx.npes() {
                ctx.send_branch(self.boc, Pe::from(pe), EP_PROBE, me);
            }
            return;
        }
        let marks = cast::<u64>(msg);
        assert_eq!(
            marks, self.broadcasts as u64,
            "a branch saw the wrong number of broadcasts"
        );
        self.reports.push(marks);
        if self.reports.len() == ctx.npes() {
            ctx.exit(self.reports.iter().sum::<u64>());
        }
    }
}

fn run(mode: BroadcastMode, npes: usize, broadcasts: u32) -> (u64, u64, u64) {
    let mut b = ProgramBuilder::new();
    let boc = b.boc::<MarkBranch>(());
    let main = b.chare::<Main>();
    b.broadcast_mode(mode);
    b.main(main, Seed { boc, broadcasts });
    let mut rep = b.build().run_sim_preset(npes, MachinePreset::NcubeLike);
    let total = rep.take_result::<u64>().expect("total marks");
    (
        total,
        rep.counter_total("user_sent"),
        rep.counter_total("user_recv"),
    )
}

#[test]
fn every_branch_sees_every_broadcast_exactly_once() {
    for mode in [BroadcastMode::Tree, BroadcastMode::Direct] {
        for npes in [1usize, 2, 5, 16, 33] {
            let (total, _, _) = run(mode, npes, 7);
            assert_eq!(total, 7 * npes as u64, "{mode:?} npes={npes}");
        }
    }
}

#[test]
fn accounting_balances_in_both_modes() {
    for mode in [BroadcastMode::Tree, BroadcastMode::Direct] {
        let (_, sent, recv) = run(mode, 9, 5);
        assert_eq!(sent, recv, "{mode:?}: sent {sent} != recv {recv}");
    }
}

#[test]
fn tree_mode_moves_fewer_root_messages() {
    // Not fewer messages overall (same edge count), but the *root* PE
    // sends only its tree children. Verify via per-PE sent counters.
    let per_pe_sent = |mode: BroadcastMode| {
        let mut b = ProgramBuilder::new();
        let boc = b.boc::<MarkBranch>(());
        let main = b.chare::<Main>();
        b.broadcast_mode(mode);
        b.main(main, Seed { boc, broadcasts: 10 });
        let rep = b.build().run_sim_preset(32, MachinePreset::NcubeLike);
        rep.node_stats[0].get("user_sent").unwrap_or(0)
    };
    let direct_root = per_pe_sent(BroadcastMode::Direct);
    let tree_root = per_pe_sent(BroadcastMode::Tree);
    assert!(
        tree_root * 2 < direct_root,
        "tree root sent {tree_root}, direct root sent {direct_root}"
    );
}

#[test]
fn broadcast_works_from_non_zero_pe() {
    // A chare placed on PE 3 broadcasts; the tree must root correctly
    // at PE 3.
    #[derive(Clone)]
    struct RemoteSeed {
        boc: Boc<MarkBranch>,
        inner: Kind<RemoteCaster>,
    }
    message!(RemoteSeed);

    #[derive(Clone, Copy)]
    struct CasterSeed {
        boc: Boc<MarkBranch>,
        parent: ChareId,
    }
    message!(CasterSeed);

    struct RemoteCaster;
    impl ChareInit for RemoteCaster {
        type Seed = CasterSeed;
        fn create(seed: CasterSeed, ctx: &mut Ctx) -> Self {
            assert_eq!(ctx.pe(), Pe(3));
            ctx.broadcast_branch(seed.boc, EP_MARK, 0u32);
            ctx.send(seed.parent, EP_REPORT, ());
            ctx.destroy_self();
            RemoteCaster
        }
    }
    impl Chare for RemoteCaster {
        fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
            unreachable!()
        }
    }

    struct RemoteMain {
        boc: Boc<MarkBranch>,
        phase: u32,
        reports: usize,
    }
    impl ChareInit for RemoteMain {
        type Seed = RemoteSeed;
        fn create(seed: RemoteSeed, ctx: &mut Ctx) -> Self {
            let me = ctx.self_id();
            ctx.create_on(
                Pe(3),
                seed.inner,
                CasterSeed {
                    boc: seed.boc,
                    parent: me,
                },
            );
            RemoteMain {
                boc: seed.boc,
                phase: 0,
                reports: 0,
            }
        }
    }
    impl Chare for RemoteMain {
        fn entry(&mut self, _ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
            let me = ctx.self_id();
            match self.phase {
                0 => {
                    // Caster done; wait for quiescence then probe.
                    cast::<()>(msg);
                    self.phase = 1;
                    ctx.start_quiescence(Notify::Chare(me, EP_REPORT));
                }
                1 => {
                    let _ = cast::<QuiescenceMsg>(msg);
                    self.phase = 2;
                    for pe in 0..ctx.npes() {
                        ctx.send_branch(self.boc, Pe::from(pe), EP_PROBE, me);
                    }
                }
                2 => {
                    let marks = cast::<u64>(msg);
                    assert_eq!(marks, 1, "branch missed the remote broadcast");
                    self.reports += 1;
                    if self.reports == ctx.npes() {
                        ctx.exit(true);
                    }
                }
                _ => unreachable!(),
            }
        }
    }

    let mut b = ProgramBuilder::new();
    let boc = b.boc::<MarkBranch>(());
    let inner = b.chare::<RemoteCaster>();
    let main = b.chare::<RemoteMain>();
    b.broadcast_mode(BroadcastMode::Tree);
    b.main(main, RemoteSeed { boc, inner });
    let mut rep = b.build().run_sim_preset(6, MachinePreset::NcubeLike);
    assert_eq!(rep.take_result::<bool>(), Some(true));
}

/// Accumulator collects gather up the same tree the request travels
/// down; verify the reduction is correct at awkward PE counts in both
/// modes.
#[test]
fn tree_reduction_matches_direct_gather() {
    #[derive(Clone)]
    struct RSeed {
        acc: Acc<SumU64>,
        worker: Kind<RWorker>,
    }
    message!(RSeed);

    #[derive(Clone, Copy)]
    struct RWorkerSeed {
        acc: Acc<SumU64>,
        value: u64,
    }
    message!(RWorkerSeed);

    struct RWorker;
    impl ChareInit for RWorker {
        type Seed = RWorkerSeed;
        fn create(seed: RWorkerSeed, ctx: &mut Ctx) -> Self {
            ctx.acc_add(seed.acc, seed.value);
            ctx.destroy_self();
            RWorker
        }
    }
    impl Chare for RWorker {
        fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
            unreachable!()
        }
    }

    struct RMain {
        acc: Acc<SumU64>,
        collected: bool,
    }
    impl ChareInit for RMain {
        type Seed = RSeed;
        fn create(seed: RSeed, ctx: &mut Ctx) -> Self {
            let me = ctx.self_id();
            // One worker per PE contributes pe+1.
            for pe in 0..ctx.npes() {
                ctx.create_on(
                    Pe::from(pe),
                    seed.worker,
                    RWorkerSeed {
                        acc: seed.acc,
                        value: pe as u64 + 1,
                    },
                );
            }
            ctx.start_quiescence(Notify::Chare(me, EpId(50)));
            RMain {
                acc: seed.acc,
                collected: false,
            }
        }
    }
    impl Chare for RMain {
        fn entry(&mut self, _ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
            let me = ctx.self_id();
            if !self.collected {
                let _ = cast::<QuiescenceMsg>(msg);
                self.collected = true;
                ctx.acc_collect(self.acc, Notify::Chare(me, EpId(51)));
            } else {
                let total = cast::<AccResult<u64>>(msg);
                ctx.exit(total.value);
            }
        }
    }

    for mode in [BroadcastMode::Tree, BroadcastMode::Direct] {
        for npes in [1usize, 2, 7, 16, 33] {
            let mut b = ProgramBuilder::new();
            let worker = b.chare::<RWorker>();
            let main = b.chare::<RMain>();
            let acc = b.accumulator::<SumU64>();
            b.broadcast_mode(mode);
            b.main(main, RSeed { acc, worker });
            let mut rep = b.build().run_sim_preset(npes, MachinePreset::NcubeLike);
            let want = (npes as u64) * (npes as u64 + 1) / 2;
            assert_eq!(
                rep.take_result::<u64>(),
                Some(want),
                "{mode:?} npes={npes}"
            );
        }
    }
}
