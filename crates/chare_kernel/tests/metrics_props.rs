//! Property tests for the streaming-metrics accumulators.
//!
//! The histograms and interval slices of [`chare_kernel::metrics`] are
//! the online replacements for "keep every sample and analyze later" —
//! they are only trustworthy if aggregation is *exact*, not
//! approximately right on nice inputs. These properties pin that down
//! over arbitrary `u64` samples: shard-merge equals bulk ingest, every
//! sample lands in the bucket whose bounds contain it, bucketing is
//! monotone, quantile bounds never cross, and interval slices conserve
//! attributed time under any capacity (i.e. however often the width
//! doubled).

use chare_kernel::metrics::{Histogram, Slice, TimeSlices};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    /// Merging per-shard histograms is exactly bulk ingest: same
    /// counts, sum, max and buckets regardless of how samples were
    /// partitioned.
    #[test]
    fn merge_of_shards_equals_bulk_ingest(
        samples in vec(any::<u64>(), 0..400),
        nshards in 1usize..8,
    ) {
        let mut bulk = Histogram::new();
        for &s in &samples {
            bulk.record(s);
        }
        let mut shards = vec![Histogram::new(); nshards];
        for (i, &s) in samples.iter().enumerate() {
            shards[i % nshards].record(s);
        }
        let mut merged = Histogram::new();
        for sh in &shards {
            merged.merge(sh);
        }
        prop_assert_eq!(merged, bulk);
    }

    /// Every sample lands in a bucket whose reported bounds contain it,
    /// and bucket assignment is monotone in the sample value.
    #[test]
    fn bucket_bounds_contain_their_samples(v in any::<u64>()) {
        let b = Histogram::bucket_of(v);
        let (lo, hi) = Histogram::bucket_bounds(b);
        prop_assert!(lo <= v || v == 0, "v={v} below bucket {b} lo={lo}");
        // Bucket 63's upper bound saturates at u64::MAX inclusive.
        prop_assert!(v < hi || (b == 63 && v <= hi), "v={v} above bucket {b} hi={hi}");
        // Monotonicity at the sample: the next value never maps to a
        // smaller bucket.
        if v < u64::MAX {
            prop_assert!(Histogram::bucket_of(v + 1) >= b);
        }
    }

    /// Quantile bounds are monotone in q and bracketed by the data:
    /// at least the smallest sample's bucket, at most one octave above
    /// the maximum.
    #[test]
    fn quantile_bounds_are_monotone(samples in vec(any::<u64>(), 1..200)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
        let bounds: Vec<u64> = qs.iter().map(|&q| h.quantile_bound(q)).collect();
        for w in bounds.windows(2) {
            prop_assert!(w[0] <= w[1], "quantile bounds crossed: {bounds:?}");
        }
        let max_bucket_hi = Histogram::bucket_bounds(Histogram::bucket_of(h.max)).1;
        prop_assert!(bounds[5] <= max_bucket_hi);
        prop_assert!(bounds[0] >= 1);
    }

    /// A set of spans attributed through `add_span` is conserved
    /// exactly — the per-bucket shares sum back to the total span time
    /// — no matter the bucket budget (and therefore no matter how many
    /// times the width doubled along the way).
    #[test]
    fn time_slices_conserve_attributed_time(
        spans in vec((0u64..1 << 20, 0u64..1 << 12), 0..60),
        cap in 2usize..32,
    ) {
        let mut ts = TimeSlices::new(64, cap);
        let mut expect = 0u64;
        for &(start, dur) in &spans {
            ts.add_span(start, dur, |s: &mut Slice, share| s.work_ns += share);
            expect += dur;
        }
        let got: u64 = ts.slices().iter().map(|s| s.work_ns).sum();
        prop_assert_eq!(got, expect);
        prop_assert!(ts.slices().len() <= cap);
    }

    /// Point increments (`bump`) are likewise never lost to coalescing.
    #[test]
    fn time_slices_conserve_counters(
        ats in vec(0u64..1 << 24, 0..100),
        cap in 2usize..16,
    ) {
        let mut ts = TimeSlices::new(128, cap);
        for &t in &ats {
            ts.bump(t, |s| s.msgs_sent += 1);
        }
        let got: u64 = ts.slices().iter().map(|s| s.msgs_sent).sum();
        prop_assert_eq!(got, ats.len() as u64);
    }
}
