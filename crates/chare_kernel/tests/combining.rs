//! Message combining: correctness is unchanged, accounting stays
//! balanced, and packet counts drop for fine-grain traffic.

use chare_kernel::prelude::*;
use ck_apps_shim::*;

/// Minimal fan-out/fan-in program defined locally so this crate's tests
/// stay independent of ck_apps.
mod ck_apps_shim {
    use chare_kernel::prelude::*;

    pub const EP_DONE: EpId = EpId(1);

    #[derive(Clone)]
    pub struct Seed {
        pub fanout: u32,
        pub worker: Kind<Worker>,
    }
    message!(Seed);

    #[derive(Clone, Copy)]
    pub struct WorkerSeed {
        pub parent: ChareId,
        pub value: u64,
    }
    message!(WorkerSeed);

    pub struct Worker;
    impl ChareInit for Worker {
        type Seed = WorkerSeed;
        fn create(seed: WorkerSeed, ctx: &mut Ctx) -> Self {
            ctx.send(seed.parent, EP_DONE, seed.value * 2);
            ctx.destroy_self();
            Worker
        }
    }
    impl Chare for Worker {
        fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
            unreachable!()
        }
    }

    pub struct Main {
        pub waiting: u32,
        pub sum: u64,
    }
    impl ChareInit for Main {
        type Seed = Seed;
        fn create(seed: Seed, ctx: &mut Ctx) -> Self {
            let me = ctx.self_id();
            // All seeds are created in ONE entry execution — exactly the
            // burst pattern combining batches.
            for v in 0..seed.fanout {
                ctx.create(
                    seed.worker,
                    WorkerSeed {
                        parent: me,
                        value: v as u64,
                    },
                );
            }
            Main {
                waiting: seed.fanout,
                sum: 0,
            }
        }
    }
    impl Chare for Main {
        fn entry(&mut self, _ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
            self.sum += cast::<u64>(msg);
            self.waiting -= 1;
            if self.waiting == 0 {
                ctx.exit(self.sum);
            }
        }
    }
}

fn program(fanout: u32, combining: bool) -> Program {
    let mut b = ProgramBuilder::new();
    let worker = b.chare::<Worker>();
    let main = b.chare::<Main>();
    b.balance(BalanceStrategy::Random);
    b.combining(combining);
    b.main(main, Seed { fanout, worker });
    b.build()
}

#[test]
fn combining_preserves_results() {
    let want: u64 = (0..200u64).map(|v| v * 2).sum();
    for combining in [false, true] {
        for npes in [1usize, 4, 9] {
            let mut rep = program(200, combining).run_sim_preset(npes, MachinePreset::NcubeLike);
            assert_eq!(
                rep.take_result::<u64>(),
                Some(want),
                "combining={combining} npes={npes}"
            );
        }
    }
}

#[test]
fn combining_reduces_packets_for_bursts() {
    let plain = program(400, false).run_sim_preset(8, MachinePreset::NcubeLike);
    let combined = program(400, true).run_sim_preset(8, MachinePreset::NcubeLike);
    let p0 = plain.sim.as_ref().unwrap().packets;
    let p1 = combined.sim.as_ref().unwrap().packets;
    // The 400-seed burst collapses to one batch per destination; the
    // replies arrive one per step and stay unbatched, so the overall
    // reduction is bounded by the reply half of the traffic.
    assert!(
        (p1 as f64) < 0.62 * p0 as f64,
        "expected the seed burst batched away: plain {p0}, combined {p1}"
    );
    // And the burst finishes faster: one alpha per destination, not 400.
    assert!(
        combined.time_ns < plain.time_ns,
        "combining should win this pattern: {} vs {}",
        combined.time_ns,
        plain.time_ns
    );
}

#[test]
fn combining_keeps_accounting_balanced() {
    let rep = program(300, true).run_sim_preset(6, MachinePreset::NcubeLike);
    let sent = rep.counter_total("user_sent");
    let recv = rep.counter_total("user_recv");
    // Exit may strand a handful in flight; everything delivered was
    // counted per inner message, not per batch.
    assert!(sent >= recv && sent - recv <= 8, "sent {sent} recv {recv}");
    // 300 replies plus every *remote* seed (locally kept seeds are not
    // messages): with random placement over 6 PEs ~5/6 of seeds travel.
    assert!(sent >= 500, "each reply and remote seed counted: {sent}");
}

#[test]
fn combining_works_on_threads() {
    let want: u64 = (0..100u64).map(|v| v * 2).sum();
    let mut rep = program(100, true).run_threads(4);
    assert!(!rep.timed_out);
    assert_eq!(rep.take_result::<u64>(), Some(want));
}

#[test]
fn combining_works_with_quiescence_and_accumulators() {
    // The nqueens-style pattern: accumulator + QD, all under combining.
    use chare_kernel::prelude::*;

    #[derive(Clone)]
    struct QSeed {
        worker: Kind<QWorker>,
        acc: Acc<SumU64>,
    }
    message!(QSeed);

    #[derive(Clone, Copy)]
    struct QWorkerSeed {
        acc: Acc<SumU64>,
        value: u64,
    }
    message!(QWorkerSeed);

    struct QWorker;
    impl ChareInit for QWorker {
        type Seed = QWorkerSeed;
        fn create(seed: QWorkerSeed, ctx: &mut Ctx) -> Self {
            ctx.acc_add(seed.acc, seed.value);
            ctx.destroy_self();
            QWorker
        }
    }
    impl Chare for QWorker {
        fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
            unreachable!()
        }
    }

    struct QMain {
        acc: Acc<SumU64>,
        collected: bool,
    }
    impl ChareInit for QMain {
        type Seed = QSeed;
        fn create(seed: QSeed, ctx: &mut Ctx) -> Self {
            let me = ctx.self_id();
            ctx.start_quiescence(Notify::Chare(me, EpId(7)));
            for v in 1..=50u64 {
                ctx.create(seed.worker, QWorkerSeed { acc: seed.acc, value: v });
            }
            QMain {
                acc: seed.acc,
                collected: false,
            }
        }
    }
    impl Chare for QMain {
        fn entry(&mut self, _ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
            let me = ctx.self_id();
            if !self.collected {
                let _ = cast::<QuiescenceMsg>(msg);
                self.collected = true;
                ctx.acc_collect(self.acc, Notify::Chare(me, EpId(8)));
            } else {
                ctx.exit(cast::<AccResult<u64>>(msg).value);
            }
        }
    }

    let mut b = ProgramBuilder::new();
    let worker = b.chare::<QWorker>();
    let main = b.chare::<QMain>();
    let acc = b.accumulator::<SumU64>();
    b.balance(BalanceStrategy::Random);
    b.combining(true);
    b.main(main, QSeed { worker, acc });
    let mut rep = b.build().run_sim_preset(8, MachinePreset::NcubeLike);
    assert_eq!(rep.take_result::<u64>(), Some(50 * 51 / 2));
}
