//! Public API behavior of `ProgramBuilder`, `Program` and `CkReport`.

use std::time::Duration;

use chare_kernel::prelude::*;
use multicomputer::ThreadConfig;

struct Trivial;
impl ChareInit for Trivial {
    type Seed = u64;
    fn create(seed: u64, ctx: &mut Ctx) -> Self {
        ctx.exit(seed + 1);
        Trivial
    }
}
impl Chare for Trivial {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {}
}

struct Other;
impl ChareInit for Other {
    type Seed = ();
    fn create(_seed: (), _ctx: &mut Ctx) -> Self {
        Other
    }
}
impl Chare for Other {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {}
}

fn trivial_program(seed: u64) -> Program {
    let mut b = ProgramBuilder::new();
    let kind = b.chare::<Trivial>();
    b.main(kind, seed);
    b.build()
}

#[test]
fn registration_assigns_sequential_handles() {
    let mut b = ProgramBuilder::new();
    let a = b.chare::<Trivial>();
    let c = b.chare::<Other>();
    assert_eq!(a.id.0, 0);
    assert_eq!(c.id.0, 1);
    let acc1 = b.accumulator::<SumU64>();
    let acc2 = b.accumulator::<SumF64>();
    assert_eq!(acc1.id.0, 0);
    assert_eq!(acc2.id.0, 1);
    let t1 = b.table::<u64>();
    let t2 = b.table::<String>();
    assert_eq!(t1.id.0, 0);
    assert_eq!(t2.id.0, 1);
}

#[test]
fn program_is_reusable_and_deterministic() {
    let prog = trivial_program(10);
    for _ in 0..3 {
        let mut rep = prog.run_sim_preset(2, MachinePreset::NcubeLike);
        assert_eq!(rep.take_result::<u64>(), Some(11));
    }
    let a = prog.run_sim_preset(4, MachinePreset::NcubeLike).time_ns;
    let b = prog.run_sim_preset(4, MachinePreset::NcubeLike).time_ns;
    assert_eq!(a, b);
}

#[test]
fn strategy_accessors_reflect_configuration() {
    let mut b = ProgramBuilder::new();
    let kind = b.chare::<Trivial>();
    b.queueing(QueueingStrategy::Lifo);
    b.balance(BalanceStrategy::acwn());
    b.main(kind, 1u64);
    let prog = b.build();
    assert_eq!(prog.queueing_strategy(), QueueingStrategy::Lifo);
    assert_eq!(prog.balance_strategy().name(), "acwn");
}

#[test]
fn report_time_helpers_agree() {
    let rep = trivial_program(0).run_sim_preset(1, MachinePreset::NcubeLike);
    assert!(rep.time_ns > 0);
    assert!((rep.time_secs() - rep.time_ns as f64 / 1e9).abs() < 1e-15);
    assert_eq!(rep.time().as_nanos() as u64, rep.time_ns);
}

#[test]
fn counter_total_of_unknown_counter_is_zero() {
    let rep = trivial_program(0).run_sim_preset(2, MachinePreset::NcubeLike);
    assert_eq!(rep.counter_total("no_such_counter"), 0);
    assert!(rep.counter_total("entries_executed") >= 1);
}

#[test]
fn take_result_survives_wrong_type() {
    let mut rep = trivial_program(5).run_sim_preset(1, MachinePreset::NcubeLike);
    assert_eq!(rep.take_result::<String>(), None);
    assert_eq!(rep.take_result::<u64>(), Some(6));
    assert_eq!(rep.take_result::<u64>(), None, "taken exactly once");
}

#[test]
fn custom_sim_config_runs_on_a_mesh() {
    let cfg = SimConfig::new(
        6,
        Topology::Mesh2D { rows: 2, cols: 3 },
        MachinePreset::IpscLike.cost_model(),
    );
    let mut rep = trivial_program(7).run_sim(cfg);
    assert_eq!(rep.take_result::<u64>(), Some(8));
    assert!(rep.sim.is_some());
    assert!(!rep.timed_out);
}

#[test]
fn thread_config_watchdog_is_respected() {
    // A trivially-exiting program finishes far inside the watchdog.
    let cfg = ThreadConfig::new(2).with_watchdog(Duration::from_secs(10));
    let mut rep = trivial_program(3).run_threads_cfg(cfg, Topology::Ring);
    assert!(!rep.timed_out);
    assert_eq!(rep.take_result::<u64>(), Some(4));
    assert!(rep.sim.is_none(), "thread runs carry no sim detail");
}

#[test]
fn read_only_values_shared_not_copied() {
    // Register a large read-only blob; handles alias one Arc.
    let mut b = ProgramBuilder::new();
    let kind = b.chare::<RoProbe>();
    let ro = b.read_only(vec![7u8; 1 << 20]);
    b.main(kind, RoSeed { ro });
    let mut rep = b.build().run_sim_preset(4, MachinePreset::NcubeLike);
    assert_eq!(rep.take_result::<u8>(), Some(7));
}

#[derive(Clone)]
struct RoSeed {
    ro: ReadOnly<Vec<u8>>,
}
message!(RoSeed);

struct RoProbe;
impl ChareInit for RoProbe {
    type Seed = RoSeed;
    fn create(seed: RoSeed, ctx: &mut Ctx) -> Self {
        let blob = ctx.read_only(seed.ro);
        ctx.exit(blob[12345]);
        RoProbe
    }
}
impl Chare for RoProbe {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {}
}
