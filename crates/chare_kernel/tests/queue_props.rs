//! Property-based tests of the scheduler queues against reference
//! models: conservation, ordering, tie-breaking.

use chare_kernel::priority::{BitPrio, Priority};
use chare_kernel::queueing::{
    BitPrioQueue, HeapBitPrioQueue, HeapIntPrioQueue, IntPrioQueue, QueueingStrategy, SchedQueue,
};
use proptest::prelude::*;

fn arb_priority() -> impl Strategy<Value = Priority> {
    prop_oneof![
        Just(Priority::None),
        any::<i64>().prop_map(Priority::Int),
        proptest::collection::vec(0u32..16, 0..8).prop_map(|path| {
            let mut p = BitPrio::root();
            for v in path {
                p = p.child(v, 4);
            }
            Priority::Bits(p)
        }),
    ]
}

proptest! {
    /// Every strategy returns exactly the pushed items (a permutation).
    #[test]
    fn conservation(items in proptest::collection::vec(arb_priority(), 0..200)) {
        for strat in QueueingStrategy::ALL {
            let mut q = strat.make::<usize>();
            for (i, p) in items.iter().enumerate() {
                q.push(p.clone(), i);
            }
            let mut out: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
            out.sort_unstable();
            prop_assert_eq!(out, (0..items.len()).collect::<Vec<_>>(), "{}", strat.name());
        }
    }

    /// FIFO pops in push order regardless of priorities.
    #[test]
    fn fifo_model(items in proptest::collection::vec(arb_priority(), 0..200)) {
        let mut q = QueueingStrategy::Fifo.make::<usize>();
        for (i, p) in items.iter().enumerate() {
            q.push(p.clone(), i);
        }
        let out: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        prop_assert_eq!(out, (0..items.len()).collect::<Vec<_>>());
    }

    /// LIFO pops in reverse push order.
    #[test]
    fn lifo_model(items in proptest::collection::vec(arb_priority(), 0..200)) {
        let mut q = QueueingStrategy::Lifo.make::<usize>();
        for (i, p) in items.iter().enumerate() {
            q.push(p.clone(), i);
        }
        let out: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        prop_assert_eq!(out, (0..items.len()).rev().collect::<Vec<_>>());
    }

    /// Integer priority pops in stable-sorted (key, push-index) order.
    #[test]
    fn int_priority_model(keys in proptest::collection::vec(-100i64..100, 0..200)) {
        let mut q = QueueingStrategy::IntPriority.make::<usize>();
        for (i, &k) in keys.iter().enumerate() {
            q.push(Priority::Int(k), i);
        }
        let out: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        let mut want: Vec<usize> = (0..keys.len()).collect();
        want.sort_by_key(|&i| (keys[i], i));
        prop_assert_eq!(out, want);
    }

    /// Bitvector priority pops in stable-sorted (bit key, push-index)
    /// order.
    #[test]
    fn bitvec_priority_model(
        paths in proptest::collection::vec(proptest::collection::vec(0u32..4, 0..6), 0..100)
    ) {
        let prios: Vec<BitPrio> = paths
            .iter()
            .map(|path| {
                let mut p = BitPrio::root();
                for &v in path {
                    p = p.child(v, 2);
                }
                p
            })
            .collect();
        let mut q = QueueingStrategy::BitvecPriority.make::<usize>();
        for (i, p) in prios.iter().enumerate() {
            q.push(Priority::Bits(p.clone()), i);
        }
        let out: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        let mut want: Vec<usize> = (0..prios.len()).collect();
        want.sort_by(|&a, &b| prios[a].cmp(&prios[b]).then(a.cmp(&b)));
        prop_assert_eq!(out, want);
    }

    /// The bucketed integer queue pops exactly what the reference heap
    /// pops under a random interleaving of pushes (arbitrary i64 keys,
    /// in- and out-of-window) and pops.
    #[test]
    fn int_bucket_pop_order_equals_heap(
        ops in proptest::collection::vec(
            prop_oneof![
                any::<i64>().prop_map(Some),
                (-200i64..200).prop_map(Some), // in-window
                Just(None),                    // pop
            ],
            0..300,
        )
    ) {
        let mut fast = IntPrioQueue::<u32>::default();
        let mut reference = HeapIntPrioQueue::<u32>::default();
        let mut v = 0u32;
        for op in ops {
            match op {
                Some(key) => {
                    fast.push(Priority::Int(key), v);
                    reference.push(Priority::Int(key), v);
                    v += 1;
                }
                None => prop_assert_eq!(fast.pop(), reference.pop()),
            }
            prop_assert_eq!(fast.len(), reference.len());
        }
        loop {
            let (a, b) = (fast.pop(), reference.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// The radix-bucketed bitvector queue pops exactly what the
    /// reference heap pops, including FIFO among equal keys.
    #[test]
    fn bitvec_radix_pop_order_equals_heap(
        ops in proptest::collection::vec(
            prop_oneof![
                proptest::collection::vec(0u32..16, 0..8).prop_map(Some),
                proptest::collection::vec(0u32..16, 0..4).prop_map(Some),
                Just(None), // pop
            ],
            0..300,
        )
    ) {
        let mut fast = BitPrioQueue::<u32>::default();
        let mut reference = HeapBitPrioQueue::<u32>::default();
        let mut v = 0u32;
        for op in ops {
            match op {
                Some(path) => {
                    let mut p = BitPrio::root();
                    for x in path {
                        p = p.child(x, 4);
                    }
                    fast.push(Priority::Bits(p.clone()), v);
                    reference.push(Priority::Bits(p), v);
                    v += 1;
                }
                None => prop_assert_eq!(fast.pop(), reference.pop()),
            }
            prop_assert_eq!(fast.len(), reference.len());
        }
        loop {
            let (a, b) = (fast.pop(), reference.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// FIFO among equals for the bucketed queues: equal keys come back
    /// in push order no matter how they interleave with other keys.
    #[test]
    fn bucket_queues_fifo_among_equals(
        keys in proptest::collection::vec(0i64..4, 0..200)
    ) {
        let mut int_q = IntPrioQueue::<usize>::default();
        let mut bit_q = BitPrioQueue::<usize>::default();
        let prios: Vec<BitPrio> = (0..4)
            .map(|k| BitPrio::root().child(k, 2))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            int_q.push(Priority::Int(k), i);
            bit_q.push(Priority::Bits(prios[k as usize].clone()), i);
        }
        let mut want: Vec<usize> = (0..keys.len()).collect();
        want.sort_by_key(|&i| (keys[i], i));
        let int_out: Vec<usize> = std::iter::from_fn(|| int_q.pop()).collect();
        let bit_out: Vec<usize> = std::iter::from_fn(|| bit_q.pop()).collect();
        prop_assert_eq!(int_out, want.clone());
        prop_assert_eq!(bit_out, want);
    }

    /// Interleaved pushes and pops keep `len` consistent and never lose
    /// items (model: multiset cardinality).
    #[test]
    fn interleaved_len_consistent(ops in proptest::collection::vec(any::<bool>(), 0..300)) {
        for strat in QueueingStrategy::ALL {
            let mut q = strat.make::<u32>();
            let mut expected = 0usize;
            let mut next = 0u32;
            for &push in &ops {
                if push {
                    q.push(Priority::Int((next % 7) as i64), next);
                    next += 1;
                    expected += 1;
                } else if q.pop().is_some() {
                    expected -= 1;
                }
                prop_assert_eq!(q.len(), expected, "{}", strat.name());
                prop_assert_eq!(q.is_empty(), expected == 0);
            }
        }
    }
}
