//! Property test: quiescence detection fires exactly once, only after
//! all work is done, for randomly-shaped burst trees under random
//! strategies — the safety and liveness contract.

use chare_kernel::prelude::*;
use proptest::prelude::*;

const EP_DONE: EpId = EpId(1);

/// A tree whose every node does a tiny slice of "work" (an accumulator
/// add) so the test can verify that quiescence saw all of it.
#[derive(Clone, Copy)]
struct NodeSeed {
    fanout: u8,
    depth: u8,
    kind: Kind<TreeNode>,
    acc: Acc<SumU64>,
}
message!(NodeSeed);

struct TreeNode;
impl ChareInit for TreeNode {
    type Seed = NodeSeed;
    fn create(seed: NodeSeed, ctx: &mut Ctx) -> Self {
        ctx.acc_add(seed.acc, 1);
        if seed.depth > 0 {
            for _ in 0..seed.fanout {
                ctx.create(
                    seed.kind,
                    NodeSeed {
                        depth: seed.depth - 1,
                        ..seed
                    },
                );
            }
        }
        ctx.destroy_self();
        TreeNode
    }
}
impl Chare for TreeNode {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!()
    }
}

#[derive(Clone)]
struct MainSeed {
    fanout: u8,
    depth: u8,
    kind: Kind<TreeNode>,
    acc: Acc<SumU64>,
}
message!(MainSeed);

struct Main {
    acc: Acc<SumU64>,
    fired: u32,
}
impl ChareInit for Main {
    type Seed = MainSeed;
    fn create(seed: MainSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_DONE));
        ctx.create(
            seed.kind,
            NodeSeed {
                fanout: seed.fanout,
                depth: seed.depth,
                kind: seed.kind,
                acc: seed.acc,
            },
        );
        Main {
            acc: seed.acc,
            fired: 0,
        }
    }
}
impl Chare for Main {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        let me = ctx.self_id();
        match ep {
            EP_DONE => {
                let _ = cast::<QuiescenceMsg>(msg);
                self.fired += 1;
                assert_eq!(self.fired, 1, "quiescence fired more than once");
                ctx.acc_collect(self.acc, Notify::Chare(me, EpId(2)));
            }
            _ => {
                let total = cast::<AccResult<u64>>(msg);
                ctx.exit(total.value);
            }
        }
    }
}

/// Number of nodes in a complete `fanout`-ary tree of the given depth.
fn tree_size(fanout: u8, depth: u8) -> u64 {
    let f = fanout as u64;
    if f <= 1 {
        depth as u64 + 1
    } else {
        (f.pow(depth as u32 + 1) - 1) / (f - 1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn quiescence_sees_every_node(
        fanout in 1u8..4,
        depth in 0u8..6,
        npes in 1usize..10,
        strat_pick in 0usize..4,
        queue_pick in 0usize..4,
    ) {
        let balance = match strat_pick {
            0 => BalanceStrategy::Local,
            1 => BalanceStrategy::Random,
            2 => BalanceStrategy::acwn(),
            _ => BalanceStrategy::TokenIdle,
        };
        let queueing = QueueingStrategy::ALL[queue_pick];
        let mut b = ProgramBuilder::new();
        let kind = b.chare::<TreeNode>();
        let main = b.chare::<Main>();
        let acc = b.accumulator::<SumU64>();
        b.balance(balance);
        b.queueing(queueing);
        b.main(
            main,
            MainSeed {
                fanout,
                depth,
                kind,
                acc,
            },
        );
        let mut rep = b.build().run_sim_preset(npes, MachinePreset::NcubeLike);
        // Liveness: QD fired (we exited). Safety: every node's add was
        // visible at collect time.
        prop_assert_eq!(rep.take_result::<u64>(), Some(tree_size(fanout, depth)));
    }
}
