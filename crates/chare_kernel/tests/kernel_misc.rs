//! Kernel behavior tests: chare lifecycle, dead letters, local branch
//! calls, misuse panics, and counter accounting.

use chare_kernel::prelude::*;

const EP_PING: EpId = EpId(1);
const EP_DONE: EpId = EpId(2);

// ---------------------------------------------------------------------
// Dead letters: messages to destroyed chares are dropped, counted, and
// don't break anything.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct DlSeed {
    victim: Kind<Victim>,
}
message!(DlSeed);

#[derive(Clone, Copy)]
struct VictimSeed {
    parent: ChareId,
}
message!(VictimSeed);

/// Dies on its first message.
struct Victim;
impl ChareInit for Victim {
    type Seed = VictimSeed;
    fn create(seed: VictimSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.send(seed.parent, EP_PING, me);
        Victim
    }
}
impl Chare for Victim {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, ctx: &mut Ctx) {
        ctx.destroy_self();
    }
}

struct DlMain {
    victim_id: Option<ChareId>,
    sent_after_death: bool,
}

impl ChareInit for DlMain {
    type Seed = DlSeed;
    fn create(seed: DlSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.create_on(Pe::from(1 % ctx.npes()), seed.victim, VictimSeed { parent: me });
        DlMain {
            victim_id: None,
            sent_after_death: false,
        }
    }
}

impl Chare for DlMain {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_PING => {
                // Victim introduced itself. Kill it with one message,
                // then send three more that must become dead letters,
                // then detect quiescence to finish.
                let victim = cast::<ChareId>(msg);
                self.victim_id = Some(victim);
                ctx.send(victim, EP_PING, ()); // destroys it
                for _ in 0..3 {
                    ctx.send(victim, EP_PING, ()); // dead letters
                }
                let me = ctx.self_id();
                ctx.start_quiescence(Notify::Chare(me, EP_DONE));
                self.sent_after_death = true;
            }
            EP_DONE => {
                let _ = cast::<QuiescenceMsg>(msg);
                ctx.exit(true);
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn dead_letters_are_counted_not_fatal() {
    let mut b = ProgramBuilder::new();
    let victim = b.chare::<Victim>();
    let main = b.chare::<DlMain>();
    b.main(main, DlSeed { victim });
    let mut rep = b.build().run_sim_preset(2, MachinePreset::NcubeLike);
    assert_eq!(rep.take_result::<bool>(), Some(true));
    assert_eq!(rep.counter_total("dead_letters"), 3);
}

// ---------------------------------------------------------------------
// Local branch calls (with_branch) and self_boc.
// ---------------------------------------------------------------------

struct CounterBranch {
    hits: u64,
}

impl BranchInit for CounterBranch {
    type Cfg = u64;
    fn create(cfg: u64, _ctx: &mut Ctx) -> Self {
        CounterBranch { hits: cfg }
    }
}

impl Branch for CounterBranch {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        self.hits += 1;
    }
}

#[derive(Clone)]
struct WbSeed {
    boc: Boc<CounterBranch>,
}
message!(WbSeed);

struct WbMain;
impl ChareInit for WbMain {
    type Seed = WbSeed;
    fn create(seed: WbSeed, ctx: &mut Ctx) -> Self {
        // Synchronous local-branch calls from a chare.
        let v1 = ctx.with_branch(seed.boc, |b: &mut CounterBranch, _ctx| {
            b.hits += 10;
            b.hits
        });
        let v2 = ctx.with_branch(seed.boc, |b: &mut CounterBranch, _ctx| b.hits);
        assert_eq!(v1, v2);
        ctx.exit(v2);
        WbMain
    }
}
impl Chare for WbMain {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!()
    }
}

#[test]
fn with_branch_gives_synchronous_local_access() {
    let mut b = ProgramBuilder::new();
    let boc = b.boc::<CounterBranch>(100);
    let main = b.chare::<WbMain>();
    b.main(main, WbSeed { boc });
    let mut rep = b.build().run_sim_preset(4, MachinePreset::NcubeLike);
    assert_eq!(rep.take_result::<u64>(), Some(110));
}

// ---------------------------------------------------------------------
// Misuse panics.
// ---------------------------------------------------------------------

struct BadBranch;
impl BranchInit for BadBranch {
    type Cfg = ();
    fn create(_cfg: (), ctx: &mut Ctx) -> Self {
        // self_id is a chare-only operation.
        let _ = ctx.self_id();
        BadBranch
    }
}
impl Branch for BadBranch {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {}
}

#[test]
#[should_panic(expected = "self_id called outside a chare")]
fn self_id_from_branch_panics() {
    let mut b = ProgramBuilder::new();
    let _boc = b.boc::<BadBranch>(());
    let _ = b.build().run_sim_preset(1, MachinePreset::Ideal);
}

struct WrongCast;
impl ChareInit for WrongCast {
    type Seed = u32;
    fn create(_seed: u32, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.send(me, EP_PING, 5u64);
        WrongCast
    }
}
impl Chare for WrongCast {
    fn entry(&mut self, _ep: EpId, msg: MsgBody, _ctx: &mut Ctx) {
        let _ = cast::<String>(msg); // wrong type
    }
}

#[test]
#[should_panic(expected = "wrong type")]
fn casting_wrong_message_type_panics() {
    let mut b = ProgramBuilder::new();
    let kind = b.chare::<WrongCast>();
    b.main(kind, 0u32);
    let _ = b.build().run_sim_preset(1, MachinePreset::Ideal);
}

// ---------------------------------------------------------------------
// Counter accounting: sends == receives at quiescence.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct AcctSeed {
    burst: Kind<BurstChare>,
}
message!(AcctSeed);

#[derive(Clone, Copy)]
struct BurstSeed {
    depth: u32,
    kind: Kind<BurstChare>,
}
message!(BurstSeed);

struct BurstChare;
impl ChareInit for BurstChare {
    type Seed = BurstSeed;
    fn create(seed: BurstSeed, ctx: &mut Ctx) -> Self {
        if seed.depth > 0 {
            for _ in 0..2 {
                ctx.create(
                    seed.kind,
                    BurstSeed {
                        depth: seed.depth - 1,
                        kind: seed.kind,
                    },
                );
            }
        }
        ctx.destroy_self();
        BurstChare
    }
}
impl Chare for BurstChare {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!()
    }
}

struct AcctMain;
impl ChareInit for AcctMain {
    type Seed = AcctSeed;
    fn create(seed: AcctSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_DONE));
        ctx.create(
            seed.burst,
            BurstSeed {
                depth: 6,
                kind: seed.burst,
            },
        );
        AcctMain
    }
}
impl Chare for AcctMain {
    fn entry(&mut self, _ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        let _ = cast::<QuiescenceMsg>(msg);
        ctx.exit(());
    }
}

#[test]
fn message_accounting_balances_at_quiescence() {
    let mut b = ProgramBuilder::new();
    let burst = b.chare::<BurstChare>();
    let main = b.chare::<AcctMain>();
    b.balance(BalanceStrategy::Random);
    b.main(main, AcctSeed { burst });
    let rep = b.build().run_sim_preset(8, MachinePreset::NcubeLike);
    // At quiescence (just before the exit notification), all user
    // messages sent had been received. The exit notification itself is
    // sent and received too, so totals still balance.
    let sent = rep.counter_total("user_sent");
    let recv = rep.counter_total("user_recv");
    assert_eq!(sent, recv, "sent {sent} != received {recv}");
    // 2^7 - 1 = 127 burst chares plus the main chare.
    assert_eq!(rep.counter_total("chares_created"), 128);
}

// ---------------------------------------------------------------------
// Explicit placement covers every PE.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct PlaceSeed {
    probe: Kind<PlaceProbe>,
}
message!(PlaceSeed);

#[derive(Clone, Copy)]
struct PlaceProbeSeed {
    parent: ChareId,
}
message!(PlaceProbeSeed);

struct PlaceProbe;
impl ChareInit for PlaceProbe {
    type Seed = PlaceProbeSeed;
    fn create(seed: PlaceProbeSeed, ctx: &mut Ctx) -> Self {
        ctx.send(seed.parent, EP_PING, ctx.pe().0);
        ctx.destroy_self();
        PlaceProbe
    }
}
impl Chare for PlaceProbe {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!()
    }
}

struct PlaceMain {
    seen: Vec<u32>,
}
impl ChareInit for PlaceMain {
    type Seed = PlaceSeed;
    fn create(seed: PlaceSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        for pe in 0..ctx.npes() {
            ctx.create_on(Pe::from(pe), seed.probe, PlaceProbeSeed { parent: me });
        }
        PlaceMain { seen: Vec::new() }
    }
}
impl Chare for PlaceMain {
    fn entry(&mut self, _ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        self.seen.push(cast::<u32>(msg));
        if self.seen.len() == ctx.npes() {
            self.seen.sort_unstable();
            ctx.exit(self.seen.clone());
        }
    }
}

#[test]
fn create_on_places_exactly_where_asked() {
    let mut b = ProgramBuilder::new();
    let probe = b.chare::<PlaceProbe>();
    let main = b.chare::<PlaceMain>();
    // Even with an aggressive balancer, create_on must be respected.
    b.balance(BalanceStrategy::Random);
    b.main(main, PlaceSeed { probe });
    let mut rep = b.build().run_sim_preset(6, MachinePreset::NcubeLike);
    assert_eq!(
        rep.take_result::<Vec<u32>>(),
        Some(vec![0, 1, 2, 3, 4, 5])
    );
}

// ---------------------------------------------------------------------
// Priority-respecting delivery on one PE.
// ---------------------------------------------------------------------

struct PrioMain {
    got: Vec<i64>,
}

#[derive(Clone)]
struct PrioSeed;
message!(PrioSeed);

impl ChareInit for PrioMain {
    type Seed = PrioSeed;
    fn create(_seed: PrioSeed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        // All sends are local and enqueued before any is processed, so
        // the integer-priority queue must reorder them.
        for v in [5i64, 1, 4, 2, 3] {
            ctx.send_prio(me, EP_PING, v, Priority::Int(v));
        }
        PrioMain { got: Vec::new() }
    }
}

impl Chare for PrioMain {
    fn entry(&mut self, _ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        self.got.push(cast::<i64>(msg));
        if self.got.len() == 5 {
            ctx.exit(self.got.clone());
        }
    }
}

#[test]
fn priority_queue_reorders_local_sends() {
    let mut b = ProgramBuilder::new();
    let main = b.chare::<PrioMain>();
    b.queueing(QueueingStrategy::IntPriority);
    b.main(main, PrioSeed);
    let mut rep = b.build().run_sim_preset(1, MachinePreset::NcubeLike);
    assert_eq!(rep.take_result::<Vec<i64>>(), Some(vec![1, 2, 3, 4, 5]));
}

#[test]
fn fifo_preserves_local_send_order() {
    let mut b = ProgramBuilder::new();
    let main = b.chare::<PrioMain>();
    b.queueing(QueueingStrategy::Fifo);
    b.main(main, PrioSeed);
    let mut rep = b.build().run_sim_preset(1, MachinePreset::NcubeLike);
    assert_eq!(rep.take_result::<Vec<i64>>(), Some(vec![5, 1, 4, 2, 3]));
}

// ---------------------------------------------------------------------
// Write-once misuse and re-entrant branch calls.
// ---------------------------------------------------------------------

struct EarlyReader;
impl ChareInit for EarlyReader {
    type Seed = u32;
    fn create(_seed: u32, ctx: &mut Ctx) -> Self {
        // Reading a write-once variable that was never created (or not
        // yet replicated here) is a programming error.
        let bogus = WoId(12345);
        let _ = ctx.wo_get::<u64>(bogus);
        EarlyReader
    }
}
impl Chare for EarlyReader {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {}
}

#[test]
#[should_panic(expected = "not (yet) replicated")]
fn reading_unreplicated_write_once_panics() {
    let mut b = ProgramBuilder::new();
    let kind = b.chare::<EarlyReader>();
    b.main(kind, 0u32);
    let _ = b.build().run_sim_preset(2, MachinePreset::Ideal);
}

struct Reentrant;
impl BranchInit for Reentrant {
    type Cfg = ();
    fn create(_cfg: (), _ctx: &mut Ctx) -> Self {
        Reentrant
    }
}
impl Branch for Reentrant {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, ctx: &mut Ctx) {
        // A branch calling with_branch on *itself* would alias its own
        // &mut self — the kernel must refuse.
        let me = ctx.self_boc::<Reentrant>();
        ctx.with_branch(me, |_b: &mut Reentrant, _ctx| ());
    }
}

#[derive(Clone)]
struct ReentrantSeed {
    boc: Boc<Reentrant>,
}
message!(ReentrantSeed);

struct ReentrantMain;
impl ChareInit for ReentrantMain {
    type Seed = ReentrantSeed;
    fn create(seed: ReentrantSeed, ctx: &mut Ctx) -> Self {
        ctx.send_branch(seed.boc, Pe::ZERO, EP_PING, ());
        ReentrantMain
    }
}
impl Chare for ReentrantMain {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {}
}

#[test]
#[should_panic(expected = "re-entrant")]
fn reentrant_branch_call_panics() {
    let mut b = ProgramBuilder::new();
    let boc = b.boc::<Reentrant>(());
    let main = b.chare::<ReentrantMain>();
    b.main(main, ReentrantSeed { boc });
    let _ = b.build().run_sim_preset(1, MachinePreset::Ideal);
}

struct BranchDestroyer;
impl BranchInit for BranchDestroyer {
    type Cfg = ();
    fn create(_cfg: (), _ctx: &mut Ctx) -> Self {
        BranchDestroyer
    }
}
impl Branch for BranchDestroyer {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, ctx: &mut Ctx) {
        ctx.destroy_self(); // branches are permanent
    }
}

#[derive(Clone)]
struct DestroyerSeed {
    boc: Boc<BranchDestroyer>,
}
message!(DestroyerSeed);

struct DestroyerMain;
impl ChareInit for DestroyerMain {
    type Seed = DestroyerSeed;
    fn create(seed: DestroyerSeed, ctx: &mut Ctx) -> Self {
        ctx.send_branch(seed.boc, Pe::ZERO, EP_PING, ());
        DestroyerMain
    }
}
impl Chare for DestroyerMain {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {}
}

#[test]
#[should_panic(expected = "branches cannot be destroyed")]
fn destroying_a_branch_panics() {
    let mut b = ProgramBuilder::new();
    let boc = b.boc::<BranchDestroyer>(());
    let main = b.chare::<DestroyerMain>();
    b.main(main, DestroyerSeed { boc });
    let _ = b.build().run_sim_preset(1, MachinePreset::Ideal);
}
