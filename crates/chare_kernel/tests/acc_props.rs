//! Property test: accumulator totals are independent of how the
//! contributions are partitioned over PEs, which PE contributes them, or
//! the order the adds happen — the commutativity/associativity contract,
//! checked end-to-end through the kernel (including the spanning-tree
//! reduction).

use chare_kernel::prelude::*;
use proptest::prelude::*;

const EP_QUIESCENT: EpId = EpId(1);
const EP_TOTAL: EpId = EpId(2);

#[derive(Clone)]
struct Seed {
    values: Vec<(u8, u64)>, // (pe, contribution)
    worker: Kind<Adder>,
    acc: Acc<SumU64>,
}
impl Message for Seed {
    fn bytes(&self) -> u32 {
        (self.values.len() * 9 + 16) as u32
    }
}

#[derive(Clone, Copy)]
struct AdderSeed {
    value: u64,
    acc: Acc<SumU64>,
}
message!(AdderSeed);

struct Adder;
impl ChareInit for Adder {
    type Seed = AdderSeed;
    fn create(seed: AdderSeed, ctx: &mut Ctx) -> Self {
        ctx.acc_add(seed.acc, seed.value);
        ctx.destroy_self();
        Adder
    }
}
impl Chare for Adder {
    fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {
        unreachable!()
    }
}

struct Main {
    acc: Acc<SumU64>,
}
impl ChareInit for Main {
    type Seed = Seed;
    fn create(seed: Seed, ctx: &mut Ctx) -> Self {
        let me = ctx.self_id();
        ctx.start_quiescence(Notify::Chare(me, EP_QUIESCENT));
        let npes = ctx.npes();
        for &(pe, value) in &seed.values {
            ctx.create_on(
                Pe::from(pe as usize % npes),
                seed.worker,
                AdderSeed {
                    value,
                    acc: seed.acc,
                },
            );
        }
        Main { acc: seed.acc }
    }
}
impl Chare for Main {
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
        match ep {
            EP_QUIESCENT => {
                let _ = cast::<QuiescenceMsg>(msg);
                let me = ctx.self_id();
                ctx.acc_collect(self.acc, Notify::Chare(me, EP_TOTAL));
            }
            EP_TOTAL => {
                let total = cast::<AccResult<u64>>(msg);
                ctx.exit(total.value);
            }
            _ => unreachable!(),
        }
    }
}

fn run(values: Vec<(u8, u64)>, npes: usize, mode: BroadcastMode) -> u64 {
    let mut b = ProgramBuilder::new();
    let worker = b.chare::<Adder>();
    let main = b.chare::<Main>();
    let acc = b.accumulator::<SumU64>();
    b.broadcast_mode(mode);
    b.main(
        main,
        Seed {
            values,
            worker,
            acc,
        },
    );
    let mut rep = b.build().run_sim_preset(npes, MachinePreset::NcubeLike);
    rep.take_result::<u64>().expect("total")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn total_is_partition_independent(
        values in proptest::collection::vec((0u8..16, 0u64..1000), 0..60),
        npes in 1usize..12,
        tree in any::<bool>(),
    ) {
        let want: u64 = values.iter().map(|&(_, v)| v).sum();
        let mode = if tree {
            BroadcastMode::Tree
        } else {
            BroadcastMode::Direct
        };
        let got = run(values, npes, mode);
        prop_assert_eq!(got, want);
    }
}
