//! Property-based tests of bitvector priorities: total order axioms,
//! binary-fraction semantics, child-refinement laws.

use chare_kernel::priority::{BitPrio, Priority};
use proptest::prelude::*;
use std::cmp::Ordering;

fn arb_bits() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 0..40)
}

fn from_bits(bits: &[bool]) -> BitPrio {
    let mut p = BitPrio::root();
    for &b in bits {
        p = p.child_bit(b);
    }
    p
}

/// Reference semantics: a bitvector is the binary fraction
/// 0.b0 b1 b2 ... — compare by zero-extended lexicographic order.
fn model_cmp(a: &[bool], b: &[bool]) -> Ordering {
    let n = a.len().max(b.len());
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(false);
        let y = b.get(i).copied().unwrap_or(false);
        match x.cmp(&y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

proptest! {
    #[test]
    fn cmp_matches_fraction_model(a in arb_bits(), b in arb_bits()) {
        let pa = from_bits(&a);
        let pb = from_bits(&b);
        prop_assert_eq!(pa.cmp(&pb), model_cmp(&a, &b));
    }

    #[test]
    fn cmp_is_antisymmetric(a in arb_bits(), b in arb_bits()) {
        let pa = from_bits(&a);
        let pb = from_bits(&b);
        prop_assert_eq!(pa.cmp(&pb), pb.cmp(&pa).reverse());
    }

    #[test]
    fn cmp_is_transitive(a in arb_bits(), b in arb_bits(), c in arb_bits()) {
        let (pa, pb, pc) = (from_bits(&a), from_bits(&b), from_bits(&c));
        if pa <= pb && pb <= pc {
            prop_assert!(pa <= pc);
        }
    }

    #[test]
    fn bits_roundtrip(a in arb_bits()) {
        let p = from_bits(&a);
        prop_assert_eq!(p.len() as usize, a.len());
        for (i, &b) in a.iter().enumerate() {
            prop_assert_eq!(p.bit(i as u32), b);
        }
    }

    /// A child is never more urgent than its parent (refinement only adds
    /// to the fraction), and children are ordered by their index.
    #[test]
    fn child_refinement_laws(a in arb_bits(), v in 0u32..256, w in 0u32..256) {
        let parent = from_bits(&a);
        let (lo, hi) = (v.min(w), v.max(w));
        let c_lo = parent.child(lo, 8);
        let c_hi = parent.child(hi, 8);
        prop_assert!(parent <= c_lo);
        prop_assert!(c_lo <= c_hi);
        if lo != hi {
            prop_assert!(c_lo < c_hi);
        }
    }

    /// Whole subtrees inherit the ordering of their roots: any descendant
    /// of child(v) precedes any descendant of child(w) when v < w.
    #[test]
    fn subtree_isolation(
        a in arb_bits(),
        v in 0u32..15,
        d1 in arb_bits(),
        d2 in arb_bits(),
    ) {
        let parent = from_bits(&a);
        let left = from_bits(&[&a[..], &to_bits(v, 4)].concat());
        let right = parent.child(v + 1, 4);
        // Arbitrary descendants of `left` and `right`.
        let mut ld = left;
        for &b in &d1 { ld = ld.child_bit(b); }
        let mut rd = right.clone();
        for &b in &d2 { rd = rd.child_bit(b); }
        prop_assert!(ld < rd, "descendant of child {v} must precede child {}", v + 1);
    }

    #[test]
    fn prefix_key_is_monotone(a in arb_bits(), b in arb_bits()) {
        let pa = from_bits(&a);
        let pb = from_bits(&b);
        if pa < pb {
            prop_assert!(pa.prefix_key() <= pb.prefix_key());
        }
    }

    #[test]
    fn int_bit_key_preserves_order(x in any::<i64>(), y in any::<i64>()) {
        let kx = Priority::Int(x).bit_key();
        let ky = Priority::Int(y).bit_key();
        prop_assert_eq!(kx.cmp(&ky), x.cmp(&y));
    }

    #[test]
    fn wire_bytes_positive(a in arb_bits()) {
        prop_assert!(Priority::Bits(from_bits(&a)).wire_bytes() >= 5);
    }
}

fn to_bits(v: u32, width: u32) -> Vec<bool> {
    (0..width).rev().map(|i| (v >> i) & 1 == 1).collect()
}
