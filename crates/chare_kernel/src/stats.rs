//! Kernel event counters, exported through the machine's run report.
//!
//! These are the quantities the paper's Table 1 characterizes per
//! benchmark (chares created, messages processed) plus the balancing and
//! shared-variable traffic the strategy experiments analyze.

use multicomputer::NodeStats;

/// Per-PE kernel counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// User messages sent (seeds, chare/branch messages, shared-variable
    /// operations) — the quiescence-detection "sent" counter.
    pub user_sent: u64,
    /// User messages received — the quiescence-detection "recv" counter.
    pub user_recv: u64,
    /// Chares constructed on this PE.
    pub chares_created: u64,
    /// Entry-method executions (including constructions).
    pub entries_executed: u64,
    /// Messages addressed to chares that no longer exist.
    pub dead_letters: u64,
    /// Seeds this PE's balancer forwarded elsewhere.
    pub seeds_forwarded: u64,
    /// Seeds this PE kept and enqueued.
    pub seeds_kept: u64,
    /// Work requests sent while idle (token strategy).
    pub work_reqs: u64,
    /// Work requests answered with a seed.
    pub work_grants: u64,
    /// Work requests answered with a NACK.
    pub work_nacks: u64,
    /// Monotonic-variable improvement broadcasts originated here.
    pub mono_broadcasts: u64,
    /// Monotonic updates applied (local improvements from any source).
    pub mono_applied: u64,
    /// Distributed-table operations served by this PE's shard.
    pub table_ops: u64,
    /// Accumulator collects initiated from this PE.
    pub acc_collects: u64,
    /// Load reports sent.
    pub load_reports: u64,
    /// Quiescence-detection waves answered.
    pub qd_replies: u64,
    /// High-water mark of the runnable backlog (queue + seed pool) —
    /// the per-PE memory pressure the paper's queueing discussion cares
    /// about.
    pub queue_hwm: u64,
    /// Reliable frames retransmitted after an ack timeout.
    pub retransmits: u64,
    /// Duplicate reliable frames discarded by the receiver.
    pub dup_dropped: u64,
    /// Ack messages sent (each may cover several frames).
    pub acks_sent: u64,
    /// Seeds re-dispatched to a different PE after exhausting their
    /// retry budget against an unresponsive destination.
    pub seeds_redirected: u64,
}

impl KernelCounters {
    /// Flatten into the machine layer's name/value report.
    pub fn to_node_stats(&self) -> NodeStats {
        let mut s = NodeStats::new();
        s.push("user_sent", self.user_sent);
        s.push("user_recv", self.user_recv);
        s.push("chares_created", self.chares_created);
        s.push("entries_executed", self.entries_executed);
        s.push("dead_letters", self.dead_letters);
        s.push("seeds_forwarded", self.seeds_forwarded);
        s.push("seeds_kept", self.seeds_kept);
        s.push("work_reqs", self.work_reqs);
        s.push("work_grants", self.work_grants);
        s.push("work_nacks", self.work_nacks);
        s.push("mono_broadcasts", self.mono_broadcasts);
        s.push("mono_applied", self.mono_applied);
        s.push("table_ops", self.table_ops);
        s.push("acc_collects", self.acc_collects);
        s.push("load_reports", self.load_reports);
        s.push("qd_replies", self.qd_replies);
        s.push("queue_hwm", self.queue_hwm);
        s.push("retransmits", self.retransmits);
        s.push("dup_dropped", self.dup_dropped);
        s.push("acks_sent", self.acks_sent);
        s.push("seeds_redirected", self.seeds_redirected);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_all_counters() {
        let c = KernelCounters {
            user_sent: 3,
            chares_created: 2,
            ..Default::default()
        };
        let s = c.to_node_stats();
        assert_eq!(s.get("user_sent"), Some(3));
        assert_eq!(s.get("chares_created"), Some(2));
        assert_eq!(s.get("dead_letters"), Some(0));
        assert_eq!(s.counters.len(), 21);
    }
}
