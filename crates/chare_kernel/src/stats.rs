//! Kernel event counters, exported through the machine's run report.
//!
//! These are the quantities the paper's Table 1 characterizes per
//! benchmark (chares created, messages processed) plus the balancing and
//! shared-variable traffic the strategy experiments analyze.

use multicomputer::NodeStats;

/// Declares [`KernelCounters`] once: the struct, the canonical
/// [`KernelCounters::NAMES`] list and [`KernelCounters::to_node_stats`]
/// are all generated from the same field list, so adding a counter can
/// never leave the exported report (or a test's expected count) stale.
macro_rules! kernel_counters {
    ($( $(#[$meta:meta])* $name:ident ),+ $(,)?) => {
        /// Per-PE kernel counters.
        #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
        pub struct KernelCounters {
            $( $(#[$meta])* pub $name: u64, )+
        }

        impl KernelCounters {
            /// Every counter name, in export order.
            pub const NAMES: &'static [&'static str] = &[$(stringify!($name)),+];

            /// Flatten into the machine layer's name/value report.
            pub fn to_node_stats(&self) -> NodeStats {
                let mut s = NodeStats::new();
                $( s.push(stringify!($name), self.$name); )+
                s
            }
        }
    };
}

kernel_counters! {
    /// User messages sent (seeds, chare/branch messages, shared-variable
    /// operations) — the quiescence-detection "sent" counter.
    user_sent,
    /// User messages received — the quiescence-detection "recv" counter.
    user_recv,
    /// Chares constructed on this PE.
    chares_created,
    /// Entry-method executions (including constructions).
    entries_executed,
    /// Messages addressed to chares that no longer exist.
    dead_letters,
    /// Seeds this PE's balancer forwarded elsewhere.
    seeds_forwarded,
    /// Seeds this PE kept and enqueued.
    seeds_kept,
    /// Work requests sent while idle (token strategy).
    work_reqs,
    /// Work requests answered with a seed.
    work_grants,
    /// Work requests answered with a NACK.
    work_nacks,
    /// Monotonic-variable improvement broadcasts originated here.
    mono_broadcasts,
    /// Monotonic updates applied (local improvements from any source).
    mono_applied,
    /// Distributed-table operations served by this PE's shard.
    table_ops,
    /// Accumulator collects initiated from this PE.
    acc_collects,
    /// Load reports sent.
    load_reports,
    /// Quiescence-detection waves answered.
    qd_replies,
    /// High-water mark of the runnable backlog (queue + seed pool) —
    /// the per-PE memory pressure the paper's queueing discussion cares
    /// about.
    queue_hwm,
    /// Reliable frames retransmitted after an ack timeout.
    retransmits,
    /// Duplicate reliable frames discarded by the receiver.
    dup_dropped,
    /// Ack messages sent (each may cover several frames).
    acks_sent,
    /// Seeds re-dispatched to a different PE after exhausting their
    /// retry budget against an unresponsive destination.
    seeds_redirected,
    /// Chare creations *requested* on this PE (`Ctx::create`/`create_on`
    /// plus the main chare at boot) — the origination side of the
    /// exactly-once seed ledger. Forwarding, work-stealing grants and
    /// reliable-layer redirects move a seed without re-counting it, so
    /// across a whole run `Σ seeds_spawned` must equal `Σ chares_created`
    /// once every queue drains: a shortfall is a lost seed, an excess a
    /// duplicated construction. The desim campaign's seed-accounting
    /// oracle checks exactly that.
    seeds_spawned,
    /// Quiescence declarations issued by this PE's QD coordinator
    /// (only ever nonzero on PE 0).
    qd_declares,
    /// Runnable user backlog (queue + seed pool) left when the run
    /// ended — snapshot taken at stats collection, not a running count.
    /// Nonzero after a clean exit means work was legitimately abandoned
    /// (e.g. pruned search seeds); the seed-accounting oracle only
    /// demands ledger equality when this is zero everywhere.
    backlog_end,
    /// Reliable frames still carrying *counted* user traffic,
    /// unacknowledged at run end (snapshot, like `backlog_end`).
    rel_inflight_end,
    /// Arrivals still parked behind a sequence gap in a reorder buffer
    /// at run end (snapshot). Under quiescence-based termination this
    /// must be zero: QD declaring over a parked user message is exactly
    /// the unsoundness the desim quiescence oracle hunts.
    rel_reorder_end,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn exports_all_counters() {
        let c = KernelCounters {
            user_sent: 3,
            chares_created: 2,
            ..Default::default()
        };
        let s = c.to_node_stats();
        assert_eq!(s.get("user_sent"), Some(3));
        assert_eq!(s.get("chares_created"), Some(2));
        assert_eq!(s.get("dead_letters"), Some(0));
        // Derived from the struct itself, so adding a counter cannot
        // silently break this.
        assert_eq!(s.counters.len(), KernelCounters::NAMES.len());
    }

    #[test]
    fn names_match_export_order_and_are_unique() {
        let s = KernelCounters::default().to_node_stats();
        let exported: Vec<&str> = s.counters.iter().map(|&(n, _)| n).collect();
        assert_eq!(exported, KernelCounters::NAMES);
        let unique: HashSet<&str> = KernelCounters::NAMES.iter().copied().collect();
        assert_eq!(unique.len(), KernelCounters::NAMES.len());
    }
}
