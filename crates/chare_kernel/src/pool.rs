//! Quick-fit pooled memory for kernel envelopes and wire buffers.
//!
//! The C Chare Kernel devoted an entire kernel module to dynamic memory
//! management for messages: quick-fit free lists serving the handful of
//! block sizes message traffic actually uses, because a general-purpose
//! `malloc`/`free` pair per message *is* the kernel's overhead. This
//! module is the host-side analogue for the reproduction. Every kernel
//! packet wraps one [`SysMsg`] in a `Box`, and message combining ships
//! `Vec<SysMsg>` wire buffers; both are allocated and freed at the full
//! rate of simulated traffic. The pool recycles them through
//! thread-local free lists (one exact-size list for envelope boxes —
//! the quick-fit "quick list" — and capacity-classed lists for wire
//! buffers), so steady-state message traffic performs no heap
//! allocation at all.
//!
//! Pooling is **invisible to simulated results**: the same values flow
//! through the same code paths, only the host allocations differ. The
//! `perf_invariants` suite pins this down by diffing whole experiment
//! tables with pooling on and off.
//!
//! Two switches:
//! * the `msgpool` cargo feature (default on) compiles the pool; without
//!   it every function below degenerates to plain allocation, and
//! * [`set_pooling`] toggles recycling at runtime on the current thread
//!   (used by the A/B determinism tests).
//!
//! Free lists are thread-local, which makes them safe on both backends:
//! the discrete-event simulator runs a whole machine on one thread (one
//! pool), the thread backend runs one PE per thread (one pool each —
//! envelopes allocated by a sender and reclaimed by a receiver simply
//! migrate between lists).

use std::cell::{Cell, RefCell};

use multicomputer::Payload;

use crate::envelope::SysMsg;

/// Most free envelope boxes kept per thread (~64 B each).
const ENVELOPE_KEEP: usize = 8192;
/// Most free wire buffers kept per thread, per size class.
const BATCH_KEEP: usize = 512;
/// Most free ack-sequence buffers kept per thread.
const SEQ_KEEP: usize = 512;
/// Wire-buffer capacity classes: `<= 8`, `<= 32`, `<= 128`, larger.
const BATCH_CLASS_CAPS: [usize; 3] = [8, 32, 128];

#[derive(Default)]
struct Pool {
    // The boxes ARE the pooled resource: callers hold `Box<SysMsg>`
    // envelopes, and recycling must keep each heap allocation alive.
    #[allow(clippy::vec_box)]
    envelopes: Vec<Box<SysMsg>>,
    batches: [Vec<Vec<SysMsg>>; 4],
    seqs: Vec<Vec<u64>>,
    recycled: u64,
    allocated: u64,
}

/// Counters for one thread's pool (diagnostics only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from a free list.
    pub recycled: u64,
    /// Allocations that had to hit the heap.
    pub allocated: u64,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
    static ENABLED: Cell<bool> = const { Cell::new(true) };
}

fn batch_class(cap: usize) -> usize {
    BATCH_CLASS_CAPS
        .iter()
        .position(|&c| cap <= c)
        .unwrap_or(BATCH_CLASS_CAPS.len())
}

/// Enable or disable recycling on the current thread. Off, every call
/// allocates and every reclaim frees — the unpooled A/B baseline.
/// No-op without the `msgpool` feature (pooling is then always off).
pub fn set_pooling(on: bool) {
    let _ = on;
    #[cfg(feature = "msgpool")]
    ENABLED.with(|e| e.set(on));
}

/// Whether recycling is active on the current thread.
pub fn pooling() -> bool {
    cfg!(feature = "msgpool") && ENABLED.with(|e| e.get())
}

/// This thread's pool counters.
pub fn stats() -> PoolStats {
    POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            recycled: p.recycled,
            allocated: p.allocated,
        }
    })
}

/// Box `sys` as a machine-layer payload, reusing a recycled envelope
/// allocation when one is free.
pub fn payload(sys: SysMsg) -> Payload {
    #[cfg(feature = "msgpool")]
    if pooling() {
        return POOL.with(|p| {
            let mut p = p.borrow_mut();
            match p.envelopes.pop() {
                Some(mut bx) => {
                    p.recycled += 1;
                    *bx = sys;
                    bx
                }
                None => {
                    p.allocated += 1;
                    Box::new(sys)
                }
            }
        });
    }
    Box::new(sys)
}

/// Take the message out of a received envelope and return the box's
/// allocation to the free list.
pub fn reclaim(bx: Box<SysMsg>) -> SysMsg {
    #[cfg(feature = "msgpool")]
    if pooling() {
        let mut bx = bx;
        // `WorkNack` is the unit variant: a placeholder that costs one
        // enum-sized move and drops nothing.
        let sys = std::mem::replace(&mut *bx, SysMsg::WorkNack);
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.envelopes.len() < ENVELOPE_KEEP {
                p.envelopes.push(bx);
            }
        });
        return sys;
    }
    *bx
}

/// An empty wire buffer with at least `cap_hint` capacity if a recycled
/// one is available (larger classes are searched before allocating).
pub fn batch(cap_hint: usize) -> Vec<SysMsg> {
    #[cfg(feature = "msgpool")]
    if pooling() {
        return POOL.with(|p| {
            let mut p = p.borrow_mut();
            for class in batch_class(cap_hint)..p.batches.len() {
                if let Some(v) = p.batches[class].pop() {
                    p.recycled += 1;
                    return v;
                }
            }
            p.allocated += 1;
            Vec::with_capacity(cap_hint)
        });
    }
    Vec::with_capacity(cap_hint)
}

/// Return an emptied wire buffer to its size class.
pub fn recycle_batch(v: Vec<SysMsg>) {
    #[cfg(feature = "msgpool")]
    if pooling() && v.capacity() > 0 {
        debug_assert!(v.is_empty(), "recycled wire buffer must be drained");
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            let class = batch_class(v.capacity());
            if p.batches[class].len() < BATCH_KEEP {
                p.batches[class].push(v);
            }
        });
        return;
    }
    drop(v);
}

/// An empty ack-sequence buffer (reliable-delivery wire traffic).
pub fn seq_vec() -> Vec<u64> {
    #[cfg(feature = "msgpool")]
    if pooling() {
        return POOL.with(|p| {
            let mut p = p.borrow_mut();
            match p.seqs.pop() {
                Some(v) => {
                    p.recycled += 1;
                    v
                }
                None => {
                    p.allocated += 1;
                    Vec::new()
                }
            }
        });
    }
    Vec::new()
}

/// Return an ack-sequence buffer to the free list.
pub fn recycle_seq_vec(mut v: Vec<u64>) {
    #[cfg(feature = "msgpool")]
    if pooling() && v.capacity() > 0 {
        v.clear();
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            if p.seqs.len() < SEQ_KEEP {
                p.seqs.push(v);
            }
        });
        return;
    }
    drop(v);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RAII guard: run a closure with pooling forced to a given state,
    /// restoring the previous state after.
    fn with_pooling<R>(on: bool, f: impl FnOnce() -> R) -> R {
        let before = pooling();
        set_pooling(on);
        let r = f();
        set_pooling(before);
        r
    }

    #[test]
    fn envelope_round_trip_preserves_value() {
        for on in [false, true] {
            with_pooling(on, || {
                let p = payload(SysMsg::QdPoll { wave: 42 });
                let bx = p.downcast::<SysMsg>().unwrap();
                match reclaim(bx) {
                    SysMsg::QdPoll { wave } => assert_eq!(wave, 42),
                    _ => panic!("wrong message came back"),
                }
            });
        }
    }

    #[cfg(feature = "msgpool")]
    #[test]
    fn recycled_envelope_allocation_is_reused() {
        with_pooling(true, || {
            let before = stats();
            let p = payload(SysMsg::WorkNack);
            let _ = reclaim(p.downcast::<SysMsg>().unwrap());
            let p2 = payload(SysMsg::QdPoll { wave: 1 });
            let after = stats();
            assert!(
                after.recycled > before.recycled,
                "second allocation must come from the free list"
            );
            let _ = reclaim(p2.downcast::<SysMsg>().unwrap());
        });
    }

    #[test]
    fn batch_classes_round_trip() {
        for on in [false, true] {
            with_pooling(on, || {
                let mut v = batch(4);
                v.push(SysMsg::WorkNack);
                v.clear();
                recycle_batch(v);
                let v2 = batch(100);
                assert!(v2.is_empty());
                recycle_batch(v2);
            });
        }
    }

    #[test]
    fn seq_vec_round_trip() {
        for on in [false, true] {
            with_pooling(on, || {
                let mut v = seq_vec();
                v.extend([1u64, 2, 3]);
                recycle_seq_vec(v);
                let v2 = seq_vec();
                assert!(v2.is_empty(), "recycled seq buffers come back empty");
                recycle_seq_vec(v2);
            });
        }
    }

    #[test]
    fn size_classes_partition_capacities() {
        assert_eq!(batch_class(0), 0);
        assert_eq!(batch_class(8), 0);
        assert_eq!(batch_class(9), 1);
        assert_eq!(batch_class(32), 1);
        assert_eq!(batch_class(128), 2);
        assert_eq!(batch_class(129), 3);
        assert_eq!(batch_class(usize::MAX), 3);
    }
}
