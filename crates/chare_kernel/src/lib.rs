//! # chare_kernel — a message-driven object-parallel runtime
//!
//! This crate reproduces the system of the SC '91 paper *"Object oriented
//! parallel programming: experiments and results"*: the **Chare Kernel**,
//! the machine-independent runtime that became Charm/Charm++. A program
//! is a dynamic collection of **chares** — small concurrent objects
//! created from seed messages and driven entirely by messages to their
//! entry points — plus:
//!
//! * **branch-office chares** ([`boc`]) — objects replicated with one
//!   branch per PE, for distributed services and grid computations;
//! * **specifically shared variables** ([`shared`]) — read-only,
//!   write-once, accumulator and monotonic variables and distributed
//!   tables: disciplined sharing the runtime implements with messages on
//!   nonshared-memory machines;
//! * **dynamic load balancing** ([`balance`]) — seeds (unborn chares) are
//!   the unit of balancing; strategies range from random placement to
//!   ACWN (adaptive contracting within neighborhood);
//! * **prioritized queueing** ([`queueing`]) — FIFO, LIFO, integer and
//!   bitvector priorities; the key to efficient speculative search;
//! * **quiescence detection** ([`quiescence`]) — a four-counter wave
//!   algorithm detecting global termination of message-driven work.
//!
//! The kernel runs unmodified on the two machine backends of the
//! [`multicomputer`] crate: a deterministic discrete-event simulated
//! multicomputer (NCUBE/iPSC-like, up to hundreds of PEs) and a real
//! thread-parallel backend (Sequent-like).
//!
//! ## A complete program
//!
//! ```
//! use chare_kernel::prelude::*;
//!
//! // A chare that doubles a number and exits with it.
//! struct Doubler;
//! impl ChareInit for Doubler {
//!     type Seed = u64;
//!     fn create(seed: u64, ctx: &mut Ctx) -> Self {
//!         ctx.exit(seed * 2);
//!         Doubler
//!     }
//! }
//! impl Chare for Doubler {
//!     fn entry(&mut self, _ep: EpId, _msg: MsgBody, _ctx: &mut Ctx) {}
//! }
//!
//! let mut b = ProgramBuilder::new();
//! let kind = b.chare::<Doubler>();
//! b.main(kind, 21u64);
//! let mut report = b.build().run_sim_preset(4, MachinePreset::NcubeLike);
//! assert_eq!(report.take_result::<u64>(), Some(42));
//! ```

pub mod balance;
pub mod bcast;
pub mod boc;
pub mod chare;
pub mod ctx;
pub mod envelope;
pub mod ids;
pub mod metrics;
pub mod msg;
pub mod node;
pub mod pool;
pub mod priority;
pub mod proc;
pub mod program;
pub mod queueing;
pub mod quiescence;
pub mod registry;
pub mod reliable;
pub mod shared;
pub mod stats;
pub mod trace;
pub mod wire;

pub use balance::BalanceStrategy;
pub use bcast::BroadcastMode;
pub use boc::{Branch, BranchInit};
pub use chare::{cast, Chare, ChareInit};
pub use ctx::Ctx;
pub use envelope::MsgBody;
pub use ids::{Boc, BocId, ChareId, ChareKind, EpId, Kind, Notify, WoId};
pub use metrics::{Histogram, MetricsConfig, MetricsLog, PeMetricSet, Slice};
pub use msg::Message;
pub use priority::{BitPrio, Priority};
pub use proc::{maybe_worker, LossConfig, ProcAbortReason, ProcConfig, ProcDetail, ProcTransport};
pub use program::{CkReport, Program, ProgramBuilder};
pub use queueing::QueueingStrategy;
pub use reliable::{ReliableConfig, ReliableConfigError};
pub use shared::{
    Acc, AccResult, Accum, MaxF64, MinBoundU64, MinU64, Mono, MonoVar, QuiescenceMsg, ReadOnly,
    SumF64, SumU64, TableAck, TableGot, TableRef, WoReady,
};
pub use trace::{EntryWhat, EventKind, MsgClass, TraceConfig, TraceEvent, TraceLog};
pub use wire::{Wire, WireReader};

/// Everything a kernel program normally needs.
pub mod prelude {
    pub use crate::balance::BalanceStrategy;
    pub use crate::bcast::BroadcastMode;
    pub use crate::boc::{Branch, BranchInit};
    pub use crate::chare::{cast, Chare, ChareInit};
    pub use crate::ctx::Ctx;
    pub use crate::envelope::MsgBody;
    pub use crate::ids::{Boc, BocId, ChareId, ChareKind, EpId, Kind, Notify, WoId};
    pub use crate::message;
    pub use crate::msg::Message;
    pub use crate::priority::{BitPrio, Priority};
    pub use crate::proc::{
        maybe_worker, LossConfig, ProcAbortReason, ProcConfig, ProcDetail, ProcTransport,
    };
    pub use crate::program::{CkReport, Program, ProgramBuilder};
    pub use crate::queueing::QueueingStrategy;
    pub use crate::reliable::{ReliableConfig, ReliableConfigError};
    pub use crate::shared::{
        Acc, AccResult, Accum, MaxF64, MinBoundU64, MinU64, Mono, MonoVar, QuiescenceMsg,
        ReadOnly, SumF64, SumU64, TableAck, TableGot, TableRef, WoReady,
    };
    pub use crate::metrics::{MetricsConfig, MetricsLog};
    pub use crate::trace::{EventKind, TraceConfig, TraceLog};
    pub use crate::wire::{Wire, WireReader};
    pub use crate::wire_struct;
    pub use multicomputer::{Cost, FaultPlan, MachinePreset, Pe, SimConfig, Topology};
    #[cfg(feature = "threads")]
    pub use multicomputer::ThreadConfig;
}
