//! Pluggable per-PE scheduling queues.
//!
//! The kernel's scheduler repeatedly picks the next message to execute
//! from a queue whose *strategy* is chosen per program. The paper's
//! experiments compare four strategies and show that for speculative
//! search the choice changes the amount of work performed by orders of
//! magnitude — LIFO approximates sequential depth-first search, FIFO
//! floods memory breadth-first, and priority queues steer all PEs toward
//! the globally most promising work.
//!
//! Ties (equal priority) are always broken FIFO using a push sequence
//! number, making every strategy a total, deterministic order — a
//! prerequisite for the simulator's reproducibility.

use crate::priority::{BitPrio, Priority};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Which queue discipline the scheduler uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueingStrategy {
    /// First in, first out (the kernel's default).
    Fifo,
    /// Last in, first out — approximates depth-first traversal.
    Lifo,
    /// Integer priorities, smaller = more urgent; FIFO among equals.
    IntPriority,
    /// Bitvector priorities, lexicographically smaller = more urgent;
    /// FIFO among equals.
    BitvecPriority,
}

impl QueueingStrategy {
    /// Build an empty queue with this discipline.
    pub fn make<T: Send + 'static>(self) -> Box<dyn SchedQueue<T>> {
        match self {
            QueueingStrategy::Fifo => Box::new(FifoQueue::default()),
            QueueingStrategy::Lifo => Box::new(LifoQueue::default()),
            QueueingStrategy::IntPriority => Box::new(IntPrioQueue::default()),
            QueueingStrategy::BitvecPriority => Box::new(BitPrioQueue::default()),
        }
    }

    /// All strategies, for sweep experiments.
    pub const ALL: [QueueingStrategy; 4] = [
        QueueingStrategy::Fifo,
        QueueingStrategy::Lifo,
        QueueingStrategy::IntPriority,
        QueueingStrategy::BitvecPriority,
    ];

    /// Short stable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            QueueingStrategy::Fifo => "fifo",
            QueueingStrategy::Lifo => "lifo",
            QueueingStrategy::IntPriority => "int-prio",
            QueueingStrategy::BitvecPriority => "bitvec-prio",
        }
    }
}

/// A scheduler queue: items enter with a [`Priority`], leave in strategy
/// order.
pub trait SchedQueue<T>: Send {
    /// Enqueue `item` with `prio`.
    fn push(&mut self, prio: Priority, item: T);
    /// Remove and return the next item in strategy order.
    fn pop(&mut self) -> Option<T>;
    /// Number of queued items.
    fn len(&self) -> usize;
    /// True when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FIFO queue; ignores priorities.
pub struct FifoQueue<T> {
    items: VecDeque<T>,
}

impl<T> Default for FifoQueue<T> {
    fn default() -> Self {
        FifoQueue {
            items: VecDeque::new(),
        }
    }
}

impl<T: Send> SchedQueue<T> for FifoQueue<T> {
    fn push(&mut self, _prio: Priority, item: T) {
        self.items.push_back(item);
    }
    fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }
    fn len(&self) -> usize {
        self.items.len()
    }
}

/// LIFO stack; ignores priorities.
pub struct LifoQueue<T> {
    items: Vec<T>,
}

impl<T> Default for LifoQueue<T> {
    fn default() -> Self {
        LifoQueue { items: Vec::new() }
    }
}

impl<T: Send> SchedQueue<T> for LifoQueue<T> {
    fn push(&mut self, _prio: Priority, item: T) {
        self.items.push(item);
    }
    fn pop(&mut self) -> Option<T> {
        self.items.pop()
    }
    fn len(&self) -> usize {
        self.items.len()
    }
}

struct IntEntry<T> {
    key: i64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for IntEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<T> Eq for IntEntry<T> {}
impl<T> PartialOrd for IntEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for IntEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest (key, seq) out
        // first, so reverse.
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

/// Integer-priority queue: smaller key pops first, FIFO among equals.
pub struct IntPrioQueue<T> {
    heap: BinaryHeap<IntEntry<T>>,
    seq: u64,
}

impl<T> Default for IntPrioQueue<T> {
    fn default() -> Self {
        IntPrioQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T: Send> SchedQueue<T> for IntPrioQueue<T> {
    fn push(&mut self, prio: Priority, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(IntEntry {
            key: prio.int_key(),
            seq,
            item,
        });
    }
    fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|e| e.item)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

struct BitEntry<T> {
    key: BitPrio,
    seq: u64,
    item: T,
}

impl<T> PartialEq for BitEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<T> Eq for BitEntry<T> {}
impl<T> PartialOrd for BitEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for BitEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Smallest (key, seq) pops first.
        match other.key.cmp(&self.key) {
            Ordering::Equal => other.seq.cmp(&self.seq),
            ord => ord,
        }
    }
}

/// Bitvector-priority queue: lexicographically smallest key pops first,
/// FIFO among equals.
pub struct BitPrioQueue<T> {
    heap: BinaryHeap<BitEntry<T>>,
    seq: u64,
}

impl<T> Default for BitPrioQueue<T> {
    fn default() -> Self {
        BitPrioQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T: Send> SchedQueue<T> for BitPrioQueue<T> {
    fn push(&mut self, prio: Priority, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(BitEntry {
            key: prio.bit_key(),
            seq,
            item,
        });
    }
    fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|e| e.item)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(q: &mut dyn SchedQueue<T>) -> Vec<T> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn fifo_order() {
        let mut q = QueueingStrategy::Fifo.make::<u32>();
        for (p, v) in [(5, 1u32), (1, 2), (3, 3)] {
            q.push(Priority::Int(p), v);
        }
        assert_eq!(drain(q.as_mut()), vec![1, 2, 3]);
    }

    #[test]
    fn lifo_order() {
        let mut q = QueueingStrategy::Lifo.make::<u32>();
        for v in [1u32, 2, 3] {
            q.push(Priority::None, v);
        }
        assert_eq!(drain(q.as_mut()), vec![3, 2, 1]);
    }

    #[test]
    fn int_priority_order_with_fifo_ties() {
        let mut q = QueueingStrategy::IntPriority.make::<&'static str>();
        q.push(Priority::Int(5), "late");
        q.push(Priority::Int(1), "first");
        q.push(Priority::Int(5), "later");
        q.push(Priority::Int(-3), "urgent");
        assert_eq!(drain(q.as_mut()), vec!["urgent", "first", "late", "later"]);
    }

    #[test]
    fn int_priority_none_is_zero() {
        let mut q = QueueingStrategy::IntPriority.make::<u32>();
        q.push(Priority::None, 0);
        q.push(Priority::Int(-1), 1);
        q.push(Priority::Int(1), 2);
        assert_eq!(drain(q.as_mut()), vec![1, 0, 2]);
    }

    #[test]
    fn bitvec_priority_dfs_order() {
        use crate::priority::BitPrio;
        let root = BitPrio::root();
        let mut q = QueueingStrategy::BitvecPriority.make::<&'static str>();
        q.push(Priority::Bits(root.child(1, 2)), "right");
        q.push(Priority::Bits(root.child(0, 2).child(1, 2)), "left-right");
        q.push(Priority::Bits(root.child(0, 2).child(0, 2)), "left-left");
        assert_eq!(
            drain(q.as_mut()),
            vec!["left-left", "left-right", "right"]
        );
    }

    #[test]
    fn bitvec_fifo_among_equal_keys() {
        let mut q = QueueingStrategy::BitvecPriority.make::<u32>();
        for v in 0..10 {
            q.push(Priority::None, v);
        }
        assert_eq!(drain(q.as_mut()), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_tracks_push_pop() {
        for strat in QueueingStrategy::ALL {
            let mut q = strat.make::<u32>();
            assert!(q.is_empty());
            q.push(Priority::None, 1);
            q.push(Priority::Int(2), 2);
            assert_eq!(q.len(), 2, "{strat:?}");
            q.pop();
            assert_eq!(q.len(), 1, "{strat:?}");
            q.pop();
            assert!(q.is_empty(), "{strat:?}");
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn strategy_names_unique() {
        let names: std::collections::HashSet<_> =
            QueueingStrategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn every_strategy_preserves_items() {
        for strat in QueueingStrategy::ALL {
            let mut q = strat.make::<u32>();
            for v in 0..100u32 {
                q.push(Priority::Int((v % 7) as i64), v);
            }
            let mut out = drain(q.as_mut());
            out.sort_unstable();
            assert_eq!(out, (0..100).collect::<Vec<_>>(), "{strat:?}");
        }
    }
}
