//! Pluggable per-PE scheduling queues.
//!
//! The kernel's scheduler repeatedly picks the next message to execute
//! from a queue whose *strategy* is chosen per program. The paper's
//! experiments compare four strategies and show that for speculative
//! search the choice changes the amount of work performed by orders of
//! magnitude — LIFO approximates sequential depth-first search, FIFO
//! floods memory breadth-first, and priority queues steer all PEs toward
//! the globally most promising work.
//!
//! Ties (equal priority) are always broken FIFO using a push sequence
//! number, making every strategy a total, deterministic order — a
//! prerequisite for the simulator's reproducibility.
//!
//! Like the C kernel — whose scheduler kept constant-time bucketed
//! queues because a `log n` heap operation per message *is* measurable
//! kernel overhead — the two priority disciplines here front a bucket
//! array with an occupancy bitmap: [`IntPrioQueue`] buckets a window of
//! integer keys (O(1) push/pop, intrusive FIFO per bucket),
//! [`BitPrioQueue`] radix-buckets bitvector keys on their first byte.
//! The original single-`BinaryHeap` implementations survive as
//! [`HeapIntPrioQueue`] / [`HeapBitPrioQueue`]: they are the reference
//! order the property tests check the bucketed queues against,
//! pop-for-pop.

use crate::priority::{BitPrio, Priority};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Which queue discipline the scheduler uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueingStrategy {
    /// First in, first out (the kernel's default).
    Fifo,
    /// Last in, first out — approximates depth-first traversal.
    Lifo,
    /// Integer priorities, smaller = more urgent; FIFO among equals.
    IntPriority,
    /// Bitvector priorities, lexicographically smaller = more urgent;
    /// FIFO among equals.
    BitvecPriority,
}

impl QueueingStrategy {
    /// Build an empty queue with this discipline.
    pub fn make<T: Send + 'static>(self) -> Box<dyn SchedQueue<T>> {
        match self {
            QueueingStrategy::Fifo => Box::new(FifoQueue::default()),
            QueueingStrategy::Lifo => Box::new(LifoQueue::default()),
            QueueingStrategy::IntPriority => Box::new(IntPrioQueue::default()),
            QueueingStrategy::BitvecPriority => Box::new(BitPrioQueue::default()),
        }
    }

    /// All strategies, for sweep experiments.
    pub const ALL: [QueueingStrategy; 4] = [
        QueueingStrategy::Fifo,
        QueueingStrategy::Lifo,
        QueueingStrategy::IntPriority,
        QueueingStrategy::BitvecPriority,
    ];

    /// Short stable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            QueueingStrategy::Fifo => "fifo",
            QueueingStrategy::Lifo => "lifo",
            QueueingStrategy::IntPriority => "int-prio",
            QueueingStrategy::BitvecPriority => "bitvec-prio",
        }
    }
}

/// A scheduler queue: items enter with a [`Priority`], leave in strategy
/// order.
pub trait SchedQueue<T>: Send {
    /// Enqueue `item` with `prio`.
    fn push(&mut self, prio: Priority, item: T);
    /// Remove and return the next item in strategy order.
    fn pop(&mut self) -> Option<T>;
    /// Number of queued items.
    fn len(&self) -> usize;
    /// True when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FIFO queue; ignores priorities.
pub struct FifoQueue<T> {
    items: VecDeque<T>,
}

impl<T> Default for FifoQueue<T> {
    fn default() -> Self {
        FifoQueue {
            items: VecDeque::new(),
        }
    }
}

impl<T: Send> SchedQueue<T> for FifoQueue<T> {
    fn push(&mut self, _prio: Priority, item: T) {
        self.items.push_back(item);
    }
    fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }
    fn len(&self) -> usize {
        self.items.len()
    }
}

/// LIFO stack; ignores priorities.
pub struct LifoQueue<T> {
    items: Vec<T>,
}

impl<T> Default for LifoQueue<T> {
    fn default() -> Self {
        LifoQueue { items: Vec::new() }
    }
}

impl<T: Send> SchedQueue<T> for LifoQueue<T> {
    fn push(&mut self, _prio: Priority, item: T) {
        self.items.push(item);
    }
    fn pop(&mut self) -> Option<T> {
        self.items.pop()
    }
    fn len(&self) -> usize {
        self.items.len()
    }
}

struct IntEntry<T> {
    key: i64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for IntEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}
impl<T> Eq for IntEntry<T> {}
impl<T> PartialOrd for IntEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for IntEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest (key, seq) out
        // first, so reverse.
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

/// Reference integer-priority queue: a single binary heap, `O(log n)`
/// per operation. Kept as the specification the bucketed
/// [`IntPrioQueue`] is property-tested against.
pub struct HeapIntPrioQueue<T> {
    heap: BinaryHeap<IntEntry<T>>,
    seq: u64,
}

impl<T> Default for HeapIntPrioQueue<T> {
    fn default() -> Self {
        HeapIntPrioQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T: Send> SchedQueue<T> for HeapIntPrioQueue<T> {
    fn push(&mut self, prio: Priority, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(IntEntry {
            key: prio.int_key(),
            seq,
            item,
        });
    }
    fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|e| e.item)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Width of the integer queue's bucketed key window.
const INT_WINDOW: usize = 1024;
/// How far below the first key the window starts. Search keys (IDA*
/// bounds, branch-and-bound costs) mostly grow, so most of the window
/// sits above the first key.
const INT_HEADROOM: i128 = 128;

/// Integer-priority queue: smaller key pops first, FIFO among equals.
///
/// Bucketed bitmap design: a window of [`INT_WINDOW`] consecutive keys,
/// anchored near the first key pushed, maps each key to a FIFO bucket;
/// a bitmap word per 64 buckets finds the lowest occupied bucket in a
/// few `trailing_zeros`. Push and pop are O(1) for in-window keys —
/// the key ranges the paper's search applications actually generate —
/// and out-of-window keys spill to a reference heap. Both structures
/// pop the globally smallest `(key, seq)`: a key is in exactly one of
/// them (window membership is a function of the key), so comparing the
/// best of each side is a total, deterministic order identical to
/// [`HeapIntPrioQueue`]'s.
///
/// Window arithmetic is done in `i128` so keys near `i64::MIN`/`MAX`
/// cannot overflow.
pub struct IntPrioQueue<T> {
    /// Key of bucket 0, fixed when the first key arrives.
    base: Option<i128>,
    /// FIFO per in-window key; allocated lazily, `INT_WINDOW` long.
    buckets: Vec<VecDeque<T>>,
    /// Occupancy bit per bucket.
    bitmap: [u64; INT_WINDOW / 64],
    /// Out-of-window spill, still ordered by `(key, seq)`.
    overflow: BinaryHeap<IntEntry<T>>,
    /// Push sequence shared by both sides (FIFO among equals).
    seq: u64,
    len: usize,
}

impl<T> Default for IntPrioQueue<T> {
    fn default() -> Self {
        IntPrioQueue {
            base: None,
            buckets: Vec::new(),
            bitmap: [0; INT_WINDOW / 64],
            overflow: BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }
}

impl<T> IntPrioQueue<T> {
    /// Index of the lowest occupied bucket, if any.
    fn min_bucket(&self) -> Option<usize> {
        self.bitmap
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i * 64 + w.trailing_zeros() as usize)
    }
}

impl<T: Send> SchedQueue<T> for IntPrioQueue<T> {
    fn push(&mut self, prio: Priority, item: T) {
        let key = prio.int_key() as i128;
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let base = *self.base.get_or_insert_with(|| {
            debug_assert!(self.buckets.is_empty());
            key - INT_HEADROOM
        });
        let idx = key - base;
        if (0..INT_WINDOW as i128).contains(&idx) {
            let idx = idx as usize;
            if self.buckets.is_empty() {
                self.buckets.resize_with(INT_WINDOW, VecDeque::new);
            }
            self.buckets[idx].push_back(item);
            self.bitmap[idx / 64] |= 1 << (idx % 64);
        } else {
            self.overflow.push(IntEntry {
                key: key as i64,
                seq,
                item,
            });
        }
    }

    fn pop(&mut self) -> Option<T> {
        let bucket = self.min_bucket();
        // A key lives on exactly one side, so when both sides are
        // occupied the smaller key wins outright (never a tie).
        let from_bucket = match (bucket, self.overflow.peek()) {
            (Some(b), Some(top)) => {
                self.base.expect("bucket occupied implies base") + (b as i128) < top.key as i128
            }
            (Some(_), None) => true,
            (None, _) => false,
        };
        let popped = if from_bucket {
            let b = bucket.expect("checked above");
            let item = self.buckets[b].pop_front();
            if self.buckets[b].is_empty() {
                self.bitmap[b / 64] &= !(1 << (b % 64));
            }
            item
        } else {
            self.overflow.pop().map(|e| e.item)
        };
        if popped.is_some() {
            self.len -= 1;
        }
        popped
    }

    fn len(&self) -> usize {
        self.len
    }
}

struct BitEntry<T> {
    key: BitPrio,
    seq: u64,
    item: T,
}

impl<T> PartialEq for BitEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<T> Eq for BitEntry<T> {}
impl<T> PartialOrd for BitEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for BitEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Smallest (key, seq) pops first.
        match other.key.cmp(&self.key) {
            Ordering::Equal => other.seq.cmp(&self.seq),
            ord => ord,
        }
    }
}

/// Reference bitvector-priority queue: a single binary heap comparing
/// whole keys. Kept as the specification the radix-bucketed
/// [`BitPrioQueue`] is property-tested against.
pub struct HeapBitPrioQueue<T> {
    heap: BinaryHeap<BitEntry<T>>,
    seq: u64,
}

impl<T> Default for HeapBitPrioQueue<T> {
    fn default() -> Self {
        HeapBitPrioQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<T: Send> SchedQueue<T> for HeapBitPrioQueue<T> {
    fn push(&mut self, prio: Priority, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(BitEntry {
            key: prio.bit_key(),
            seq,
            item,
        });
    }
    fn pop(&mut self) -> Option<T> {
        self.heap.pop().map(|e| e.item)
    }
    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Bitvector-priority queue: lexicographically smallest key pops first,
/// FIFO among equals.
///
/// Radix-bucketed front: keys are spread over 256 buckets by their
/// first byte ([`BitPrio::radix_byte`]), with an occupancy bitmap to
/// find the lowest nonempty bucket in at most four `trailing_zeros`.
/// Sound because priorities that compare equal always share their first
/// byte and a strictly greater first byte is a strictly greater key —
/// so cross-bucket order needs no key comparison at all, and the
/// expensive byte-vector comparisons are confined to the (much
/// smaller) per-bucket heaps. The push sequence is global, so FIFO
/// among equals and overall pop order match [`HeapBitPrioQueue`]
/// exactly.
pub struct BitPrioQueue<T> {
    /// Per-radix heaps; allocated lazily, 256 long.
    buckets: Vec<BinaryHeap<BitEntry<T>>>,
    /// Occupancy bit per bucket.
    bitmap: [u64; 4],
    seq: u64,
    len: usize,
}

impl<T> Default for BitPrioQueue<T> {
    fn default() -> Self {
        BitPrioQueue {
            buckets: Vec::new(),
            bitmap: [0; 4],
            seq: 0,
            len: 0,
        }
    }
}

impl<T: Send> SchedQueue<T> for BitPrioQueue<T> {
    fn push(&mut self, prio: Priority, item: T) {
        let key = prio.bit_key();
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        if self.buckets.is_empty() {
            self.buckets.resize_with(256, BinaryHeap::new);
        }
        let b = key.radix_byte() as usize;
        self.buckets[b].push(BitEntry { key, seq, item });
        self.bitmap[b / 64] |= 1 << (b % 64);
    }

    fn pop(&mut self) -> Option<T> {
        let b = self
            .bitmap
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i * 64 + w.trailing_zeros() as usize)?;
        let item = self.buckets[b].pop().map(|e| e.item);
        if self.buckets[b].is_empty() {
            self.bitmap[b / 64] &= !(1 << (b % 64));
        }
        if item.is_some() {
            self.len -= 1;
        }
        item
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(q: &mut dyn SchedQueue<T>) -> Vec<T> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn fifo_order() {
        let mut q = QueueingStrategy::Fifo.make::<u32>();
        for (p, v) in [(5, 1u32), (1, 2), (3, 3)] {
            q.push(Priority::Int(p), v);
        }
        assert_eq!(drain(q.as_mut()), vec![1, 2, 3]);
    }

    #[test]
    fn lifo_order() {
        let mut q = QueueingStrategy::Lifo.make::<u32>();
        for v in [1u32, 2, 3] {
            q.push(Priority::None, v);
        }
        assert_eq!(drain(q.as_mut()), vec![3, 2, 1]);
    }

    #[test]
    fn int_priority_order_with_fifo_ties() {
        let mut q = QueueingStrategy::IntPriority.make::<&'static str>();
        q.push(Priority::Int(5), "late");
        q.push(Priority::Int(1), "first");
        q.push(Priority::Int(5), "later");
        q.push(Priority::Int(-3), "urgent");
        assert_eq!(drain(q.as_mut()), vec!["urgent", "first", "late", "later"]);
    }

    #[test]
    fn int_priority_none_is_zero() {
        let mut q = QueueingStrategy::IntPriority.make::<u32>();
        q.push(Priority::None, 0);
        q.push(Priority::Int(-1), 1);
        q.push(Priority::Int(1), 2);
        assert_eq!(drain(q.as_mut()), vec![1, 0, 2]);
    }

    #[test]
    fn bitvec_priority_dfs_order() {
        use crate::priority::BitPrio;
        let root = BitPrio::root();
        let mut q = QueueingStrategy::BitvecPriority.make::<&'static str>();
        q.push(Priority::Bits(root.child(1, 2)), "right");
        q.push(Priority::Bits(root.child(0, 2).child(1, 2)), "left-right");
        q.push(Priority::Bits(root.child(0, 2).child(0, 2)), "left-left");
        assert_eq!(
            drain(q.as_mut()),
            vec!["left-left", "left-right", "right"]
        );
    }

    #[test]
    fn bitvec_fifo_among_equal_keys() {
        let mut q = QueueingStrategy::BitvecPriority.make::<u32>();
        for v in 0..10 {
            q.push(Priority::None, v);
        }
        assert_eq!(drain(q.as_mut()), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn len_tracks_push_pop() {
        for strat in QueueingStrategy::ALL {
            let mut q = strat.make::<u32>();
            assert!(q.is_empty());
            q.push(Priority::None, 1);
            q.push(Priority::Int(2), 2);
            assert_eq!(q.len(), 2, "{strat:?}");
            q.pop();
            assert_eq!(q.len(), 1, "{strat:?}");
            q.pop();
            assert!(q.is_empty(), "{strat:?}");
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn int_bucket_overflow_spill_keeps_order() {
        // Keys far outside the window (anchored near the first push)
        // must spill to the overflow heap and still pop in key order.
        let mut q = IntPrioQueue::<u32>::default();
        q.push(Priority::Int(0), 10); // anchors the window near 0
        q.push(Priority::Int(1_000_000), 40);
        q.push(Priority::Int(-1_000_000), 0);
        q.push(Priority::Int(5), 20);
        q.push(Priority::Int(2_000), 30);
        assert_eq!(drain(&mut q), vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn int_bucket_extreme_keys_do_not_overflow_arithmetic() {
        let mut q = IntPrioQueue::<u32>::default();
        q.push(Priority::Int(i64::MAX), 3);
        q.push(Priority::Int(i64::MIN), 1);
        q.push(Priority::Int(0), 2);
        q.push(Priority::Int(i64::MAX - 10), 3);
        assert_eq!(drain(&mut q), vec![1, 2, 3, 3]);
    }

    #[test]
    fn int_bucket_fifo_among_equals_across_sides() {
        let mut q = IntPrioQueue::<u32>::default();
        for v in 0..6 {
            q.push(Priority::Int(7), v); // same in-window key
        }
        for v in 6..9 {
            q.push(Priority::Int(99_999), v); // same overflow key
        }
        assert_eq!(drain(&mut q), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn bitvec_radix_crosses_byte_boundaries() {
        use crate::priority::BitPrio;
        let root = BitPrio::root();
        // Keys whose first bytes differ (radix buckets) interleaved with
        // keys that share byte 0 and differ later.
        let a = root.child(0, 8).child(5, 8); // 0x00 0x05
        let b = root.child(0, 8).child(9, 8); // 0x00 0x09
        let c = root.child(1, 8); // 0x01
        let d = root.child(200, 8); // 0xC8
        let mut q = BitPrioQueue::<&str>::default();
        q.push(Priority::Bits(d.clone()), "d");
        q.push(Priority::Bits(b.clone()), "b");
        q.push(Priority::Bits(root.clone()), "root");
        q.push(Priority::Bits(c.clone()), "c");
        q.push(Priority::Bits(a.clone()), "a");
        assert_eq!(drain(&mut q), vec!["root", "a", "b", "c", "d"]);
    }

    /// The pop sequence of a bucketed queue must match its reference
    /// heap exactly under an arbitrary interleaving of pushes and pops.
    fn check_equivalence(
        mut fast: Box<dyn SchedQueue<u32>>,
        mut reference: Box<dyn SchedQueue<u32>>,
        prios: impl Fn(u32) -> Priority,
    ) {
        let mut v = 0u32;
        // Deterministic but irregular schedule: bursts of pushes
        // separated by partial drains.
        for round in 0..50u32 {
            for k in 0..(round % 7 + 1) {
                let p = prios(round.wrapping_mul(31).wrapping_add(k));
                fast.push(p.clone(), v);
                reference.push(p, v);
                v += 1;
            }
            for _ in 0..(round % 5) {
                assert_eq!(fast.pop(), reference.pop(), "round {round}");
                assert_eq!(fast.len(), reference.len());
            }
        }
        loop {
            let (a, b) = (fast.pop(), reference.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn int_bucket_matches_reference_heap() {
        check_equivalence(
            Box::new(IntPrioQueue::default()),
            Box::new(HeapIntPrioQueue::default()),
            |x| Priority::Int((x % 23) as i64 * 1_000 - 4_000),
        );
    }

    #[test]
    fn bitvec_radix_matches_reference_heap() {
        use crate::priority::BitPrio;
        check_equivalence(
            Box::new(BitPrioQueue::default()),
            Box::new(HeapBitPrioQueue::default()),
            |x| {
                let mut p = BitPrio::root();
                for i in 0..(x % 4) {
                    p = p.child((x >> (i * 3)) & 7, 3);
                }
                Priority::Bits(p)
            },
        );
    }

    #[test]
    fn strategy_names_unique() {
        let names: std::collections::HashSet<_> =
            QueueingStrategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn every_strategy_preserves_items() {
        for strat in QueueingStrategy::ALL {
            let mut q = strat.make::<u32>();
            for v in 0..100u32 {
                q.push(Priority::Int((v % 7) as i64), v);
            }
            let mut out = drain(q.as_mut());
            out.sort_unstable();
            assert_eq!(out, (0..100).collect::<Vec<_>>(), "{strat:?}");
        }
    }
}
