//! Kernel-level execution tracing — the event log behind the
//! Projections-style post-mortem views.
//!
//! The machine layer's [`multicomputer::TraceSpan`] records *when* each
//! scheduling step ran; this module records *what* the kernel did inside
//! and between those steps: entry-method begin/end, every message send
//! and receive with its class and size, seed load-balancing decisions,
//! reliable-layer retransmissions and queue-length samples. The two
//! streams share timestamps, so a post-mortem analyzer (the `ck_trace`
//! crate) joins them into per-entry time breakdowns, grain-size
//! histograms, PE×PE communication matrices and Chrome/Perfetto
//! timelines.
//!
//! ## Cost discipline
//!
//! Recording is strictly passive: it never sends messages, never charges
//! simulated time, and never perturbs the scheduler. A run with tracing
//! enabled is therefore byte-identical (same simulated end time, event
//! count, packets, bytes, counters and program result) to the same run
//! with tracing off — asserted by `ck_apps/tests/trace_invariants.rs`.
//! When tracing is *not configured* the recording path is a single
//! `Option` test per site, and the whole path can additionally be
//! compiled out by building `chare_kernel` with
//! `--no-default-features --features threads` (dropping the default
//! `trace` feature), leaving zero code behind.
//!
//! Events land in fixed-capacity per-PE ring buffers (oldest events are
//! overwritten, with a drop counter), so tracing a long run costs
//! bounded memory.

use std::sync::{Arc, Mutex};

use multicomputer::Pe;

use crate::envelope::SysMsg;
use crate::ids::{BocId, ChareKind, EpId};

/// Tracing knobs, handed to [`ProgramBuilder::tracing`](crate::program::ProgramBuilder::tracing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum events retained per PE; older events are overwritten
    /// (counted in [`TraceLog::dropped`]).
    pub capacity: usize,
    /// Record [`EventKind::QueueSample`] events when a PE's runnable
    /// backlog changes between scheduling steps.
    pub queue_samples: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 1 << 20,
            queue_samples: true,
        }
    }
}

impl TraceConfig {
    /// A config with `capacity` events retained per PE.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig {
            capacity: capacity.max(1),
            ..TraceConfig::default()
        }
    }
}

/// Broad class of a kernel wire message, for overhead attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// A new-chare seed (still subject to load balancing, or placed).
    Seed,
    /// A message to an existing chare's entry point.
    Chare,
    /// A message to a branch-office chare's branch.
    Branch,
    /// A spanning-tree broadcast in flight.
    Broadcast,
    /// Specifically-shared-variable traffic (accumulators, monotonics,
    /// tables, write-once replication).
    Shared,
    /// Quiescence-detection waves.
    Qd,
    /// Load-balancing control (load reports, work-request tokens).
    Balance,
    /// Reliable-transport framing (frames and acks).
    Transport,
    /// Message-combining batch wrapper.
    Batch,
}

impl MsgClass {
    /// Classify a kernel envelope.
    pub fn of(sys: &SysMsg) -> MsgClass {
        match sys {
            SysMsg::NewChare { .. } => MsgClass::Seed,
            SysMsg::ChareMsg { .. } => MsgClass::Chare,
            SysMsg::BranchMsg { .. } => MsgClass::Branch,
            SysMsg::TreeCast { .. } => MsgClass::Broadcast,
            SysMsg::AccCollect { .. }
            | SysMsg::AccPart { .. }
            | SysMsg::MonoUpdate { .. }
            | SysMsg::TablePut { .. }
            | SysMsg::TableGet { .. }
            | SysMsg::TableDelete { .. }
            | SysMsg::WoStore { .. }
            | SysMsg::WoAck { .. } => MsgClass::Shared,
            SysMsg::QdStart { .. } | SysMsg::QdPoll { .. } | SysMsg::QdCount { .. } => MsgClass::Qd,
            SysMsg::LoadStatus { .. } | SysMsg::WorkReq { .. } | SysMsg::WorkNack => {
                MsgClass::Balance
            }
            SysMsg::RelData { .. } | SysMsg::RelAck { .. } => MsgClass::Transport,
            SysMsg::Batch(_) => MsgClass::Batch,
        }
    }

    /// Short stable label (used in exported traces).
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Seed => "seed",
            MsgClass::Chare => "chare",
            MsgClass::Branch => "branch",
            MsgClass::Broadcast => "broadcast",
            MsgClass::Shared => "shared",
            MsgClass::Qd => "qd",
            MsgClass::Balance => "balance",
            MsgClass::Transport => "transport",
            MsgClass::Batch => "batch",
        }
    }
}

/// What kind of object an entry execution ran on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EntryWhat {
    /// A chare constructor (from a seed of the given registered kind).
    Create(ChareKind),
    /// An entry method of the chare in the given local slot.
    Chare(u32),
    /// An entry method of a branch-office chare's local branch.
    Branch(BocId),
}

/// One structured kernel event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An entry-method execution is starting.
    EntryBegin {
        /// What is executing.
        what: EntryWhat,
        /// The entry point invoked (`None` for constructors).
        ep: Option<EpId>,
    },
    /// The entry method returned.
    EntryEnd {
        /// Counted user messages the entry produced.
        msgs_sent: u32,
    },
    /// A kernel envelope was posted (before combining/framing).
    MsgSend {
        /// Destination PE (may equal the recording PE).
        to: Pe,
        /// Message class.
        class: MsgClass,
        /// Wire size.
        bytes: u32,
        /// Load-balancer forwards so far for seeds
        /// ([`PLACED`](crate::envelope::PLACED) for pinned seeds);
        /// 0 for everything else.
        hops: u32,
    },
    /// A kernel envelope arrived (after batch/frame unpacking).
    MsgRecv {
        /// Sending PE.
        from: Pe,
        /// Message class.
        class: MsgClass,
        /// Wire size.
        bytes: u32,
    },
    /// The load balancer kept a seed on this PE.
    SeedKept {
        /// Registered chare kind.
        kind: ChareKind,
        /// Forwards the seed had taken when it settled.
        hops: u32,
    },
    /// The load balancer forwarded a seed.
    SeedForwarded {
        /// Registered chare kind.
        kind: ChareKind,
        /// Where it went.
        to: Pe,
        /// Forwards so far (before this one).
        hops: u32,
    },
    /// The reliable layer re-homed a seed away from an unresponsive PE.
    SeedRedirected {
        /// The new destination.
        to: Pe,
    },
    /// The reliable layer retransmitted a frame after an ack timeout.
    Retransmit {
        /// Frame destination.
        to: Pe,
        /// Frame sequence number.
        seq: u64,
    },
    /// The runnable backlog changed between scheduling steps.
    QueueSample {
        /// Queue + seed-pool length after the step.
        len: u32,
    },
}

/// One timestamped event from one PE.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened (simulated ns on the simulator, elapsed ns on
    /// the thread backend).
    pub at_ns: u64,
    /// The recording PE.
    pub pe: Pe,
    /// What happened.
    pub kind: EventKind,
}

/// Fixed-capacity ring of events; overwrites oldest when full.
#[derive(Debug, Default)]
pub(crate) struct RingLog {
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    start: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl RingLog {
    pub(crate) fn new(cap: usize) -> Self {
        RingLog {
            cap: cap.max(1),
            start: 0,
            events: Vec::new(),
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            // Compare-and-reset instead of `% cap`: once the ring is
            // full this runs on every push, and an integer division
            // here is measurable against the simulator's event cost.
            self.events[self.start] = ev;
            self.start += 1;
            if self.start == self.cap {
                self.start = 0;
            }
            self.dropped += 1;
        }
    }

    /// Events in arrival order.
    pub(crate) fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.start..]);
        out.extend_from_slice(&self.events[..self.start]);
        self.events.clear();
        self.start = 0;
        (out, std::mem::take(&mut self.dropped))
    }
}

/// Per-run collection point: one ring per PE. Created by
/// [`Program::run_sim`](crate::program::Program::run_sim) when tracing
/// is configured; each node records through its own [`PeTracer`].
pub struct TraceSink {
    cfg: TraceConfig,
    bufs: Vec<Mutex<RingLog>>,
}

impl TraceSink {
    /// A sink for `npes` PEs.
    pub fn shared(npes: usize, cfg: TraceConfig) -> Arc<Self> {
        Arc::new(TraceSink {
            cfg,
            bufs: (0..npes).map(|_| Mutex::new(RingLog::new(cfg.capacity))).collect(),
        })
    }

    /// The recording handle for one PE.
    pub fn tracer_for(self: &Arc<Self>, pe: Pe) -> PeTracer {
        PeTracer {
            pe,
            sink: Arc::clone(self),
        }
    }

    /// Collect everything recorded so far into one time-ordered log.
    pub fn drain(&self) -> TraceLog {
        let mut events = Vec::new();
        let mut dropped = 0;
        for buf in &self.bufs {
            let (evs, d) = buf.lock().expect("trace ring lock").drain();
            events.extend(evs);
            dropped += d;
        }
        // Per-PE rings are individually ordered; merge into one stream.
        events.sort_by_key(|e| e.at_ns);
        TraceLog {
            npes: self.bufs.len(),
            events,
            dropped,
        }
    }
}

/// One PE's recording handle. Recording is a ring-buffer push behind an
/// uncontended per-PE mutex — no messages, no simulated cost.
pub struct PeTracer {
    pe: Pe,
    sink: Arc<TraceSink>,
}

impl PeTracer {
    /// Whether queue-length samples were requested.
    #[inline]
    pub fn queue_samples(&self) -> bool {
        self.sink.cfg.queue_samples
    }

    /// Record one event at `at_ns`.
    #[inline]
    pub fn record(&self, at_ns: u64, kind: EventKind) {
        let ev = TraceEvent {
            at_ns,
            pe: self.pe,
            kind,
        };
        self.sink.bufs[self.pe.index()]
            .lock()
            .expect("trace ring lock")
            .push(ev);
    }
}

impl Clone for PeTracer {
    fn clone(&self) -> Self {
        PeTracer {
            pe: self.pe,
            sink: Arc::clone(&self.sink),
        }
    }
}

/// The post-mortem event log of one run, time-ordered across PEs.
#[derive(Debug, Default)]
pub struct TraceLog {
    /// Machine size the log was recorded on.
    pub npes: usize,
    /// All retained events, sorted by timestamp (stable across equal
    /// timestamps: PE-0-first within each ring drain).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring-buffer overwrites, summed over PEs.
    pub dropped: u64,
}

impl TraceLog {
    /// Events recorded by one PE, in order.
    pub fn events_for(&self, pe: Pe) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.pe == pe)
    }

    /// Number of events matching a predicate.
    pub fn count(&self, mut pred: impl FnMut(&EventKind) -> bool) -> u64 {
        self.events.iter().filter(|e| pred(&e.kind)).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, len: u32) -> TraceEvent {
        TraceEvent {
            at_ns: at,
            pe: Pe(0),
            kind: EventKind::QueueSample { len },
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = RingLog::new(3);
        for i in 0..5 {
            r.push(ev(i, i as u32));
        }
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 2);
        let ats: Vec<u64> = evs.iter().map(|e| e.at_ns).collect();
        assert_eq!(ats, vec![2, 3, 4], "oldest overwritten, order kept");
    }

    #[test]
    fn ring_under_capacity_drops_nothing() {
        let mut r = RingLog::new(8);
        for i in 0..5 {
            r.push(ev(i, 0));
        }
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 0);
        assert_eq!(evs.len(), 5);
    }

    #[test]
    fn sink_merges_pe_streams_in_time_order() {
        let sink = TraceSink::shared(2, TraceConfig::default());
        let t0 = sink.tracer_for(Pe(0));
        let t1 = sink.tracer_for(Pe(1));
        t1.record(5, EventKind::QueueSample { len: 1 });
        t0.record(3, EventKind::QueueSample { len: 2 });
        t0.record(9, EventKind::QueueSample { len: 0 });
        let log = sink.drain();
        let ats: Vec<u64> = log.events.iter().map(|e| e.at_ns).collect();
        assert_eq!(ats, vec![3, 5, 9]);
        assert_eq!(log.npes, 2);
        assert_eq!(log.events_for(Pe(0)).count(), 2);
    }

    #[test]
    fn msg_class_covers_the_wire_protocol() {
        assert_eq!(
            MsgClass::of(&SysMsg::QdPoll { wave: 1 }),
            MsgClass::Qd
        );
        assert_eq!(MsgClass::of(&SysMsg::WorkNack), MsgClass::Balance);
        assert_eq!(
            MsgClass::of(&SysMsg::RelAck { seqs: vec![1] }),
            MsgClass::Transport
        );
        assert_eq!(MsgClass::of(&SysMsg::Batch(vec![])), MsgClass::Batch);
        assert_eq!(MsgClass::Qd.label(), "qd");
    }

    #[test]
    fn capacity_floor_is_one() {
        let cfg = TraceConfig::with_capacity(0);
        assert_eq!(cfg.capacity, 1);
        let mut r = RingLog::new(0);
        r.push(ev(1, 0));
        r.push(ev(2, 0));
        let (evs, dropped) = r.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].at_ns, 2);
        assert_eq!(dropped, 1);
    }
}
