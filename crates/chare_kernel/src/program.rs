//! Program construction and execution.
//!
//! A [`ProgramBuilder`] registers chare types, branch-office chares and
//! specifically shared variables (mirroring the tables the C kernel's
//! translator emitted), picks the queueing and load-balancing strategies,
//! and names the main chare. The resulting [`Program`] is immutable and
//! reusable: the same program can be run on the discrete-event simulator
//! at many machine sizes and on the thread backend, which is exactly how
//! the experiment harness sweeps the paper's parameter spaces.

use std::sync::Arc;
use std::time::Duration;

use multicomputer::{
    imbalance, AbortReason, BacklogSummary, Cost, FaultStats, NodeFactory, Payload, Pe, SimConfig,
    SimMachine, SimTime, Topology,
};
use multicomputer::{MachinePreset, NodeStats};
#[cfg(feature = "threads")]
use multicomputer::{ThreadConfig, ThreadMachine};

use crate::balance::BalanceStrategy;
use crate::bcast::BroadcastMode;
use crate::boc::BranchInit;
use crate::chare::ChareInit;
use crate::ids::{Boc, BocId, ChareKind, Kind, RoId};
use crate::metrics::{MetricsConfig, MetricsLog, MetricsSink};
use crate::msg::Message;
use crate::node::{CkNode, NodeOptions};
use crate::queueing::QueueingStrategy;
use crate::registry::{AccEntry, BocEntry, ChareEntry, MainSpec, MonoEntry, Registry, TableEntry};
use crate::reliable::ReliableConfig;
use crate::shared::{Acc, Accum, Mono, MonoVar, ReadOnly, TableRef};
use crate::trace::{TraceConfig, TraceLog, TraceSink};

/// Builder for a chare-kernel program.
pub struct ProgramBuilder {
    reg: Registry,
    queueing: QueueingStrategy,
    balance: BalanceStrategy,
    bcast: BroadcastMode,
    combining: bool,
    rng_seed: u64,
    reliable: Option<ReliableConfig>,
    tracing: Option<TraceConfig>,
    metrics: Option<MetricsConfig>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// A builder with FIFO queueing, no load balancing, and a fixed
    /// default RNG seed (runs are deterministic unless reseeded).
    pub fn new() -> Self {
        ProgramBuilder {
            reg: Registry::new(),
            queueing: QueueingStrategy::Fifo,
            balance: BalanceStrategy::Local,
            bcast: BroadcastMode::Tree,
            combining: false,
            rng_seed: 0x5EED_CAFE,
            reliable: None,
            tracing: None,
            metrics: None,
        }
    }

    /// Register a chare type; the returned [`Kind`] is used with
    /// [`Ctx::create`](crate::ctx::Ctx::create).
    pub fn chare<C: ChareInit>(&mut self) -> Kind<C> {
        let id = ChareKind(self.reg.chares.len() as u32);
        self.reg.chares.push(ChareEntry::of::<C>());
        Kind::new(id)
    }

    /// Register a branch-office chare; one branch is constructed on
    /// every PE at boot from a clone of `cfg`.
    pub fn boc<B: BranchInit>(&mut self, cfg: B::Cfg) -> Boc<B> {
        let id = BocId(self.reg.bocs.len() as u32);
        self.reg.bocs.push(BocEntry::of::<B>(cfg));
        Boc::new(id)
    }

    /// Register a read-only variable, replicated to every PE.
    pub fn read_only<T: Send + Sync + 'static>(&mut self, value: T) -> ReadOnly<T> {
        let id = RoId(self.reg.read_only.len() as u32);
        self.reg.read_only.push(Arc::new(value));
        ReadOnly::new(id)
    }

    /// Register an accumulator variable.
    pub fn accumulator<A: Accum>(&mut self) -> Acc<A> {
        let id = crate::ids::AccId(self.reg.accs.len() as u32);
        self.reg.accs.push(AccEntry::of::<A>());
        Acc::new(id)
    }

    /// Register a monotonic variable.
    pub fn monotonic<M: Mono>(&mut self) -> MonoVar<M> {
        let id = crate::ids::MonoId(self.reg.monos.len() as u32);
        self.reg.monos.push(MonoEntry::of::<M>());
        MonoVar::new(id)
    }

    /// Register a distributed table with values of type `V`.
    pub fn table<V: Clone + Send + 'static>(&mut self) -> TableRef<V> {
        let id = crate::ids::TableId(self.reg.tables.len() as u32);
        self.reg.tables.push(TableEntry::of::<V>());
        TableRef::new(id)
    }

    /// Name the main chare, constructed on PE 0 at boot from `seed`.
    pub fn main<C: ChareInit>(&mut self, kind: Kind<C>, seed: C::Seed)
    where
        C::Seed: Clone + Sync,
    {
        self.reg.main = Some(MainSpec {
            kind: kind.id,
            make_seed: Box::new(move || {
                let s = seed.clone();
                let bytes = s.bytes();
                (Box::new(s), bytes)
            }),
        });
    }

    /// Choose the scheduler queueing strategy (default FIFO).
    pub fn queueing(&mut self, q: QueueingStrategy) -> &mut Self {
        self.queueing = q;
        self
    }

    /// Choose the dynamic load balancing strategy (default none).
    pub fn balance(&mut self, b: BalanceStrategy) -> &mut Self {
        self.balance = b;
        self
    }

    /// Choose how kernel broadcasts are distributed (default spanning
    /// tree; `Direct` exists for the ablation experiment).
    pub fn broadcast_mode(&mut self, mode: BroadcastMode) -> &mut Self {
        self.bcast = mode;
        self
    }

    /// Enable message combining: remote messages produced within one
    /// scheduling step travel as a single batch per destination,
    /// paying the per-message software overhead once. Off by default
    /// (the ablation experiment measures its effect).
    pub fn combining(&mut self, on: bool) -> &mut Self {
        self.combining = on;
        self
    }

    /// Reseed the kernel's per-PE RNGs (placement randomness).
    pub fn rng_seed(&mut self, seed: u64) -> &mut Self {
        self.rng_seed = seed;
        self
    }

    /// Enable reliable inter-PE delivery: every remote message travels
    /// in a sequence-numbered frame that is acknowledged, deduplicated
    /// and retransmitted with exponential backoff, and seeds bound for
    /// unresponsive PEs are re-dispatched elsewhere. Needed when the
    /// simulated machine injects faults ([`SimConfig::with_faults`]);
    /// pure overhead (but harmless) on a lossless machine.
    ///
    /// # Panics
    ///
    /// On a degenerate config ([`ReliableConfig::validate`]): a zero
    /// send window or zero retransmit timeout cannot deliver anything,
    /// and failing here beats diagnosing the resulting boot-time hang.
    pub fn reliable(&mut self, cfg: ReliableConfig) -> &mut Self {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        self.reliable = Some(cfg);
        self
    }

    /// Enable kernel event tracing: every node records structured events
    /// (entry begin/end, message send/recv, seed balance decisions,
    /// retransmits, queue samples) into per-PE ring buffers, collected
    /// into [`CkReport::trace`] after the run. Recording is passive —
    /// results and timing are identical with tracing on or off.
    pub fn tracing(&mut self, cfg: TraceConfig) -> &mut Self {
        self.tracing = Some(cfg);
        self
    }

    /// Enable streaming metrics: every node folds interval time slices,
    /// latency/grain histograms, queue high-watermarks and a flight
    /// recorder online (O(PEs × buckets) memory, independent of run
    /// length), collected into [`CkReport::metrics`] after the run.
    /// Recording is passive — results and timing are identical with
    /// metrics on or off.
    pub fn metrics(&mut self, cfg: MetricsConfig) -> &mut Self {
        self.metrics = Some(cfg);
        self
    }

    /// Register a byte codec for a message-body type that may cross a
    /// process boundary on the [`procs`](Program::run_procs) backend:
    /// chare seeds, entry-method message types, accumulator/monotonic
    /// values, table values, write-once values and `exit` results.
    /// Harmless (a table entry) on the in-process backends. Idempotent;
    /// registration order must match across parent and workers (it does
    /// automatically when both build the program the same way — the
    /// socket handshake verifies a fingerprint of the table).
    pub fn wire<T: crate::wire::Wire + Send + Sync + 'static>(&mut self) -> &mut Self {
        self.reg.wire.register::<T>();
        self
    }

    /// Finalize into an immutable, reusable [`Program`].
    pub fn build(self) -> Program {
        Program {
            reg: Arc::new(self.reg),
            queueing: self.queueing,
            balance: self.balance,
            bcast: self.bcast,
            combining: self.combining,
            rng_seed: self.rng_seed,
            reliable: self.reliable,
            tracing: self.tracing,
            metrics: self.metrics,
        }
    }
}

/// An immutable chare-kernel program, runnable on either backend at any
/// machine size.
#[derive(Clone)]
pub struct Program {
    reg: Arc<Registry>,
    queueing: QueueingStrategy,
    balance: BalanceStrategy,
    bcast: BroadcastMode,
    combining: bool,
    rng_seed: u64,
    reliable: Option<ReliableConfig>,
    tracing: Option<TraceConfig>,
    metrics: Option<MetricsConfig>,
}

impl Program {
    /// The program's queueing strategy.
    pub fn queueing_strategy(&self) -> QueueingStrategy {
        self.queueing
    }

    /// The program's balancing strategy.
    pub fn balance_strategy(&self) -> &BalanceStrategy {
        &self.balance
    }

    /// A copy of this program with message combining enabled — sugar for
    /// ablation sweeps over an already-built program.
    pub fn with_combining(&self) -> Program {
        let mut p = self.clone();
        p.combining = true;
        p
    }

    /// A copy of this program with reliable delivery enabled — sugar
    /// for resilience sweeps over an already-built program.
    ///
    /// # Panics
    ///
    /// On a degenerate config, like [`ProgramBuilder::reliable`].
    pub fn with_reliable(&self, cfg: ReliableConfig) -> Program {
        if let Err(e) = cfg.validate() {
            panic!("{e}");
        }
        let mut p = self.clone();
        p.reliable = Some(cfg);
        p
    }

    /// A copy of this program with kernel event tracing enabled — sugar
    /// for post-mortem analysis of an already-built program (see
    /// [`ProgramBuilder::tracing`]).
    pub fn with_tracing(&self, cfg: TraceConfig) -> Program {
        let mut p = self.clone();
        p.tracing = Some(cfg);
        p
    }

    /// A copy of this program with streaming metrics enabled — sugar
    /// for telemetry over an already-built program (see
    /// [`ProgramBuilder::metrics`]).
    pub fn with_metrics(&self, cfg: MetricsConfig) -> Program {
        let mut p = self.clone();
        p.metrics = Some(cfg);
        p
    }

    /// One trace sink per run, sized for `npes` PEs (shared by the
    /// factory-built nodes and drained into the report afterwards).
    fn trace_sink(&self, npes: usize) -> Option<Arc<TraceSink>> {
        self.tracing.map(|cfg| TraceSink::shared(npes, cfg))
    }

    /// One metrics sink per run. The hosting machine's dispatch
    /// overheads parameterize the per-step dispatch/work split (zero on
    /// the thread backend, where charges are no-ops anyway).
    fn metrics_sink(
        &self,
        npes: usize,
        dispatch_ns: u64,
        ctl_dispatch_ns: u64,
    ) -> Option<Arc<MetricsSink>> {
        self.metrics
            .map(|cfg| MetricsSink::shared(npes, cfg, dispatch_ns, ctl_dispatch_ns))
    }

    /// The program's registry (shared with every node built from it).
    pub(crate) fn registry(&self) -> &Arc<Registry> {
        &self.reg
    }

    /// Fingerprint of the wire-table registration sequence. The procs
    /// backend compares the parent's against each worker's at handshake;
    /// exposed so program builders can assert their spec round-trips.
    pub fn wire_fingerprint(&self) -> u64 {
        self.reg.wire.fingerprint()
    }

    /// The program's reliable-delivery config, if any.
    pub(crate) fn reliable_cfg(&self) -> Option<ReliableConfig> {
        self.reliable
    }

    /// The program's tracing config, if any.
    pub(crate) fn tracing_cfg(&self) -> Option<TraceConfig> {
        self.tracing
    }

    /// The program's metrics config, if any.
    pub(crate) fn metrics_cfg(&self) -> Option<MetricsConfig> {
        self.metrics
    }

    /// The program's placement-RNG seed.
    pub(crate) fn rng_seed_val(&self) -> u64 {
        self.rng_seed
    }

    /// Overwrite the run-level knobs a worker process receives from its
    /// parent over the `CK_PROC_OPTS` contract, so `with_reliable` /
    /// `with_tracing` / `with_metrics` / `rng_seed` applied to the
    /// parent's program propagate across the process boundary without
    /// the spec-builder having to re-derive them.
    pub(crate) fn set_run_overrides(
        &mut self,
        rng_seed: u64,
        reliable: Option<ReliableConfig>,
        tracing: Option<TraceConfig>,
        metrics: Option<MetricsConfig>,
    ) {
        self.rng_seed = rng_seed;
        self.reliable = reliable;
        self.tracing = tracing;
        self.metrics = metrics;
    }

    pub(crate) fn factory(
        &self,
        topology: Topology,
        sink: Option<Arc<TraceSink>>,
        msink: Option<Arc<MetricsSink>>,
    ) -> CkFactory {
        CkFactory {
            prog: self.clone(),
            topology,
            sink,
            msink,
        }
    }

    /// Run on the discrete-event simulator.
    pub fn run_sim(&self, cfg: SimConfig) -> CkReport {
        let sink = self.trace_sink(cfg.npes);
        let msink = self.metrics_sink(
            cfg.npes,
            cfg.cost.dispatch.as_nanos(),
            cfg.cost.ctl_dispatch.as_nanos(),
        );
        let factory = self.factory(cfg.topology.clone(), sink.clone(), msink.clone());
        let rep = SimMachine::run_factory(cfg, &factory);
        CkReport {
            time_ns: rep.end_time.as_nanos(),
            result: rep.result,
            node_stats: rep.node_stats,
            timed_out: false,
            trace: sink.map(|s| s.drain()),
            metrics: msink.map(|s| s.drain(rep.end_time.as_nanos())),
            sim: Some(SimDetail {
                end_time: rep.end_time,
                utilization: {
                    let span = rep.end_time.as_nanos();
                    if span == 0 {
                        0.0
                    } else {
                        let busy: u64 = rep.busy.iter().map(|c| c.as_nanos()).sum();
                        busy as f64 / (span as f64 * rep.busy.len() as f64)
                    }
                },
                imbalance: imbalance(&rep.busy),
                busy: rep.busy,
                packets: rep.packets,
                bytes: rep.bytes,
                events: rep.events,
                quiesced: rep.quiesced,
                aborted: rep.aborted,
                faults: rep.faults,
                samples: rep.samples,
                timeline: rep.timeline,
            }),
            proc: None,
        }
    }

    /// Run on the simulator with a machine preset at `npes` PEs.
    pub fn run_sim_preset(&self, npes: usize, preset: MachinePreset) -> CkReport {
        self.run_sim(SimConfig::preset(npes, preset))
    }

    /// Run on the thread backend with `npes` OS threads and a default
    /// watchdog. The logical topology (used for balancing neighborhoods)
    /// is a hypercube.
    #[cfg(feature = "threads")]
    pub fn run_threads(&self, npes: usize) -> CkReport {
        self.run_threads_cfg(ThreadConfig::new(npes), Topology::Hypercube)
    }

    /// Run on the thread backend with full control.
    #[cfg(feature = "threads")]
    pub fn run_threads_cfg(&self, cfg: ThreadConfig, topology: Topology) -> CkReport {
        let sink = self.trace_sink(cfg.npes);
        let msink = self.metrics_sink(cfg.npes, 0, 0);
        let factory = self.factory(topology, sink.clone(), msink.clone());
        let rep = ThreadMachine::run(cfg, &factory);
        let wall_ns = rep.wall.as_nanos() as u64;
        CkReport {
            time_ns: wall_ns,
            result: rep.result,
            node_stats: rep.node_stats,
            timed_out: rep.timed_out,
            trace: sink.map(|s| s.drain()),
            metrics: msink.map(|s| s.drain(wall_ns)),
            sim: None,
            proc: None,
        }
    }

    /// Run on the multi-process backend: one OS process per PE, wired
    /// over Unix-domain (or TCP) sockets. The current binary is
    /// re-invoked once per PE with the `CK_PE_RANK` env contract — the
    /// re-invoked process must call
    /// [`proc::maybe_worker`](crate::proc::maybe_worker) before its
    /// first `run_procs` so it diverts into the worker loop. See
    /// `docs/PROCESS.md` for the wire contract.
    ///
    /// # Panics
    ///
    /// If called from a worker process that failed to divert (a missing
    /// `maybe_worker` call), or if `cfg` injects loss without the
    /// program running reliable delivery.
    pub fn run_procs(&self, cfg: &crate::proc::ProcConfig) -> CkReport {
        crate::proc::run_parent(self, cfg)
    }
}

/// Builds one [`CkNode`] per PE (implements the machine layer's
/// [`NodeFactory`]).
pub struct CkFactory {
    prog: Program,
    topology: Topology,
    sink: Option<Arc<TraceSink>>,
    msink: Option<Arc<MetricsSink>>,
}

impl NodeFactory for CkFactory {
    type Node = CkNode;

    fn build(&self, pe: Pe, npes: usize) -> CkNode {
        // Neighborhood-based balancing (ACWN, token) needs a *sparse*
        // neighbor set; on dense interconnects (bus, crossbar) the
        // kernel imposes a logical hypercube so load reports and work
        // requests stay O(log P) per PE instead of O(P).
        let mut neighbors = self.topology.neighbors(pe, npes);
        if neighbors.len() > 8 {
            neighbors = Topology::Hypercube.neighbors(pe, npes);
        }
        let queue = self.prog.queueing.make();
        let balancer = self.prog.balance.make(pe, npes, neighbors);
        CkNode::new(
            pe,
            npes,
            Arc::clone(&self.prog.reg),
            queue,
            balancer,
            NodeOptions {
                bcast: self.prog.bcast,
                combining: self.prog.combining,
                rng_seed: self.prog.rng_seed,
                reliable: self.prog.reliable,
                tracer: self.sink.as_ref().map(|s| s.tracer_for(pe)),
                metrics: self.msink.as_ref().map(|s| s.recorder_for(pe)),
            },
        )
    }
}

/// Per-run simulator detail.
pub struct SimDetail {
    /// Simulated completion time.
    pub end_time: SimTime,
    /// Per-PE busy time.
    pub busy: Vec<Cost>,
    /// Mean PE utilization over the run.
    pub utilization: f64,
    /// Busy-time imbalance (max / mean; 1.0 = perfect).
    pub imbalance: f64,
    /// Packets delivered.
    pub packets: u64,
    /// Bytes carried.
    pub bytes: u64,
    /// Simulator events processed.
    pub events: u64,
    /// True if the run ended by global quiescence rather than `exit`.
    pub quiesced: bool,
    /// Set if the simulator cut the run short (e.g. event-limit hit).
    pub aborted: Option<AbortReason>,
    /// Fault-injection tallies, when the machine ran with a fault plan.
    pub faults: Option<FaultStats>,
    /// Backlog samples (streaming per-instant aggregates), if sampling
    /// was enabled.
    pub samples: Vec<BacklogSummary>,
    /// Execution spans, if tracing was enabled.
    pub timeline: Vec<multicomputer::TraceSpan>,
}

/// Result of running a program on either backend.
pub struct CkReport {
    /// Completion time in nanoseconds — simulated on the simulator,
    /// wall-clock on threads.
    pub time_ns: u64,
    /// The value passed to [`Ctx::exit`](crate::ctx::Ctx::exit), if any.
    pub result: Option<Payload>,
    /// Per-PE kernel counters.
    pub node_stats: Vec<NodeStats>,
    /// Thread backend only: the watchdog fired before `exit`.
    pub timed_out: bool,
    /// The kernel event log, when the program ran with tracing enabled
    /// (see [`ProgramBuilder::tracing`]).
    pub trace: Option<TraceLog>,
    /// The streaming-metrics snapshot, when the program ran with
    /// metrics enabled (see [`ProgramBuilder::metrics`]).
    pub metrics: Option<MetricsLog>,
    /// Simulator-only detail.
    pub sim: Option<SimDetail>,
    /// Multi-process backend only: launch/teardown detail, including a
    /// structured abort reason when a worker died mid-run.
    pub proc: Option<crate::proc::ProcDetail>,
}

impl CkReport {
    /// Completion time in seconds.
    pub fn time_secs(&self) -> f64 {
        self.time_ns as f64 / 1e9
    }

    /// Completion time as a `Duration`.
    pub fn time(&self) -> Duration {
        Duration::from_nanos(self.time_ns)
    }

    /// Take and downcast the program result.
    pub fn take_result<T: 'static>(&mut self) -> Option<T> {
        let r = self.result.take()?;
        match r.downcast::<T>() {
            Ok(b) => Some(*b),
            Err(r) => {
                self.result = Some(r);
                None
            }
        }
    }

    /// Borrow and downcast the program result without consuming it —
    /// for shared reports (the bench harness memoizes runs behind `Rc`,
    /// so [`CkReport::take_result`]'s `&mut self` is unavailable).
    pub fn result_ref<T: 'static>(&self) -> Option<&T> {
        self.result.as_ref()?.downcast_ref::<T>()
    }

    /// Sum of a kernel counter across PEs.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.node_stats
            .iter()
            .map(|s| s.get(name).unwrap_or(0))
            .sum()
    }
}
