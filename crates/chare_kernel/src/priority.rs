//! Message priorities, including the kernel's bitvector priorities.
//!
//! The paper's queueing-strategy experiments showed that speculative
//! parallel search (branch & bound, IDA*) needs *prioritized* scheduling
//! to avoid exploding the search space. Two priority forms are provided,
//! matching the kernel:
//!
//! * **Integer priorities** — smaller value = more urgent.
//! * **Bitvector priorities** ([`BitPrio`]) — variable-length bit strings
//!   compared lexicographically as binary fractions (shorter strings are
//!   padded with zeros). Their power: a tree search can give every node a
//!   priority that is its *path* from the root, so the global scheduling
//!   order is exactly depth-first-leftmost over the whole distributed
//!   tree — impossible to express with fixed-width integers at depth.

use std::cmp::Ordering;
use std::fmt;

/// Priority attached to a message. `None` sorts after any explicit
/// priority of the same class; under FIFO/LIFO strategies priorities are
/// ignored entirely.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Priority {
    /// No particular urgency.
    #[default]
    None,
    /// Integer priority; smaller = more urgent.
    Int(i64),
    /// Bitvector priority; lexicographically smaller = more urgent.
    Bits(BitPrio),
}

impl Priority {
    /// Integer key for the integer-priority queue. `None` maps to 0 (the
    /// most common "default urgency" convention); bitvector priorities
    /// map to their first 63 bits so mixed programs still get a sensible
    /// order.
    pub fn int_key(&self) -> i64 {
        match self {
            Priority::None => 0,
            Priority::Int(v) => *v,
            Priority::Bits(b) => b.prefix_key() as i64,
        }
    }

    /// Bit key for the bitvector-priority queue. `None` and `Int` map to
    /// fixed-width encodings so mixed programs still get a total order.
    pub fn bit_key(&self) -> BitPrio {
        match self {
            Priority::None => BitPrio::root(),
            Priority::Int(v) => {
                // Order-preserving 64-bit encoding of the integer.
                let biased = (*v as u64) ^ (1 << 63);
                let mut b = BitPrio::root();
                for i in (0..64).rev() {
                    b = b.child_bit((biased >> i) & 1 == 1);
                }
                b
            }
            Priority::Bits(b) => b.clone(),
        }
    }

    /// Wire size of the priority (for the network cost model).
    pub fn wire_bytes(&self) -> u32 {
        match self {
            Priority::None => 1,
            Priority::Int(_) => 9,
            Priority::Bits(b) => 1 + 4 + b.bits.len() as u32,
        }
    }
}

/// A variable-length bitvector priority: a binary fraction in `[0, 1)`,
/// most significant bit first. Smaller fraction = more urgent.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitPrio {
    bits: Vec<u8>,
    /// Number of valid bits; `bits` holds `ceil(len/8)` bytes, padded
    /// with zero bits.
    len: u32,
}

impl BitPrio {
    /// The empty bitvector — the highest possible priority (fraction 0
    /// with no refinement).
    pub fn root() -> BitPrio {
        BitPrio::default()
    }

    /// Number of bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True for the empty (root) priority.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` (0 = most significant).
    pub fn bit(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let byte = self.bits[(i / 8) as usize];
        (byte >> (7 - (i % 8))) & 1 == 1
    }

    /// Extend with one bit, returning the refined priority. Appending
    /// bits makes the priority *less* urgent or equal (it only adds to
    /// the fraction), so children of a search node never preempt an
    /// already-more-urgent sibling subtree.
    pub fn child_bit(&self, bit: bool) -> BitPrio {
        let mut out = self.clone();
        let i = out.len;
        if i.is_multiple_of(8) {
            out.bits.push(0);
        }
        if bit {
            let idx = (i / 8) as usize;
            out.bits[idx] |= 1 << (7 - (i % 8));
        }
        out.len += 1;
        out
    }

    /// Extend with `width` bits encoding `value` (most significant bit
    /// first). This is how a search assigns child `k` of a node with
    /// branching factor `2^width` its position-in-tree priority.
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits or `width > 32`.
    pub fn child(&self, value: u32, width: u32) -> BitPrio {
        assert!(width <= 32, "width too large");
        assert!(
            width == 32 || value < (1u32 << width),
            "value {value} does not fit in {width} bits"
        );
        let mut out = self.clone();
        for i in (0..width).rev() {
            out = out.child_bit((value >> i) & 1 == 1);
        }
        out
    }

    /// First 63 bits as an integer (for degraded ordering under the
    /// integer-priority queue).
    pub fn prefix_key(&self) -> u64 {
        let mut key = 0u64;
        for i in 0..63 {
            key <<= 1;
            if i < self.len && self.bit(i) {
                key |= 1;
            }
        }
        key
    }
}

impl PartialOrd for BitPrio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitPrio {
    /// Binary-fraction comparison: compare bit by bit, treating the
    /// shorter vector as padded with zeros. A strict prefix therefore
    /// compares *equal or smaller*: a parent is never less urgent than
    /// its children.
    fn cmp(&self, other: &Self) -> Ordering {
        let common_bytes = self.bits.len().min(other.bits.len());
        match self.bits[..common_bytes].cmp(&other.bits[..common_bytes]) {
            Ordering::Equal => {
                // All remaining bits of the longer one are compared to
                // zero padding; any 1 bit makes it larger.
                let (longer, flip) = if self.bits.len() > common_bytes {
                    (self, false)
                } else if other.bits.len() > common_bytes {
                    (other, true)
                } else {
                    return Ordering::Equal;
                };
                let any_one = longer.bits[common_bytes..].iter().any(|&b| b != 0);
                match (any_one, flip) {
                    (false, _) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (true, true) => Ordering::Less,
                }
            }
            ord => ord,
        }
    }
}

impl fmt::Debug for BitPrio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0b")?;
        for i in 0..self.len {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_highest_priority() {
        let root = BitPrio::root();
        let child = root.child(3, 4);
        assert!(root <= child);
        assert!(root < child.child(0, 1).child(1, 1));
    }

    #[test]
    fn lexicographic_order() {
        let a = BitPrio::root().child(0b01, 2); // 0.01
        let b = BitPrio::root().child(0b10, 2); // 0.10
        assert!(a < b);
    }

    #[test]
    fn prefix_compares_equal_when_padding_is_zero() {
        let p = BitPrio::root().child(0b10, 2); // 0.10
        let q = p.child(0, 3); // 0.10000
        assert_eq!(p.cmp(&q), Ordering::Equal);
        let r = p.child(1, 3); // 0.10001
        assert!(p < r);
    }

    #[test]
    fn child_ordering_matches_value_order() {
        let parent = BitPrio::root().child(1, 2);
        let kids: Vec<BitPrio> = (0..8).map(|k| parent.child(k, 3)).collect();
        for w in kids.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Every child is >= parent.
        for k in &kids {
            assert!(parent <= *k);
        }
    }

    #[test]
    fn dfs_order_across_depths() {
        // Leftmost-deepest beats right siblings at any depth: the whole
        // subtree under child 0 is more urgent than child 1.
        let c0 = BitPrio::root().child(0, 1);
        let c1 = BitPrio::root().child(1, 1);
        let c0_deep = c0.child(7, 3).child(7, 3);
        assert!(c0_deep < c1);
    }

    #[test]
    fn bit_accessor() {
        let p = BitPrio::root().child(0b1011, 4);
        assert!(p.bit(0));
        assert!(!p.bit(1));
        assert!(p.bit(2));
        assert!(p.bit(3));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn crosses_byte_boundaries() {
        let mut p = BitPrio::root();
        for i in 0..20 {
            p = p.child_bit(i % 3 == 0);
        }
        assert_eq!(p.len(), 20);
        for i in 0..20 {
            assert_eq!(p.bit(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn child_value_must_fit() {
        let _ = BitPrio::root().child(8, 3);
    }

    #[test]
    fn int_key_ordering() {
        assert!(Priority::Int(-5).int_key() < Priority::Int(3).int_key());
        assert_eq!(Priority::None.int_key(), 0);
    }

    #[test]
    fn bit_key_for_ints_preserves_order() {
        let lo = Priority::Int(-100).bit_key();
        let mid = Priority::Int(0).bit_key();
        let hi = Priority::Int(100).bit_key();
        assert!(lo < mid);
        assert!(mid < hi);
    }

    #[test]
    fn wire_bytes_reasonable() {
        assert_eq!(Priority::None.wire_bytes(), 1);
        assert_eq!(Priority::Int(9).wire_bytes(), 9);
        let b = Priority::Bits(BitPrio::root().child(5, 9));
        assert_eq!(b.wire_bytes(), 1 + 4 + 2);
    }

    #[test]
    fn prefix_key_monotone_on_samples() {
        let ps = [
            BitPrio::root(),
            BitPrio::root().child(0, 2),
            BitPrio::root().child(1, 2),
            BitPrio::root().child(1, 2).child(3, 2),
            BitPrio::root().child(2, 2),
            BitPrio::root().child(3, 2),
        ];
        for w in ps.windows(2) {
            assert!(w[0].prefix_key() <= w[1].prefix_key());
        }
    }

    #[test]
    fn debug_format() {
        let p = BitPrio::root().child(0b101, 3);
        assert_eq!(format!("{p:?}"), "0b101");
    }
}
