//! Message priorities, including the kernel's bitvector priorities.
//!
//! The paper's queueing-strategy experiments showed that speculative
//! parallel search (branch & bound, IDA*) needs *prioritized* scheduling
//! to avoid exploding the search space. Two priority forms are provided,
//! matching the kernel:
//!
//! * **Integer priorities** — smaller value = more urgent.
//! * **Bitvector priorities** ([`BitPrio`]) — variable-length bit strings
//!   compared lexicographically as binary fractions (shorter strings are
//!   padded with zeros). Their power: a tree search can give every node a
//!   priority that is its *path* from the root, so the global scheduling
//!   order is exactly depth-first-leftmost over the whole distributed
//!   tree — impossible to express with fixed-width integers at depth.

use std::cmp::Ordering;
use std::fmt;

/// Priority attached to a message. `None` sorts after any explicit
/// priority of the same class; under FIFO/LIFO strategies priorities are
/// ignored entirely.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Priority {
    /// No particular urgency.
    #[default]
    None,
    /// Integer priority; smaller = more urgent.
    Int(i64),
    /// Bitvector priority; lexicographically smaller = more urgent.
    Bits(BitPrio),
}

impl Priority {
    /// Integer key for the integer-priority queue. `None` maps to 0 (the
    /// most common "default urgency" convention); bitvector priorities
    /// map to their first 63 bits so mixed programs still get a sensible
    /// order.
    pub fn int_key(&self) -> i64 {
        match self {
            Priority::None => 0,
            Priority::Int(v) => *v,
            Priority::Bits(b) => b.prefix_key() as i64,
        }
    }

    /// Bit key for the bitvector-priority queue. `None` and `Int` map to
    /// fixed-width encodings so mixed programs still get a total order.
    pub fn bit_key(&self) -> BitPrio {
        match self {
            Priority::None => BitPrio::root(),
            Priority::Int(v) => {
                // Order-preserving 64-bit encoding of the integer.
                let biased = (*v as u64) ^ (1 << 63);
                let mut b = BitPrio::root();
                for i in (0..64).rev() {
                    b.push_bit((biased >> i) & 1 == 1);
                }
                b
            }
            Priority::Bits(b) => b.clone(),
        }
    }

    /// Wire size of the priority (for the network cost model).
    pub fn wire_bytes(&self) -> u32 {
        match self {
            Priority::None => 1,
            Priority::Int(_) => 9,
            Priority::Bits(b) => 1 + 4 + b.bytes.as_slice().len() as u32,
        }
    }
}

/// A variable-length bitvector priority: a binary fraction in `[0, 1)`,
/// most significant bit first. Smaller fraction = more urgent.
///
/// Storage is inline up to 128 bits — search-tree priorities are a few
/// bits per level, so real programs essentially never leave the stack —
/// and spills to the heap beyond that. Cloning an inline priority (the
/// hot path: every prioritized send and queue insertion clones) is a
/// plain memcpy with no allocation.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitPrio {
    bytes: PrioBytes,
    /// Number of valid bits; the byte storage holds `ceil(len/8)`
    /// bytes, padded with zero bits.
    len: u32,
}

/// Byte storage for [`BitPrio`]: a fixed inline buffer or a heap spill.
///
/// Canonical representation: `Inline` whenever the byte count fits,
/// `Heap` only beyond that. Growth is monotone and one byte at a time,
/// so equal logical values always share a variant — the derived
/// `PartialEq`/`Hash` (which see the whole inline buffer, trailing
/// zeros included) therefore agree with slice equality.
#[derive(Clone, PartialEq, Eq, Hash)]
enum PrioBytes {
    Inline { n: u8, buf: [u8; Self::INLINE] },
    Heap(Vec<u8>),
}

impl PrioBytes {
    const INLINE: usize = 16;

    fn as_slice(&self) -> &[u8] {
        match self {
            PrioBytes::Inline { n, buf } => &buf[..*n as usize],
            PrioBytes::Heap(v) => v,
        }
    }

    fn push_zero_byte(&mut self) {
        match self {
            PrioBytes::Inline { n, .. } if (*n as usize) < Self::INLINE => *n += 1,
            PrioBytes::Inline { n, buf } => {
                let mut v = Vec::with_capacity(*n as usize + 1);
                v.extend_from_slice(&buf[..*n as usize]);
                v.push(0);
                *self = PrioBytes::Heap(v);
            }
            PrioBytes::Heap(v) => v.push(0),
        }
    }

    fn or_byte(&mut self, idx: usize, mask: u8) {
        match self {
            PrioBytes::Inline { buf, .. } => buf[idx] |= mask,
            PrioBytes::Heap(v) => v[idx] |= mask,
        }
    }
}

impl Default for PrioBytes {
    fn default() -> Self {
        PrioBytes::Inline {
            n: 0,
            buf: [0; Self::INLINE],
        }
    }
}

impl BitPrio {
    /// The empty bitvector — the highest possible priority (fraction 0
    /// with no refinement).
    pub fn root() -> BitPrio {
        BitPrio::default()
    }

    /// Number of bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True for the empty (root) priority.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` (0 = most significant).
    pub fn bit(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let byte = self.bytes.as_slice()[(i / 8) as usize];
        (byte >> (7 - (i % 8))) & 1 == 1
    }

    /// Append one bit in place (shared by the cloning constructors).
    pub(crate) fn push_bit(&mut self, bit: bool) {
        let i = self.len;
        if i.is_multiple_of(8) {
            self.bytes.push_zero_byte();
        }
        if bit {
            self.bytes.or_byte((i / 8) as usize, 1 << (7 - (i % 8)));
        }
        self.len += 1;
    }

    /// Extend with one bit, returning the refined priority. Appending
    /// bits makes the priority *less* urgent or equal (it only adds to
    /// the fraction), so children of a search node never preempt an
    /// already-more-urgent sibling subtree.
    pub fn child_bit(&self, bit: bool) -> BitPrio {
        let mut out = self.clone();
        out.push_bit(bit);
        out
    }

    /// Extend with `width` bits encoding `value` (most significant bit
    /// first). This is how a search assigns child `k` of a node with
    /// branching factor `2^width` its position-in-tree priority.
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits or `width > 32`.
    pub fn child(&self, value: u32, width: u32) -> BitPrio {
        assert!(width <= 32, "width too large");
        assert!(
            width == 32 || value < (1u32 << width),
            "value {value} does not fit in {width} bits"
        );
        let mut out = self.clone();
        for i in (0..width).rev() {
            out.push_bit((value >> i) & 1 == 1);
        }
        out
    }

    /// Lexicographic encoding of a component path: each component is
    /// appended as a fixed 32-bit field, so comparing two encoded
    /// priorities is exactly comparing the component slices
    /// lexicographically (with a shorter path, being a zero-padded
    /// prefix, ordering equal-or-before its extensions). This is the
    /// encoding pipelined workloads use for `(stage, block)` ordering —
    /// and what apps should reach for instead of hand-packing widths.
    ///
    /// Hand-packed encodings (e.g. `tsp`'s 5-bit child ranks) remain
    /// valid and cheaper on the wire; `from_path` trades those bytes for
    /// not having to prove each component fits its width.
    pub fn from_path(path: &[u32]) -> BitPrio {
        let mut out = BitPrio::root();
        for &component in path {
            out = out.child(component, 32);
        }
        out
    }

    /// First stored byte, zero-padded — the radix the bucketed scheduler
    /// queue sorts on. Safe as a coarse sort key because priorities that
    /// compare equal always share it (trailing padding is all zeros) and
    /// a strictly greater first byte implies a strictly greater
    /// priority.
    pub fn radix_byte(&self) -> u8 {
        self.bytes.as_slice().first().copied().unwrap_or(0)
    }

    /// First 63 bits as an integer (for degraded ordering under the
    /// integer-priority queue).
    pub fn prefix_key(&self) -> u64 {
        let mut key = 0u64;
        for i in 0..63 {
            key <<= 1;
            if i < self.len && self.bit(i) {
                key |= 1;
            }
        }
        key
    }
}

impl PartialOrd for BitPrio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BitPrio {
    /// Binary-fraction comparison: compare bit by bit, treating the
    /// shorter vector as padded with zeros. A strict prefix therefore
    /// compares *equal or smaller*: a parent is never less urgent than
    /// its children.
    fn cmp(&self, other: &Self) -> Ordering {
        let a = self.bytes.as_slice();
        let b = other.bytes.as_slice();
        let common_bytes = a.len().min(b.len());
        match a[..common_bytes].cmp(&b[..common_bytes]) {
            Ordering::Equal => {
                // All remaining bits of the longer one are compared to
                // zero padding; any 1 bit makes it larger.
                let (longer, flip) = if a.len() > common_bytes {
                    (a, false)
                } else if b.len() > common_bytes {
                    (b, true)
                } else {
                    return Ordering::Equal;
                };
                let any_one = longer[common_bytes..].iter().any(|&x| x != 0);
                match (any_one, flip) {
                    (false, _) => Ordering::Equal,
                    (true, false) => Ordering::Greater,
                    (true, true) => Ordering::Less,
                }
            }
            ord => ord,
        }
    }
}

impl fmt::Debug for BitPrio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0b")?;
        for i in 0..self.len {
            write!(f, "{}", if self.bit(i) { '1' } else { '0' })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_highest_priority() {
        let root = BitPrio::root();
        let child = root.child(3, 4);
        assert!(root <= child);
        assert!(root < child.child(0, 1).child(1, 1));
    }

    #[test]
    fn lexicographic_order() {
        let a = BitPrio::root().child(0b01, 2); // 0.01
        let b = BitPrio::root().child(0b10, 2); // 0.10
        assert!(a < b);
    }

    #[test]
    fn prefix_compares_equal_when_padding_is_zero() {
        let p = BitPrio::root().child(0b10, 2); // 0.10
        let q = p.child(0, 3); // 0.10000
        assert_eq!(p.cmp(&q), Ordering::Equal);
        let r = p.child(1, 3); // 0.10001
        assert!(p < r);
    }

    #[test]
    fn child_ordering_matches_value_order() {
        let parent = BitPrio::root().child(1, 2);
        let kids: Vec<BitPrio> = (0..8).map(|k| parent.child(k, 3)).collect();
        for w in kids.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Every child is >= parent.
        for k in &kids {
            assert!(parent <= *k);
        }
    }

    #[test]
    fn dfs_order_across_depths() {
        // Leftmost-deepest beats right siblings at any depth: the whole
        // subtree under child 0 is more urgent than child 1.
        let c0 = BitPrio::root().child(0, 1);
        let c1 = BitPrio::root().child(1, 1);
        let c0_deep = c0.child(7, 3).child(7, 3);
        assert!(c0_deep < c1);
    }

    #[test]
    fn bit_accessor() {
        let p = BitPrio::root().child(0b1011, 4);
        assert!(p.bit(0));
        assert!(!p.bit(1));
        assert!(p.bit(2));
        assert!(p.bit(3));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn crosses_byte_boundaries() {
        let mut p = BitPrio::root();
        for i in 0..20 {
            p = p.child_bit(i % 3 == 0);
        }
        assert_eq!(p.len(), 20);
        for i in 0..20 {
            assert_eq!(p.bit(i), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn heap_spill_preserves_order_and_bits() {
        // Push well past the 128-bit inline capacity and check the
        // spilled representation keeps every accessor and the ordering
        // consistent with a still-inline prefix.
        let mut p = BitPrio::root();
        for i in 0..300u32 {
            p = p.child_bit(i % 5 == 0);
        }
        assert_eq!(p.len(), 300);
        for i in 0..300 {
            assert_eq!(p.bit(i), i % 5 == 0, "bit {i}");
        }
        // A strict prefix (inline) compares <= the long (heap) value,
        // and flipping a late bit orders correctly across the spill.
        let prefix = {
            let mut q = BitPrio::root();
            for i in 0..100u32 {
                q = q.child_bit(i % 5 == 0);
            }
            q
        };
        assert!(prefix <= p);
        let bigger = p.child_bit(true);
        let same = p.child_bit(false);
        assert!(p < bigger);
        assert_eq!(p.cmp(&same), Ordering::Equal);
        assert_eq!(p.radix_byte(), prefix.radix_byte());
        // Wire size counts spilled bytes too.
        assert_eq!(Priority::Bits(p).wire_bytes(), 1 + 4 + 38);
    }

    #[test]
    fn inline_and_equalities_are_structural() {
        let a = BitPrio::root().child(0b101, 3);
        let b = BitPrio::root().child(0b101, 3);
        let padded = a.child(0, 2);
        assert_eq!(a, b);
        assert_ne!(a, padded, "structural equality distinguishes padding");
        assert_eq!(a.cmp(&padded), Ordering::Equal, "ordering treats padding as equal");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn child_value_must_fit() {
        let _ = BitPrio::root().child(8, 3);
    }

    #[test]
    fn int_key_ordering() {
        assert!(Priority::Int(-5).int_key() < Priority::Int(3).int_key());
        assert_eq!(Priority::None.int_key(), 0);
    }

    #[test]
    fn bit_key_for_ints_preserves_order() {
        let lo = Priority::Int(-100).bit_key();
        let mid = Priority::Int(0).bit_key();
        let hi = Priority::Int(100).bit_key();
        assert!(lo < mid);
        assert!(mid < hi);
    }

    #[test]
    fn wire_bytes_reasonable() {
        assert_eq!(Priority::None.wire_bytes(), 1);
        assert_eq!(Priority::Int(9).wire_bytes(), 9);
        let b = Priority::Bits(BitPrio::root().child(5, 9));
        assert_eq!(b.wire_bytes(), 1 + 4 + 2);
    }

    #[test]
    fn prefix_key_monotone_on_samples() {
        let ps = [
            BitPrio::root(),
            BitPrio::root().child(0, 2),
            BitPrio::root().child(1, 2),
            BitPrio::root().child(1, 2).child(3, 2),
            BitPrio::root().child(2, 2),
            BitPrio::root().child(3, 2),
        ];
        for w in ps.windows(2) {
            assert!(w[0].prefix_key() <= w[1].prefix_key());
        }
    }

    #[test]
    fn from_path_is_lexicographic() {
        let paths: [&[u32]; 6] = [
            &[],
            &[0],
            &[0, 5],
            &[1, 0],
            &[1, 2],
            &[2],
        ];
        let encoded: Vec<BitPrio> = paths.iter().map(|p| BitPrio::from_path(p)).collect();
        for i in 0..paths.len() {
            for j in 0..paths.len() {
                let want = paths[i].cmp(paths[j]);
                let got = encoded[i].cmp(&encoded[j]);
                // A strict prefix compares Less as a slice but Equal as
                // a zero-padded bitvector; everything else must agree.
                let prefix = paths[i].len() < paths[j].len()
                    && paths[j][..paths[i].len()] == *paths[i]
                    && paths[j][paths[i].len()..].iter().all(|&c| c == 0);
                let rev_prefix = paths[j].len() < paths[i].len()
                    && paths[i][..paths[j].len()] == *paths[j]
                    && paths[i][paths[j].len()..].iter().all(|&c| c == 0);
                if prefix || rev_prefix {
                    assert_eq!(got, Ordering::Equal, "{:?} vs {:?}", paths[i], paths[j]);
                } else {
                    assert_eq!(got, want, "{:?} vs {:?}", paths[i], paths[j]);
                }
            }
        }
    }

    #[test]
    fn from_path_matches_hand_packed_children() {
        let by_path = BitPrio::from_path(&[3, 17]);
        let by_hand = BitPrio::root().child(3, 32).child(17, 32);
        assert_eq!(by_path, by_hand);
        assert_eq!(by_path.len(), 64);
    }

    #[test]
    fn from_path_empty_is_root() {
        assert_eq!(BitPrio::from_path(&[]), BitPrio::root());
    }

    #[test]
    fn from_path_handles_full_width_components() {
        let lo = BitPrio::from_path(&[u32::MAX - 1]);
        let hi = BitPrio::from_path(&[u32::MAX]);
        assert!(lo < hi);
    }

    #[test]
    fn debug_format() {
        let p = BitPrio::root().child(0b101, 3);
        assert_eq!(format!("{p:?}"), "0b101");
    }
}
