//! Byte-level wire codec for kernel envelopes crossing process
//! boundaries.
//!
//! The simulator and thread backends move [`SysMsg`] envelopes between
//! PEs as in-memory boxes: message bodies stay `Box<dyn Any>` and never
//! need a byte representation. The multi-process backend
//! ([`proc`](crate::proc)) cannot do that — every envelope crossing a
//! socket must become bytes and come back — so this module defines:
//!
//! * [`Wire`] — a small explicit codec trait (`encode` into a byte
//!   vector, `decode` from a [`WireReader`]), implemented for the
//!   primitives, the kernel id types, priorities, and trace/metric
//!   snapshot types. Applications implement it for their message and
//!   seed types, usually via the [`wire_struct!`](crate::wire_struct)
//!   field-list macro;
//! * a **wire table** inside the program [`Registry`]: message *bodies*
//!   are type-erased (`Box<dyn Any>`), so each concrete body type a
//!   program sends between PEs must be registered up front with
//!   [`ProgramBuilder::wire`](crate::program::ProgramBuilder::wire).
//!   Registration order assigns each type a small integer tag; because
//!   the parent and every worker process construct the *same* program
//!   (same registration sequence), the tags agree, and a fingerprint of
//!   the table is checked at the socket handshake to catch drift;
//! * [`encode_sys`]/[`decode_sys`] — the envelope codec covering every
//!   `SysMsg` variant, including the awkward ones: spanning-tree
//!   broadcasts carry a generator closure (encoded by materializing one
//!   copy; decoded into a closure that re-decodes the captured bytes
//!   per invocation) and reliable-layer frames carry a shared
//!   retransmit slot (decoded into a fresh slot — cross-process
//!   exactly-once comes from receiver sequence dedup, not slot
//!   sharing).
//!
//! Decoding trusts the peer: both ends are the same binary speaking
//! over a parent-spawned socket, so malformed input panics rather than
//! propagating errors (the parent turns a worker panic into a
//! structured abort).

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use multicomputer::Pe;

use crate::envelope::{MsgBody, SysMsg};
use crate::ids::{AccId, BocId, ChareId, ChareKind, EpId, MonoId, Notify, RoId, TableId, WoId};
use crate::priority::{BitPrio, Priority};
use crate::registry::Registry;
use crate::trace::{EntryWhat, EventKind, MsgClass, TraceEvent};

/// Cursor over a received byte buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(
            self.pos + n <= self.buf.len(),
            "wire: truncated frame (wanted {n} bytes, {} left)",
            self.remaining()
        );
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Read one byte.
    pub fn u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> &'a [u8] {
        self.take(n)
    }
}

/// Explicit byte codec for values that cross process boundaries.
///
/// Implementations must be self-delimiting: `decode` reads exactly the
/// bytes `encode` wrote. Derive-style helper: [`wire_struct!`](crate::wire_struct).
pub trait Wire: Sized + 'static {
    /// Append this value's byte representation to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Read one value back; panics on malformed input.
    fn decode(r: &mut WireReader) -> Self;
}

macro_rules! wire_int {
    ($($t:ty => $rd:ident),+ $(,)?) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut WireReader) -> Self {
                r.$rd() as $t
            }
        }
    )+};
}

wire_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64);

impl Wire for i32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader) -> Self {
        r.u32() as i32
    }
}

impl Wire for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader) -> Self {
        r.u64() as i64
    }
}

impl Wire for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(r: &mut WireReader) -> Self {
        f64::from_bits(r.u64())
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader) -> Self {
        r.u8() != 0
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader) -> Self {}
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader) -> Self {
        let n = r.u32() as usize;
        String::from_utf8(r.bytes(n).to_vec()).expect("wire: non-UTF-8 string")
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut WireReader) -> Self {
        let n = r.u32() as usize;
        (0..n).map(|_| T::decode(r)).collect()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader) -> Self {
        match r.u8() {
            0 => None,
            _ => Some(T::decode(r)),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut WireReader) -> Self {
        (A::decode(r), B::decode(r))
    }
}

// ---- kernel id types ---------------------------------------------------

macro_rules! wire_newtype_u32 {
    ($($t:ident),+ $(,)?) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                self.0.encode(out);
            }
            fn decode(r: &mut WireReader) -> Self {
                $t(r.u32())
            }
        }
    )+};
}

wire_newtype_u32!(Pe, ChareKind, EpId, BocId, AccId, MonoId, TableId, RoId);

impl Wire for WoId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader) -> Self {
        WoId(r.u64())
    }
}

impl Wire for ChareId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pe.encode(out);
        self.local.encode(out);
    }
    fn decode(r: &mut WireReader) -> Self {
        ChareId {
            pe: Pe::decode(r),
            local: r.u32(),
        }
    }
}

impl<C: crate::chare::ChareInit> Wire for crate::ids::Kind<C> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
    }
    fn decode(r: &mut WireReader) -> Self {
        crate::ids::Kind::new(ChareKind::decode(r))
    }
}

impl<B: crate::boc::BranchInit> Wire for crate::ids::Boc<B> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
    }
    fn decode(r: &mut WireReader) -> Self {
        crate::ids::Boc::new(BocId::decode(r))
    }
}

impl<A: crate::shared::Accum> Wire for crate::shared::Acc<A> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
    }
    fn decode(r: &mut WireReader) -> Self {
        crate::shared::Acc::new(AccId::decode(r))
    }
}

impl<M: crate::shared::Mono> Wire for crate::shared::MonoVar<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
    }
    fn decode(r: &mut WireReader) -> Self {
        crate::shared::MonoVar::new(MonoId::decode(r))
    }
}

impl<V: Clone + Send + 'static> Wire for crate::shared::TableRef<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
    }
    fn decode(r: &mut WireReader) -> Self {
        crate::shared::TableRef::new(TableId::decode(r))
    }
}

impl<T: Send + Sync + 'static> Wire for crate::shared::ReadOnly<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
    }
    fn decode(r: &mut WireReader) -> Self {
        crate::shared::ReadOnly::new(RoId::decode(r))
    }
}

impl Wire for Notify {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Notify::Chare(id, ep) => {
                out.push(0);
                id.encode(out);
                ep.encode(out);
            }
            Notify::Branch(boc, pe, ep) => {
                out.push(1);
                boc.encode(out);
                pe.encode(out);
                ep.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader) -> Self {
        match r.u8() {
            0 => Notify::Chare(ChareId::decode(r), EpId::decode(r)),
            1 => Notify::Branch(BocId::decode(r), Pe::decode(r), EpId::decode(r)),
            t => panic!("wire: bad Notify tag {t}"),
        }
    }
}

impl Wire for BitPrio {
    fn encode(&self, out: &mut Vec<u8>) {
        let len = self.len();
        len.encode(out);
        let mut byte = 0u8;
        for i in 0..len {
            byte = (byte << 1) | u8::from(self.bit(i));
            if i % 8 == 7 {
                out.push(byte);
                byte = 0;
            }
        }
        if !len.is_multiple_of(8) {
            out.push(byte << (8 - len % 8));
        }
    }
    fn decode(r: &mut WireReader) -> Self {
        let len = r.u32();
        let bytes = r.bytes(len.div_ceil(8) as usize);
        let mut p = BitPrio::root();
        for i in 0..len {
            let b = bytes[(i / 8) as usize] >> (7 - i % 8) & 1;
            p.push_bit(b != 0);
        }
        p
    }
}

impl Wire for Priority {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Priority::None => out.push(0),
            Priority::Int(k) => {
                out.push(1);
                k.encode(out);
            }
            Priority::Bits(b) => {
                out.push(2);
                b.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader) -> Self {
        match r.u8() {
            0 => Priority::None,
            1 => Priority::Int(i64::decode(r)),
            2 => Priority::Bits(BitPrio::decode(r)),
            t => panic!("wire: bad Priority tag {t}"),
        }
    }
}

// ---- trace types (for shipping worker telemetry to the parent) ---------

impl Wire for MsgClass {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            MsgClass::Seed => 0,
            MsgClass::Chare => 1,
            MsgClass::Branch => 2,
            MsgClass::Broadcast => 3,
            MsgClass::Shared => 4,
            MsgClass::Qd => 5,
            MsgClass::Balance => 6,
            MsgClass::Transport => 7,
            MsgClass::Batch => 8,
        });
    }
    fn decode(r: &mut WireReader) -> Self {
        match r.u8() {
            0 => MsgClass::Seed,
            1 => MsgClass::Chare,
            2 => MsgClass::Branch,
            3 => MsgClass::Broadcast,
            4 => MsgClass::Shared,
            5 => MsgClass::Qd,
            6 => MsgClass::Balance,
            7 => MsgClass::Transport,
            8 => MsgClass::Batch,
            t => panic!("wire: bad MsgClass tag {t}"),
        }
    }
}

impl Wire for EntryWhat {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            EntryWhat::Create(k) => {
                out.push(0);
                k.encode(out);
            }
            EntryWhat::Chare(slot) => {
                out.push(1);
                slot.encode(out);
            }
            EntryWhat::Branch(b) => {
                out.push(2);
                b.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader) -> Self {
        match r.u8() {
            0 => EntryWhat::Create(ChareKind::decode(r)),
            1 => EntryWhat::Chare(r.u32()),
            2 => EntryWhat::Branch(BocId::decode(r)),
            t => panic!("wire: bad EntryWhat tag {t}"),
        }
    }
}

impl Wire for EventKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            EventKind::EntryBegin { what, ep } => {
                out.push(0);
                what.encode(out);
                ep.encode(out);
            }
            EventKind::EntryEnd { msgs_sent } => {
                out.push(1);
                msgs_sent.encode(out);
            }
            EventKind::MsgSend { to, class, bytes, hops } => {
                out.push(2);
                to.encode(out);
                class.encode(out);
                bytes.encode(out);
                hops.encode(out);
            }
            EventKind::MsgRecv { from, class, bytes } => {
                out.push(3);
                from.encode(out);
                class.encode(out);
                bytes.encode(out);
            }
            EventKind::SeedKept { kind, hops } => {
                out.push(4);
                kind.encode(out);
                hops.encode(out);
            }
            EventKind::SeedForwarded { kind, to, hops } => {
                out.push(5);
                kind.encode(out);
                to.encode(out);
                hops.encode(out);
            }
            EventKind::SeedRedirected { to } => {
                out.push(6);
                to.encode(out);
            }
            EventKind::Retransmit { to, seq } => {
                out.push(7);
                to.encode(out);
                seq.encode(out);
            }
            EventKind::QueueSample { len } => {
                out.push(8);
                len.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader) -> Self {
        match r.u8() {
            0 => EventKind::EntryBegin {
                what: EntryWhat::decode(r),
                ep: Option::<EpId>::decode(r),
            },
            1 => EventKind::EntryEnd { msgs_sent: r.u32() },
            2 => EventKind::MsgSend {
                to: Pe::decode(r),
                class: MsgClass::decode(r),
                bytes: r.u32(),
                hops: r.u32(),
            },
            3 => EventKind::MsgRecv {
                from: Pe::decode(r),
                class: MsgClass::decode(r),
                bytes: r.u32(),
            },
            4 => EventKind::SeedKept {
                kind: ChareKind::decode(r),
                hops: r.u32(),
            },
            5 => EventKind::SeedForwarded {
                kind: ChareKind::decode(r),
                to: Pe::decode(r),
                hops: r.u32(),
            },
            6 => EventKind::SeedRedirected { to: Pe::decode(r) },
            7 => EventKind::Retransmit {
                to: Pe::decode(r),
                seq: r.u64(),
            },
            8 => EventKind::QueueSample { len: r.u32() },
            t => panic!("wire: bad EventKind tag {t}"),
        }
    }
}

impl Wire for TraceEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        self.at_ns.encode(out);
        self.pe.encode(out);
        self.kind.encode(out);
    }
    fn decode(r: &mut WireReader) -> Self {
        TraceEvent {
            at_ns: r.u64(),
            pe: Pe::decode(r),
            kind: EventKind::decode(r),
        }
    }
}

/// Implement [`Wire`] for a struct by listing its fields in declaration
/// order:
///
/// ```ignore
/// wire_struct!(FibSeed { n, grain, parent, fib });
/// ```
///
/// Field types must themselves implement `Wire`. Keep the field list in
/// sync with the struct — the codec is positional.
#[macro_export]
macro_rules! wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::wire::Wire for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                $( $crate::wire::Wire::encode(&self.$field, out); )+
            }
            fn decode(r: &mut $crate::wire::WireReader) -> Self {
                Self { $( $field: $crate::wire::Wire::decode(r) ),+ }
            }
        }
    };
}

// Kernel notification bodies every program may receive.

impl Wire for crate::shared::QuiescenceMsg {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader) -> Self {
        crate::shared::QuiescenceMsg
    }
}

crate::wire_struct!(crate::shared::WoReady { id });
crate::wire_struct!(crate::shared::TableAck { key, existed });

impl<V: Wire> Wire for crate::shared::TableGot<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        self.value.encode(out);
    }
    fn decode(r: &mut WireReader) -> Self {
        crate::shared::TableGot {
            key: u64::decode(r),
            value: Option::<V>::decode(r),
        }
    }
}

impl<V: Wire> Wire for crate::shared::AccResult<V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.value.encode(out);
    }
    fn decode(r: &mut WireReader) -> Self {
        crate::shared::AccResult {
            value: V::decode(r),
        }
    }
}

// ---- the body-type registry --------------------------------------------

type EncodeFn = Box<dyn Fn(&dyn Any, &mut Vec<u8>) + Send + Sync>;
type DecodeFn = Box<dyn Fn(&mut WireReader) -> MsgBody + Send + Sync>;
type DecodeSharedFn = Box<dyn Fn(&mut WireReader) -> Arc<dyn Any + Send + Sync> + Send + Sync>;

struct WireEntry {
    name: &'static str,
    encode: EncodeFn,
    decode: DecodeFn,
    decode_shared: DecodeSharedFn,
}

/// Registration-ordered table of message-body codecs.
///
/// Tags are indices into the registration order, so two processes that
/// build the same program get the same tags; [`WireTable::fingerprint`]
/// is checked at the socket handshake to catch any divergence.
pub(crate) struct WireTable {
    tags: HashMap<TypeId, u32>,
    entries: Vec<WireEntry>,
}

impl WireTable {
    /// A table pre-seeded with the primitives and kernel notification
    /// bodies every program may send (fixed tags 0..N).
    pub(crate) fn new() -> Self {
        let mut t = WireTable {
            tags: HashMap::new(),
            entries: Vec::new(),
        };
        t.register::<()>();
        t.register::<bool>();
        t.register::<u8>();
        t.register::<u16>();
        t.register::<u32>();
        t.register::<u64>();
        t.register::<i64>();
        t.register::<f64>();
        t.register::<String>();
        t.register::<crate::shared::QuiescenceMsg>();
        t.register::<crate::shared::WoReady>();
        t.register::<crate::shared::TableAck>();
        t
    }

    /// Register `T`'s codec (idempotent; repeat registrations keep the
    /// first tag).
    pub(crate) fn register<T: Wire + Send + Sync + 'static>(&mut self) {
        let id = TypeId::of::<T>();
        if self.tags.contains_key(&id) {
            return;
        }
        self.tags.insert(id, self.entries.len() as u32);
        self.entries.push(WireEntry {
            name: std::any::type_name::<T>(),
            encode: Box::new(|v, out| {
                v.downcast_ref::<T>().expect("tag/type mismatch").encode(out);
            }),
            decode: Box::new(|r| Box::new(T::decode(r))),
            decode_shared: Box::new(|r| Arc::new(T::decode(r))),
        });
    }

    /// Number of registered body types.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// FNV-1a hash over the registration sequence; parent and workers
    /// compare these at handshake before exchanging envelopes.
    pub(crate) fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for e in &self.entries {
            eat(e.name.as_bytes());
            eat(&[0xff]);
        }
        h
    }

    /// Encode a type-erased body as `tag + bytes`. Panics (naming the
    /// context and the registered set) if the concrete type was never
    /// registered.
    pub(crate) fn encode_body(&self, what: &str, body: &dyn Any, out: &mut Vec<u8>) {
        let id = body.type_id();
        let Some(&tag) = self.tags.get(&id) else {
            panic!(
                "wire: {what} carries a body type with no registered codec ({id:?}); \
                 register it with ProgramBuilder::wire::<T>() so the procs backend \
                 can serialize it (registered: {})",
                self.entries.iter().map(|e| e.name).collect::<Vec<_>>().join(", ")
            )
        };
        tag.encode(out);
        (self.entries[tag as usize].encode)(body, out);
    }

    /// Decode a `tag + bytes` body back into a boxed value.
    pub(crate) fn decode_body(&self, r: &mut WireReader) -> MsgBody {
        let tag = r.u32() as usize;
        (self.entries[tag].decode)(r)
    }

    /// Decode a `tag + bytes` body into a shared (`Arc`) value — the
    /// write-once store replicates bodies by reference.
    pub(crate) fn decode_shared(&self, r: &mut WireReader) -> Arc<dyn Any + Send + Sync> {
        let tag = r.u32() as usize;
        (self.entries[tag].decode_shared)(r)
    }
}

// ---- the envelope codec ------------------------------------------------

const T_BATCH: u8 = 0;
const T_TREECAST: u8 = 1;
const T_NEWCHARE: u8 = 2;
const T_CHAREMSG: u8 = 3;
const T_BRANCHMSG: u8 = 4;
const T_ACCCOLLECT: u8 = 5;
const T_ACCPART: u8 = 6;
const T_MONOUPDATE: u8 = 7;
const T_TABLEPUT: u8 = 8;
const T_TABLEGET: u8 = 9;
const T_TABLEDELETE: u8 = 10;
const T_WOSTORE: u8 = 11;
const T_WOACK: u8 = 12;
const T_QDSTART: u8 = 13;
const T_QDPOLL: u8 = 14;
const T_QDCOUNT: u8 = 15;
const T_LOADSTATUS: u8 = 16;
const T_WORKREQ: u8 = 17;
const T_WORKNACK: u8 = 18;
const T_RELDATA: u8 = 19;
const T_RELACK: u8 = 20;

/// Encode one kernel envelope (recursively, by reference — the envelope
/// is not consumed, so the reliable layer can retransmit the same slot).
pub(crate) fn encode_sys(reg: &Registry, sys: &SysMsg, out: &mut Vec<u8>) {
    let w = &reg.wire;
    match sys {
        SysMsg::Batch(inner) => {
            out.push(T_BATCH);
            (inner.len() as u32).encode(out);
            for m in inner {
                encode_sys(reg, m, out);
            }
        }
        SysMsg::TreeCast {
            origin,
            counted,
            bytes,
            gen,
        } => {
            out.push(T_TREECAST);
            origin.encode(out);
            counted.encode(out);
            bytes.encode(out);
            // Materialize one copy of the generated envelope; the
            // receiver rebuilds a generator that decodes it per call.
            let mut blob = Vec::new();
            encode_sys(reg, &gen(), &mut blob);
            blob.encode(out);
        }
        SysMsg::NewChare {
            kind,
            seed,
            bytes,
            prio,
            hops,
        } => {
            out.push(T_NEWCHARE);
            kind.encode(out);
            bytes.encode(out);
            prio.encode(out);
            hops.encode(out);
            w.encode_body("NewChare seed", seed.as_ref(), out);
        }
        SysMsg::ChareMsg {
            target,
            ep,
            body,
            bytes,
            prio,
        } => {
            out.push(T_CHAREMSG);
            target.encode(out);
            ep.encode(out);
            bytes.encode(out);
            prio.encode(out);
            w.encode_body("ChareMsg body", body.as_ref(), out);
        }
        SysMsg::BranchMsg {
            boc,
            ep,
            body,
            bytes,
            prio,
        } => {
            out.push(T_BRANCHMSG);
            boc.encode(out);
            ep.encode(out);
            bytes.encode(out);
            prio.encode(out);
            w.encode_body("BranchMsg body", body.as_ref(), out);
        }
        SysMsg::AccCollect {
            acc,
            token,
            requester,
        } => {
            out.push(T_ACCCOLLECT);
            acc.encode(out);
            token.encode(out);
            requester.encode(out);
        }
        SysMsg::AccPart { acc, token, part } => {
            out.push(T_ACCPART);
            acc.encode(out);
            token.encode(out);
            w.encode_body("AccPart value", part.as_ref(), out);
        }
        SysMsg::MonoUpdate { mono, value } => {
            out.push(T_MONOUPDATE);
            mono.encode(out);
            w.encode_body("MonoUpdate value", value.as_ref(), out);
        }
        SysMsg::TablePut {
            table,
            key,
            value,
            bytes,
            notify,
        } => {
            out.push(T_TABLEPUT);
            table.encode(out);
            key.encode(out);
            bytes.encode(out);
            notify.encode(out);
            w.encode_body("TablePut value", value.as_ref(), out);
        }
        SysMsg::TableGet { table, key, notify } => {
            out.push(T_TABLEGET);
            table.encode(out);
            key.encode(out);
            notify.encode(out);
        }
        SysMsg::TableDelete { table, key, notify } => {
            out.push(T_TABLEDELETE);
            table.encode(out);
            key.encode(out);
            notify.encode(out);
        }
        SysMsg::WoStore { wo, value, bytes } => {
            out.push(T_WOSTORE);
            wo.encode(out);
            bytes.encode(out);
            w.encode_body("WoStore value", value.as_ref(), out);
        }
        SysMsg::WoAck { wo } => {
            out.push(T_WOACK);
            wo.encode(out);
        }
        SysMsg::QdStart { notify } => {
            out.push(T_QDSTART);
            notify.encode(out);
        }
        SysMsg::QdPoll { wave } => {
            out.push(T_QDPOLL);
            wave.encode(out);
        }
        SysMsg::QdCount {
            wave,
            sent,
            recv,
            idle,
        } => {
            out.push(T_QDCOUNT);
            wave.encode(out);
            sent.encode(out);
            recv.encode(out);
            idle.encode(out);
        }
        SysMsg::LoadStatus { load } => {
            out.push(T_LOADSTATUS);
            load.encode(out);
        }
        SysMsg::WorkReq { origin, ttl } => {
            out.push(T_WORKREQ);
            origin.encode(out);
            ttl.encode(out);
        }
        SysMsg::WorkNack => out.push(T_WORKNACK),
        SysMsg::RelData { seq, bytes, slot } => {
            out.push(T_RELDATA);
            seq.encode(out);
            bytes.encode(out);
            // Peek the retransmit slot without taking it: the sender
            // keeps co-ownership for retransmission. An already-taken
            // slot encodes as an empty frame (pure duplicate).
            let guard = slot.lock().expect("rel slot");
            match guard.as_ref() {
                None => out.push(0),
                Some(inner) => {
                    out.push(1);
                    encode_sys(reg, inner, out);
                }
            }
        }
        SysMsg::RelAck { seqs } => {
            out.push(T_RELACK);
            seqs.encode(out);
        }
    }
}

/// Decode one kernel envelope. `reg` rides inside rebuilt broadcast
/// generators, hence the `Arc`.
pub(crate) fn decode_sys(reg: &Arc<Registry>, r: &mut WireReader) -> SysMsg {
    let w = &reg.wire;
    match r.u8() {
        T_BATCH => {
            let n = r.u32() as usize;
            SysMsg::Batch((0..n).map(|_| decode_sys(reg, r)).collect())
        }
        T_TREECAST => {
            let origin = Pe::decode(r);
            let counted = bool::decode(r);
            let bytes = r.u32();
            let blob: Arc<Vec<u8>> = Arc::new(Vec::<u8>::decode(r));
            let reg = Arc::clone(reg);
            SysMsg::TreeCast {
                origin,
                counted,
                bytes,
                gen: Arc::new(move || {
                    let mut r = WireReader::new(&blob);
                    decode_sys(&reg, &mut r)
                }),
            }
        }
        T_NEWCHARE => {
            let kind = ChareKind::decode(r);
            let bytes = r.u32();
            let prio = Priority::decode(r);
            let hops = r.u32();
            let seed = w.decode_body(r);
            SysMsg::NewChare {
                kind,
                seed,
                bytes,
                prio,
                hops,
            }
        }
        T_CHAREMSG => {
            let target = ChareId::decode(r);
            let ep = EpId::decode(r);
            let bytes = r.u32();
            let prio = Priority::decode(r);
            let body = w.decode_body(r);
            SysMsg::ChareMsg {
                target,
                ep,
                body,
                bytes,
                prio,
            }
        }
        T_BRANCHMSG => {
            let boc = BocId::decode(r);
            let ep = EpId::decode(r);
            let bytes = r.u32();
            let prio = Priority::decode(r);
            let body = w.decode_body(r);
            SysMsg::BranchMsg {
                boc,
                ep,
                body,
                bytes,
                prio,
            }
        }
        T_ACCCOLLECT => SysMsg::AccCollect {
            acc: AccId::decode(r),
            token: r.u64(),
            requester: Pe::decode(r),
        },
        T_ACCPART => {
            let acc = AccId::decode(r);
            let token = r.u64();
            let part = w.decode_body(r);
            SysMsg::AccPart { acc, token, part }
        }
        T_MONOUPDATE => {
            let mono = MonoId::decode(r);
            let value = w.decode_body(r);
            SysMsg::MonoUpdate { mono, value }
        }
        T_TABLEPUT => {
            let table = TableId::decode(r);
            let key = r.u64();
            let bytes = r.u32();
            let notify = Option::<Notify>::decode(r);
            let value = w.decode_body(r);
            SysMsg::TablePut {
                table,
                key,
                value,
                bytes,
                notify,
            }
        }
        T_TABLEGET => SysMsg::TableGet {
            table: TableId::decode(r),
            key: r.u64(),
            notify: Notify::decode(r),
        },
        T_TABLEDELETE => SysMsg::TableDelete {
            table: TableId::decode(r),
            key: r.u64(),
            notify: Option::<Notify>::decode(r),
        },
        T_WOSTORE => {
            let wo = WoId::decode(r);
            let bytes = r.u32();
            let value = w.decode_shared(r);
            SysMsg::WoStore { wo, value, bytes }
        }
        T_WOACK => SysMsg::WoAck { wo: WoId::decode(r) },
        T_QDSTART => SysMsg::QdStart {
            notify: Notify::decode(r),
        },
        T_QDPOLL => SysMsg::QdPoll { wave: r.u64() },
        T_QDCOUNT => SysMsg::QdCount {
            wave: r.u64(),
            sent: r.u64(),
            recv: r.u64(),
            idle: bool::decode(r),
        },
        T_LOADSTATUS => SysMsg::LoadStatus { load: r.u32() },
        T_WORKREQ => SysMsg::WorkReq {
            origin: Pe::decode(r),
            ttl: r.u8(),
        },
        T_WORKNACK => SysMsg::WorkNack,
        T_RELDATA => {
            let seq = r.u64();
            let bytes = r.u32();
            let inner = match r.u8() {
                0 => None,
                _ => Some(decode_sys(reg, r)),
            };
            // A fresh slot: cross-process exactly-once comes from the
            // receiver's sequence dedup, not from slot co-ownership.
            SysMsg::RelData {
                seq,
                bytes,
                slot: Arc::new(Mutex::new(inner)),
            }
        }
        T_RELACK => SysMsg::RelAck {
            seqs: Vec::<u64>::decode(r),
        },
        t => panic!("wire: bad SysMsg tag {t}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::priority::Priority;

    fn roundtrip_sys(reg: &Arc<Registry>, sys: &SysMsg) -> SysMsg {
        let mut out = Vec::new();
        encode_sys(reg, sys, &mut out);
        let mut r = WireReader::new(&out);
        let back = decode_sys(reg, &mut r);
        assert_eq!(r.remaining(), 0, "codec must be self-delimiting");
        back
    }

    fn test_registry() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    #[test]
    fn primitive_roundtrips() {
        let mut out = Vec::new();
        42u64.encode(&mut out);
        (-7i64).encode(&mut out);
        3.5f64.encode(&mut out);
        true.encode(&mut out);
        "hello".to_string().encode(&mut out);
        vec![1u32, 2, 3].encode(&mut out);
        Some(9u8).encode(&mut out);
        Option::<u8>::None.encode(&mut out);
        let mut r = WireReader::new(&out);
        assert_eq!(u64::decode(&mut r), 42);
        assert_eq!(i64::decode(&mut r), -7);
        assert_eq!(f64::decode(&mut r), 3.5);
        assert!(bool::decode(&mut r));
        assert_eq!(String::decode(&mut r), "hello");
        assert_eq!(Vec::<u32>::decode(&mut r), vec![1, 2, 3]);
        assert_eq!(Option::<u8>::decode(&mut r), Some(9));
        assert_eq!(Option::<u8>::decode(&mut r), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bit_priority_roundtrips_exactly() {
        let mut p = BitPrio::root();
        for (i, bit) in [true, false, true, true, false, false, true, false, true, true]
            .iter()
            .enumerate()
        {
            p.push_bit(*bit);
            // Roundtrip at every length, including non-byte-aligned.
            let mut out = Vec::new();
            p.encode(&mut out);
            let mut r = WireReader::new(&out);
            let back = BitPrio::decode(&mut r);
            assert_eq!(back.len(), p.len(), "len at step {i}");
            for j in 0..p.len() {
                assert_eq!(back.bit(j), p.bit(j), "bit {j} at step {i}");
            }
        }
    }

    #[test]
    fn priority_variants_roundtrip() {
        let reg = test_registry();
        for prio in [
            Priority::None,
            Priority::Int(-12345),
            Priority::Bits(BitPrio::root().child(5, 3)),
        ] {
            let sys = SysMsg::ChareMsg {
                target: ChareId {
                    pe: Pe(2),
                    local: 7,
                },
                ep: EpId(3),
                body: Box::new(42u64),
                bytes: 8,
                prio: prio.clone(),
            };
            match roundtrip_sys(&reg, &sys) {
                SysMsg::ChareMsg {
                    target,
                    ep,
                    body,
                    bytes,
                    prio: p,
                } => {
                    assert_eq!(target, ChareId { pe: Pe(2), local: 7 });
                    assert_eq!(ep, EpId(3));
                    assert_eq!(bytes, 8);
                    assert_eq!(*body.downcast::<u64>().unwrap(), 42);
                    assert_eq!(p.int_key(), prio.int_key());
                }
                ref _other => panic!("wrong variant"),
            }
        }
    }

    #[test]
    fn treecast_generator_survives_the_wire() {
        let reg = test_registry();
        let sys = SysMsg::TreeCast {
            origin: Pe(1),
            counted: true,
            bytes: 16,
            gen: Arc::new(|| SysMsg::MonoUpdate {
                mono: MonoId(0),
                value: Box::new(99u64),
            }),
        };
        match roundtrip_sys(&reg, &sys) {
            SysMsg::TreeCast {
                origin,
                counted,
                bytes,
                gen,
            } => {
                assert_eq!(origin, Pe(1));
                assert!(counted);
                assert_eq!(bytes, 16);
                // The rebuilt generator must mint fresh copies per call.
                for _ in 0..3 {
                    match gen() {
                        SysMsg::MonoUpdate { mono, value } => {
                            assert_eq!(mono, MonoId(0));
                            assert_eq!(*value.downcast::<u64>().unwrap(), 99);
                        }
                        ref _other => panic!("wrong inner"),
                    }
                }
            }
            ref _other => panic!("wrong variant"),
        }
    }

    #[test]
    fn reldata_decodes_into_fresh_slot() {
        let reg = test_registry();
        let slot = Arc::new(Mutex::new(Some(SysMsg::QdPoll { wave: 4 })));
        let sys = SysMsg::RelData {
            seq: 9,
            bytes: 32,
            slot: Arc::clone(&slot),
        };
        match roundtrip_sys(&reg, &sys) {
            SysMsg::RelData {
                seq,
                bytes,
                slot: got,
            } => {
                assert_eq!((seq, bytes), (9, 32));
                assert!(!Arc::ptr_eq(&slot, &got), "receiver gets its own slot");
                match got.lock().unwrap().take() {
                    Some(SysMsg::QdPoll { wave }) => assert_eq!(wave, 4),
                    ref _other => panic!("wrong inner"),
                }
                // The sender's slot is untouched — still retransmittable.
                assert!(slot.lock().unwrap().is_some());
            }
            ref _other => panic!("wrong variant"),
        }
    }

    #[test]
    fn taken_reldata_slot_encodes_as_empty_frame() {
        let reg = test_registry();
        let sys = SysMsg::RelData {
            seq: 2,
            bytes: 8,
            slot: Arc::new(Mutex::new(None)),
        };
        match roundtrip_sys(&reg, &sys) {
            SysMsg::RelData { slot, .. } => assert!(slot.lock().unwrap().is_none()),
            ref _other => panic!("wrong variant"),
        }
    }

    #[test]
    fn batch_and_control_variants_roundtrip() {
        let reg = test_registry();
        let sys = SysMsg::Batch(vec![
            SysMsg::QdCount {
                wave: 1,
                sent: 10,
                recv: 9,
                idle: false,
            },
            SysMsg::LoadStatus { load: 3 },
            SysMsg::WorkReq {
                origin: Pe(2),
                ttl: 5,
            },
            SysMsg::WorkNack,
            SysMsg::RelAck { seqs: vec![1, 2, 5] },
            SysMsg::WoAck { wo: WoId(77) },
        ]);
        match roundtrip_sys(&reg, &sys) {
            SysMsg::Batch(inner) => {
                assert_eq!(inner.len(), 6);
                assert!(matches!(inner[0], SysMsg::QdCount { wave: 1, sent: 10, recv: 9, idle: false }));
                assert!(matches!(inner[1], SysMsg::LoadStatus { load: 3 }));
                assert!(matches!(inner[3], SysMsg::WorkNack));
                match &inner[4] {
                    SysMsg::RelAck { seqs } => assert_eq!(seqs, &vec![1, 2, 5]),
                    _other => panic!("wrong ack"),
                }
            }
            ref _other => panic!("wrong variant"),
        }
    }

    #[test]
    fn wostore_shared_body_roundtrips() {
        let reg = test_registry();
        let sys = SysMsg::WoStore {
            wo: WoId(3),
            value: Arc::new("shared".to_string()),
            bytes: 6,
        };
        match roundtrip_sys(&reg, &sys) {
            SysMsg::WoStore { wo, value, bytes } => {
                assert_eq!((wo, bytes), (WoId(3), 6));
                assert_eq!(value.downcast_ref::<String>().unwrap(), "shared");
            }
            ref _other => panic!("wrong variant"),
        }
    }

    #[test]
    #[should_panic(expected = "no registered codec")]
    fn unregistered_body_type_panics_with_guidance() {
        struct Opaque;
        let reg = test_registry();
        let sys = SysMsg::MonoUpdate {
            mono: MonoId(0),
            value: Box::new(Opaque),
        };
        let mut out = Vec::new();
        encode_sys(&reg, &sys, &mut out);
    }

    #[test]
    fn fingerprint_tracks_registration_sequence() {
        let a = WireTable::new();
        let b = WireTable::new();
        assert_eq!(a.fingerprint(), b.fingerprint(), "same sequence, same print");
        let mut c = WireTable::new();
        c.register::<Vec<u64>>();
        assert_ne!(a.fingerprint(), c.fingerprint(), "extra type changes print");
        // Idempotent re-registration keeps the fingerprint (and tags).
        let mut d = WireTable::new();
        d.register::<Vec<u64>>();
        d.register::<Vec<u64>>();
        assert_eq!(c.fingerprint(), d.fingerprint());
        assert_eq!(c.len(), d.len());
    }

    #[test]
    fn trace_event_roundtrips() {
        let evs = vec![
            TraceEvent {
                at_ns: 5,
                pe: Pe(1),
                kind: EventKind::Retransmit { to: Pe(2), seq: 7 },
            },
            TraceEvent {
                at_ns: 9,
                pe: Pe(0),
                kind: EventKind::MsgSend {
                    to: Pe(3),
                    class: MsgClass::Seed,
                    bytes: 48,
                    hops: 2,
                },
            },
            TraceEvent {
                at_ns: 11,
                pe: Pe(2),
                kind: EventKind::EntryBegin {
                    what: EntryWhat::Branch(BocId(1)),
                    ep: Some(EpId(4)),
                },
            },
        ];
        let mut out = Vec::new();
        evs.encode(&mut out);
        let mut r = WireReader::new(&out);
        assert_eq!(Vec::<TraceEvent>::decode(&mut r), evs);
        assert_eq!(r.remaining(), 0);
    }
}
