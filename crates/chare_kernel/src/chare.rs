//! Chares: the message-driven concurrent objects of the kernel.
//!
//! A chare is a small object with private state and *entry points*. It is
//! created from a *seed message* (possibly on a different PE than its
//! creator — placement is the load balancer's job) and thereafter executes
//! only in response to messages sent to its entry points. Entry methods
//! run to completion; there is no blocking receive and no preemption.
//!
//! This module defines the two traits a chare type implements and the
//! message-downcast helper used inside `entry` methods.

use crate::ctx::Ctx;
use crate::envelope::MsgBody;
use crate::ids::EpId;
use crate::msg::Message;

/// A live chare: dispatches entry-point invocations.
///
/// The C-era kernel generated this dispatch from entry-point tables; in
/// Rust you write the `match` yourself:
///
/// ```ignore
/// impl Chare for Fib {
///     fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx) {
///         match ep {
///             RESULT => self.on_result(cast(msg), ctx),
///             _ => unreachable!("unknown entry point"),
///         }
///     }
/// }
/// ```
pub trait Chare: Send + 'static {
    /// Handle one message addressed to entry point `ep`. Runs to
    /// completion; may send messages, create chares and use shared
    /// variables through `ctx`.
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx);
}

/// A chare type that can be instantiated from a seed message.
///
/// Register with [`ProgramBuilder::chare`](crate::program::ProgramBuilder::chare)
/// to obtain the [`Kind`](crate::ids::Kind) handle used in
/// [`Ctx::create`].
pub trait ChareInit: Chare + Sized {
    /// The constructor message type.
    type Seed: Message;

    /// Construct the chare from its seed. Runs on the PE the load
    /// balancer placed the seed on; `ctx` is fully usable (the new chare
    /// may immediately send messages or create children).
    fn create(seed: Self::Seed, ctx: &mut Ctx) -> Self;
}

/// Downcast an entry-point message body to its concrete type.
///
/// # Panics
/// Panics with the expected type name if the body has a different type —
/// which indicates an entry-point numbering bug in the application.
pub fn cast<M: Message>(msg: MsgBody) -> M {
    match msg.downcast::<M>() {
        Ok(b) => *b,
        Err(_) => panic!(
            "entry point received a message of the wrong type (expected {})",
            std::any::type_name::<M>()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_roundtrip() {
        let body: MsgBody = Box::new(42u64);
        assert_eq!(cast::<u64>(body), 42);
    }

    #[test]
    #[should_panic(expected = "expected u32")]
    fn cast_wrong_type_panics() {
        let body: MsgBody = Box::new(42u64);
        let _ = cast::<u32>(body);
    }
}
