//! Reliable inter-PE delivery: sequence numbers, acks, retransmission.
//!
//! The simulated multicomputer can be configured to drop, duplicate or
//! delay packets and to stall or crash PEs (see `multicomputer::fault`).
//! The original Chare Kernel assumed a lossless transport; this module
//! restores that guarantee on top of a lossy one, the way the real
//! machines' message layers did:
//!
//! * every remote kernel message is wrapped in a [`SysMsg::RelData`]
//!   frame carrying a per-(sender, receiver) sequence number;
//! * the receiver acknowledges every frame it sees (fresh or duplicate)
//!   and delivers carried messages exactly once and *in sequence order*
//!   per link: out-of-order arrivals wait in a reorder buffer until the
//!   gap below them is filled, preserving the FIFO-channel property
//!   programs could rely on before faults existed (ghost-row exchange,
//!   phased protocols). A shared [`RelSlot`] that the first arrival
//!   empties makes duplicates harmless;
//! * the sender keeps unacknowledged frames in a retransmit buffer and
//!   resends on an alarm-driven timer with exponential backoff — but
//!   only the head-of-line frame per destination, the one the in-order
//!   receiver is actually blocked on; retransmitting the tail too would
//!   multiply the load precisely when the network is already behind;
//! * a per-destination send window caps unacknowledged frames in
//!   flight; excess messages queue FIFO and are released by returning
//!   acks. Without this cap, a burst larger than the timeout's worth of
//!   NIC injections makes every frame in the tail look lost, and the
//!   resulting retransmissions snowball into congestion collapse;
//! * a *seed* (`NewChare` still subject to load balancing) that exhausts
//!   its retry budget is reclaimed from its slot and re-dispatched to a
//!   different PE — this is what lets work scheduled onto a crashed PE
//!   finish elsewhere. The emptied frame keeps retransmitting as a hole
//!   filler so the receiver's in-order window can advance past its seq.
//!   Non-seed messages are pinned to their destination (they address
//!   state that lives there) and retry forever with capped backoff.
//!
//! Quiescence detection stays correct because counting happens on the
//! *inner* messages: the sender counts at the original logical send, the
//! receiver counts when it consumes a delivered body, and
//! retransmissions, duplicates and acks touch neither counter. The
//! kernel additionally refuses to report itself idle to the QD
//! coordinator while any *user-counted* frame is unacknowledged or any
//! arrival waits in a reorder buffer ([`RelState::quiet`]) — but not
//! while mere control frames (the QD poll itself, load reports) are in
//! flight, which would deadlock detection against its own traffic.
//!
//! This type only does bookkeeping; the send/receive/alarm plumbing
//! lives in `node.rs` so that all network interaction stays in one
//! place.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use multicomputer::{Cost, Payload, Pe, Replayable};

use crate::envelope::{RelSlot, SysMsg};

/// Tuning knobs for the reliable-delivery layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Base retransmission timeout. Doubled on every retry (capped at
    /// `timeout << 5`). Must comfortably exceed one data + ack round
    /// trip *with a full window queued at the NIC* — the paper-preset
    /// machines serialize injections at ~150–700µs per message, so a
    /// window of frames ahead of the ack inflates the observed RTT by
    /// `window × injection`. A timeout below that triggers spurious
    /// retransmissions which add their own load; without the window cap
    /// that feedback loop is congestion collapse.
    pub timeout: Cost,
    /// Retries before a load-balanceable seed is presumed undeliverable
    /// and re-dispatched to a different PE. Messages that must reach
    /// their destination (chare/branch messages, placed seeds, shared
    /// variable traffic) ignore this and retry indefinitely.
    pub seed_retry_limit: u32,
    /// Flow control: at most this many unacknowledged frames per
    /// destination. Further sends queue FIFO and are released as acks
    /// come back, bounding both the receiver's reorder buffer and the
    /// RTT inflation that feeds retransmit storms.
    pub window: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            timeout: Cost::millis(5),
            seed_retry_limit: 5,
            window: 32,
        }
    }
}

/// Why a [`ReliableConfig`] cannot work, from
/// [`ReliableConfig::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReliableConfigError {
    /// `window == 0`: no frame may ever be in flight, so the first
    /// submitted message queues forever and the run hangs at boot.
    ZeroWindow,
    /// `timeout == 0`: the retransmit alarm would be due the instant a
    /// frame is sent; every frame retransmits on every alarm tick and
    /// seeds exhaust their retry budget before the first copy can even
    /// arrive.
    ZeroTimeout,
}

impl std::fmt::Display for ReliableConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReliableConfigError::ZeroWindow => {
                write!(f, "reliable config: window must be >= 1 (a zero send window can never transmit anything)")
            }
            ReliableConfigError::ZeroTimeout => {
                write!(f, "reliable config: timeout must be nonzero (a zero retransmit timeout expires frames as they are sent)")
            }
        }
    }
}

impl std::error::Error for ReliableConfigError {}

impl ReliableConfig {
    /// Reject configurations that cannot deliver anything: a zero send
    /// window blocks every message forever, a zero timeout expires
    /// frames the moment they are registered. Both would surface as a
    /// hang or a spurious redirect storm deep inside a run; failing
    /// fast at program construction turns that into a diagnosable
    /// error. The desim campaign's scenario generator relies on this to
    /// keep randomized configs inside the deliverable envelope.
    pub fn validate(&self) -> Result<(), ReliableConfigError> {
        if self.window == 0 {
            return Err(ReliableConfigError::ZeroWindow);
        }
        if self.timeout.0 == 0 {
            return Err(ReliableConfigError::ZeroTimeout);
        }
        Ok(())
    }
}

/// Largest backoff shift: retries beyond this reuse `timeout << 5`.
/// Because only the head-of-line frame per destination ever goes back
/// on the wire, the worst-case retransmit load is one injection per
/// destination per capped interval — small enough that the cap can
/// stay low, which keeps hole-repair latency (and thus completion time
/// under sustained loss) proportional to the base timeout rather than
/// to a deep backoff tail.
const MAX_BACKOFF_SHIFT: u32 = 5;

/// One unacknowledged frame in the sender's retransmit buffer.
struct Pending {
    /// Destination PE.
    to: Pe,
    /// Co-owned body slot (shared with every copy of the frame on the
    /// wire; empty once the receiver consumed it).
    slot: RelSlot,
    /// Wire size of the carried message (for re-framing).
    inner_bytes: u32,
    /// Retransmissions so far.
    retries: u32,
    /// Absolute sim time (ns) at which the next retransmission is due.
    deadline: u64,
    /// Whether the body is a balanceable seed (eligible for redirect).
    is_seed: bool,
    /// Whether the body carries quiescence-counted user traffic (gates
    /// the idle report; see [`RelState::quiet`]).
    counted: bool,
}

/// Whether a message carries quiescence-counted user traffic, looking
/// through combining batches (whose wrapper is itself uncounted).
fn carries_user(msg: &SysMsg) -> bool {
    match msg {
        SysMsg::Batch(inner) => inner.iter().any(carries_user),
        other => other.counted(),
    }
}

/// A frame to put back on the wire, produced by [`RelState::on_alarm`].
pub(crate) struct Retransmit {
    /// Destination PE.
    pub to: Pe,
    /// Sequence number of the frame.
    pub seq: u64,
    /// Wire size of the carried message.
    pub inner_bytes: u32,
    /// Shared body slot.
    pub slot: RelSlot,
}

/// A seed reclaimed after exhausting its retry budget, to be re-sent to
/// a PE other than `suspect`.
pub(crate) struct RedirectSeed {
    /// The unresponsive PE the seed was bound for.
    pub suspect: Pe,
    /// The reclaimed seed message (always `SysMsg::NewChare`).
    pub seed: SysMsg,
}

/// What [`RelState::on_alarm`] decided needs doing.
pub(crate) struct AlarmActions {
    /// Frames to retransmit now.
    pub retransmits: Vec<Retransmit>,
    /// Seeds to re-dispatch elsewhere.
    pub redirects: Vec<RedirectSeed>,
}

/// Verdict on an incoming reliable frame.
pub(crate) enum Accept {
    /// Already delivered or already buffered — drop (after acking).
    Dup,
    /// The in-order run this arrival released, in sequence order. May be
    /// empty when the frame is ahead of a gap (buffered for later) or
    /// only plugged a hole with a voided body.
    Deliver(Vec<SysMsg>),
}

/// A message waiting for the send window to its destination to open.
struct Waiting {
    msg: SysMsg,
    is_seed: bool,
    counted: bool,
}

/// Per-node reliable-delivery bookkeeping.
pub(crate) struct RelState {
    cfg: ReliableConfig,
    /// Next sequence number per destination PE (starts at 1).
    next_seq: Vec<u64>,
    /// Unacknowledged frames, keyed by (destination, seq). BTreeMap so
    /// timeout scans iterate deterministically.
    outstanding: BTreeMap<(usize, u64), Pending>,
    /// Unacknowledged-frame count per destination (window occupancy).
    in_flight_to: Vec<u32>,
    /// FIFO of messages whose destination window was full at send time.
    wait_q: Vec<VecDeque<Waiting>>,
    /// Destinations that have ever timed a seed out; queued seeds bound
    /// for a suspect are re-dispatched at the next alarm rather than
    /// waiting on a window that may never reopen.
    suspect: Vec<bool>,
    /// Per-source contiguous-delivery watermark: every seq ≤ watermark
    /// has been received and delivered.
    watermark: Vec<u64>,
    /// Per-source out-of-order arrivals waiting for the gap below them
    /// to fill. `None` bodies are voided frames (redirected seeds) that
    /// only advance the watermark.
    reorder: Vec<BTreeMap<u64, Option<SysMsg>>>,
    /// Acks owed per source, flushed at the next scheduler step.
    pending_acks: Vec<Vec<u64>>,
    /// Absolute deadline the machine alarm is currently armed for.
    armed: Option<u64>,
}

/// A freshly registered frame, ready for its first transmission.
pub(crate) struct Registered {
    /// Assigned sequence number.
    pub seq: u64,
    /// Shared body slot.
    pub slot: RelSlot,
    /// Wire size of the carried message.
    pub inner_bytes: u32,
    /// Wire size of the frame itself.
    pub frame_bytes: u32,
}

/// Wire size of a reliable frame carrying `inner_bytes` of message.
pub(crate) fn frame_wire_bytes(inner_bytes: u32) -> u32 {
    use crate::envelope::{ENVELOPE_HEADER, REL_HEADER};
    ENVELOPE_HEADER + (inner_bytes + REL_HEADER).saturating_sub(ENVELOPE_HEADER)
}

/// Wire size of a `RelAck` carrying `n` sequence numbers, computed
/// without materializing the message.
pub(crate) fn rel_ack_wire_bytes(n: usize) -> u32 {
    crate::envelope::ENVELOPE_HEADER + 4 + 8 * n as u32
}

/// Build the wire payload for a reliable frame. `Replayable` so the
/// simulator's duplication fault can actually copy it — which is what
/// exercises receiver-side dedup.
pub(crate) fn frame_payload(seq: u64, inner_bytes: u32, slot: &RelSlot) -> Payload {
    let slot = Arc::clone(slot);
    Replayable::wrap(move || {
        crate::pool::payload(SysMsg::RelData {
            seq,
            bytes: inner_bytes,
            slot: Arc::clone(&slot),
        })
    })
}

/// Build the wire payload for an ack frame (also duplicable: acks are
/// idempotent).
pub(crate) fn ack_payload(seqs: Vec<u64>) -> Payload {
    Replayable::wrap(move || {
        let mut copy = crate::pool::seq_vec();
        copy.extend_from_slice(&seqs);
        crate::pool::payload(SysMsg::RelAck { seqs: copy })
    })
}

impl RelState {
    pub(crate) fn new(npes: usize, cfg: ReliableConfig) -> RelState {
        RelState {
            cfg,
            next_seq: vec![1; npes],
            outstanding: BTreeMap::new(),
            in_flight_to: vec![0; npes],
            wait_q: (0..npes).map(|_| VecDeque::new()).collect(),
            suspect: vec![false; npes],
            watermark: vec![0; npes],
            reorder: (0..npes).map(|_| BTreeMap::new()).collect(),
            pending_acks: vec![Vec::new(); npes],
            armed: None,
        }
    }

    // ---- sender side -----------------------------------------------

    /// Submit an outgoing message. If the send window to `to` is open
    /// (and nothing is already queued ahead, preserving FIFO order) the
    /// message is registered for immediate transmission; otherwise it
    /// waits until acks open the window (see [`RelState::take_ready`]).
    pub(crate) fn submit(
        &mut self,
        to: Pe,
        msg: SysMsg,
        now: u64,
        is_seed: bool,
    ) -> Option<Registered> {
        let i = to.index();
        if self.in_flight_to[i] < self.cfg.window && self.wait_q[i].is_empty() {
            return Some(self.register(to, msg, now, is_seed));
        }
        let counted = carries_user(&msg);
        self.wait_q[i].push_back(Waiting {
            msg,
            is_seed,
            counted,
        });
        None
    }

    /// Pop window-released messages, registering them for transmission.
    /// Called from the scheduler step (acks arrive outside any network
    /// context, so releases are deferred like acks are).
    pub(crate) fn take_ready(&mut self, now: u64) -> Vec<(Pe, Registered)> {
        let mut out = Vec::new();
        for i in 0..self.wait_q.len() {
            while self.in_flight_to[i] < self.cfg.window {
                let Some(w) = self.wait_q[i].pop_front() else {
                    break;
                };
                let reg = self.register(Pe::from(i), w.msg, now, w.is_seed);
                out.push((Pe::from(i), reg));
            }
        }
        out
    }

    /// Whether any queued message could be transmitted now.
    pub(crate) fn has_ready(&self) -> bool {
        self.wait_q
            .iter()
            .enumerate()
            .any(|(i, q)| !q.is_empty() && self.in_flight_to[i] < self.cfg.window)
    }

    /// Register an outgoing message for reliable delivery; the returned
    /// [`Registered`] describes the initial transmission.
    fn register(&mut self, to: Pe, msg: SysMsg, now: u64, is_seed: bool) -> Registered {
        let inner_bytes = msg.wire_bytes();
        let counted = carries_user(&msg);
        let seq = self.next_seq[to.index()];
        self.next_seq[to.index()] += 1;
        self.in_flight_to[to.index()] += 1;
        let slot: RelSlot = Arc::new(Mutex::new(Some(msg)));
        self.outstanding.insert(
            (to.index(), seq),
            Pending {
                to,
                slot: Arc::clone(&slot),
                inner_bytes,
                retries: 0,
                deadline: now + self.cfg.timeout.as_nanos(),
                is_seed,
                counted,
            },
        );
        Registered {
            seq,
            slot,
            inner_bytes,
            frame_bytes: frame_wire_bytes(inner_bytes),
        }
    }

    /// Process an ack from `from`; returns how many frames it retired.
    pub(crate) fn on_ack(&mut self, from: Pe, seqs: &[u64]) -> u64 {
        let mut retired = 0;
        for &seq in seqs {
            if self.outstanding.remove(&(from.index(), seq)).is_some() {
                self.in_flight_to[from.index()] -= 1;
                retired += 1;
            }
        }
        retired
    }

    /// Handle a retransmission alarm: every frame whose deadline has
    /// passed gets its retry count bumped and its next deadline backed
    /// off, and seeds that exhausted their budget are reclaimed — but
    /// only the *head-of-line* frame per destination (lowest outstanding
    /// seq) is put back on the wire. The in-order receiver can deliver
    /// nothing until that frame arrives and has already acked whatever
    /// it buffered above the gap, so retransmitting the tail adds pure
    /// load — the feedback that turns one lost ack into congestion
    /// collapse. Tail frames are repaired one hole at a time as the
    /// head advances (go-back-N probing without the go-back-N resend).
    pub(crate) fn on_alarm(&mut self, now: u64) -> AlarmActions {
        self.armed = None;
        let expired: Vec<(usize, u64)> = self
            .outstanding
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(k, _)| *k)
            .collect();
        let mut head: BTreeMap<usize, u64> = BTreeMap::new();
        for &(dst, seq) in self.outstanding.keys() {
            head.entry(dst).or_insert(seq);
        }
        let mut actions = AlarmActions {
            retransmits: Vec::new(),
            redirects: Vec::new(),
        };
        for key in expired {
            let p = self.outstanding.get_mut(&key).unwrap();
            if p.is_seed && p.retries >= self.cfg.seed_retry_limit {
                self.suspect[key.0] = true;
                // Reclaim the body for re-dispatch elsewhere. The frame
                // itself stays in the buffer and keeps retransmitting
                // with an empty slot: the receiver's in-order window
                // must still advance past this seq, or every later
                // frame on the link would be held back forever. An
                // already-empty slot means the body in fact arrived and
                // only the ack was lost — nothing to redirect.
                let taken = p.slot.lock().expect("slot lock").take();
                p.is_seed = false;
                p.counted = false;
                if let Some(seed) = taken {
                    actions.redirects.push(RedirectSeed {
                        suspect: p.to,
                        seed,
                    });
                }
            }
            p.retries += 1;
            let shift = p.retries.min(MAX_BACKOFF_SHIFT);
            p.deadline = now + (self.cfg.timeout.as_nanos() << shift);
            if head.get(&key.0) == Some(&key.1) {
                actions.retransmits.push(Retransmit {
                    to: p.to,
                    seq: key.1,
                    inner_bytes: p.inner_bytes,
                    slot: Arc::clone(&p.slot),
                });
            }
        }
        // Seeds queued for a suspect destination must not wait on a
        // window that may never reopen (its slots can be permanently
        // held by hole-filler frames to a dead PE): re-dispatch them
        // now. Non-seed traffic stays queued — it addresses state that
        // only exists there.
        for (i, q) in self.wait_q.iter_mut().enumerate() {
            if !self.suspect[i] || q.is_empty() {
                continue;
            }
            let mut keep = VecDeque::with_capacity(q.len());
            for w in q.drain(..) {
                if w.is_seed {
                    actions.redirects.push(RedirectSeed {
                        suspect: Pe::from(i),
                        seed: w.msg,
                    });
                } else {
                    keep.push_back(w);
                }
            }
            *q = keep;
        }
        actions
    }

    /// Earliest pending retransmission deadline, if any.
    fn next_deadline(&self) -> Option<u64> {
        self.outstanding.values().map(|p| p.deadline).min()
    }

    /// Decide whether the machine alarm needs (re)arming, and for what
    /// relative delay. Tracks the currently armed deadline so callers
    /// only rearm when an earlier deadline appears (the machine keeps a
    /// single alarm per PE; spurious fires are cheap no-ops).
    pub(crate) fn rearm(&mut self, now: u64) -> Option<Cost> {
        let next = self.next_deadline()?;
        if self.armed.is_some_and(|a| a <= next) {
            return None;
        }
        self.armed = Some(next);
        Some(Cost(next.saturating_sub(now).max(1)))
    }

    // ---- receiver side ---------------------------------------------

    /// Record receipt of frame `seq` from `from`, queue its ack, and
    /// decide what (if anything) to deliver.
    pub(crate) fn accept(&mut self, from: Pe, seq: u64, slot: &RelSlot) -> Accept {
        let i = from.index();
        self.pending_acks[i].push(seq);
        let w = &mut self.watermark[i];
        let buf = &mut self.reorder[i];
        if seq <= *w || buf.contains_key(&seq) {
            return Accept::Dup;
        }
        // First sight of this seq: pull the body out of the shared slot.
        // `None` means the sender reclaimed it for redirect and the
        // frame now only exists to advance the watermark.
        let body = slot.lock().expect("slot lock").take();
        buf.insert(seq, body);
        let mut run = Vec::new();
        while let Some(body) = buf.remove(&(*w + 1)) {
            *w += 1;
            run.extend(body);
        }
        Accept::Deliver(run)
    }

    /// Drain queued acks, grouped per destination in PE order.
    pub(crate) fn take_acks(&mut self) -> Vec<(Pe, Vec<u64>)> {
        let mut out = Vec::new();
        for (i, acks) in self.pending_acks.iter_mut().enumerate() {
            if !acks.is_empty() {
                out.push((Pe::from(i), std::mem::replace(acks, crate::pool::seq_vec())));
            }
        }
        out
    }

    /// Whether acks are queued (the node has transport work to do even
    /// with no user work).
    pub(crate) fn has_acks(&self) -> bool {
        self.pending_acks.iter().any(|a| !a.is_empty())
    }

    /// Whether this PE may report itself idle to quiescence detection:
    /// no unacknowledged frame carrying *user* traffic. Such a frame may
    /// still inject work somewhere (or be a reclaimed-and-redirected
    /// seed whose receive was never counted), so declaring quiescence
    /// over it would be premature.
    ///
    /// Control frames (QD polls and counts, load reports, work tokens)
    /// deliberately do not gate the report: a poll forwarded down the
    /// broadcast tree is itself an unacked frame at answer time, and
    /// gating on it would make every non-leaf PE permanently busy —
    /// quiescence could never be declared at all. Lost control frames
    /// are repaired by retransmission exactly like user ones; they just
    /// cannot create user work out of nothing, so the four-counter
    /// algorithm stays sound without them.
    ///
    /// A non-empty reorder buffer also blocks the report: messages
    /// parked behind a sequence gap may carry user work this PE has not
    /// consumed (or counted) yet. So do window-queued user messages that
    /// have not even been transmitted.
    pub(crate) fn quiet(&self) -> bool {
        !self.outstanding.values().any(|p| p.counted)
            && self.reorder.iter().all(|b| b.is_empty())
            && !self.wait_q.iter().flatten().any(|w| w.counted)
    }

    /// Destinations that have ever timed a seed out on this PE. Seed
    /// redirection consults this so a reclaimed seed is never re-aimed
    /// at a destination already known not to answer — the set only
    /// grows, so a seed bouncing through slow destinations runs out of
    /// fresh targets after at most `npes - 1` hops and settles locally
    /// instead of circulating forever.
    pub(crate) fn suspects(&self) -> &[bool] {
        &self.suspect
    }

    /// Number of unacknowledged frames (for tests/diagnostics).
    #[cfg(test)]
    pub(crate) fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Unacknowledged frames still carrying *counted* user traffic —
    /// the end-of-run snapshot behind the `rel_inflight_end` counter.
    /// Window-queued user messages count too: they are just as
    /// undelivered as a frame on the wire.
    pub(crate) fn counted_inflight(&self) -> usize {
        self.outstanding.values().filter(|p| p.counted).count()
            + self.wait_q.iter().flatten().filter(|w| w.counted).count()
    }

    /// Arrivals parked behind a sequence gap across all reorder
    /// buffers — the end-of-run snapshot behind `rel_reorder_end`.
    pub(crate) fn parked(&self) -> usize {
        self.reorder.iter().map(|b| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg() -> SysMsg {
        SysMsg::WoAck {
            wo: crate::ids::WoId(1),
        }
    }

    fn seed_msg() -> SysMsg {
        SysMsg::NewChare {
            kind: crate::ids::ChareKind(0),
            seed: Box::new(7u32),
            bytes: 4,
            prio: crate::priority::Priority::None,
            hops: 0,
        }
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert_eq!(ReliableConfig::default().validate(), Ok(()));
        let zero_window = ReliableConfig {
            window: 0,
            ..ReliableConfig::default()
        };
        assert_eq!(
            zero_window.validate(),
            Err(ReliableConfigError::ZeroWindow)
        );
        let zero_timeout = ReliableConfig {
            timeout: Cost(0),
            ..ReliableConfig::default()
        };
        assert_eq!(
            zero_timeout.validate(),
            Err(ReliableConfigError::ZeroTimeout)
        );
        // The minimal working config is fine: retries may be zero
        // (seeds then redirect on the first timeout, which is a
        // legitimate — aggressive — policy).
        let minimal = ReliableConfig {
            timeout: Cost(1),
            seed_retry_limit: 0,
            window: 1,
        };
        assert_eq!(minimal.validate(), Ok(()));
        // Errors render actionable text.
        assert!(ReliableConfigError::ZeroWindow.to_string().contains("window"));
        assert!(ReliableConfigError::ZeroTimeout.to_string().contains("timeout"));
    }

    #[test]
    fn end_state_snapshots_count_counted_traffic_only() {
        let cfg = ReliableConfig {
            window: 1,
            ..ReliableConfig::default()
        };
        let mut r = RelState::new(3, cfg);
        assert_eq!((r.counted_inflight(), r.parked()), (0, 0));
        // A counted user message in flight and one window-queued.
        let s1 = r.submit(Pe(1), seed_msg(), 0, true).expect("window open").seq;
        assert!(r.submit(Pe(1), seed_msg(), 0, true).is_none(), "queued");
        assert_eq!(r.counted_inflight(), 2);
        // An uncounted control frame contributes nothing.
        r.register(Pe(2), SysMsg::WorkNack, 0, false);
        assert_eq!(r.counted_inflight(), 2);
        r.on_ack(Pe(1), &[s1]);
        assert_eq!(r.counted_inflight(), 1, "ack retired the wire copy");
        // A parked out-of-order arrival shows up in `parked`.
        let held = slot_of(msg());
        r.accept(Pe(2), 3, &held);
        assert_eq!(r.parked(), 1);
    }

    #[test]
    fn sequence_numbers_are_per_destination() {
        let mut r = RelState::new(4, ReliableConfig::default());
        let s1 = r.register(Pe(1), msg(), 0, false).seq;
        let s2 = r.register(Pe(2), msg(), 0, false).seq;
        let s3 = r.register(Pe(1), msg(), 0, false).seq;
        assert_eq!((s1, s2, s3), (1, 1, 2));
        assert_eq!(r.in_flight(), 3);
    }

    #[test]
    fn acks_retire_outstanding_frames() {
        let mut r = RelState::new(2, ReliableConfig::default());
        let s1 = r.register(Pe(1), msg(), 0, false).seq;
        let s2 = r.register(Pe(1), msg(), 0, false).seq;
        assert_eq!(r.on_ack(Pe(1), &[s1, s2]), 2);
        assert_eq!(r.on_ack(Pe(1), &[s1]), 0, "double ack is harmless");
        assert!(r.quiet());
    }

    fn slot_of(m: SysMsg) -> RelSlot {
        Arc::new(Mutex::new(Some(m)))
    }

    /// How many messages an `Accept` released, or -1 for a duplicate.
    fn released(a: Accept) -> i32 {
        match a {
            Accept::Dup => -1,
            Accept::Deliver(run) => run.len() as i32,
        }
    }

    #[test]
    fn delivery_is_deduped_and_in_order() {
        let mut r = RelState::new(2, ReliableConfig::default());
        let (s1, s2, s3) = (slot_of(msg()), slot_of(msg()), slot_of(msg()));
        assert_eq!(released(r.accept(Pe(1), 1, &s1)), 1, "in order");
        assert_eq!(released(r.accept(Pe(1), 3, &s3)), 0, "held: gap at 2");
        assert!(!r.quiet(), "parked arrival blocks the idle report");
        assert_eq!(released(r.accept(Pe(1), 1, &s1)), -1, "retransmission");
        assert_eq!(released(r.accept(Pe(1), 3, &s3)), -1, "dup ahead of gap");
        assert_eq!(released(r.accept(Pe(1), 2, &s2)), 2, "gap fill frees both");
        assert_eq!(released(r.accept(Pe(1), 2, &s2)), -1);
        assert!(r.quiet());
        // Every receipt queued an ack, fresh or not.
        let acks = r.take_acks();
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].0, Pe(1));
        assert_eq!(acks[0].1, vec![1, 3, 1, 3, 2, 2]);
        assert!(!r.has_acks());
    }

    #[test]
    fn send_window_queues_and_releases_in_order() {
        let cfg = ReliableConfig {
            window: 2,
            ..ReliableConfig::default()
        };
        let mut r = RelState::new(3, cfg);
        let s1 = r.submit(Pe(1), msg(), 0, false).expect("window open").seq;
        let s2 = r.submit(Pe(1), msg(), 0, false).expect("window open").seq;
        assert!(r.submit(Pe(1), msg(), 0, false).is_none(), "window full");
        assert!(r.submit(Pe(1), msg(), 0, false).is_none());
        // Another destination has its own window.
        assert!(r.submit(Pe(2), msg(), 0, false).is_some());
        assert!(!r.has_ready(), "nothing released until acks return");
        r.on_ack(Pe(1), &[s1]);
        assert!(r.has_ready());
        let ready = r.take_ready(5);
        assert_eq!(ready.len(), 1, "one ack frees one slot");
        assert_eq!(ready[0].0, Pe(1));
        assert_eq!(ready[0].1.seq, s2 + 1, "FIFO: queued before new seqs");
        assert!(!r.has_ready());
        r.on_ack(Pe(1), &[s2, s2 + 1]);
        assert_eq!(r.take_ready(6).len(), 1, "last queued message drains");
        assert!(!r.quiet(), "released frames are outstanding (counted)");
    }

    #[test]
    fn queued_seeds_redirect_once_destination_is_suspect() {
        let cfg = ReliableConfig {
            timeout: Cost(10),
            seed_retry_limit: 0,
            window: 1,
        };
        let mut r = RelState::new(2, cfg);
        assert!(r.submit(Pe(1), seed_msg(), 0, true).is_some());
        assert!(r.submit(Pe(1), seed_msg(), 0, true).is_none(), "queued");
        // First timeout: in-flight seed gives up (budget 0) and marks
        // Pe(1) suspect; the queued seed must come out too instead of
        // waiting behind the hole-filler forever.
        let acts = r.on_alarm(10);
        assert_eq!(acts.redirects.len(), 2);
        assert!(acts
            .redirects
            .iter()
            .all(|rd| rd.suspect == Pe(1) && matches!(rd.seed, SysMsg::NewChare { .. })));
        assert!(!r.has_ready());
    }

    #[test]
    fn voided_frame_fills_the_gap_it_leaves() {
        // A redirected seed's frame arrives with an empty slot; it must
        // advance the watermark so later traffic is not held forever.
        let mut r = RelState::new(2, ReliableConfig::default());
        let hole = slot_of(msg());
        hole.lock().unwrap().take();
        let s2 = slot_of(msg());
        assert_eq!(released(r.accept(Pe(1), 2, &s2)), 0, "held behind hole");
        assert_eq!(released(r.accept(Pe(1), 1, &hole)), 1, "hole filled");
        assert!(r.quiet());
    }

    #[test]
    fn alarm_retransmits_with_backoff() {
        let cfg = ReliableConfig {
            timeout: Cost(100),
            seed_retry_limit: 5,
            ..ReliableConfig::default()
        };
        let mut r = RelState::new(2, cfg);
        r.register(Pe(1), msg(), 0, false);
        assert_eq!(r.rearm(0), Some(Cost(100)));
        // Before the deadline: nothing expires.
        assert!(r.on_alarm(50).retransmits.is_empty());
        // At the deadline: one retransmit, next deadline backed off 2x.
        let acts = r.on_alarm(100);
        assert_eq!(acts.retransmits.len(), 1);
        assert_eq!(r.rearm(100), Some(Cost(200)));
        let acts = r.on_alarm(300);
        assert_eq!(acts.retransmits.len(), 1);
        assert_eq!(r.next_deadline(), Some(300 + 400));
    }

    #[test]
    fn alarm_retransmits_only_the_head_of_line() {
        let cfg = ReliableConfig {
            timeout: Cost(10),
            seed_retry_limit: 5,
            ..ReliableConfig::default()
        };
        let mut r = RelState::new(3, cfg);
        let s1 = r.register(Pe(1), msg(), 0, false).seq;
        let s2 = r.register(Pe(1), msg(), 0, false).seq;
        let s3 = r.register(Pe(2), msg(), 0, false).seq;
        // One retransmit per destination: the lowest outstanding seq is
        // the only frame the in-order receiver can be blocked on.
        let acts = r.on_alarm(10);
        assert_eq!(acts.retransmits.len(), 2);
        assert_eq!(
            (acts.retransmits[0].to, acts.retransmits[0].seq),
            (Pe(1), s1)
        );
        assert_eq!(
            (acts.retransmits[1].to, acts.retransmits[1].seq),
            (Pe(2), s3)
        );
        // The tail frame timed out too (its backoff advanced); once the
        // head retires it becomes the probe target.
        r.on_ack(Pe(1), &[s1]);
        let t = r.next_deadline().unwrap();
        let acts = r.on_alarm(t);
        assert!(acts
            .retransmits
            .iter()
            .any(|rt| rt.to == Pe(1) && rt.seq == s2));
    }

    #[test]
    fn non_seed_messages_never_give_up() {
        let cfg = ReliableConfig {
            timeout: Cost(10),
            seed_retry_limit: 2,
            ..ReliableConfig::default()
        };
        let mut r = RelState::new(2, cfg);
        r.register(Pe(1), msg(), 0, false);
        let mut t = 10;
        for _ in 0..20 {
            let acts = r.on_alarm(t);
            assert_eq!(acts.retransmits.len(), 1);
            assert!(acts.redirects.is_empty());
            t = r.next_deadline().unwrap();
        }
        assert_eq!(r.in_flight(), 1);
    }

    #[test]
    fn seeds_redirect_after_retry_budget() {
        let cfg = ReliableConfig {
            timeout: Cost(10),
            seed_retry_limit: 2,
            ..ReliableConfig::default()
        };
        let mut r = RelState::new(2, cfg);
        r.register(Pe(1), seed_msg(), 0, true);
        let mut t = 10;
        let mut redirected = None;
        for _ in 0..5 {
            let acts = r.on_alarm(t);
            if !acts.redirects.is_empty() {
                redirected = Some(acts.redirects.into_iter().next().unwrap());
                break;
            }
            t = r.next_deadline().unwrap();
        }
        let rd = redirected.expect("seed should be reclaimed");
        assert_eq!(rd.suspect, Pe(1));
        assert!(matches!(rd.seed, SysMsg::NewChare { .. }));
        // The emptied frame stays behind as a hole filler until acked,
        // but no longer gates the idle report.
        assert_eq!(r.in_flight(), 1);
        assert!(r.quiet());
    }

    #[test]
    fn delivered_seed_with_lost_ack_is_not_redirected() {
        let cfg = ReliableConfig {
            timeout: Cost(10),
            seed_retry_limit: 0,
            ..ReliableConfig::default()
        };
        let mut r = RelState::new(2, cfg);
        let reg = r.register(Pe(1), seed_msg(), 0, true);
        // Receiver consumed the body; only the ack went missing.
        reg.slot.lock().unwrap().take();
        let acts = r.on_alarm(10);
        assert!(acts.redirects.is_empty());
        assert_eq!(acts.retransmits.len(), 1, "keeps nudging for the ack");
        assert!(r.quiet());
    }

    #[test]
    fn rearm_only_fires_for_earlier_deadlines() {
        let cfg = ReliableConfig {
            timeout: Cost(100),
            seed_retry_limit: 5,
            ..ReliableConfig::default()
        };
        let mut r = RelState::new(3, cfg);
        r.register(Pe(1), msg(), 0, false); // deadline 100
        assert_eq!(r.rearm(0), Some(Cost(100)));
        r.register(Pe(2), msg(), 50, false); // deadline 150
        assert_eq!(r.rearm(50), None, "already armed earlier");
    }

    #[test]
    fn frame_payload_materializes_shared_slot() {
        let slot: RelSlot = Arc::new(Mutex::new(Some(msg())));
        let p = frame_payload(9, 32, &slot);
        let m = Replayable::materialize(p);
        let sys = m.downcast::<SysMsg>().unwrap();
        match *sys {
            SysMsg::RelData { seq, bytes, slot } => {
                assert_eq!((seq, bytes), (9, 32));
                assert!(slot.lock().unwrap().take().is_some());
            }
            _ => panic!("wrong frame"),
        }
    }
}
