//! Binomial spanning-tree broadcast.
//!
//! A naive broadcast sends `P - 1` messages from one PE, serializing on
//! the sender's network interface — O(P) time at the root. The kernel
//! instead distributes along a *binomial tree* rooted at the origin:
//! every PE that receives the broadcast immediately re-sends it to its
//! subtree children, finishing in O(log P) rounds. This is the
//! spanning-tree broadcast the original kernel used for branch-office
//! broadcasts and detection waves; [`BroadcastMode::Direct`] keeps the
//! naive loop for the ablation experiment.
//!
//! The tree is defined on *relative ranks* `r = (pe - origin) mod P`, so
//! any PE can be the root of its own well-formed tree:
//!
//! * rank 0 has children `1, 2, 4, 8, ...`;
//! * rank `r > 0` with highest set bit `m` has children `r + 2^k` for
//!   `2^k > m`, while `< P`.

use multicomputer::Pe;

/// How the kernel distributes broadcasts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BroadcastMode {
    /// Binomial spanning tree: O(log P) latency, forwarding work shared
    /// across PEs (the kernel's production mode).
    #[default]
    Tree,
    /// The origin sends every copy itself: O(P) occupancy at the root
    /// (kept for the ablation experiment).
    Direct,
}

impl BroadcastMode {
    /// Short stable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            BroadcastMode::Tree => "tree",
            BroadcastMode::Direct => "direct",
        }
    }
}

/// Children of `pe` in the binomial broadcast tree rooted at `origin`
/// over `npes` PEs, in send order.
pub fn tree_children(origin: Pe, pe: Pe, npes: usize) -> Vec<Pe> {
    debug_assert!(origin.index() < npes && pe.index() < npes);
    let p = npes as u32;
    let r = ((pe.index() + npes - origin.index()) % npes) as u32;
    let start = if r == 0 { 0 } else { r.ilog2() + 1 };
    let mut out = Vec::new();
    let mut k = start;
    while (1u32 << k) < p {
        let child = r + (1 << k);
        if child >= p {
            break;
        }
        out.push(Pe(((origin.index() as u32 + child) % p) % p));
        k += 1;
    }
    out
}

/// Parent of `pe` in the tree rooted at `origin` (None for the root).
pub fn tree_parent(origin: Pe, pe: Pe, npes: usize) -> Option<Pe> {
    let p = npes as u32;
    let r = ((pe.index() + npes - origin.index()) % npes) as u32;
    if r == 0 {
        return None;
    }
    let parent_rel = r - (1 << r.ilog2());
    Some(Pe((origin.index() as u32 + parent_rel) % p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_tree(origin: usize, npes: usize) {
        // Every non-root PE appears exactly once as someone's child, and
        // that someone is its tree_parent.
        let origin = Pe::from(origin);
        let mut seen = vec![0u32; npes];
        for pe in Pe::all(npes) {
            for c in tree_children(origin, pe, npes) {
                assert_ne!(c, origin, "root cannot be a child");
                seen[c.index()] += 1;
                assert_eq!(
                    tree_parent(origin, c, npes),
                    Some(pe),
                    "parent mismatch for {c:?} (origin {origin:?}, P={npes})"
                );
            }
        }
        for pe in Pe::all(npes) {
            let expect = u32::from(pe != origin);
            assert_eq!(
                seen[pe.index()],
                expect,
                "{pe:?} covered {} times (origin {origin:?}, P={npes})",
                seen[pe.index()]
            );
        }
    }

    #[test]
    fn covers_all_pes_exactly_once() {
        for npes in 1..=33 {
            for origin in [0, 1, npes / 2, npes - 1] {
                check_tree(origin.min(npes - 1), npes);
            }
        }
    }

    #[test]
    fn root_zero_children_are_powers_of_two() {
        let kids = tree_children(Pe::ZERO, Pe::ZERO, 16);
        assert_eq!(kids, vec![Pe(1), Pe(2), Pe(4), Pe(8)]);
    }

    #[test]
    fn depth_is_logarithmic() {
        // Follow parents from the deepest rank; path length <= ceil(log2 P).
        for npes in [2usize, 3, 17, 64, 100, 256] {
            for pe in Pe::all(npes) {
                let mut cur = pe;
                let mut depth = 0;
                while let Some(parent) = tree_parent(Pe::ZERO, cur, npes) {
                    cur = parent;
                    depth += 1;
                    assert!(depth <= 1 + npes.ilog2(), "path too long at P={npes}");
                }
                assert_eq!(cur, Pe::ZERO);
            }
        }
    }

    #[test]
    fn single_pe_tree_is_empty() {
        assert!(tree_children(Pe::ZERO, Pe::ZERO, 1).is_empty());
        assert_eq!(tree_parent(Pe::ZERO, Pe::ZERO, 1), None);
    }

    #[test]
    fn nonzero_origin_relabels() {
        // Origin 3 on 8 PEs: its first children are 4, 5, 7 (ranks 1, 2, 4).
        let kids = tree_children(Pe(3), Pe(3), 8);
        assert_eq!(kids, vec![Pe(4), Pe(5), Pe(7)]);
        assert_eq!(tree_parent(Pe(3), Pe(4), 8), Some(Pe(3)));
    }

    #[test]
    fn mode_names() {
        assert_eq!(BroadcastMode::Tree.name(), "tree");
        assert_eq!(BroadcastMode::Direct.name(), "direct");
        assert_eq!(BroadcastMode::default(), BroadcastMode::Tree);
    }
}
