//! The per-PE kernel node: scheduler, chare table, branch table, shared
//! variables, balancing and quiescence plumbing.
//!
//! `CkNode` implements [`NodeProgram`], so the same node runs on the
//! discrete-event simulator and the thread backend. Its `step` processes
//! all pending kernel control messages, then executes at most one user
//! message — the message-driven scheduling loop of the paper.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use multicomputer::{NetCtx, NodeProgram, NodeStats, Packet, Pe, StepKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::balance::{Balancer, Placement};
use crate::bcast::{tree_children, BroadcastMode};
use crate::boc::BranchObj;
use crate::chare::Chare;
use crate::ctx::{Ctx, Current};
use crate::envelope::{CastGen, MsgBody, SysMsg, WorkItem, PLACED};
use crate::ids::{AccId, BocId, ChareId, ChareKind, Notify, WoId};
use crate::metrics::PeMetrics;
use crate::msg::Message;
use crate::priority::Priority;
use crate::queueing::SchedQueue;
use crate::quiescence::{QdAction, QdCoordinator};
use crate::registry::Registry;
use crate::reliable::{
    ack_payload, frame_payload, frame_wire_bytes, rel_ack_wire_bytes, Accept, RedirectSeed,
    RelState, ReliableConfig,
};
use crate::shared::{QuiescenceMsg, TableAck, WoReady};
use crate::stats::KernelCounters;
use crate::trace::{EntryWhat, EventKind, MsgClass, PeTracer};

/// Give up requesting work after this many consecutive NACKs; arrival of
/// any new seed resets the budget.
const NACK_BUDGET: u32 = 4;

/// Re-advertise load to interested PEs when the backlog changed by at
/// least this much since the last report (or crossed zero).
const LOAD_REPORT_DELTA: u32 = 4;

/// Maximum work requests a PE remembers while its seed pool is empty.
const MAX_DEFERRED: usize = 16;

/// Forwarding budget of a work request's random walk.
const WORK_REQ_TTL: u8 = 8;

/// Most seeds handed over per work request (steal-half cap).
const GRANT_MAX: usize = 16;

/// Message combining only batches messages up to this wire size; bulk
/// payloads go out immediately so small control messages never wait
/// behind them.
const COMBINE_MAX_BYTES: u32 = 512;

/// Per-program runtime knobs handed to every node.
pub(crate) struct NodeOptions {
    pub bcast: BroadcastMode,
    pub combining: bool,
    pub rng_seed: u64,
    /// Wrap remote messages in acked, retransmitted frames (for lossy
    /// machine configurations).
    pub reliable: Option<ReliableConfig>,
    /// Structured event recording handle (`None` = tracing off).
    pub tracer: Option<PeTracer>,
    /// Streaming-metrics recording handle (`None` = metrics off).
    pub metrics: Option<PeMetrics>,
}

pub(crate) struct CollectState {
    acc: AccId,
    /// The PE gathering this collect (root of the reduction tree).
    origin: Pe,
    /// Contributions still outstanding (tree children, or all PEs in
    /// direct mode).
    remaining: usize,
    value: MsgBody,
}

impl CollectState {
    pub(crate) fn new(acc: AccId, origin: Pe, remaining: usize, value: MsgBody) -> Self {
        CollectState {
            acc,
            origin,
            remaining,
            value,
        }
    }
}

/// One PE's kernel state.
pub struct CkNode {
    pub(crate) pe: Pe,
    pub(crate) npes: usize,
    pub(crate) reg: Arc<Registry>,
    pub(crate) queue: Box<dyn SchedQueue<WorkItem>>,
    /// Stealable seed pool (token balancing keeps seeds here).
    pub(crate) pool: VecDeque<WorkItem>,
    /// Kernel control messages awaiting the next step.
    pub(crate) sys: VecDeque<(Pe, SysMsg)>,
    pub(crate) chares: Vec<Option<Box<dyn Chare>>>,
    pub(crate) free_slots: Vec<u32>,
    pub(crate) branches: Vec<Option<Box<dyn BranchObj>>>,
    pub(crate) acc_vals: Vec<MsgBody>,
    pub(crate) mono_vals: Vec<MsgBody>,
    pub(crate) tables: Vec<HashMap<u64, MsgBody>>,
    pub(crate) wo_store: HashMap<WoId, Arc<dyn Any + Send + Sync>>,
    pub(crate) wo_pending: HashMap<WoId, (usize, Notify)>,
    pub(crate) wo_counter: u32,
    pub(crate) collects: HashMap<u64, CollectState>,
    /// Requester side: where each collect's result goes.
    pub(crate) collect_notifies: HashMap<u64, Notify>,
    pub(crate) collect_counter: u64,
    /// Quiescence coordinator (PE 0 only).
    pub(crate) qd: Option<QdCoordinator>,
    pub(crate) balancer: Box<dyn Balancer>,
    pub(crate) bcast_mode: BroadcastMode,
    /// Message combining: when enabled, remote sends buffer here during
    /// a step and flush as one batch per destination at step end.
    pub(crate) combining: bool,
    outbuf: Vec<Vec<SysMsg>>,
    /// Reliable-delivery bookkeeping (None = trust the transport).
    rel: Option<RelState>,
    pub(crate) rng: StdRng,
    pub(crate) counters: KernelCounters,
    /// Structured event recording (`None` = tracing off). Recording is
    /// passive — no sends, no charges — so enabling it never changes a
    /// run's schedule.
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    tracer: Option<PeTracer>,
    /// Streaming-metrics recording (`None` = metrics off). Same
    /// discipline as `tracer`: passive, never perturbs the schedule.
    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    metrics: Option<PeMetrics>,
    /// Last queue length recorded, so samples fire only on change.
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    last_q_sample: Option<u32>,
    last_advertised: Option<u32>,
    awaiting_work: bool,
    nack_budget: u32,
    /// Token strategy: PEs whose work request found us empty; granted as
    /// soon as spare seeds appear.
    deferred_reqs: VecDeque<Pe>,
}

impl CkNode {
    pub(crate) fn new(
        pe: Pe,
        npes: usize,
        reg: Arc<Registry>,
        queue: Box<dyn SchedQueue<WorkItem>>,
        balancer: Box<dyn Balancer>,
        opts: NodeOptions,
    ) -> Self {
        let acc_vals = reg.accs.iter().map(|a| (a.init)()).collect();
        let mono_vals = reg.monos.iter().map(|m| (m.init)()).collect();
        let tables = reg.tables.iter().map(|_| HashMap::new()).collect();
        CkNode {
            pe,
            npes,
            reg,
            queue,
            pool: VecDeque::new(),
            sys: VecDeque::new(),
            chares: Vec::new(),
            free_slots: Vec::new(),
            branches: Vec::new(),
            acc_vals,
            mono_vals,
            tables,
            wo_store: HashMap::new(),
            wo_pending: HashMap::new(),
            wo_counter: 0,
            collects: HashMap::new(),
            collect_notifies: HashMap::new(),
            collect_counter: 0,
            qd: (pe == Pe::ZERO).then(|| QdCoordinator::new(npes)),
            balancer,
            bcast_mode: opts.bcast,
            combining: opts.combining,
            outbuf: (0..npes).map(|_| Vec::new()).collect(),
            rel: opts.reliable.map(|cfg| RelState::new(npes, cfg)),
            rng: StdRng::seed_from_u64(
                opts.rng_seed ^ (pe.index() as u64).wrapping_mul(0x9E37_79B9),
            ),
            counters: KernelCounters::default(),
            tracer: opts.tracer,
            metrics: opts.metrics,
            last_q_sample: None,
            last_advertised: None,
            awaiting_work: false,
            nack_budget: NACK_BUDGET,
            deferred_reqs: VecDeque::new(),
        }
    }

    /// Record one trace event, timestamped now. One `Option` test when
    /// tracing is configured off; compiled out entirely (closure never
    /// built) without the `trace` feature.
    #[cfg(feature = "trace")]
    #[inline]
    fn trace(&self, net: &dyn NetCtx, make: impl FnOnce() -> EventKind) {
        if let Some(t) = &self.tracer {
            t.record(net.now_ns(), make());
        }
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace(&self, _net: &dyn NetCtx, _make: impl FnOnce() -> EventKind) {}

    /// Record one trace event at an explicit timestamp (receive side,
    /// where the packet's arrival instant is the honest time).
    #[cfg(feature = "trace")]
    #[inline]
    fn trace_at(&self, at_ns: u64, make: impl FnOnce() -> EventKind) {
        if let Some(t) = &self.tracer {
            t.record(at_ns, make());
        }
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace_at(&self, _at_ns: u64, _make: impl FnOnce() -> EventKind) {}

    /// Record a queue-length sample if the backlog changed since the
    /// last sample (keeps the counter track step-shaped, not per-event).
    #[cfg(feature = "trace")]
    fn sample_queue(&mut self, net: &dyn NetCtx) {
        let Some(t) = &self.tracer else {
            return;
        };
        if !t.queue_samples() {
            return;
        }
        let len = self.user_load() as u32;
        if self.last_q_sample != Some(len) {
            self.last_q_sample = Some(len);
            t.record(net.now_ns(), EventKind::QueueSample { len });
        }
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn sample_queue(&mut self, _net: &dyn NetCtx) {}

    /// The metrics recording handle, or `None` — a compile-time
    /// constant `None` without the `metrics` feature, so every
    /// `if let Some(m) = self.m()` recording site folds away.
    #[cfg(feature = "metrics")]
    #[inline]
    fn m(&self) -> Option<&PeMetrics> {
        self.metrics.as_ref()
    }

    #[cfg(not(feature = "metrics"))]
    #[inline(always)]
    fn m(&self) -> Option<&PeMetrics> {
        None
    }

    /// Runnable user backlog (queued messages + pooled seeds).
    pub(crate) fn user_load(&self) -> usize {
        self.queue.len() + self.pool.len()
    }

    /// Record the backlog high-water mark after an enqueue.
    fn note_backlog(&mut self) {
        let load = self.user_load() as u64;
        if load > self.counters.queue_hwm {
            self.counters.queue_hwm = load;
            if let Some(m) = self.m() {
                m.on_queue_depth(load);
            }
        }
    }

    /// Whether any *user* activity is pending on this PE (for the
    /// quiescence idle flag): runnable work or unplaced user messages in
    /// the control queue.
    fn user_pending(&self) -> bool {
        self.user_load() > 0 || self.sys.iter().any(|(_, m)| m.counted())
    }

    /// Send a kernel envelope, counting it if it is user traffic. With
    /// combining enabled, remote messages are buffered and flushed as
    /// one batch per destination at the end of the step.
    pub(crate) fn post(&mut self, net: &mut dyn NetCtx, to: Pe, sys: SysMsg) {
        if sys.counted() {
            self.counters.user_sent += 1;
        }
        self.trace(&*net, || EventKind::MsgSend {
            to,
            class: MsgClass::of(&sys),
            bytes: sys.wire_bytes(),
            hops: match &sys {
                SysMsg::NewChare { hops, .. } => *hops,
                _ => 0,
            },
        });
        if let Some(m) = self.m() {
            let hops = match &sys {
                SysMsg::NewChare { hops, .. } => *hops,
                _ => 0,
            };
            m.on_send(net.now_ns(), to, &sys, hops);
        }
        if self.combining && to != self.pe && sys.wire_bytes() <= COMBINE_MAX_BYTES {
            self.outbuf[to.index()].push(sys);
            return;
        }
        self.wire_send(net, to, sys);
    }

    /// Ship everything buffered by message combining.
    fn flush_outbuf(&mut self, net: &mut dyn NetCtx) {
        if !self.combining {
            return;
        }
        for to in 0..self.npes {
            if self.outbuf[to].is_empty() {
                continue;
            }
            let hint = self.outbuf[to].len();
            let mut batch = std::mem::replace(&mut self.outbuf[to], crate::pool::batch(hint));
            let sys = if batch.len() == 1 {
                let only = batch.pop().expect("len checked");
                crate::pool::recycle_batch(batch);
                only
            } else {
                SysMsg::Batch(batch)
            };
            self.wire_send(net, Pe::from(to), sys);
        }
    }

    /// Put one envelope on the wire. With reliable delivery enabled,
    /// remote messages are wrapped in a sequence-numbered frame, held
    /// for retransmission until acknowledged, and the retransmission
    /// alarm is (re)armed. Counting already happened in [`Self::post`],
    /// so redirected seeds can re-enter here without skewing the
    /// quiescence counters.
    fn wire_send(&mut self, net: &mut dyn NetCtx, to: Pe, sys: SysMsg) {
        if to == self.pe || self.rel.is_none() {
            let bytes = sys.wire_bytes();
            net.send(to, bytes, crate::pool::payload(sys));
            return;
        }
        // Only seeds still subject to load balancing may be re-homed if
        // the destination stops answering; everything else (including
        // batches, which were combined *for* this destination) is
        // pinned and retries forever.
        let is_seed = matches!(&sys, SysMsg::NewChare { hops, .. } if *hops != PLACED);
        let now = net.now_ns();
        let rel = self.rel.as_mut().expect("checked above");
        // A closed send window parks the message; take_ready releases
        // it from the scheduler step once acks make room.
        if let Some(reg) = rel.submit(to, sys, now, is_seed) {
            net.send(
                to,
                reg.frame_bytes,
                frame_payload(reg.seq, reg.inner_bytes, &reg.slot),
            );
            if let Some(after) = rel.rearm(now) {
                net.set_alarm(after);
            }
        }
    }

    /// Transmit messages whose send window has reopened.
    fn flush_ready(&mut self, net: &mut dyn NetCtx) -> bool {
        let Some(rel) = self.rel.as_mut() else {
            return false;
        };
        let ready = rel.take_ready(net.now_ns());
        if ready.is_empty() {
            return false;
        }
        for (to, reg) in ready {
            net.send(
                to,
                reg.frame_bytes,
                frame_payload(reg.seq, reg.inner_bytes, &reg.slot),
            );
        }
        let rel = self.rel.as_mut().expect("checked above");
        if let Some(after) = rel.rearm(net.now_ns()) {
            net.set_alarm(after);
        }
        true
    }

    /// Send any queued reliable acks. Acks travel unwrapped (they *are*
    /// the acknowledgment machinery) and uncounted; a lost ack is
    /// repaired by the retransmission it fails to suppress.
    fn flush_acks(&mut self, net: &mut dyn NetCtx) -> bool {
        let Some(rel) = self.rel.as_mut() else {
            return false;
        };
        let acks = rel.take_acks();
        if acks.is_empty() {
            return false;
        }
        for (to, seqs) in acks {
            let bytes = rel_ack_wire_bytes(seqs.len());
            net.send(to, bytes, ack_payload(seqs));
            self.counters.acks_sent += 1;
        }
        true
    }

    /// Give a seed reclaimed by the reliable layer a new home away from
    /// the PE that stopped acknowledging.
    fn redirect_seed(&mut self, net: &mut dyn NetCtx, rd: RedirectSeed) {
        self.counters.seeds_redirected += 1;
        // Never re-aim at any destination this PE has already timed a
        // seed out on (the suspect set includes `rd.suspect`). The set
        // only grows, so a seed that keeps timing out bounces through
        // at most `npes - 1` fresh destinations before settling here —
        // without this, a congested machine whose RTT exceeds the seed
        // retry budget reclaims *live* in-flight seeds and re-launches
        // them forever, and each bounce adds traffic that keeps the
        // RTT high: a self-sustaining redirect livelock.
        let suspects = self
            .rel
            .as_ref()
            .expect("redirect implies reliable layer")
            .suspects()
            .to_vec();
        let ok = |p: Pe| p != rd.suspect && p.index() < self.npes && !suspects[p.index()];
        let chosen = self
            .balancer
            .redirect_target(rd.suspect, &mut self.rng)
            .filter(|&t| ok(t));
        let target = match chosen {
            Some(t) => t,
            None => {
                // Uniform over the non-suspect PEs; run it here if the
                // suspects were the only alternative.
                let cands: Vec<Pe> = (0..self.npes)
                    .map(Pe::from)
                    .filter(|&p| ok(p) && p != self.pe)
                    .collect();
                if cands.is_empty() {
                    self.pe
                } else {
                    cands[self.rng.random_range(0..cands.len())]
                }
            }
        };
        self.trace(&*net, || EventKind::SeedRedirected { to: target });
        if let Some(m) = self.m() {
            m.on_seed_redirected(net.now_ns(), target);
        }
        if let SysMsg::NewChare {
            kind,
            seed,
            bytes,
            prio,
            ..
        } = rd.seed
        {
            if target == self.pe {
                // The seed was counted as sent at its original post;
                // settling it here IS its delivery, so the quiescence
                // recv counter must balance or QD never declares.
                self.counters.user_recv += 1;
                self.place_seed(net, kind, seed, bytes, prio, PLACED);
            } else {
                // hops = 1 so the receiver's balancer settles it rather
                // than bouncing it onward. The seed stays redirectable:
                // if this target turns out dead too, the suspect filter
                // above steers the next redirect somewhere fresh.
                self.wire_send(
                    net,
                    target,
                    SysMsg::NewChare {
                        kind,
                        seed,
                        bytes,
                        prio,
                        hops: 1,
                    },
                );
            }
        }
    }

    /// Deliver a kernel-generated notification message.
    pub(crate) fn deliver_notify(
        &mut self,
        net: &mut dyn NetCtx,
        notify: Notify,
        body: MsgBody,
        bytes: u32,
    ) {
        match notify {
            Notify::Chare(target, ep) => {
                let to = target.pe;
                self.post(
                    net,
                    to,
                    SysMsg::ChareMsg {
                        target,
                        ep,
                        body,
                        bytes,
                        prio: Priority::None,
                    },
                );
            }
            Notify::Branch(boc, pe, ep) => {
                self.post(
                    net,
                    pe,
                    SysMsg::BranchMsg {
                        boc,
                        ep,
                        body,
                        bytes,
                        prio: Priority::None,
                    },
                );
            }
        }
    }

    /// Distribute copies of a kernel message to every PE. With
    /// [`BroadcastMode::Tree`] the copies travel a binomial spanning
    /// tree (O(log P) latency); with `Direct` this PE sends them all.
    /// When `include_self` is set the local copy is queued for this
    /// PE's own control handler.
    pub(crate) fn post_broadcast(&mut self, net: &mut dyn NetCtx, include_self: bool, gen: CastGen) {
        match self.bcast_mode {
            BroadcastMode::Direct => {
                for pe in Pe::all(self.npes) {
                    if pe == self.pe {
                        continue;
                    }
                    self.post(net, pe, gen());
                }
            }
            BroadcastMode::Tree => {
                let probe = gen();
                let counted = probe.counted();
                let bytes = probe.wire_bytes();
                self.forward_treecast(net, self.pe, counted, bytes, &gen);
                // `probe` is this PE's own copy; reuse it if wanted.
                if include_self {
                    let me = self.pe;
                    self.sys.push_back((me, probe));
                    return;
                }
            }
        }
        if include_self {
            let me = self.pe;
            self.sys.push_back((me, gen()));
        }
    }

    /// Send a tree-cast onward to this PE's subtree children.
    fn forward_treecast(
        &mut self,
        net: &mut dyn NetCtx,
        origin: Pe,
        counted: bool,
        bytes: u32,
        gen: &CastGen,
    ) {
        for child in tree_children(origin, self.pe, self.npes) {
            self.post(
                net,
                child,
                SysMsg::TreeCast {
                    origin,
                    counted,
                    bytes,
                    gen: std::sync::Arc::clone(gen),
                },
            );
        }
    }

    /// Run a seed through the load balancer: keep it here or forward it.
    pub(crate) fn place_seed(
        &mut self,
        net: &mut dyn NetCtx,
        kind: ChareKind,
        seed: MsgBody,
        bytes: u32,
        prio: Priority,
        hops: u32,
    ) {
        let placement = if hops == PLACED {
            Placement::Local
        } else {
            let load = self.user_load();
            let p = self.balancer.place(hops, load, &mut self.rng);
            // "Forward to self" settles the seed.
            match p {
                Placement::Forward(pe) if pe == self.pe => Placement::Local,
                other => other,
            }
        };
        match placement {
            Placement::Local => {
                self.counters.seeds_kept += 1;
                self.trace(&*net, || EventKind::SeedKept { kind, hops });
                if let Some(m) = self.m() {
                    m.on_seed_kept(net.now_ns(), kind, hops);
                }
                self.nack_budget = NACK_BUDGET;
                self.awaiting_work = false;
                let item = WorkItem::NewChare {
                    kind,
                    seed,
                    bytes,
                    prio: prio.clone(),
                };
                // Only locally created seeds are stealable; work that
                // already migrated here executes here (otherwise seeds
                // circulate between hungry PEs instead of running).
                if self.balancer.pools_seeds() && hops == 0 {
                    self.pool.push_back(item);
                    self.grant_deferred(net);
                } else {
                    self.queue.push(prio, item);
                }
                self.note_backlog();
            }
            Placement::Forward(pe) => {
                self.counters.seeds_forwarded += 1;
                self.trace(&*net, || EventKind::SeedForwarded { kind, to: pe, hops });
                if let Some(m) = self.m() {
                    m.on_seed_forwarded(net.now_ns(), kind, pe, hops);
                }
                self.post(
                    net,
                    pe,
                    SysMsg::NewChare {
                        kind,
                        seed,
                        bytes,
                        prio,
                        hops: hops.saturating_add(1),
                    },
                );
            }
        }
    }

    /// Allocate a chare-table slot.
    fn alloc_slot(&mut self) -> u32 {
        if let Some(slot) = self.free_slots.pop() {
            slot
        } else {
            self.chares.push(None);
            (self.chares.len() - 1) as u32
        }
    }

    fn apply_qd_action(&mut self, net: &mut dyn NetCtx, action: QdAction) {
        match action {
            QdAction::None => {}
            QdAction::Poll(wave) => {
                self.post_broadcast(
                    net,
                    true,
                    std::sync::Arc::new(move || SysMsg::QdPoll { wave }),
                );
            }
            QdAction::Declare(notifies) => {
                self.counters.qd_declares += 1;
                for n in notifies {
                    let msg = QuiescenceMsg;
                    let bytes = msg.bytes();
                    self.deliver_notify(net, n, Box::new(msg), bytes);
                }
            }
        }
    }

    /// Handle one kernel control message.
    fn handle_sys(&mut self, net: &mut dyn NetCtx, from: Pe, sys: SysMsg) {
        match sys {
            SysMsg::Batch(_) => {
                unreachable!("batches are unpacked on arrival")
            }
            SysMsg::RelData { .. } | SysMsg::RelAck { .. } => {
                unreachable!("reliable frames are peeled off on arrival")
            }
            SysMsg::NewChare {
                kind,
                seed,
                bytes,
                prio,
                hops,
            } => self.place_seed(net, kind, seed, bytes, prio, hops),
            SysMsg::TreeCast {
                origin,
                counted,
                bytes,
                gen,
            } => {
                self.forward_treecast(net, origin, counted, bytes, &gen);
                self.sys.push_back((origin, gen()));
            }
            // User messages normally enter the scheduler queue straight
            // from `incoming`; they pass through here when carried by a
            // tree broadcast.
            SysMsg::ChareMsg {
                target,
                ep,
                body,
                bytes: _,
                prio,
            } => {
                debug_assert_eq!(target.pe, self.pe, "misrouted chare message");
                self.queue.push(
                    prio,
                    WorkItem::ChareMsg {
                        local: target.local,
                        ep,
                        body,
                    },
                );
            }
            SysMsg::BranchMsg {
                boc,
                ep,
                body,
                bytes: _,
                prio,
            } => {
                self.queue.push(prio, WorkItem::BranchMsg { boc, ep, body });
            }
            SysMsg::AccCollect {
                acc,
                token,
                requester,
            } => {
                // Destructive read of this PE's partial.
                let fresh = (self.reg.accs[acc.0 as usize].init)();
                let part = std::mem::replace(&mut self.acc_vals[acc.0 as usize], fresh);
                match self.bcast_mode {
                    BroadcastMode::Direct => {
                        // Flat gather: every partial goes straight to the
                        // requester (which pre-created its state).
                        self.post(net, requester, SysMsg::AccPart { acc, token, part });
                    }
                    BroadcastMode::Tree => {
                        // Tree reduction: combine up the same binomial
                        // tree the collect request came down. This node's
                        // state exists before any child can reply because
                        // the request is forwarded to children and
                        // processed locally in the same step.
                        let children = tree_children(requester, self.pe, self.npes).len();
                        let st = CollectState::new(acc, requester, children, part);
                        if children == 0 {
                            self.finish_or_forward(net, token, st);
                        } else {
                            self.collects.insert(token, st);
                        }
                    }
                }
            }
            SysMsg::AccPart { acc, token, part } => {
                let reg = Arc::clone(&self.reg);
                let entry = &reg.accs[acc.0 as usize];
                let done = {
                    let st = self
                        .collects
                        .get_mut(&token)
                        .expect("accumulator part for unknown collect");
                    (entry.combine)(&mut st.value, part);
                    st.remaining -= 1;
                    st.remaining == 0
                };
                if done {
                    let st = self.collects.remove(&token).expect("collect state");
                    self.finish_or_forward(net, token, st);
                }
            }
            SysMsg::MonoUpdate { mono, value } => {
                let reg = Arc::clone(&self.reg);
                let entry = &reg.monos[mono.0 as usize];
                let cur = &mut self.mono_vals[mono.0 as usize];
                if (entry.better)(&value, cur) {
                    *cur = value;
                    self.counters.mono_applied += 1;
                }
            }
            SysMsg::TablePut {
                table,
                key,
                value,
                bytes: _,
                notify,
            } => {
                self.counters.table_ops += 1;
                let existed = self.tables[table.0 as usize].insert(key, value).is_some();
                if let Some(n) = notify {
                    let ack = TableAck { key, existed };
                    let bytes = ack.bytes();
                    self.deliver_notify(net, n, Box::new(ack), bytes);
                }
            }
            SysMsg::TableGet { table, key, notify } => {
                self.counters.table_ops += 1;
                let reg = Arc::clone(&self.reg);
                let entry = &reg.tables[table.0 as usize];
                let val = self.tables[table.0 as usize].get(&key);
                let (body, bytes) = (entry.make_got)(key, val);
                self.deliver_notify(net, notify, body, bytes);
            }
            SysMsg::TableDelete { table, key, notify } => {
                self.counters.table_ops += 1;
                let existed = self.tables[table.0 as usize].remove(&key).is_some();
                if let Some(n) = notify {
                    let ack = TableAck { key, existed };
                    let bytes = ack.bytes();
                    self.deliver_notify(net, n, Box::new(ack), bytes);
                }
            }
            SysMsg::WoStore { wo, value, bytes: _ } => {
                self.wo_store.insert(wo, value);
                self.post(net, wo.creator(), SysMsg::WoAck { wo });
            }
            SysMsg::WoAck { wo } => {
                let done = {
                    let ent = self
                        .wo_pending
                        .get_mut(&wo)
                        .expect("ack for unknown write-once variable");
                    ent.0 -= 1;
                    ent.0 == 0
                };
                if done {
                    let (_, notify) = self.wo_pending.remove(&wo).expect("wo state");
                    let msg = WoReady { id: wo };
                    let bytes = msg.bytes();
                    self.deliver_notify(net, notify, Box::new(msg), bytes);
                }
            }
            SysMsg::QdStart { notify } => {
                let action = self
                    .qd
                    .as_mut()
                    .expect("QdStart must be addressed to PE 0")
                    .request(notify);
                self.apply_qd_action(net, action);
            }
            SysMsg::QdPoll { wave } => {
                self.counters.qd_replies += 1;
                // A PE with unacked frames or owed acks is not idle: an
                // in-flight frame may still inject user work somewhere,
                // so quiescence must wait for the transport to settle.
                let idle =
                    !self.user_pending() && self.rel.as_ref().is_none_or(|r| r.quiet());
                let reply = SysMsg::QdCount {
                    wave,
                    sent: self.counters.user_sent,
                    recv: self.counters.user_recv,
                    idle,
                };
                self.post(net, Pe::ZERO, reply);
            }
            SysMsg::QdCount {
                wave,
                sent,
                recv,
                idle,
            } => {
                let action = self
                    .qd
                    .as_mut()
                    .expect("QdCount must be addressed to PE 0")
                    .on_count(wave, sent, recv, idle);
                self.apply_qd_action(net, action);
            }
            SysMsg::LoadStatus { load } => {
                self.balancer.on_load_status(from, load);
            }
            SysMsg::WorkReq { origin, ttl } => {
                if !self.pool.is_empty() {
                    self.grant_to(net, origin);
                } else if self.user_load() > 0 {
                    // Busy but nothing spare yet: remember the hungry PE
                    // and grant once seeds appear.
                    if self.deferred_reqs.len() < MAX_DEFERRED {
                        self.deferred_reqs.push_back(origin);
                    } else {
                        self.post(net, origin, SysMsg::WorkNack);
                    }
                } else if ttl > 0 {
                    // Idle ourselves: pass the request along (a random
                    // walk over the neighbor graph toward busy PEs).
                    if let Some(next) = self.balancer.pick_victim(&mut self.rng) {
                        self.post(net, next, SysMsg::WorkReq { origin, ttl: ttl - 1 });
                    } else {
                        self.post(net, origin, SysMsg::WorkNack);
                    }
                } else {
                    self.post(net, origin, SysMsg::WorkNack);
                }
            }
            SysMsg::WorkNack => {
                self.counters.work_nacks += 1;
                self.awaiting_work = false;
                self.nack_budget = self.nack_budget.saturating_sub(1);
                self.maybe_request_work(net);
            }
        }
    }

    /// Execute one unit of user work.
    fn exec_item(&mut self, net: &mut dyn NetCtx, item: WorkItem) {
        self.counters.entries_executed += 1;
        let (what, ep) = match &item {
            WorkItem::NewChare { kind, .. } => (EntryWhat::Create(*kind), None),
            WorkItem::ChareMsg { local, ep, .. } => (EntryWhat::Chare(*local), Some(*ep)),
            WorkItem::BranchMsg { boc, ep, .. } => (EntryWhat::Branch(*boc), Some(*ep)),
        };
        self.trace(&*net, || EventKind::EntryBegin { what, ep });
        let sent_before = self.counters.user_sent;
        // The simulator's clock stands still inside a handler, so the
        // entry's grain is the charge delta across it, not a time delta.
        let charged_before = net.charged_ns();
        self.run_item(net, item);
        self.trace(&*net, || EventKind::EntryEnd {
            msgs_sent: (self.counters.user_sent - sent_before) as u32,
        });
        if let Some(m) = self.m() {
            m.on_entry(net.now_ns(), what, ep, net.charged_ns() - charged_before);
        }
    }

    /// Run the handler behind one work item.
    fn run_item(&mut self, net: &mut dyn NetCtx, item: WorkItem) {
        match item {
            WorkItem::NewChare { kind, seed, .. } => {
                let slot = self.alloc_slot();
                let id = ChareId {
                    pe: self.pe,
                    local: slot,
                };
                self.counters.chares_created += 1;
                let reg = Arc::clone(&self.reg);
                let entry = &reg.chares[kind.0 as usize];
                let mut ctx = Ctx::new(self, net, Current::Chare(id));
                let obj = (entry.create)(seed, &mut ctx);
                let destroyed = ctx.destroy_requested;
                if !destroyed {
                    self.chares[slot as usize] = Some(obj);
                } else {
                    self.free_slots.push(slot);
                }
            }
            WorkItem::ChareMsg { local, ep, body } => {
                let Some(mut obj) = self
                    .chares
                    .get_mut(local as usize)
                    .and_then(|s| s.take())
                else {
                    self.counters.dead_letters += 1;
                    return;
                };
                let id = ChareId {
                    pe: self.pe,
                    local,
                };
                let mut ctx = Ctx::new(self, net, Current::Chare(id));
                obj.entry(ep, body, &mut ctx);
                let destroyed = ctx.destroy_requested;
                if destroyed {
                    self.free_slots.push(local);
                } else {
                    self.chares[local as usize] = Some(obj);
                }
            }
            WorkItem::BranchMsg { boc, ep, body } => {
                let mut obj = self.branches[boc.0 as usize]
                    .take()
                    .expect("branch missing (re-entrant branch call?)");
                let mut ctx = Ctx::new(self, net, Current::Branch(boc));
                obj.entry(ep, body, &mut ctx);
                self.branches[boc.0 as usize] = Some(obj);
            }
        }
    }

    /// Hand pooled seeds to `to`: half the pool, capped — the classic
    /// steal-half policy, so one request amortizes the round trip.
    fn grant_to(&mut self, net: &mut dyn NetCtx, to: Pe) {
        let count = (self.pool.len().div_ceil(2)).min(GRANT_MAX);
        for _ in 0..count {
            let Some(item) = self.pool.pop_back() else {
                return;
            };
            self.counters.work_grants += 1;
            let WorkItem::NewChare {
                kind,
                seed,
                bytes,
                prio,
            } = item
            else {
                unreachable!("seed pool holds only NewChare items");
            };
            self.post(
                net,
                to,
                SysMsg::NewChare {
                    kind,
                    seed,
                    bytes,
                    prio,
                    hops: 1,
                },
            );
        }
    }

    /// Grant deferred work requests while spare seeds remain. Keeps the
    /// last pooled seed for itself so a lone seed cannot ping-pong
    /// between mutually idle PEs.
    fn grant_deferred(&mut self, net: &mut dyn NetCtx) {
        while self.pool.len() > 1 {
            let Some(to) = self.deferred_reqs.pop_front() else {
                return;
            };
            self.grant_to(net, to);
        }
    }

    /// A collect subtree is fully combined: deliver the result if this
    /// PE requested the collect, otherwise pass the combined partial to
    /// the reduction-tree parent.
    fn finish_or_forward(&mut self, net: &mut dyn NetCtx, token: u64, st: CollectState) {
        if st.origin == self.pe {
            let notify = self
                .collect_notifies
                .remove(&token)
                .expect("collect completed twice or never requested here");
            let reg = Arc::clone(&self.reg);
            let (body, bytes) = (reg.accs[st.acc.0 as usize].wrap_result)(st.value);
            self.deliver_notify(net, notify, body, bytes);
        } else {
            let parent = crate::bcast::tree_parent(st.origin, self.pe, self.npes)
                .expect("non-origin node must have a tree parent");
            self.post(
                net,
                parent,
                SysMsg::AccPart {
                    acc: st.acc,
                    token,
                    part: st.value,
                },
            );
        }
    }

    /// Issue a token-strategy work request if this PE is idle and has
    /// budget left.
    fn maybe_request_work(&mut self, net: &mut dyn NetCtx) {
        if !self.balancer.request_work_when_idle()
            || self.awaiting_work
            || self.nack_budget == 0
            || self.user_load() > 0
        {
            return;
        }
        if let Some(victim) = self.balancer.pick_victim(&mut self.rng) {
            self.counters.work_reqs += 1;
            self.awaiting_work = true;
            let me = self.pe;
            self.post(
                net,
                victim,
                SysMsg::WorkReq {
                    origin: me,
                    ttl: WORK_REQ_TTL,
                },
            );
        }
    }

    /// Advertise backlog changes to PEs whose balancers want load info.
    fn maybe_report_load(&mut self, net: &mut dyn NetCtx) {
        let targets = self.balancer.load_targets();
        if targets.is_empty() {
            return;
        }
        let targets: Vec<Pe> = targets.to_vec();
        let load = self.user_load() as u32;
        let significant = match self.last_advertised {
            None => true,
            Some(prev) => prev.abs_diff(load) >= LOAD_REPORT_DELTA || (prev == 0) != (load == 0),
        };
        if significant {
            self.last_advertised = Some(load);
            self.counters.load_reports += 1;
            for t in targets {
                self.post(net, t, SysMsg::LoadStatus { load });
            }
        }
    }
}

impl NodeProgram for CkNode {
    fn boot(&mut self, net: &mut dyn NetCtx) {
        // Construct every BOC branch, in registration order.
        let reg = Arc::clone(&self.reg);
        for (i, entry) in reg.bocs.iter().enumerate() {
            self.branches.push(None);
            let mut ctx = Ctx::new(self, net, Current::Branch(BocId(i as u32)));
            let obj = (entry.create)(&mut ctx);
            self.branches[i] = Some(obj);
        }
        // The main chare always starts on PE 0, exempt from balancing.
        if self.pe == Pe::ZERO {
            if let Some(main) = &reg.main {
                let (seed, bytes) = (main.make_seed)();
                self.counters.seeds_spawned += 1;
                self.counters.seeds_kept += 1;
                let kind = main.kind;
                self.trace(&*net, || EventKind::SeedKept { kind, hops: 0 });
                if let Some(m) = self.m() {
                    m.on_seed_kept(net.now_ns(), kind, 0);
                }
                self.queue.push(
                    Priority::None,
                    WorkItem::NewChare {
                        kind: main.kind,
                        seed,
                        bytes,
                        prio: Priority::None,
                    },
                );
            }
        }
        self.maybe_report_load(net);
        // Receiver-initiated balancing needs an initial kick: idle PEs
        // are never stepped, so the first work request must go out now.
        self.maybe_request_work(net);
        self.flush_outbuf(net);
    }

    fn incoming(&mut self, pkt: Packet) {
        let Packet {
            from,
            at_ns,
            sent_ns,
            payload,
            ..
        } = pkt;
        let bx = payload
            .downcast::<SysMsg>()
            .expect("kernel node received a non-kernel packet");
        let sys = crate::pool::reclaim(bx);
        self.classify_incoming(at_ns, sent_ns, from, sys);
        self.note_backlog();
    }

    fn step(&mut self, net: &mut dyn NetCtx) -> Option<StepKind> {
        #[cfg(feature = "metrics")]
        let (step_start, charged_before) = (net.now_ns(), net.charged_ns());
        let r = self.step_inner(net);
        self.flush_outbuf(net);
        #[cfg(feature = "metrics")]
        if let Some(m) = &self.metrics {
            let charged = net.charged_ns() - charged_before;
            match r {
                Some(StepKind::User) => m.on_user_step(step_start, charged),
                Some(StepKind::Control) => m.on_ctl_step(step_start, charged),
                None => {}
            }
        }
        r
    }

    fn has_work(&self) -> bool {
        !self.sys.is_empty()
            || !self.queue.is_empty()
            || !self.pool.is_empty()
            || self
                .rel
                .as_ref()
                .is_some_and(|r| r.has_acks() || r.has_ready())
    }

    fn alarm(&mut self, net: &mut dyn NetCtx) {
        let Some(rel) = self.rel.as_mut() else {
            return;
        };
        let now = net.now_ns();
        #[cfg(feature = "metrics")]
        let charged_before = net.charged_ns();
        let actions = rel.on_alarm(now);
        for rt in actions.retransmits {
            self.counters.retransmits += 1;
            self.trace_at(now, || EventKind::Retransmit {
                to: rt.to,
                seq: rt.seq,
            });
            if let Some(m) = self.m() {
                m.on_retransmit(now, rt.to, rt.seq);
            }
            net.send(
                rt.to,
                frame_wire_bytes(rt.inner_bytes),
                frame_payload(rt.seq, rt.inner_bytes, &rt.slot),
            );
        }
        for rd in actions.redirects {
            self.redirect_seed(net, rd);
        }
        if let Some(after) = self.rel.as_mut().expect("checked above").rearm(now) {
            net.set_alarm(after);
        }
        #[cfg(feature = "metrics")]
        if let Some(m) = &self.metrics {
            // Alarm handlers run as pure control time (the machine
            // charges them no dispatch overhead).
            m.on_alarm(now, net.charged_ns() - charged_before);
        }
    }

    fn backlog(&self) -> usize {
        self.user_load()
    }

    fn stats(&self) -> NodeStats {
        // End-state snapshots ride along with the running counters:
        // what was still queued or in flight when the machine stopped.
        // The desim oracles read these to decide whether the
        // exactly-once seed ledger must balance (all zero ⇒ every
        // spawned seed had to have been constructed) and whether
        // quiescence fired over undelivered traffic.
        let mut c = self.counters;
        c.backlog_end = self.user_load() as u64;
        if let Some(rel) = &self.rel {
            c.rel_inflight_end = rel.counted_inflight() as u64;
            c.rel_reorder_end = rel.parked() as u64;
        }
        c.to_node_stats()
    }
}

impl CkNode {
    /// File one arrived envelope into the right queue (unpacking
    /// batches). Runs no user code. `at` is the packet's arrival
    /// timestamp and `sent_ns` its machine-stamped send instant, both
    /// threaded through batch/frame unwrapping so every unpacked
    /// message is logged at the instant it truly arrived with its true
    /// delivery latency.
    fn classify_incoming(&mut self, at: u64, sent_ns: u64, from: Pe, sys: SysMsg) {
        // Reliable transport framing peels off first: ack every frame
        // (fresh or duplicate), deliver bodies exactly once and in
        // sequence order per link.
        let sys = match sys {
            SysMsg::RelData { seq, slot, .. } => {
                let verdict = self.rel.as_mut().map(|rel| rel.accept(from, seq, &slot));
                match verdict {
                    Some(Accept::Dup) => self.counters.dup_dropped += 1,
                    Some(Accept::Deliver(run)) => {
                        for inner in run {
                            self.classify_incoming(at, sent_ns, from, inner);
                        }
                    }
                    // Frame without reliable mode (shouldn't happen):
                    // deliver the body, nobody will ack.
                    None => {
                        if let Some(inner) = slot.lock().expect("slot lock").take() {
                            self.classify_incoming(at, sent_ns, from, inner);
                        }
                    }
                }
                return;
            }
            SysMsg::RelAck { seqs } => {
                if let Some(rel) = self.rel.as_mut() {
                    rel.on_ack(from, &seqs);
                }
                crate::pool::recycle_seq_vec(seqs);
                return;
            }
            other => other,
        };
        if let SysMsg::Batch(inner) = sys {
            let mut inner = inner;
            for m in inner.drain(..) {
                self.classify_incoming(at, sent_ns, from, m);
            }
            crate::pool::recycle_batch(inner);
            return;
        }
        if sys.counted() {
            self.counters.user_recv += 1;
        }
        self.trace_at(at, || EventKind::MsgRecv {
            from,
            class: MsgClass::of(&sys),
            bytes: sys.wire_bytes(),
        });
        if let Some(m) = self.m() {
            m.on_recv(at, sent_ns, from, MsgClass::of(&sys), sys.wire_bytes());
        }
        match sys {
            SysMsg::ChareMsg {
                target,
                ep,
                body,
                bytes: _,
                prio,
            } => {
                debug_assert_eq!(target.pe, self.pe, "misrouted chare message");
                self.queue.push(
                    prio,
                    WorkItem::ChareMsg {
                        local: target.local,
                        ep,
                        body,
                    },
                );
            }
            SysMsg::BranchMsg {
                boc,
                ep,
                body,
                bytes: _,
                prio,
            } => {
                self.queue.push(prio, WorkItem::BranchMsg { boc, ep, body });
            }
            other => self.sys.push_back((from, other)),
        }
    }

    fn step_inner(&mut self, net: &mut dyn NetCtx) -> Option<StepKind> {
        let mut did = None;
        // Transport acks first: deferred from `incoming` (which has no
        // network access). A stalled PE never reaches this point, which
        // is exactly why its senders start retransmitting.
        if self.flush_acks(net) {
            did = Some(StepKind::Control);
        }
        // Then transmissions the send window released (acks may have
        // just opened it).
        if self.flush_ready(net) {
            did = Some(StepKind::Control);
        }
        // Kernel control first (placement, shared variables, QD, tokens).
        while let Some((from, sys)) = self.sys.pop_front() {
            self.handle_sys(net, from, sys);
            did = Some(StepKind::Control);
        }
        // Then at most one user message.
        let item = self.queue.pop().or_else(|| self.pool.pop_front());
        if let Some(item) = item {
            self.exec_item(net, item);
            did = Some(StepKind::User);
        }
        self.maybe_report_load(net);
        self.maybe_request_work(net);
        self.sample_queue(&*net);
        did
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::BalanceStrategy;
    use crate::bcast::BroadcastMode;
    use crate::queueing::QueueingStrategy;
    use multicomputer::Payload;

    /// A network context that records sends instead of delivering them.
    struct MockNet {
        me: Pe,
        npes: usize,
        sent: Vec<(Pe, u32, Payload)>,
        stopped: bool,
    }

    impl MockNet {
        fn new(me: Pe, npes: usize) -> Self {
            MockNet {
                me,
                npes,
                sent: Vec::new(),
                stopped: false,
            }
        }

        /// Destinations of all recorded sends, in order.
        fn dests(&self) -> Vec<Pe> {
            self.sent.iter().map(|&(to, _, _)| to).collect()
        }
    }

    impl NetCtx for MockNet {
        fn me(&self) -> Pe {
            self.me
        }
        fn num_pes(&self) -> usize {
            self.npes
        }
        fn now_ns(&self) -> u64 {
            0
        }
        fn send(&mut self, to: Pe, bytes: u32, payload: Payload) {
            self.sent.push((to, bytes, payload));
        }
        fn charge(&mut self, _cost: multicomputer::Cost) {}
        fn stop(&mut self) {
            self.stopped = true;
        }
        fn deposit(&mut self, _result: Payload) {}
    }

    fn bare_node(pe: Pe, npes: usize, bcast: BroadcastMode) -> CkNode {
        let reg = Arc::new(Registry::new());
        let queue = QueueingStrategy::Fifo.make();
        let balancer = BalanceStrategy::Local.make(pe, npes, vec![]);
        CkNode::new(
            pe,
            npes,
            reg,
            queue,
            balancer,
            NodeOptions {
                bcast,
                combining: false,
                rng_seed: 7,
                reliable: None,
                tracer: None,
                metrics: None,
            },
        )
    }

    #[test]
    fn post_counts_user_traffic_only() {
        let mut node = bare_node(Pe(0), 4, BroadcastMode::Tree);
        let mut net = MockNet::new(Pe(0), 4);
        node.post(&mut net, Pe(1), SysMsg::QdPoll { wave: 1 });
        assert_eq!(node.counters.user_sent, 0);
        node.post(
            &mut net,
            Pe(2),
            SysMsg::MonoUpdate {
                mono: crate::ids::MonoId(0),
                value: Box::new(1u64),
            },
        );
        assert_eq!(node.counters.user_sent, 1);
        assert_eq!(net.dests(), vec![Pe(1), Pe(2)]);
    }

    #[test]
    fn deliver_notify_routes_to_the_right_pe() {
        let mut node = bare_node(Pe(0), 4, BroadcastMode::Tree);
        let mut net = MockNet::new(Pe(0), 4);
        let chare = ChareId {
            pe: Pe(3),
            local: 7,
        };
        node.deliver_notify(&mut net, Notify::Chare(chare, crate::ids::EpId(1)), Box::new(()), 0);
        node.deliver_notify(
            &mut net,
            Notify::Branch(BocId(0), Pe(2), crate::ids::EpId(1)),
            Box::new(()),
            0,
        );
        assert_eq!(net.dests(), vec![Pe(3), Pe(2)]);
        // Both notifications are user traffic.
        assert_eq!(node.counters.user_sent, 2);
    }

    #[test]
    fn direct_broadcast_sends_to_everyone_else() {
        let mut node = bare_node(Pe(1), 5, BroadcastMode::Direct);
        let mut net = MockNet::new(Pe(1), 5);
        node.post_broadcast(&mut net, false, Arc::new(|| SysMsg::QdPoll { wave: 3 }));
        let mut dests = net.dests();
        dests.sort();
        assert_eq!(dests, vec![Pe(0), Pe(2), Pe(3), Pe(4)]);
        assert!(node.sys.is_empty(), "include_self was false");
    }

    #[test]
    fn tree_broadcast_sends_to_children_and_queues_self() {
        let mut node = bare_node(Pe(0), 8, BroadcastMode::Tree);
        let mut net = MockNet::new(Pe(0), 8);
        node.post_broadcast(&mut net, true, Arc::new(|| SysMsg::QdPoll { wave: 3 }));
        // Children of rank 0 over 8 PEs: 1, 2, 4.
        assert_eq!(net.dests(), vec![Pe(1), Pe(2), Pe(4)]);
        assert_eq!(node.sys.len(), 1, "own copy queued locally");
    }

    #[test]
    fn placed_seed_skips_the_balancer() {
        // A Random balancer would forward; PLACED must enqueue locally.
        let reg = Arc::new(Registry::new());
        let queue = QueueingStrategy::Fifo.make();
        let balancer = BalanceStrategy::Random.make(Pe(0), 4, vec![]);
        let opts = NodeOptions {
            bcast: BroadcastMode::Tree,
            combining: false,
            rng_seed: 7,
            reliable: None,
            tracer: None,
            metrics: None,
        };
        let mut node = CkNode::new(Pe(0), 4, reg, queue, balancer, opts);
        let mut net = MockNet::new(Pe(0), 4);
        node.place_seed(
            &mut net,
            ChareKind(0),
            Box::new(()),
            0,
            Priority::None,
            PLACED,
        );
        assert!(net.sent.is_empty(), "placed seed must not be forwarded");
        assert_eq!(node.user_load(), 1);
        assert_eq!(node.counters.seeds_kept, 1);
    }

    #[test]
    fn backlog_high_water_mark_tracks_peak() {
        let mut node = bare_node(Pe(0), 2, BroadcastMode::Tree);
        let mut net = MockNet::new(Pe(0), 2);
        for _ in 0..5 {
            node.place_seed(
                &mut net,
                ChareKind(0),
                Box::new(()),
                0,
                Priority::None,
                PLACED,
            );
        }
        assert_eq!(node.counters.queue_hwm, 5);
        assert_eq!(node.user_load(), 5);
    }

    #[test]
    fn work_request_walks_on_when_idle() {
        // An idle, empty node with TTL left forwards the request to a
        // neighbor instead of answering.
        let reg = Arc::new(Registry::new());
        let queue = QueueingStrategy::Fifo.make();
        let balancer = BalanceStrategy::TokenIdle.make(Pe(1), 4, vec![Pe(0), Pe(3)]);
        let opts = NodeOptions {
            bcast: BroadcastMode::Tree,
            combining: false,
            rng_seed: 7,
            reliable: None,
            tracer: None,
            metrics: None,
        };
        let mut node = CkNode::new(Pe(1), 4, reg, queue, balancer, opts);
        let mut net = MockNet::new(Pe(1), 4);
        node.sys.push_back((
            Pe(2),
            SysMsg::WorkReq {
                origin: Pe(2),
                ttl: 3,
            },
        ));
        let kind = node.step(&mut net);
        assert_eq!(kind, Some(StepKind::Control));
        // First round-robin neighbor is PE0; plus this node's own boot
        // work request is suppressed (it never booted). Inspect the
        // forwarded request.
        let fwd = net
            .sent
            .iter()
            .find_map(|(to, _, p)| {
                p.downcast_ref::<SysMsg>().and_then(|m| match m {
                    SysMsg::WorkReq { origin, ttl } => Some((*to, *origin, *ttl)),
                    _ => None,
                })
            })
            .expect("request forwarded");
        assert_eq!(fwd.1, Pe(2), "origin preserved");
        assert_eq!(fwd.2, 2, "ttl decremented");
    }

    #[test]
    fn work_request_with_expired_ttl_is_nacked() {
        let reg = Arc::new(Registry::new());
        let queue = QueueingStrategy::Fifo.make();
        let balancer = BalanceStrategy::TokenIdle.make(Pe(1), 4, vec![Pe(0)]);
        let opts = NodeOptions {
            bcast: BroadcastMode::Tree,
            combining: false,
            rng_seed: 7,
            reliable: None,
            tracer: None,
            metrics: None,
        };
        let mut node = CkNode::new(Pe(1), 4, reg, queue, balancer, opts);
        let mut net = MockNet::new(Pe(1), 4);
        node.sys.push_back((
            Pe(2),
            SysMsg::WorkReq {
                origin: Pe(2),
                ttl: 0,
            },
        ));
        node.step(&mut net);
        let nacked = net.sent.iter().any(|(to, _, p)| {
            *to == Pe(2)
                && p.downcast_ref::<SysMsg>()
                    .is_some_and(|m| matches!(m, SysMsg::WorkNack))
        });
        assert!(nacked, "expired request must NACK the origin");
    }

    #[test]
    fn step_on_empty_node_returns_none() {
        let mut node = bare_node(Pe(0), 2, BroadcastMode::Tree);
        let mut net = MockNet::new(Pe(0), 2);
        assert_eq!(node.step(&mut net), None);
        assert!(!node.has_work());
        assert_eq!(node.backlog(), 0);
    }
}
