//! The worker side of the multi-process backend: one PE, one process.
//!
//! [`maybe_worker`] is the divert point every `run_procs`-capable binary
//! calls first. In the parent it returns immediately; in a re-invoked
//! worker (`CK_PE_RANK` set) it builds the program from `CK_SPEC`,
//! performs the socket handshake, runs the same scheduler loop the
//! thread backend runs — plus alarm deadlines, outgoing-frame encoding,
//! per-destination batching and the loss shim — and exits the process.
//!
//! The loop mirrors `multicomputer::thread::pe_loop` deliberately: drain
//! arrivals, fire a due alarm, step the node, flush coalescing buffers
//! at the step boundary, and block briefly when idle. What the thread
//! backend does with channel sends, this file does with encoded frames
//! over the data mesh.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use multicomputer::{Cost, NetCtx, NodeFactory, NodeProgram, Packet, Payload, Pe, Replayable,
    StepKind};

use crate::envelope::SysMsg;
use crate::metrics::MetricsSink;
use crate::program::Program;
use crate::registry::Registry;
use crate::trace::TraceSink;
use crate::wire::{decode_sys, encode_sys, Wire};

use super::shim::LossShim;
use super::transport::{read_frame, recv_ctl, send_ctl, CtlMsg, Listener, Stream};
use super::{CrashHook, CrashMode, ProcOpts, ENV_ADDR, ENV_CRASH, ENV_OPTS, ENV_RANK, ENV_SPEC};

/// How long an idle PE blocks waiting for an event before re-checking
/// alarms (mirrors the thread backend's poll granularity).
const IDLE_POLL: Duration = Duration::from_micros(200);

/// Handshake and teardown I/O deadline.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

/// Divert into the worker loop when this process is a `run_procs`
/// worker; a no-op otherwise.
///
/// Call this before the first [`Program::run_procs`] — in a binary's
/// `main`, or as the first line of the test a
/// [`ProcConfig::for_test`](super::ProcConfig::for_test) re-invokes.
/// `build` must construct the same program the parent runs from the
/// opaque spec string (run-level knobs — reliable delivery, tracing,
/// metrics, RNG seed — are shipped from the parent and applied on top,
/// so only the structural registrations need to match; the fingerprint
/// handshake verifies the wire table did).
///
/// When diverting, this function **never returns**: it runs the PE to
/// completion and exits the process.
pub fn maybe_worker(build: impl FnOnce(&str) -> Program) {
    let Ok(rank) = std::env::var(ENV_RANK) else {
        return;
    };
    let rank: u32 = rank
        .parse()
        .unwrap_or_else(|_| panic!("{ENV_RANK}={rank:?} is not a rank"));
    let spec = std::env::var(ENV_SPEC).unwrap_or_default();
    let mut prog = build(&spec);
    let opts_s =
        std::env::var(ENV_OPTS).unwrap_or_else(|_| panic!("worker {rank}: {ENV_OPTS} missing"));
    let opts = ProcOpts::parse(&opts_s)
        .unwrap_or_else(|| panic!("worker {rank}: malformed {ENV_OPTS}: {opts_s:?}"));
    prog.set_run_overrides(opts.rng_seed, opts.reliable, opts.tracing, opts.metrics);
    let addr =
        std::env::var(ENV_ADDR).unwrap_or_else(|_| panic!("worker {rank}: {ENV_ADDR} missing"));
    let crash = std::env::var(ENV_CRASH)
        .ok()
        .and_then(|s| CrashHook::parse(&s))
        .filter(|h| h.rank == rank);
    run_worker(rank, prog, opts, &addr, crash);
}

/// Events multiplexed onto the worker's single scheduler channel.
enum Ev {
    /// A decoded data-mesh frame from a peer PE.
    Data {
        from: u32,
        bytes: u32,
        sent_ns: u64,
        sys: SysMsg,
    },
    Start,
    Halt,
    /// The parent's control socket closed — the run is over, one way or
    /// another.
    CtlClosed,
    /// A peer's data socket closed. Informational: the *parent* owns
    /// abort detection and will halt everyone.
    PeerClosed(#[allow(dead_code)] u32),
}

/// Write half of one peer link, with its coalescing buffer.
struct PeerOut {
    stream: Stream,
    buf: Vec<u8>,
    frames: usize,
}

/// The worker's [`NetCtx`]: encodes remote sends onto the mesh, queues
/// self-sends locally, and implements real alarm deadlines.
struct ProcCtx {
    me: Pe,
    npes: usize,
    start: Instant,
    reg: Arc<Registry>,
    peers: Vec<Option<PeerOut>>,
    local: VecDeque<Packet>,
    stopped: bool,
    result: Option<Payload>,
    alarm_at: Option<u64>,
    batch_bytes: usize,
    batch_frames: usize,
    shim: Option<LossShim>,
}

impl ProcCtx {
    fn push_frame(&mut self, to: Pe, frame: &[u8]) {
        let (bb, bf) = (self.batch_bytes, self.batch_frames);
        let Some(peer) = self.peers[to.index()].as_mut() else {
            return; // peer already torn down; late sends are benign
        };
        peer.buf.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        peer.buf.extend_from_slice(frame);
        peer.frames += 1;
        if peer.buf.len() >= bb || peer.frames >= bf {
            Self::flush_peer(peer);
        }
    }

    fn flush_peer(peer: &mut PeerOut) {
        if !peer.buf.is_empty() {
            // A write to a dead peer fails with EPIPE; that is teardown
            // noise (the parent detects the death), not our problem.
            let _ = peer.stream.write_all(&peer.buf);
            peer.buf.clear();
            peer.frames = 0;
        }
    }

    /// Flush every destination's coalescing buffer (called at each
    /// scheduling-step boundary, so batching adds no cross-step latency).
    fn flush_all(&mut self) {
        for peer in self.peers.iter_mut().flatten() {
            Self::flush_peer(peer);
        }
    }

    fn alarm_due(&self) -> bool {
        self.alarm_at.is_some_and(|t| self.now_ns() >= t)
    }
}

impl NetCtx for ProcCtx {
    fn me(&self) -> Pe {
        self.me
    }
    fn num_pes(&self) -> usize {
        self.npes
    }
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
    fn send(&mut self, to: Pe, bytes: u32, payload: Payload) {
        assert!(to.index() < self.npes, "send to PE out of range");
        let now = self.now_ns();
        if to == self.me {
            self.local.push_back(Packet {
                from: self.me,
                bytes,
                at_ns: now,
                sent_ns: now,
                payload,
            });
            return;
        }
        // Every kernel egress payload is a SysMsg (possibly behind a
        // Replayable retransmission generator); materialize one copy
        // and encode it. Frame body: [sent_ns][declared bytes][sys].
        let payload = Replayable::materialize(payload);
        let sys = payload.downcast::<SysMsg>().unwrap_or_else(|_| {
            panic!("procs backend can only ship kernel SysMsg payloads across PEs")
        });
        let mut body = Vec::with_capacity(bytes as usize + 16);
        body.extend_from_slice(&now.to_le_bytes());
        body.extend_from_slice(&bytes.to_le_bytes());
        encode_sys(&self.reg, &sys, &mut body);
        match self.shim.as_mut() {
            Some(shim) => {
                for frame in shim.outgoing(to.0, body) {
                    self.push_frame(to, &frame);
                }
            }
            None => self.push_frame(to, &body),
        }
    }
    fn charge(&mut self, _cost: Cost) {
        // Real work takes real time, as on the thread backend.
    }
    fn stop(&mut self) {
        self.stopped = true;
    }
    fn deposit(&mut self, result: Payload) {
        self.result = Some(result);
    }
    fn set_alarm(&mut self, after: Cost) {
        self.alarm_at = Some(self.now_ns() + after.as_nanos().max(1));
    }
}

/// Deliver queued self-sends (produced by the handler that just ran).
fn deliver_local(node: &mut impl NodeProgram, ctx: &mut ProcCtx) {
    while let Some(mut pkt) = ctx.local.pop_front() {
        pkt.payload = Replayable::materialize(pkt.payload);
        node.incoming(pkt);
    }
}

fn spawn_data_reader(from: u32, stream: Stream, reg: Arc<Registry>, tx: Sender<Ev>) {
    std::thread::Builder::new()
        .name(format!("ck-mesh-{from}"))
        .spawn(move || {
            let mut stream = stream;
            loop {
                match read_frame(&mut stream) {
                    Ok(body) if body.len() >= 12 => {
                        let sent_ns = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
                        let bytes = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
                        let mut r = crate::wire::WireReader::new(&body[12..]);
                        let sys = decode_sys(&reg, &mut r);
                        if tx
                            .send(Ev::Data {
                                from,
                                bytes,
                                sent_ns,
                                sys,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                    _ => {
                        let _ = tx.send(Ev::PeerClosed(from));
                        break;
                    }
                }
            }
        })
        .expect("spawn mesh reader");
}

fn spawn_ctl_reader(stream: Stream, tx: Sender<Ev>) {
    std::thread::Builder::new()
        .name("ck-ctl".to_string())
        .spawn(move || {
            let mut stream = stream;
            let _ = stream.set_read_timeout(None);
            loop {
                match recv_ctl(&mut stream) {
                    Ok(CtlMsg::Start) => {
                        if tx.send(Ev::Start).is_err() {
                            break;
                        }
                    }
                    Ok(CtlMsg::Halt) => {
                        let _ = tx.send(Ev::Halt);
                        break;
                    }
                    Ok(_) => {} // unexpected but harmless
                    Err(_) => {
                        let _ = tx.send(Ev::CtlClosed);
                        break;
                    }
                }
            }
        })
        .expect("spawn control reader");
}

/// Run worker PE `rank` to completion and exit the process.
fn run_worker(rank: u32, prog: Program, opts: ProcOpts, addr: &str, crash: Option<CrashHook>) -> ! {
    let npes = opts.npes;
    assert!(
        (rank as usize) < npes,
        "worker rank {rank} out of range for {npes} PEs"
    );
    if opts.loss.is_some() && prog.reliable_cfg().is_none() {
        panic!("loss shim requires reliable delivery (worker {rank})");
    }

    // -- control handshake ------------------------------------------------
    let mut ctl = Stream::connect_retry(addr, Instant::now() + HANDSHAKE_TIMEOUT)
        .unwrap_or_else(|e| panic!("worker {rank}: connect control {addr}: {e}"));
    ctl.set_read_timeout(Some(HANDSHAKE_TIMEOUT)).expect("set timeout");

    // The data listener must exist before Hello publishes its address.
    // UDS data sockets live beside the control socket; TCP ignores the
    // directory.
    let dir = addr
        .strip_prefix("uds:")
        .and_then(|p| std::path::Path::new(p).parent().map(|p| p.to_path_buf()))
        .unwrap_or_else(std::env::temp_dir);
    let (listener, data_addr) =
        Listener::bind(super::transport_of(addr), &dir, &format!("data-{rank}"))
            .unwrap_or_else(|e| panic!("worker {rank}: bind data listener: {e}"));

    send_ctl(
        &mut ctl,
        &CtlMsg::Hello {
            rank,
            fingerprint: prog.registry().wire.fingerprint(),
            data_addr,
        },
    )
    .unwrap_or_else(|e| panic!("worker {rank}: send Hello: {e}"));

    let peers_addrs = match recv_ctl(&mut ctl) {
        Ok(CtlMsg::Go { peers }) => peers,
        Ok(_) => panic!("worker {rank}: expected Go"),
        Err(e) => panic!("worker {rank}: waiting for Go: {e}"),
    };
    assert_eq!(peers_addrs.len(), npes, "worker {rank}: Go peer count");

    // -- data mesh ---------------------------------------------------------
    // Worker i accepts from every j > i and connects to every j < i; the
    // connector identifies itself with a 4-byte rank header.
    let expected_in = npes - 1 - rank as usize;
    let accepting = std::thread::Builder::new()
        .name("ck-mesh-accept".to_string())
        .spawn(move || -> std::io::Result<Vec<(u32, Stream)>> {
            let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
            let mut conns = Vec::with_capacity(expected_in);
            for _ in 0..expected_in {
                let mut s = listener.accept_deadline(deadline)?;
                let mut hdr = [0u8; 4];
                s.read_exact(&mut hdr)?;
                conns.push((u32::from_le_bytes(hdr), s));
            }
            Ok(conns)
        })
        .expect("spawn mesh acceptor");

    let mut links: Vec<Option<Stream>> = (0..npes).map(|_| None).collect();
    for (j, peer_addr) in peers_addrs.iter().enumerate().take(rank as usize) {
        let mut s = Stream::connect_retry(peer_addr, Instant::now() + HANDSHAKE_TIMEOUT)
            .unwrap_or_else(|e| panic!("worker {rank}: connect peer {j}: {e}"));
        s.write_all(&rank.to_le_bytes())
            .unwrap_or_else(|e| panic!("worker {rank}: rank header to {j}: {e}"));
        links[j] = Some(s);
    }
    let accepted = accepting
        .join()
        .expect("mesh acceptor panicked")
        .unwrap_or_else(|e| panic!("worker {rank}: accepting mesh peers: {e}"));
    for (j, s) in accepted {
        assert!(
            (j as usize) < npes && links[j as usize].is_none() && j != rank,
            "worker {rank}: bogus mesh peer {j}"
        );
        links[j as usize] = Some(s);
    }

    // -- reader threads and scheduler channel -----------------------------
    let reg = Arc::clone(prog.registry());
    let (tx, rx): (Sender<Ev>, Receiver<Ev>) = mpsc::channel();
    let mut peers: Vec<Option<PeerOut>> = (0..npes).map(|_| None).collect();
    for (j, link) in links.into_iter().enumerate() {
        let Some(link) = link else { continue };
        let read_half = link.try_clone().expect("clone mesh stream");
        spawn_data_reader(j as u32, read_half, Arc::clone(&reg), tx.clone());
        peers[j] = Some(PeerOut {
            stream: link,
            buf: Vec::new(),
            frames: 0,
        });
    }
    let ctl_read = ctl.try_clone().expect("clone control stream");
    spawn_ctl_reader(ctl_read, tx.clone());

    send_ctl(&mut ctl, &CtlMsg::Ready).unwrap_or_else(|e| panic!("worker {rank}: Ready: {e}"));

    // -- node construction -------------------------------------------------
    let sink = prog.tracing_cfg().map(|c| TraceSink::shared(npes, c));
    let msink = prog
        .metrics_cfg()
        .map(|c| MetricsSink::shared(npes, c, 0, 0));
    let factory = prog.factory(opts.topology.clone(), sink.clone(), msink.clone());
    let mut node = factory.build(Pe(rank), npes);
    let mut ctx = ProcCtx {
        me: Pe(rank),
        npes,
        start: Instant::now(),
        reg,
        peers,
        local: VecDeque::new(),
        stopped: false,
        result: None,
        alarm_at: None,
        batch_bytes: opts.batch_bytes.max(1),
        batch_frames: opts.batch_frames.max(1),
        shim: opts.loss.map(|l| LossShim::new(l, rank, npes)),
    };

    // -- wait for Start (stashing any early peer frames) -------------------
    let mut pending: Vec<Ev> = Vec::new();
    let mut halted = false;
    loop {
        match rx.recv_timeout(HANDSHAKE_TIMEOUT) {
            Ok(Ev::Start) => break,
            Ok(Ev::Halt) => {
                halted = true;
                break;
            }
            Ok(Ev::CtlClosed) => std::process::exit(3),
            Ok(ev) => pending.push(ev),
            Err(_) => panic!("worker {rank}: no Start within handshake deadline"),
        }
    }

    let mut user_steps: u64 = 0;
    let mut crash = crash;
    if !halted {
        ctx.start = Instant::now();
        node.boot(&mut ctx);
        deliver_local(&mut node, &mut ctx);
        ctx.flush_all();
        for ev in pending.drain(..) {
            handle_ev(ev, &mut node, &mut ctx, &mut halted);
        }
    }

    // -- scheduler loop ----------------------------------------------------
    while !ctx.stopped && !halted {
        // Drain arrivals first so priorities act on everything available.
        while let Ok(ev) = rx.try_recv() {
            handle_ev(ev, &mut node, &mut ctx, &mut halted);
        }
        if halted {
            break;
        }
        if ctx.alarm_due() {
            ctx.alarm_at = None;
            node.alarm(&mut ctx);
            deliver_local(&mut node, &mut ctx);
            ctx.flush_all();
            continue;
        }
        if node.has_work() {
            let kind = node.step(&mut ctx);
            deliver_local(&mut node, &mut ctx);
            ctx.flush_all();
            if kind == Some(StepKind::User) {
                user_steps += 1;
                maybe_crash(&mut crash, user_steps, &mut ctx, &ctl);
            }
        } else {
            let mut wait = IDLE_POLL;
            if let Some(t) = ctx.alarm_at {
                wait = wait.min(Duration::from_nanos(t.saturating_sub(ctx.now_ns())));
            }
            match rx.recv_timeout(wait) {
                Ok(ev) => handle_ev(ev, &mut node, &mut ctx, &mut halted),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
    ctx.flush_all();

    // -- teardown ----------------------------------------------------------
    // Local stop: report it (with any exit result), then wait for the
    // parent's Halt so the Final exchange stays ordered. Reader threads
    // keep draining peer sockets throughout, so no peer can block on a
    // full pipe while this handshake completes.
    if ctx.stopped && !halted {
        let result = ctx.result.take().map(|p| {
            let mut out = Vec::new();
            ctx.reg.wire.encode_body("exit result", &*p, &mut out);
            out
        });
        let _ = send_ctl(&mut ctl, &CtlMsg::Stopped { result });
        loop {
            match rx.recv_timeout(HANDSHAKE_TIMEOUT) {
                Ok(Ev::Halt) => break,
                Ok(Ev::CtlClosed) => std::process::exit(3),
                Ok(_) => {}
                Err(RecvTimeoutError::Timeout) => break, // parent stuck; report anyway
                Err(RecvTimeoutError::Disconnected) => std::process::exit(3),
            }
        }
    }

    let end_ns = ctx.now_ns();
    let stats: Vec<(String, u64)> = node
        .stats()
        .counters
        .iter()
        .map(|&(name, v)| (name.to_string(), v))
        .collect();
    // Dropping the node flushes its telemetry recorders into the sinks.
    drop(node);
    let trace = sink.map(|s| {
        let log = s.drain();
        let mut out = Vec::new();
        log.events.encode(&mut out);
        log.dropped.encode(&mut out);
        out
    });
    let metrics = msink.map(|s| {
        let log = s.drain(end_ns);
        let mut out = Vec::new();
        log.slice_ns.encode(&mut out);
        log.per_pe[rank as usize].encode(&mut out);
        out
    });
    let _ = send_ctl(
        &mut ctl,
        &CtlMsg::Final {
            end_ns,
            stats,
            metrics,
            trace,
        },
    );
    std::process::exit(0);
}

fn handle_ev(ev: Ev, node: &mut impl NodeProgram, ctx: &mut ProcCtx, halted: &mut bool) {
    match ev {
        Ev::Data {
            from,
            bytes,
            sent_ns,
            sys,
        } => {
            let now = ctx.now_ns();
            node.incoming(Packet {
                from: Pe(from),
                bytes,
                at_ns: now,
                // Clocks are per-process; clamp so cross-PE latency
                // metrics never underflow on skew.
                sent_ns: sent_ns.min(now),
                payload: Box::new(sys),
            });
        }
        Ev::Halt => *halted = true,
        Ev::CtlClosed => std::process::exit(3),
        Ev::Start | Ev::PeerClosed(_) => {}
    }
}

/// Fire the crash-injection hook once its step count is reached.
fn maybe_crash(crash: &mut Option<CrashHook>, user_steps: u64, ctx: &mut ProcCtx, ctl: &Stream) {
    let Some(hook) = *crash else { return };
    if user_steps < hook.after {
        return;
    }
    *crash = None;
    match hook.mode {
        CrashMode::Exit(code) => std::process::exit(code),
        CrashMode::Close => {
            // Hang with every socket closed: the parent must notice the
            // disconnect, not an exit status.
            ctl.shutdown();
            for peer in ctx.peers.iter().flatten() {
                peer.stream.shutdown();
            }
            std::thread::sleep(Duration::from_secs(600));
            std::process::exit(0);
        }
    }
}
