//! The parent side of the multi-process backend: spawn, wire, watch,
//! merge, reap.
//!
//! [`run_parent`] re-invokes the current executable once per PE, runs
//! the control handshake (`Hello`/`Go`/`Ready`/`Start`), then watches:
//! worker control sockets feed a single event channel, child exit
//! statuses are polled, and a wall-clock watchdog backstops the whole
//! run. Every failure mode — spawn failure, codec fingerprint mismatch,
//! nonzero exit, socket hangup, hang — ends as a structured
//! [`ProcAbortReason`] in the report, never as a parent that blocks
//! forever. On a clean stop the parent decodes the exit result, maps
//! worker counter names back to the kernel's static table, concatenates
//! and time-sorts trace shards, and runs the per-PE metric shards
//! through the exact shard merge.

use std::io::Write as _;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use multicomputer::{NodeStats, Payload};

use crate::metrics::{merge_shards, MetricsLog, PeMetricSet};
use crate::program::{CkReport, Program};
use crate::stats::KernelCounters;
use crate::trace::{TraceEvent, TraceLog};
use crate::wire::{Wire, WireReader};

use super::transport::{recv_ctl, send_ctl, CtlMsg, Listener, Stream};
use super::{ProcAbortReason, ProcConfig, ProcDetail, ProcOpts, ENV_ADDR, ENV_CRASH, ENV_OPTS,
    ENV_RANK, ENV_SPEC};

/// Handshake I/O deadline (also bounds teardown waits).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(30);

static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Events the per-worker control readers feed the parent loop.
enum PEv {
    Stopped {
        result: Option<Vec<u8>>,
    },
    Final {
        rank: u32,
        end_ns: u64,
        stats: Vec<(String, u64)>,
        metrics: Option<Vec<u8>>,
        trace: Option<Vec<u8>>,
    },
    /// Control socket closed.
    Eof { rank: u32 },
    /// Control protocol violation.
    Bad { rank: u32, error: String },
}

struct FinalData {
    end_ns: u64,
    stats: Vec<(String, u64)>,
    metrics: Option<Vec<u8>>,
    trace: Option<Vec<u8>>,
}

/// Everything torn down on every exit path.
struct Fleet {
    children: Vec<Option<Child>>,
    ctl: Vec<Option<Stream>>,
    dir: std::path::PathBuf,
}

impl Fleet {
    fn broadcast_halt(&mut self) {
        for ctl in self.ctl.iter_mut().flatten() {
            let _ = send_ctl(ctl, &CtlMsg::Halt);
            let _ = ctl.flush();
        }
    }

    /// Kill and reap every child still running.
    fn kill_all(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
        }
        for child in self.children.iter_mut() {
            if let Some(mut c) = child.take() {
                let _ = c.wait();
            }
        }
    }

    /// Reap children that should now exit on their own; escalate to
    /// kill after a deadline so teardown always terminates.
    fn reap_all(&mut self) {
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        for child in self.children.iter_mut() {
            let Some(c) = child.as_mut() else { continue };
            loop {
                match c.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(5))
                    }
                    _ => {
                        let _ = c.kill();
                        let _ = c.wait();
                        break;
                    }
                }
            }
            *child = None;
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.kill_all();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Exit status of a child, if it has exited: `Some(Some(code))` for a
/// normal exit, `Some(None)` for a signal death, `None` if running.
fn child_status(child: &mut Option<Child>) -> Option<Option<i32>> {
    let c = child.as_mut()?;
    match c.try_wait() {
        Ok(Some(status)) => Some(status.code()),
        _ => None,
    }
}

/// Run `prog` on `cfg.npes` worker processes (see module docs for the
/// protocol). Reached through [`Program::run_procs`].
pub fn run_parent(prog: &Program, cfg: &ProcConfig) -> CkReport {
    assert!(
        std::env::var(ENV_RANK).is_err(),
        "run_procs called inside a worker process — the binary must call \
         chare_kernel::maybe_worker before run_procs so workers divert"
    );
    assert!(cfg.npes > 0, "machine needs at least one PE");
    if cfg.loss.is_some() && prog.reliable_cfg().is_none() {
        panic!(
            "ProcConfig injects loss but the program has no reliable delivery; \
             enable ProgramBuilder::reliable (dropped frames would simply vanish)"
        );
    }

    let npes = cfg.npes;
    let dir = std::env::temp_dir().join(format!(
        "ck-procs-{}-{}",
        std::process::id(),
        RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create run temp dir");

    let (listener, ctl_addr) = Listener::bind(cfg.transport, &dir, "ctl")
        .expect("bind parent control listener");

    let opts = ProcOpts {
        npes,
        topology: cfg.topology.clone(),
        batch_bytes: cfg.batch_bytes,
        batch_frames: cfg.batch_frames,
        loss: cfg.loss,
        rng_seed: prog.rng_seed_val(),
        reliable: prog.reliable_cfg(),
        tracing: prog.tracing_cfg(),
        metrics: prog.metrics_cfg(),
    }
    .serialize();

    let mut fleet = Fleet {
        children: (0..npes).map(|_| None).collect(),
        ctl: (0..npes).map(|_| None).collect(),
        dir,
    };

    // -- spawn -------------------------------------------------------------
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            return abort_report(
                prog,
                cfg,
                ProcAbortReason::SpawnFailed {
                    rank: 0,
                    error: e.to_string(),
                },
                fleet,
                false,
            )
        }
    };
    for rank in 0..npes {
        let mut cmd = Command::new(&exe);
        cmd.args(&cfg.worker_args)
            .env_remove(ENV_CRASH)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_SPEC, &cfg.spec)
            .env(ENV_ADDR, &ctl_addr)
            .env(ENV_OPTS, &opts)
            .stdin(Stdio::null())
            // Workers re-invoked through a test harness print harness
            // chatter; silence stdout but keep stderr for panics.
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if let Some(crash) = &cfg.crash {
            cmd.env(ENV_CRASH, crash);
        }
        match cmd.spawn() {
            Ok(child) => fleet.children[rank] = Some(child),
            Err(e) => {
                return abort_report(
                    prog,
                    cfg,
                    ProcAbortReason::SpawnFailed {
                        rank: rank as u32,
                        error: e.to_string(),
                    },
                    fleet,
                    false,
                )
            }
        }
    }

    // -- handshake: Hello from every rank ----------------------------------
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    let mut peer_addrs: Vec<Option<String>> = (0..npes).map(|_| None).collect();
    let expected_fp = prog.registry().wire.fingerprint();
    for _ in 0..npes {
        let hello = listener.accept_deadline(deadline).and_then(|mut s| {
            s.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
            recv_ctl(&mut s).map(|m| (s, m))
        });
        match hello {
            Ok((
                s,
                CtlMsg::Hello {
                    rank,
                    fingerprint,
                    data_addr,
                },
            )) if (rank as usize) < npes && fleet.ctl[rank as usize].is_none() => {
                if fingerprint != expected_fp {
                    return abort_report(
                        prog,
                        cfg,
                        ProcAbortReason::FingerprintMismatch { rank },
                        fleet,
                        false,
                    );
                }
                peer_addrs[rank as usize] = Some(data_addr);
                fleet.ctl[rank as usize] = Some(s);
            }
            Ok((_, other)) => {
                return abort_report(
                    prog,
                    cfg,
                    ProcAbortReason::Protocol {
                        rank: u32::MAX,
                        error: format!("expected Hello, got {other:?}"),
                    },
                    fleet,
                    false,
                )
            }
            Err(e) => {
                // A worker that died pre-Hello explains the silence
                // better than the socket error does.
                let reason = handshake_failure(&mut fleet, &e.to_string());
                return abort_report(prog, cfg, reason, fleet, false);
            }
        }
    }
    let peers: Vec<String> = peer_addrs.into_iter().map(|a| a.expect("all ranks")).collect();

    // -- Go, then Ready from every rank ------------------------------------
    for rank in 0..npes {
        let ctl = fleet.ctl[rank].as_mut().expect("all connected");
        if let Err(e) = send_ctl(ctl, &CtlMsg::Go { peers: peers.clone() }) {
            let reason = handshake_failure(&mut fleet, &format!("sending Go to {rank}: {e}"));
            return abort_report(prog, cfg, reason, fleet, false);
        }
    }
    for rank in 0..npes {
        let ctl = fleet.ctl[rank].as_mut().expect("all connected");
        match recv_ctl(ctl) {
            Ok(CtlMsg::Ready) => {}
            Ok(other) => {
                return abort_report(
                    prog,
                    cfg,
                    ProcAbortReason::Protocol {
                        rank: rank as u32,
                        error: format!("expected Ready, got {other:?}"),
                    },
                    fleet,
                    false,
                )
            }
            Err(e) => {
                let reason =
                    handshake_failure(&mut fleet, &format!("waiting for Ready from {rank}: {e}"));
                return abort_report(prog, cfg, reason, fleet, false);
            }
        }
    }

    // -- run ---------------------------------------------------------------
    let (tx, rx): (Sender<PEv>, Receiver<PEv>) = mpsc::channel();
    for rank in 0..npes {
        let ctl = fleet.ctl[rank].as_ref().expect("all connected");
        let read_half = ctl.try_clone().expect("clone control stream");
        spawn_ctl_reader(rank as u32, read_half, tx.clone());
    }
    for rank in 0..npes {
        let ctl = fleet.ctl[rank].as_mut().expect("all connected");
        if let Err(e) = send_ctl(ctl, &CtlMsg::Start) {
            let reason = handshake_failure(&mut fleet, &format!("sending Start to {rank}: {e}"));
            return abort_report(prog, cfg, reason, fleet, false);
        }
    }

    let start = Instant::now();
    let mut finals: Vec<Option<FinalData>> = (0..npes).map(|_| None).collect();
    let mut halted = false;
    let mut stop_elapsed_ns: Option<u64> = None;
    let mut result_bytes: Option<Vec<u8>> = None;

    let outcome: Result<(), ProcAbortReason> = loop {
        if finals.iter().all(|f| f.is_some()) {
            break Ok(());
        }
        if start.elapsed() > cfg.watchdog {
            break Err(ProcAbortReason::Watchdog);
        }
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(PEv::Stopped { result }) => {
                if result.is_some() {
                    result_bytes = result;
                }
                if !halted {
                    halted = true;
                    stop_elapsed_ns = Some(start.elapsed().as_nanos() as u64);
                    fleet.broadcast_halt();
                }
            }
            Ok(PEv::Final {
                rank,
                end_ns,
                stats,
                metrics,
                trace,
            }) => {
                finals[rank as usize] = Some(FinalData {
                    end_ns,
                    stats,
                    metrics,
                    trace,
                });
            }
            Ok(PEv::Eof { rank }) => {
                if finals[rank as usize].is_none() {
                    break Err(classify_death(&mut fleet, rank));
                }
            }
            Ok(PEv::Bad { rank, error }) => {
                break Err(ProcAbortReason::Protocol { rank, error });
            }
            Err(RecvTimeoutError::Timeout) => {
                // Catch workers that die without the socket EOF being
                // processed yet (e.g. killed hard between frames).
                let dead = (0..npes).find(|&r| {
                    finals[r].is_none() && child_status(&mut fleet.children[r]).is_some()
                });
                if let Some(r) = dead {
                    // Give its in-flight Final (already written before
                    // exit) a moment to arrive through the reader.
                    let grace = Instant::now() + Duration::from_millis(200);
                    let mut got_final = false;
                    while Instant::now() < grace {
                        match rx.recv_timeout(Duration::from_millis(20)) {
                            Ok(PEv::Final {
                                rank,
                                end_ns,
                                stats,
                                metrics,
                                trace,
                            }) => {
                                let is_r = rank as usize == r;
                                finals[rank as usize] = Some(FinalData {
                                    end_ns,
                                    stats,
                                    metrics,
                                    trace,
                                });
                                if is_r {
                                    got_final = true;
                                    break;
                                }
                            }
                            Ok(PEv::Stopped { result }) => {
                                if result.is_some() {
                                    result_bytes = result;
                                }
                                if !halted {
                                    halted = true;
                                    stop_elapsed_ns =
                                        Some(start.elapsed().as_nanos() as u64);
                                    fleet.broadcast_halt();
                                }
                            }
                            _ => {}
                        }
                    }
                    if !got_final && finals[r].is_none() {
                        break Err(classify_death(&mut fleet, r as u32));
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                break Err(ProcAbortReason::Protocol {
                    rank: u32::MAX,
                    error: "all control readers gone".to_string(),
                });
            }
        }
    };

    if let Some(reason) = outcome.err() {
        let timed_out = reason == ProcAbortReason::Watchdog;
        fleet.broadcast_halt();
        return abort_report(prog, cfg, reason, fleet, timed_out);
    }

    // -- clean completion: merge and reap ----------------------------------
    fleet.reap_all();
    let finals: Vec<FinalData> = finals.into_iter().map(|f| f.expect("all finals")).collect();
    let time_ns = stop_elapsed_ns.unwrap_or_else(|| start.elapsed().as_nanos() as u64);
    let result: Option<Payload> = result_bytes.map(|bytes| {
        let mut r = WireReader::new(&bytes);
        prog.registry().wire.decode_body(&mut r)
    });

    let node_stats: Vec<NodeStats> = finals.iter().map(|f| decode_stats(&f.stats)).collect();

    let trace = prog.tracing_cfg().map(|_| {
        let mut events: Vec<TraceEvent> = Vec::new();
        let mut dropped = 0u64;
        for f in &finals {
            if let Some(bytes) = &f.trace {
                let mut r = WireReader::new(bytes);
                events.extend(Vec::<TraceEvent>::decode(&mut r));
                dropped += u64::decode(&mut r);
            }
        }
        events.sort_by_key(|e| e.at_ns);
        TraceLog {
            npes,
            events,
            dropped,
        }
    });

    let end_ns_max = finals.iter().map(|f| f.end_ns).max().unwrap_or(0);
    let metrics: Option<MetricsLog> = prog.metrics_cfg().map(|mcfg| {
        let shards: Vec<(u64, PeMetricSet)> = finals
            .iter()
            .filter_map(|f| f.metrics.as_ref())
            .map(|bytes| {
                let mut r = WireReader::new(bytes);
                (u64::decode(&mut r), PeMetricSet::decode(&mut r))
            })
            .collect();
        merge_shards(mcfg, npes, end_ns_max, shards)
    });

    let worker_end_ns = finals.iter().map(|f| f.end_ns).collect();
    CkReport {
        time_ns,
        result,
        node_stats,
        timed_out: false,
        trace,
        metrics,
        sim: None,
        proc: Some(ProcDetail {
            npes,
            transport: cfg.transport,
            aborted: None,
            worker_end_ns,
        }),
    }
}

/// Map a worker's stringly-named counters back to the kernel's static
/// name table (unknown names are dropped rather than invented).
fn decode_stats(stats: &[(String, u64)]) -> NodeStats {
    let mut out = NodeStats::new();
    for (name, v) in stats {
        if let Some(&static_name) = KernelCounters::NAMES.iter().find(|&&n| n == name) {
            out.push(static_name, *v);
        }
    }
    out
}

/// Why did the handshake stall? A dead child is the likeliest cause and
/// names a rank; otherwise report the socket-level error.
fn handshake_failure(fleet: &mut Fleet, error: &str) -> ProcAbortReason {
    for rank in 0..fleet.children.len() {
        if let Some(code) = child_status(&mut fleet.children[rank]) {
            return ProcAbortReason::WorkerExit {
                rank: rank as u32,
                code,
            };
        }
    }
    ProcAbortReason::Protocol {
        rank: u32::MAX,
        error: error.to_string(),
    }
}

/// A worker went silent mid-run: exited (with what status?) or hung up
/// while still alive.
fn classify_death(fleet: &mut Fleet, rank: u32) -> ProcAbortReason {
    // Give a just-exiting process a beat to be reapable so the exit
    // code wins over the less specific "disconnected".
    let deadline = Instant::now() + Duration::from_millis(500);
    loop {
        if let Some(code) = child_status(&mut fleet.children[rank as usize]) {
            return ProcAbortReason::WorkerExit { rank, code };
        }
        if Instant::now() >= deadline {
            return ProcAbortReason::WorkerDisconnect { rank };
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn abort_report(
    prog: &Program,
    cfg: &ProcConfig,
    reason: ProcAbortReason,
    mut fleet: Fleet,
    timed_out: bool,
) -> CkReport {
    let _ = prog;
    fleet.broadcast_halt();
    fleet.kill_all();
    CkReport {
        time_ns: 0,
        result: None,
        node_stats: Vec::new(),
        timed_out,
        trace: None,
        metrics: None,
        sim: None,
        proc: Some(ProcDetail {
            npes: cfg.npes,
            transport: cfg.transport,
            aborted: Some(reason),
            worker_end_ns: vec![0; cfg.npes],
        }),
    }
}

fn spawn_ctl_reader(rank: u32, stream: Stream, tx: Sender<PEv>) {
    std::thread::Builder::new()
        .name(format!("ck-parent-ctl-{rank}"))
        .spawn(move || {
            let mut stream = stream;
            let _ = stream.set_read_timeout(None);
            loop {
                match recv_ctl(&mut stream) {
                    Ok(CtlMsg::Stopped { result }) => {
                        if tx.send(PEv::Stopped { result }).is_err() {
                            break;
                        }
                    }
                    Ok(CtlMsg::Final {
                        end_ns,
                        stats,
                        metrics,
                        trace,
                    }) => {
                        if tx
                            .send(PEv::Final {
                                rank,
                                end_ns,
                                stats,
                                metrics,
                                trace,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                    Ok(other) => {
                        let _ = tx.send(PEv::Bad {
                            rank,
                            error: format!("unexpected control message {other:?}"),
                        });
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                        let _ = tx.send(PEv::Bad {
                            rank,
                            error: "malformed control message".to_string(),
                        });
                        break;
                    }
                    Err(_) => {
                        let _ = tx.send(PEv::Eof { rank });
                        break;
                    }
                }
            }
        })
        .expect("spawn parent control reader");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_decode_maps_known_names_only() {
        let stats = vec![
            ("user_sent".to_string(), 7),
            ("made_up_counter".to_string(), 9),
        ];
        let s = decode_stats(&stats);
        assert_eq!(s.get("user_sent"), Some(7));
        assert_eq!(s.get("made_up_counter"), None);
    }
}
