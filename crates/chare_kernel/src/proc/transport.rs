//! Socket plumbing for the multi-process backend.
//!
//! One small abstraction — [`Stream`] / [`Listener`] over Unix-domain
//! and TCP sockets — plus length-prefixed framing and the control
//! protocol ([`CtlMsg`]) spoken between parent and workers. Data-mesh
//! frames use the same `[u32 len][body]` framing; their bodies are
//! `[u64 sent_ns][u32 declared bytes][encoded SysMsg]` (see
//! `docs/PROCESS.md` for the full wire contract).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::{Duration, Instant};

use crate::wire::{Wire, WireReader};

/// Socket flavor for the multi-process backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcTransport {
    /// Unix-domain sockets under a per-run temp directory (default).
    Uds,
    /// TCP over loopback (`127.0.0.1`, ephemeral ports).
    Tcp,
}

/// A connected byte stream of either flavor.
#[derive(Debug)]
pub(crate) enum Stream {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    /// Connect to an address string of the form `uds:<path>` or
    /// `tcp:<host:port>`.
    pub(crate) fn connect(addr: &str) -> io::Result<Stream> {
        if let Some(path) = addr.strip_prefix("uds:") {
            Ok(Stream::Uds(UnixStream::connect(path)?))
        } else if let Some(hostport) = addr.strip_prefix("tcp:") {
            let s = TcpStream::connect(hostport)?;
            s.set_nodelay(true)?;
            Ok(Stream::Tcp(s))
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("bad transport address {addr:?}"),
            ))
        }
    }

    /// Connect with retries — a peer's listener is bound before its
    /// address is published, but connect can still race process
    /// scheduling right after spawn.
    pub(crate) fn connect_retry(addr: &str, deadline: Instant) -> io::Result<Stream> {
        loop {
            match Stream::connect(addr) {
                Ok(s) => return Ok(s),
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Clone the underlying descriptor (separate read/write halves).
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Uds(s) => Stream::Uds(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    pub(crate) fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.set_read_timeout(t),
            Stream::Tcp(s) => s.set_read_timeout(t),
        }
    }

    /// Hard-close both directions (crash-injection and teardown).
    pub(crate) fn shutdown(&self) {
        let _ = match self {
            Stream::Uds(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Uds(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Uds(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Uds(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A listening socket of either flavor.
pub(crate) enum Listener {
    Uds(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    /// Bind a listener; returns it plus its publishable address string.
    /// UDS sockets live in `dir` under `name.sock`; TCP binds an
    /// ephemeral loopback port (and ignores `dir`/`name`).
    pub(crate) fn bind(
        transport: ProcTransport,
        dir: &Path,
        name: &str,
    ) -> io::Result<(Listener, String)> {
        match transport {
            ProcTransport::Uds => {
                let path = dir.join(format!("{name}.sock"));
                let l = UnixListener::bind(&path)?;
                Ok((Listener::Uds(l), format!("uds:{}", path.display())))
            }
            ProcTransport::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0")?;
                let addr = l.local_addr()?;
                Ok((Listener::Tcp(l), format!("tcp:{addr}")))
            }
        }
    }

    /// Accept one connection, polling nonblockingly until `deadline`.
    pub(crate) fn accept_deadline(&self, deadline: Instant) -> io::Result<Stream> {
        match self {
            Listener::Uds(l) => l.set_nonblocking(true)?,
            Listener::Tcp(l) => l.set_nonblocking(true)?,
        }
        loop {
            let got = match self {
                Listener::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_nodelay(true);
                    Stream::Tcp(s)
                }),
            };
            match got {
                Ok(s) => {
                    // Accepted sockets inherit nonblocking on some
                    // platforms; force blocking mode for framed I/O.
                    match &s {
                        Stream::Uds(u) => u.set_nonblocking(false)?,
                        Stream::Tcp(t) => t.set_nonblocking(false)?,
                    }
                    return Ok(s);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "accept deadline exceeded",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Hard cap on a single frame — far above any real message, low enough
/// that a corrupt length prefix fails fast instead of OOMing.
const MAX_FRAME: usize = 256 * 1024 * 1024;

/// Write one `[u32 len][body]` frame.
pub(crate) fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Read one `[u32 len][body]` frame. `UnexpectedEof` at the length
/// prefix is the clean-close signal.
pub(crate) fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Control-protocol messages between parent and workers. The sequence
/// per worker is `Hello → Go → Ready → Start → (run) → Stopped? → Halt
/// → Final`; `Stopped` comes only from the worker whose node called
/// `CkExit` (or quiesced), and `Final` carries the per-PE telemetry
/// shards the parent merges.
#[derive(Debug)]
pub(crate) enum CtlMsg {
    /// Worker → parent: identity, codec fingerprint, data-mesh address.
    Hello {
        rank: u32,
        fingerprint: u64,
        data_addr: String,
    },
    /// Parent → worker: every worker's data address, indexed by rank.
    Go { peers: Vec<String> },
    /// Worker → parent: data mesh wired, ready to start.
    Ready,
    /// Parent → worker: boot the node and run.
    Start,
    /// Worker → parent: my node stopped the machine; `result` is the
    /// wire-encoded `exit` payload, if one was deposited here.
    Stopped { result: Option<Vec<u8>> },
    /// Parent → worker: stop scheduling and report.
    Halt,
    /// Worker → parent: final report. `metrics` is a wire-encoded
    /// `(slice_ns, PeMetricSet)` shard, `trace` a wire-encoded
    /// `(Vec<TraceEvent>, dropped)` slice.
    Final {
        end_ns: u64,
        stats: Vec<(String, u64)>,
        metrics: Option<Vec<u8>>,
        trace: Option<Vec<u8>>,
    },
}

impl CtlMsg {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            CtlMsg::Hello {
                rank,
                fingerprint,
                data_addr,
            } => {
                out.push(0);
                rank.encode(&mut out);
                fingerprint.encode(&mut out);
                data_addr.encode(&mut out);
            }
            CtlMsg::Go { peers } => {
                out.push(1);
                peers.encode(&mut out);
            }
            CtlMsg::Ready => out.push(2),
            CtlMsg::Start => out.push(3),
            CtlMsg::Stopped { result } => {
                out.push(4);
                result.encode(&mut out);
            }
            CtlMsg::Halt => out.push(5),
            CtlMsg::Final {
                end_ns,
                stats,
                metrics,
                trace,
            } => {
                out.push(6);
                end_ns.encode(&mut out);
                stats.encode(&mut out);
                metrics.encode(&mut out);
                trace.encode(&mut out);
            }
        }
        out
    }

    pub(crate) fn decode(body: &[u8]) -> Option<CtlMsg> {
        if body.is_empty() {
            return None;
        }
        let mut r = WireReader::new(&body[1..]);
        let msg = match body[0] {
            0 => CtlMsg::Hello {
                rank: u32::decode(&mut r),
                fingerprint: u64::decode(&mut r),
                data_addr: String::decode(&mut r),
            },
            1 => CtlMsg::Go {
                peers: Vec::<String>::decode(&mut r),
            },
            2 => CtlMsg::Ready,
            3 => CtlMsg::Start,
            4 => CtlMsg::Stopped {
                result: Option::<Vec<u8>>::decode(&mut r),
            },
            5 => CtlMsg::Halt,
            6 => CtlMsg::Final {
                end_ns: u64::decode(&mut r),
                stats: Vec::<(String, u64)>::decode(&mut r),
                metrics: Option::<Vec<u8>>::decode(&mut r),
                trace: Option::<Vec<u8>>::decode(&mut r),
            },
            _ => return None,
        };
        if r.remaining() != 0 {
            return None;
        }
        Some(msg)
    }
}

/// Send one control message (framed).
pub(crate) fn send_ctl(w: &mut impl Write, msg: &CtlMsg) -> io::Result<()> {
    write_frame(w, &msg.encode())
}

/// Receive one control message (framed); decode failure is an
/// `InvalidData` error.
pub(crate) fn recv_ctl(r: &mut impl Read) -> io::Result<CtlMsg> {
    let body = read_frame(r)?;
    CtlMsg::decode(&body)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed control message"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: CtlMsg) -> CtlMsg {
        CtlMsg::decode(&msg.encode()).expect("decodes")
    }

    #[test]
    fn ctl_messages_roundtrip() {
        match roundtrip(CtlMsg::Hello {
            rank: 3,
            fingerprint: 0xDEAD_BEEF,
            data_addr: "uds:/tmp/x.sock".into(),
        }) {
            CtlMsg::Hello {
                rank,
                fingerprint,
                data_addr,
            } => {
                assert_eq!(rank, 3);
                assert_eq!(fingerprint, 0xDEAD_BEEF);
                assert_eq!(data_addr, "uds:/tmp/x.sock");
            }
            _ => panic!("wrong variant"),
        }
        match roundtrip(CtlMsg::Go {
            peers: vec!["a".into(), "b".into()],
        }) {
            CtlMsg::Go { peers } => assert_eq!(peers, vec!["a", "b"]),
            _ => panic!("wrong variant"),
        }
        assert!(matches!(roundtrip(CtlMsg::Ready), CtlMsg::Ready));
        assert!(matches!(roundtrip(CtlMsg::Start), CtlMsg::Start));
        assert!(matches!(roundtrip(CtlMsg::Halt), CtlMsg::Halt));
        match roundtrip(CtlMsg::Stopped {
            result: Some(vec![1, 2, 3]),
        }) {
            CtlMsg::Stopped { result } => assert_eq!(result, Some(vec![1, 2, 3])),
            _ => panic!("wrong variant"),
        }
        match roundtrip(CtlMsg::Final {
            end_ns: 99,
            stats: vec![("user_sent".into(), 7)],
            metrics: None,
            trace: Some(vec![9]),
        }) {
            CtlMsg::Final {
                end_ns,
                stats,
                metrics,
                trace,
            } => {
                assert_eq!(end_ns, 99);
                assert_eq!(stats, vec![("user_sent".to_string(), 7)]);
                assert_eq!(metrics, None);
                assert_eq!(trace, Some(vec![9]));
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn malformed_ctl_rejected() {
        assert!(CtlMsg::decode(&[]).is_none());
        assert!(CtlMsg::decode(&[42]).is_none());
        // Trailing garbage is a protocol error, not silently ignored.
        let mut bytes = CtlMsg::Ready.encode();
        bytes.push(0);
        assert!(CtlMsg::decode(&bytes).is_none());
    }

    #[test]
    fn frames_roundtrip_over_a_socketpair() {
        let (mut a, mut b) = UnixStream::pair().expect("socketpair");
        write_frame(&mut a, b"hello mesh").unwrap();
        write_frame(&mut a, b"").unwrap();
        assert_eq!(read_frame(&mut b).unwrap(), b"hello mesh");
        assert_eq!(read_frame(&mut b).unwrap(), b"");
        drop(a);
        assert_eq!(
            read_frame(&mut b).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn uds_listener_binds_and_accepts() {
        let dir = std::env::temp_dir().join(format!("ck-transport-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (l, addr) = Listener::bind(ProcTransport::Uds, &dir, "t").unwrap();
        assert!(addr.starts_with("uds:"));
        let addr2 = addr.clone();
        let join = std::thread::spawn(move || {
            let mut s = Stream::connect(&addr2).unwrap();
            send_ctl(&mut s, &CtlMsg::Ready).unwrap();
        });
        let mut s = l
            .accept_deadline(Instant::now() + Duration::from_secs(5))
            .unwrap();
        assert!(matches!(recv_ctl(&mut s).unwrap(), CtlMsg::Ready));
        join.join().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tcp_listener_binds_and_accepts() {
        let dir = std::env::temp_dir();
        let (l, addr) = Listener::bind(ProcTransport::Tcp, &dir, "t").unwrap();
        assert!(addr.starts_with("tcp:127.0.0.1:"));
        let addr2 = addr.clone();
        let join = std::thread::spawn(move || {
            let mut s = Stream::connect_retry(&addr2, Instant::now() + Duration::from_secs(5))
                .unwrap();
            write_frame(&mut s, &[7; 3]).unwrap();
        });
        let mut s = l
            .accept_deadline(Instant::now() + Duration::from_secs(5))
            .unwrap();
        assert_eq!(read_frame(&mut s).unwrap(), vec![7; 3]);
        join.join().unwrap();
    }

    #[test]
    fn accept_deadline_times_out() {
        let dir = std::env::temp_dir().join(format!("ck-transport-to-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (l, _addr) = Listener::bind(ProcTransport::Uds, &dir, "t").unwrap();
        let err = l
            .accept_deadline(Instant::now() + Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_address_is_rejected() {
        assert!(Stream::connect("carrier-pigeon:coop-7").is_err());
    }
}
