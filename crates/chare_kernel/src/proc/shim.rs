//! Deterministic loopback loss/reorder shim for the data mesh.
//!
//! Real sockets never lose frames on loopback, so the retransmit,
//! send-window and seed-redirect machinery of
//! [`reliable`](crate::reliable) would go unexercised on the procs
//! backend. This shim injects faults at the *sender* side of every
//! directed link, driven by a counter-based PRNG keyed on
//! `(seed, src, dst)` — every worker computes the identical fault
//! schedule from the environment, no coordination needed, and the same
//! seed replays the same schedule forever (the property the
//! loss-shim proptests pin down via [`loss_schedule`]).
//!
//! Two fault kinds per frame, drawn in a fixed order:
//!
//! * **drop** — the frame never reaches the socket;
//! * **hold** — the frame is parked; the *next* surviving frame on the
//!   link is sent first and releases it (a one-frame reorder, the
//!   minimal adversary against the receiver's sequence window).
//!
//! A held frame cannot stall the run: a parked `RelData` is retransmitted
//! on timeout (a new frame, which releases it), and a parked `RelAck` is
//! regenerated when the unacked sender retransmits. This is why the shim
//! refuses to run without reliable delivery enabled.

/// Seeded loss/reorder injection on every directed data link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LossConfig {
    /// Schedule seed; same seed ⇒ same per-link fault schedule.
    pub seed: u64,
    /// Per-frame drop probability in permille (0–1000).
    pub drop_permille: u16,
    /// Per-frame hold (one-frame reorder) probability in permille.
    pub reorder_permille: u16,
}

impl LossConfig {
    /// `permille`‰ drops, half that rate of reorders.
    pub fn new(seed: u64, permille: u16) -> Self {
        LossConfig {
            seed,
            drop_permille: permille,
            reorder_permille: permille / 2,
        }
    }
}

/// What the shim decided for one frame on one link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossAction {
    /// Frame goes out (after any previously held frame is released
    /// behind it).
    Deliver,
    /// Frame vanishes.
    Drop,
    /// Frame is parked until the next surviving frame on this link.
    Hold,
}

/// SplitMix64: tiny, full-period, and identical on every platform —
/// exactly what a cross-process-reproducible schedule needs.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn link_seed(seed: u64, src: u32, dst: u32) -> u64 {
    let mut s = seed ^ ((src as u64) << 32) ^ ((dst as u64) << 1) ^ 0xCAFE_F00D;
    // One scramble round so adjacent links get uncorrelated streams.
    splitmix64(&mut s)
}

/// Per-link decision stream.
struct Link {
    rng: u64,
    /// One parked frame, released behind the next surviving frame.
    held: Option<Vec<u8>>,
}

impl Link {
    fn new(cfg: &LossConfig, src: u32, dst: u32) -> Self {
        Link {
            rng: link_seed(cfg.seed, src, dst),
            held: None,
        }
    }

    fn decide(&mut self, cfg: &LossConfig) -> LossAction {
        let drop_draw = splitmix64(&mut self.rng) % 1000;
        let hold_draw = splitmix64(&mut self.rng) % 1000;
        if drop_draw < cfg.drop_permille as u64 {
            LossAction::Drop
        } else if hold_draw < cfg.reorder_permille as u64 {
            LossAction::Hold
        } else {
            LossAction::Deliver
        }
    }
}

/// Sender-side shim state for one worker: one decision stream per
/// outgoing link.
pub(crate) struct LossShim {
    cfg: LossConfig,
    src: u32,
    links: Vec<Option<Link>>,
    pub(crate) dropped: u64,
    pub(crate) reordered: u64,
}

impl LossShim {
    pub(crate) fn new(cfg: LossConfig, src: u32, npes: usize) -> Self {
        LossShim {
            cfg,
            src,
            links: (0..npes).map(|_| None).collect(),
            dropped: 0,
            reordered: 0,
        }
        .init()
    }

    fn init(mut self) -> Self {
        for d in 0..self.links.len() {
            if d as u32 != self.src {
                self.links[d] = Some(Link::new(&self.cfg, self.src, d as u32));
            }
        }
        self
    }

    /// Run one outgoing frame through the shim. Returns the frames to
    /// actually emit, in order (0, 1 or 2 of them — two when this frame
    /// releases a previously held one).
    pub(crate) fn outgoing(&mut self, dst: u32, frame: Vec<u8>) -> Vec<Vec<u8>> {
        let link = self.links[dst as usize]
            .as_mut()
            .expect("loss shim consulted for self-send");
        match link.decide(&self.cfg) {
            LossAction::Drop => {
                self.dropped += 1;
                Vec::new()
            }
            LossAction::Hold => {
                self.reordered += 1;
                // Park this frame; anything already parked goes out now
                // (two consecutive holds degrade to a swap, keeping at
                // most one frame parked per link).
                match link.held.replace(frame) {
                    Some(prev) => vec![prev],
                    None => Vec::new(),
                }
            }
            LossAction::Deliver => match link.held.take() {
                Some(prev) => vec![frame, prev],
                None => vec![frame],
            },
        }
    }
}

/// The first `n` per-frame decisions the shim will make on the directed
/// link `src → dst` under `cfg` — the schedule is a pure function of
/// `(cfg.seed, src, dst)`, which is what makes seeded socket-fault runs
/// replayable. Exposed for the loss-shim property tests.
pub fn loss_schedule(cfg: &LossConfig, src: u32, dst: u32, n: usize) -> Vec<LossAction> {
    let mut link = Link::new(cfg, src, dst);
    (0..n).map(|_| link.decide(cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(drop: u16, reorder: u16) -> LossConfig {
        LossConfig {
            seed: 0xD15EA5E,
            drop_permille: drop,
            reorder_permille: reorder,
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let c = cfg(100, 50);
        assert_eq!(loss_schedule(&c, 0, 1, 500), loss_schedule(&c, 0, 1, 500));
    }

    #[test]
    fn schedule_differs_per_link_and_seed() {
        let c = cfg(500, 200);
        assert_ne!(loss_schedule(&c, 0, 1, 200), loss_schedule(&c, 1, 0, 200));
        let mut c2 = c;
        c2.seed ^= 1;
        assert_ne!(loss_schedule(&c, 0, 1, 200), loss_schedule(&c2, 0, 1, 200));
    }

    #[test]
    fn zero_rates_always_deliver() {
        for a in loss_schedule(&cfg(0, 0), 3, 4, 1000) {
            assert_eq!(a, LossAction::Deliver);
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let n = 20_000;
        let sched = loss_schedule(&cfg(100, 50), 0, 1, n);
        let drops = sched.iter().filter(|&&a| a == LossAction::Drop).count();
        let holds = sched.iter().filter(|&&a| a == LossAction::Hold).count();
        // 10% ± 2% drops, ~4.5% ± 2% holds (hold is drawn only on
        // surviving frames).
        assert!((1600..=2400).contains(&drops), "drops = {drops}");
        assert!((500..=1400).contains(&holds), "holds = {holds}");
    }

    #[test]
    fn shim_emits_frames_in_reorder_pattern() {
        // Force alternating behavior with a hand-driven shim at 100%
        // hold: every frame parks, releasing its predecessor — a
        // one-frame lag stream.
        let mut shim = LossShim::new(
            LossConfig {
                seed: 1,
                drop_permille: 0,
                reorder_permille: 1000,
            },
            0,
            2,
        );
        assert!(shim.outgoing(1, vec![1]).is_empty());
        assert_eq!(shim.outgoing(1, vec![2]), vec![vec![1]]);
        assert_eq!(shim.outgoing(1, vec![3]), vec![vec![2]]);
        assert_eq!(shim.reordered, 3);
    }

    #[test]
    fn shim_drop_counts() {
        let mut shim = LossShim::new(
            LossConfig {
                seed: 1,
                drop_permille: 1000,
                reorder_permille: 0,
            },
            0,
            2,
        );
        for i in 0..10u8 {
            assert!(shim.outgoing(1, vec![i]).is_empty());
        }
        assert_eq!(shim.dropped, 10);
    }

    #[test]
    fn deliver_releases_held_frame_behind() {
        let mut shim = LossShim::new(
            LossConfig {
                seed: 9,
                drop_permille: 0,
                reorder_permille: 0,
            },
            0,
            2,
        );
        // Manually park a frame, then deliver: current first, held second.
        shim.links[1].as_mut().unwrap().held = Some(vec![7]);
        assert_eq!(shim.outgoing(1, vec![8]), vec![vec![8], vec![7]]);
    }
}
