//! Multi-process backend: one OS process per PE over real sockets.
//!
//! The third machine backend. Where [`run_sim`](crate::program::Program::run_sim)
//! models a multicomputer and [`run_threads`](crate::program::Program::run_threads)
//! shares one address space, `run_procs` gives every PE its own OS
//! process and its own memory — the strictest realization of the
//! paper's nonshared-memory model this repository has. Messages really
//! serialize (via the [`wire`](crate::wire) codecs), really cross a
//! kernel boundary (Unix-domain sockets by default, TCP behind the same
//! transport enum), and really arrive out of order when the loopback
//! loss shim says so.
//!
//! ## Process model
//!
//! A parent launcher ([`run_parent`], reached through
//! [`Program::run_procs`](crate::program::Program::run_procs)) re-invokes
//! the *current executable* once per PE with the `CK_PE_RANK` environment
//! contract. Each worker's `main` (or test body) must call
//! [`maybe_worker`] before anything else: in the parent it is a no-op,
//! in a worker it builds the program from the `CK_SPEC` string, runs the
//! per-PE scheduler loop to completion and exits the process — it never
//! returns. The env contract:
//!
//! | variable        | meaning                                            |
//! |-----------------|----------------------------------------------------|
//! | `CK_PE_RANK`    | this process is worker PE *n*                      |
//! | `CK_SPEC`       | opaque program spec, passed back to the builder    |
//! | `CK_PROC_ADDR`  | parent control socket (`uds:<path>` / `tcp:<addr>`)|
//! | `CK_PROC_OPTS`  | machine shape + run overrides (see [`ProcOpts`])   |
//! | `CK_PROC_CRASH` | fault-injection hook for teardown tests            |
//!
//! ## Handshake and teardown
//!
//! Over the control socket each worker sends `Hello{rank, fingerprint,
//! data_addr}`; the parent verifies the wire-table fingerprint (a codec
//! mismatch between parent and worker binaries fails fast instead of
//! corrupting memory), replies `Go{peer addrs}`, and the workers wire a
//! full data mesh (worker *i* connects to every *j < i*). After `Ready`
//! from all, the parent broadcasts `Start`. A worker whose node calls
//! `CkExit` reports `Stopped{result}`; the parent broadcasts `Halt`,
//! collects a `Final{stats, metrics, trace}` from every worker, merges
//! the per-PE metric shards through the exact shard-merge path, and
//! reaps the children. A worker that dies instead of reporting —
//! nonzero exit, killed, or socket closed — surfaces as a structured
//! [`ProcAbortReason`] in [`CkReport::proc`](crate::program::CkReport),
//! never as a hang (the parent watchdog backstops everything).
//!
//! ## What crosses the wire
//!
//! The data mesh reuses the kernel's sequence-numbered reliable-delivery
//! envelopes as its wire format: when the program runs with
//! [`ReliableConfig`](crate::reliable::ReliableConfig), every remote
//! message travels as the same `RelData`/`RelAck` frames the simulator's
//! fault experiments use, now encoded to bytes. Small messages to one
//! destination coalesce into single writes ([`ProcConfig::batch_bytes`]
//! / [`ProcConfig::batch_frames`]), and the deterministic
//! [`LossConfig`] shim can drop or reorder frames per directed link so
//! retransmit, send-window and seed-redirect logic run against real —
//! but seeded, hence reproducible — socket faults.

mod launcher;
mod shim;
mod transport;
mod worker;

pub use launcher::run_parent;
pub use shim::{loss_schedule, LossAction, LossConfig};
pub use transport::ProcTransport;
pub use worker::maybe_worker;

use std::time::Duration;

use multicomputer::Topology;

use crate::metrics::MetricsConfig;
use crate::reliable::ReliableConfig;
use crate::trace::TraceConfig;

/// Environment variable naming a worker's PE rank (the contract's
/// presence test: set ⇒ this process is a worker).
pub const ENV_RANK: &str = "CK_PE_RANK";
/// Environment variable carrying the opaque program spec.
pub const ENV_SPEC: &str = "CK_SPEC";
/// Environment variable carrying the parent control-socket address.
pub const ENV_ADDR: &str = "CK_PROC_ADDR";
/// Environment variable carrying serialized [`ProcOpts`].
pub const ENV_OPTS: &str = "CK_PROC_OPTS";
/// Environment variable carrying the crash-injection hook
/// (`<rank>:exit:<code>:<after>` or `<rank>:close:<after>`).
pub const ENV_CRASH: &str = "CK_PROC_CRASH";

/// Configuration of the multi-process machine.
#[derive(Clone, Debug)]
pub struct ProcConfig {
    /// Number of PEs (worker processes).
    pub npes: usize,
    /// Opaque program spec handed to every worker's builder closure via
    /// `CK_SPEC`. The closure passed to [`maybe_worker`] must build the
    /// same program from it that the parent is running (the wire-table
    /// fingerprint handshake catches codec-level divergence).
    pub spec: String,
    /// Arguments for the re-invoked binary. Plain binaries can keep the
    /// default marker; a `cargo test` integration test must pass its own
    /// test name plus `--exact` so the re-invoked libtest harness reaches
    /// the same test body (whose first line calls [`maybe_worker`]).
    pub worker_args: Vec<String>,
    /// Logical topology for load-balancing neighborhoods. The physical
    /// socket mesh is always fully connected (the kernel addresses any
    /// PE directly); topology only shapes which PEs exchange load
    /// reports, exactly as on the other backends.
    pub topology: Topology,
    /// Socket flavor for control and data connections.
    pub transport: ProcTransport,
    /// Abort the run after this much wall time if the program has not
    /// stopped itself.
    pub watchdog: Duration,
    /// Flush a destination's coalescing buffer once it holds this many
    /// bytes (buffers always flush at scheduling-step boundaries, so
    /// batching never delays a lone message beyond its own step).
    pub batch_bytes: usize,
    /// Flush a destination's coalescing buffer once it holds this many
    /// frames.
    pub batch_frames: usize,
    /// Deterministic loopback loss/reorder shim on every data link.
    /// Requires the program to run reliable delivery
    /// ([`ProgramBuilder::reliable`](crate::program::ProgramBuilder::reliable));
    /// [`run_parent`] panics otherwise, because dropped frames would
    /// simply vanish.
    pub loss: Option<LossConfig>,
    /// Teardown-test hook, passed verbatim as `CK_PROC_CRASH`:
    /// `<rank>:exit:<code>:<after>` makes worker `<rank>` exit with
    /// `<code>` after `<after>` user steps; `<rank>:close:<after>` makes
    /// it close all its sockets and hang instead. Production runs leave
    /// this `None`.
    pub crash: Option<String>,
}

impl ProcConfig {
    /// `npes` worker processes over Unix-domain sockets with a 60-second
    /// watchdog and 16 KiB / 64-frame batching.
    pub fn new(npes: usize, spec: impl Into<String>) -> Self {
        assert!(npes > 0, "machine needs at least one PE");
        ProcConfig {
            npes,
            spec: spec.into(),
            worker_args: vec!["__ck-proc-worker".to_string()],
            topology: Topology::Hypercube,
            transport: ProcTransport::Uds,
            watchdog: Duration::from_secs(60),
            batch_bytes: 16 * 1024,
            batch_frames: 64,
            loss: None,
            crash: None,
        }
    }

    /// A config whose workers re-enter the named `cargo test` test: the
    /// re-invoked libtest harness runs exactly that test, whose body
    /// must call [`maybe_worker`] first.
    pub fn for_test(npes: usize, spec: impl Into<String>, test_name: &str) -> Self {
        let mut cfg = Self::new(npes, spec);
        cfg.worker_args = vec![
            test_name.to_string(),
            "--exact".to_string(),
            "--test-threads=1".to_string(),
        ];
        cfg
    }

    /// Override the logical topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Override the socket flavor.
    pub fn with_transport(mut self, transport: ProcTransport) -> Self {
        self.transport = transport;
        self
    }

    /// Override the watchdog deadline.
    pub fn with_watchdog(mut self, watchdog: Duration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Override the batching thresholds.
    pub fn with_batching(mut self, bytes: usize, frames: usize) -> Self {
        self.batch_bytes = bytes.max(1);
        self.batch_frames = frames.max(1);
        self
    }

    /// Inject deterministic loss/reordering on every data link.
    pub fn with_loss(mut self, loss: LossConfig) -> Self {
        self.loss = Some(loss);
        self
    }

    /// Install the crash-injection hook (teardown tests only).
    pub fn with_crash(mut self, crash: impl Into<String>) -> Self {
        self.crash = Some(crash.into());
        self
    }
}

/// Why a multi-process run was cut short.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProcAbortReason {
    /// A worker process could not be spawned at all.
    SpawnFailed { rank: u32, error: String },
    /// A worker's wire-table fingerprint disagreed with the parent's —
    /// the two binaries would not agree on message encodings.
    FingerprintMismatch { rank: u32 },
    /// A worker exited (code, or `None` when killed by a signal) before
    /// reporting its final stats.
    WorkerExit { rank: u32, code: Option<i32> },
    /// A worker's control socket closed before it reported — the
    /// process hung up (or was lost) mid-run.
    WorkerDisconnect { rank: u32 },
    /// The parent watchdog fired before the program stopped.
    Watchdog,
    /// A worker violated the control protocol (malformed or unexpected
    /// message).
    Protocol { rank: u32, error: String },
}

impl std::fmt::Display for ProcAbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcAbortReason::SpawnFailed { rank, error } => {
                write!(f, "worker {rank} failed to spawn: {error}")
            }
            ProcAbortReason::FingerprintMismatch { rank } => {
                write!(f, "worker {rank} wire-table fingerprint mismatch")
            }
            ProcAbortReason::WorkerExit { rank, code: Some(c) } => {
                write!(f, "worker {rank} exited with code {c} mid-run")
            }
            ProcAbortReason::WorkerExit { rank, code: None } => {
                write!(f, "worker {rank} was killed by a signal mid-run")
            }
            ProcAbortReason::WorkerDisconnect { rank } => {
                write!(f, "worker {rank} closed its control socket mid-run")
            }
            ProcAbortReason::Watchdog => write!(f, "watchdog fired before the program stopped"),
            ProcAbortReason::Protocol { rank, error } => {
                write!(f, "worker {rank} protocol violation: {error}")
            }
        }
    }
}

/// Multi-process-backend detail attached to the run report.
#[derive(Clone, Debug)]
pub struct ProcDetail {
    /// Number of worker processes.
    pub npes: usize,
    /// Socket flavor the run used.
    pub transport: ProcTransport,
    /// Set when the run was cut short; `None` means a clean stop with
    /// every worker reporting.
    pub aborted: Option<ProcAbortReason>,
    /// Per-rank worker-local end times in nanoseconds (0 for workers
    /// that never reported).
    pub worker_end_ns: Vec<u64>,
}

/// Machine shape and run overrides serialized into `CK_PROC_OPTS`.
///
/// Everything a worker needs beyond the program spec: the machine size
/// and topology, batching thresholds, the loss shim, and the run-level
/// program knobs (`rng_seed`, reliable/tracing/metrics configs) the
/// parent's `Program` carries — shipping those guarantees a
/// `with_reliable`/`with_tracing`/`with_metrics` applied on the parent
/// side takes effect in every worker without the spec-builder knowing.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct ProcOpts {
    pub npes: usize,
    pub topology: Topology,
    pub batch_bytes: usize,
    pub batch_frames: usize,
    pub loss: Option<LossConfig>,
    pub rng_seed: u64,
    pub reliable: Option<ReliableConfig>,
    pub tracing: Option<TraceConfig>,
    pub metrics: Option<MetricsConfig>,
}

fn topology_to_str(t: &Topology) -> String {
    match t {
        Topology::Hypercube => "hypercube".to_string(),
        Topology::Ring => "ring".to_string(),
        Topology::FullyConnected => "full".to_string(),
        Topology::Bus => "bus".to_string(),
        Topology::Mesh2D { rows, cols } => format!("mesh:{rows}x{cols}"),
    }
}

fn topology_from_str(s: &str) -> Option<Topology> {
    match s {
        "hypercube" => Some(Topology::Hypercube),
        "ring" => Some(Topology::Ring),
        "full" => Some(Topology::FullyConnected),
        "bus" => Some(Topology::Bus),
        _ => {
            let dims = s.strip_prefix("mesh:")?;
            let (r, c) = dims.split_once('x')?;
            Some(Topology::Mesh2D {
                rows: r.parse().ok()?,
                cols: c.parse().ok()?,
            })
        }
    }
}

impl ProcOpts {
    pub(crate) fn serialize(&self) -> String {
        let mut s = format!(
            "npes={};topo={};bb={};bf={};seed={}",
            self.npes,
            topology_to_str(&self.topology),
            self.batch_bytes,
            self.batch_frames,
            self.rng_seed,
        );
        if let Some(l) = &self.loss {
            s.push_str(&format!(
                ";loss={},{},{}",
                l.seed, l.drop_permille, l.reorder_permille
            ));
        }
        if let Some(r) = &self.reliable {
            s.push_str(&format!(
                ";rel={},{},{}",
                r.timeout.as_nanos(),
                r.seed_retry_limit,
                r.window
            ));
        }
        if let Some(t) = &self.tracing {
            s.push_str(&format!(
                ";trace={},{}",
                t.capacity,
                if t.queue_samples { 1 } else { 0 }
            ));
        }
        if let Some(m) = &self.metrics {
            s.push_str(&format!(
                ";metrics={},{},{}",
                m.slice_ns, m.max_slices, m.flight_cap
            ));
        }
        s
    }

    pub(crate) fn parse(s: &str) -> Option<ProcOpts> {
        let mut opts = ProcOpts {
            npes: 0,
            topology: Topology::Hypercube,
            batch_bytes: 16 * 1024,
            batch_frames: 64,
            loss: None,
            rng_seed: 0,
            reliable: None,
            tracing: None,
            metrics: None,
        };
        for field in s.split(';') {
            let (key, val) = field.split_once('=')?;
            match key {
                "npes" => opts.npes = val.parse().ok()?,
                "topo" => opts.topology = topology_from_str(val)?,
                "bb" => opts.batch_bytes = val.parse().ok()?,
                "bf" => opts.batch_frames = val.parse().ok()?,
                "seed" => opts.rng_seed = val.parse().ok()?,
                "loss" => {
                    let mut it = val.splitn(3, ',');
                    opts.loss = Some(LossConfig {
                        seed: it.next()?.parse().ok()?,
                        drop_permille: it.next()?.parse().ok()?,
                        reorder_permille: it.next()?.parse().ok()?,
                    });
                }
                "rel" => {
                    let mut it = val.splitn(3, ',');
                    opts.reliable = Some(ReliableConfig {
                        timeout: multicomputer::Cost::nanos(it.next()?.parse().ok()?),
                        seed_retry_limit: it.next()?.parse().ok()?,
                        window: it.next()?.parse().ok()?,
                    });
                }
                "trace" => {
                    let mut it = val.splitn(2, ',');
                    opts.tracing = Some(TraceConfig {
                        capacity: it.next()?.parse().ok()?,
                        queue_samples: it.next()? == "1",
                    });
                }
                "metrics" => {
                    let mut it = val.splitn(3, ',');
                    opts.metrics = Some(MetricsConfig {
                        slice_ns: it.next()?.parse().ok()?,
                        max_slices: it.next()?.parse().ok()?,
                        flight_cap: it.next()?.parse().ok()?,
                    });
                }
                _ => return None,
            }
        }
        if opts.npes == 0 {
            return None;
        }
        Some(opts)
    }
}

/// The transport flavor an address string uses.
pub(crate) fn transport_of(addr: &str) -> ProcTransport {
    if addr.starts_with("uds:") {
        ProcTransport::Uds
    } else {
        ProcTransport::Tcp
    }
}

/// Parsed `CK_PROC_CRASH` hook.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CrashMode {
    /// `process::exit(code)`.
    Exit(i32),
    /// Shut every socket down and hang (the parent must detect the
    /// disconnect, not an exit status).
    Close,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct CrashHook {
    pub rank: u32,
    pub mode: CrashMode,
    /// Trigger after this many user scheduling steps.
    pub after: u64,
}

impl CrashHook {
    pub(crate) fn parse(s: &str) -> Option<CrashHook> {
        let mut it = s.split(':');
        let rank = it.next()?.parse().ok()?;
        let mode = it.next()?;
        match mode {
            "exit" => Some(CrashHook {
                rank,
                mode: CrashMode::Exit(it.next()?.parse().ok()?),
                after: it.next()?.parse().ok()?,
            }),
            "close" => Some(CrashHook {
                rank,
                mode: CrashMode::Close,
                after: it.next()?.parse().ok()?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multicomputer::Cost;

    #[test]
    fn opts_roundtrip_minimal() {
        let opts = ProcOpts {
            npes: 4,
            topology: Topology::Hypercube,
            batch_bytes: 16 * 1024,
            batch_frames: 64,
            loss: None,
            rng_seed: 0x5EED_CAFE,
            reliable: None,
            tracing: None,
            metrics: None,
        };
        assert_eq!(ProcOpts::parse(&opts.serialize()), Some(opts));
    }

    #[test]
    fn opts_roundtrip_everything() {
        let opts = ProcOpts {
            npes: 8,
            topology: Topology::Mesh2D { rows: 2, cols: 4 },
            batch_bytes: 1,
            batch_frames: 1,
            loss: Some(LossConfig {
                seed: 42,
                drop_permille: 100,
                reorder_permille: 50,
            }),
            rng_seed: 7,
            reliable: Some(ReliableConfig {
                timeout: Cost::millis(3),
                seed_retry_limit: 30,
                window: 16,
            }),
            tracing: Some(TraceConfig {
                capacity: 1 << 12,
                queue_samples: false,
            }),
            metrics: Some(MetricsConfig {
                slice_ns: 1 << 14,
                max_slices: 128,
                flight_cap: 32,
            }),
        };
        assert_eq!(ProcOpts::parse(&opts.serialize()), Some(opts));
    }

    #[test]
    fn topology_strings_roundtrip() {
        for t in [
            Topology::Hypercube,
            Topology::Ring,
            Topology::FullyConnected,
            Topology::Bus,
            Topology::Mesh2D { rows: 3, cols: 5 },
        ] {
            assert_eq!(topology_from_str(&topology_to_str(&t)), Some(t));
        }
    }

    #[test]
    fn malformed_opts_rejected() {
        assert_eq!(ProcOpts::parse(""), None);
        assert_eq!(ProcOpts::parse("npes=0"), None);
        assert_eq!(ProcOpts::parse("npes=4;bogus=1"), None);
        assert_eq!(ProcOpts::parse("npes=4;topo=donut"), None);
    }

    #[test]
    fn crash_hook_parses() {
        assert_eq!(
            CrashHook::parse("2:exit:7:5"),
            Some(CrashHook {
                rank: 2,
                mode: CrashMode::Exit(7),
                after: 5
            })
        );
        assert_eq!(
            CrashHook::parse("1:close:3"),
            Some(CrashHook {
                rank: 1,
                mode: CrashMode::Close,
                after: 3
            })
        );
        assert_eq!(CrashHook::parse("1:burn:3"), None);
        assert_eq!(CrashHook::parse(""), None);
    }

    #[test]
    fn abort_reasons_display() {
        let cases = [
            ProcAbortReason::SpawnFailed {
                rank: 0,
                error: "no exe".into(),
            },
            ProcAbortReason::FingerprintMismatch { rank: 1 },
            ProcAbortReason::WorkerExit {
                rank: 2,
                code: Some(7),
            },
            ProcAbortReason::WorkerExit { rank: 2, code: None },
            ProcAbortReason::WorkerDisconnect { rank: 3 },
            ProcAbortReason::Watchdog,
            ProcAbortReason::Protocol {
                rank: 4,
                error: "bad frame".into(),
            },
        ];
        for c in cases {
            assert!(!format!("{c}").is_empty());
        }
    }
}
