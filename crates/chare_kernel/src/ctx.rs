//! The kernel context handed to every entry method.
//!
//! `Ctx` is the whole programming interface of the kernel: creating
//! chares, sending messages, branch-office operations, specifically
//! shared variables, quiescence detection and program exit. It borrows
//! the executing PE's node and the machine's network context for the
//! duration of one entry-method execution.

use std::sync::Arc;

use multicomputer::{Cost, NetCtx, Pe};

use crate::boc::Branch;
use crate::chare::ChareInit;
use crate::envelope::{SysMsg, PLACED};
use crate::ids::{Boc, BocId, ChareId, EpId, Kind, Notify, WoId};
use crate::msg::Message;
use crate::node::{CkNode, CollectState};
use crate::priority::Priority;
use crate::shared::{Acc, Accum, Mono, MonoVar, ReadOnly, TableRef};

/// What kind of object is currently executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Current {
    /// A chare entry method (or constructor).
    Chare(ChareId),
    /// A branch entry method (or boot-time construction).
    Branch(BocId),
}

/// Kernel services available inside an entry method.
pub struct Ctx<'a> {
    pub(crate) node: &'a mut CkNode,
    pub(crate) net: &'a mut dyn NetCtx,
    pub(crate) current: Current,
    /// Set by [`Ctx::destroy_self`]; the scheduler frees the chare slot
    /// after the entry method returns.
    pub(crate) destroy_requested: bool,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(node: &'a mut CkNode, net: &'a mut dyn NetCtx, current: Current) -> Self {
        Ctx {
            node,
            net,
            current,
            destroy_requested: false,
        }
    }

    // -- Identity and machine info ------------------------------------

    /// The PE this entry method runs on.
    pub fn pe(&self) -> Pe {
        self.node.pe
    }

    /// Number of PEs in the machine.
    pub fn npes(&self) -> usize {
        self.node.npes
    }

    /// Current time in nanoseconds (simulated or wall clock, depending
    /// on the backend).
    pub fn now_ns(&self) -> u64 {
        self.net.now_ns()
    }

    /// The executing chare's own id.
    ///
    /// # Panics
    /// Panics when called from a branch entry method.
    pub fn self_id(&self) -> ChareId {
        match self.current {
            Current::Chare(id) => id,
            Current::Branch(_) => panic!("self_id called outside a chare entry method"),
        }
    }

    /// Charge simulated compute time for work this handler performs
    /// (no-op on the thread backend, where real work takes real time).
    pub fn charge(&mut self, cost: Cost) {
        self.net.charge(cost);
    }

    /// The executing branch's own BOC handle, typed as `B`.
    ///
    /// # Panics
    /// Panics when called from a chare entry method. The type parameter
    /// is trusted — call it only from entry methods of `B` itself.
    pub fn self_boc<B: Branch>(&self) -> Boc<B> {
        match self.current {
            Current::Branch(id) => Boc::new(id),
            Current::Chare(_) => panic!("self_boc called outside a branch entry method"),
        }
    }

    // -- Chare creation and messaging ----------------------------------

    /// Create a new chare of registered type `C` from `seed`. Placement
    /// is delegated to the program's load balancing strategy; the chare
    /// may be constructed on any PE. The creator receives no handle —
    /// pass your own [`ChareId`] in the seed if you need a reply (the
    /// kernel's idiom).
    pub fn create<C: ChareInit>(&mut self, kind: Kind<C>, seed: C::Seed) {
        self.create_prio(kind, seed, Priority::None);
    }

    /// [`Ctx::create`] with an explicit scheduling priority.
    pub fn create_prio<C: ChareInit>(&mut self, kind: Kind<C>, seed: C::Seed, prio: Priority) {
        let bytes = seed.bytes();
        self.node.counters.seeds_spawned += 1;
        self.node
            .place_seed(self.net, kind.id, Box::new(seed), bytes, prio, 0);
    }

    /// Create a chare on a specific PE, bypassing load balancing.
    pub fn create_on<C: ChareInit>(&mut self, pe: Pe, kind: Kind<C>, seed: C::Seed) {
        self.create_on_prio(pe, kind, seed, Priority::None);
    }

    /// [`Ctx::create_on`] with an explicit scheduling priority.
    pub fn create_on_prio<C: ChareInit>(
        &mut self,
        pe: Pe,
        kind: Kind<C>,
        seed: C::Seed,
        prio: Priority,
    ) {
        let bytes = seed.bytes();
        self.node.counters.seeds_spawned += 1;
        if pe == self.node.pe {
            // Settle locally without a network round trip, like the
            // kernel's local-creation fast path.
            self.node
                .place_seed(self.net, kind.id, Box::new(seed), bytes, prio, PLACED);
        } else {
            self.node.post(
                self.net,
                pe,
                SysMsg::NewChare {
                    kind: kind.id,
                    seed: Box::new(seed),
                    bytes,
                    prio,
                    hops: PLACED,
                },
            );
        }
    }

    /// Send `msg` to entry point `ep` of chare `target`.
    pub fn send<M: Message>(&mut self, target: ChareId, ep: EpId, msg: M) {
        self.send_prio(target, ep, msg, Priority::None);
    }

    /// [`Ctx::send`] with an explicit scheduling priority.
    pub fn send_prio<M: Message>(&mut self, target: ChareId, ep: EpId, msg: M, prio: Priority) {
        let bytes = msg.bytes();
        let to = target.pe;
        self.node.post(
            self.net,
            to,
            SysMsg::ChareMsg {
                target,
                ep,
                body: Box::new(msg),
                bytes,
                prio,
            },
        );
    }

    /// Destroy the executing chare after this entry method returns.
    /// Messages still in flight to it become dead letters.
    ///
    /// # Panics
    /// Panics when called from a branch entry method (branches live for
    /// the whole program).
    pub fn destroy_self(&mut self) {
        match self.current {
            Current::Chare(_) => self.destroy_requested = true,
            Current::Branch(_) => panic!("branches cannot be destroyed"),
        }
    }

    // -- Branch-office chares ------------------------------------------

    /// Send `msg` to entry point `ep` of the branch of `boc` on `pe`.
    pub fn send_branch<B: Branch, M: Message>(&mut self, boc: Boc<B>, pe: Pe, ep: EpId, msg: M) {
        self.send_branch_prio(boc, pe, ep, msg, Priority::None);
    }

    /// [`Ctx::send_branch`] with an explicit priority.
    pub fn send_branch_prio<B: Branch, M: Message>(
        &mut self,
        boc: Boc<B>,
        pe: Pe,
        ep: EpId,
        msg: M,
        prio: Priority,
    ) {
        let bytes = msg.bytes();
        self.node.post(
            self.net,
            pe,
            SysMsg::BranchMsg {
                boc: boc.id,
                ep,
                body: Box::new(msg),
                bytes,
                prio,
            },
        );
    }

    /// Send a copy of `msg` to entry point `ep` of every branch of
    /// `boc` (including this PE's). Distributed along the kernel's
    /// spanning tree unless the program selected direct broadcasts.
    pub fn broadcast_branch<B: Branch, M: Message + Clone + Sync>(
        &mut self,
        boc: Boc<B>,
        ep: EpId,
        msg: M,
    ) {
        let bytes = msg.bytes();
        let boc_id = boc.id;
        self.node.post_broadcast(
            self.net,
            true,
            Arc::new(move || SysMsg::BranchMsg {
                boc: boc_id,
                ep,
                body: Box::new(msg.clone()),
                bytes,
                prio: Priority::None,
            }),
        );
    }

    /// Call this PE's local branch of `boc` synchronously — the paper's
    /// "local branch call", used for fast PE-local services.
    ///
    /// # Panics
    /// Panics if `boc`'s branch is the object currently executing
    /// (re-entrant local calls are not allowed) or if `B` is not the
    /// branch's type.
    pub fn with_branch<B: Branch, R>(
        &mut self,
        boc: Boc<B>,
        f: impl FnOnce(&mut B, &mut Ctx) -> R,
    ) -> R {
        let slot = boc.id.0 as usize;
        let mut obj = self
            .node
            .branches
            .get_mut(slot)
            .and_then(|s| s.take())
            .unwrap_or_else(|| panic!("branch {slot} unavailable (re-entrant call?)"));
        let result = {
            let b = obj
                .as_any_mut()
                .downcast_mut::<B>()
                .expect("branch type mismatch");
            f(b, self)
        };
        self.node.branches[slot] = Some(obj);
        result
    }

    // -- Specifically shared variables ----------------------------------

    /// Read a read-only variable (replicated at program build).
    pub fn read_only<T: Send + Sync + 'static>(&self, ro: ReadOnly<T>) -> Arc<T> {
        Arc::clone(&self.node.reg.read_only[ro.id.0 as usize])
            .downcast::<T>()
            .expect("read-only variable type mismatch")
    }

    /// Fold `delta` into this PE's partial of accumulator `acc`.
    /// No communication happens until a collect.
    pub fn acc_add<A: Accum>(&mut self, acc: Acc<A>, delta: A::V) {
        let entry = &self.node.reg.accs[acc.id.0 as usize];
        (entry.combine)(
            &mut self.node.acc_vals[acc.id.0 as usize],
            Box::new(delta),
        );
    }

    /// Collect accumulator `acc` across all PEs: every PE's partial is
    /// taken (and reset to the identity), combined, and delivered to
    /// `notify` as an [`AccResult<A::V>`](crate::shared::AccResult).
    pub fn acc_collect<A: Accum>(&mut self, acc: Acc<A>, notify: Notify) {
        self.node.counters.acc_collects += 1;
        let token = ((self.node.pe.index() as u64) << 40) | self.node.collect_counter;
        self.node.collect_counter += 1;
        let me = self.node.pe;
        self.node.collect_notifies.insert(token, notify);
        if self.node.bcast_mode == crate::bcast::BroadcastMode::Direct {
            // Flat gather: expect one partial from every PE.
            let init = (self.node.reg.accs[acc.id.0 as usize].init)();
            self.node
                .collects
                .insert(token, CollectState::new(acc.id, me, self.node.npes, init));
        }
        // Tree mode builds its reduction state when the collect request
        // reaches each PE (including this one).
        let acc_id = acc.id;
        self.node.post_broadcast(
            self.net,
            true,
            std::sync::Arc::new(move || SysMsg::AccCollect {
                acc: acc_id,
                token,
                requester: me,
            }),
        );
    }

    /// Publish an improvement to monotonic variable `mono`. If it beats
    /// this PE's current value it is stored and broadcast; otherwise it
    /// is dropped (someone already knew better).
    pub fn mono_update<M: Mono>(&mut self, mono: MonoVar<M>, value: M::V) {
        let idx = mono.id.0 as usize;
        let reg = Arc::clone(&self.node.reg);
        let entry = &reg.monos[idx];
        let boxed: crate::envelope::MsgBody = Box::new(value);
        if !(entry.better)(&boxed, &self.node.mono_vals[idx]) {
            return;
        }
        self.node.counters.mono_broadcasts += 1;
        self.node.counters.mono_applied += 1;
        let gen = (entry.make_update_gen)(&boxed, mono.id);
        self.node.post_broadcast(self.net, false, gen);
        self.node.mono_vals[idx] = boxed;
    }

    /// Read this PE's current value of monotonic variable `mono`. May
    /// lag the global best — safe when used as a conservative bound.
    pub fn mono_get<M: Mono>(&self, mono: MonoVar<M>) -> M::V {
        self.node.mono_vals[mono.id.0 as usize]
            .downcast_ref::<M::V>()
            .expect("monotonic variable type mismatch")
            .clone()
    }

    /// Which PE owns `key` in distributed tables.
    pub fn table_home(&self, key: u64) -> Pe {
        Pe::from((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.node.npes)
    }

    /// Insert `(key, value)` into table `table`. If `notify` is given, a
    /// [`TableAck`](crate::shared::TableAck) is delivered on completion.
    pub fn table_put<V: Clone + Send + 'static>(
        &mut self,
        table: TableRef<V>,
        key: u64,
        value: V,
        notify: Option<Notify>,
    ) {
        let home = self.table_home(key);
        let bytes = std::mem::size_of::<V>() as u32;
        self.node.post(
            self.net,
            home,
            SysMsg::TablePut {
                table: table.id,
                key,
                value: Box::new(value),
                bytes,
                notify,
            },
        );
    }

    /// Look up `key` in `table`; a [`TableGot<V>`](crate::shared::TableGot)
    /// is delivered to `notify`.
    pub fn table_get<V: Clone + Send + 'static>(
        &mut self,
        table: TableRef<V>,
        key: u64,
        notify: Notify,
    ) {
        let home = self.table_home(key);
        self.node.post(
            self.net,
            home,
            SysMsg::TableGet {
                table: table.id,
                key,
                notify,
            },
        );
    }

    /// Delete `key` from `table`. If `notify` is given, a
    /// [`TableAck`](crate::shared::TableAck) reports whether it existed.
    pub fn table_delete<V: Clone + Send + 'static>(
        &mut self,
        table: TableRef<V>,
        key: u64,
        notify: Option<Notify>,
    ) {
        let home = self.table_home(key);
        self.node.post(
            self.net,
            home,
            SysMsg::TableDelete {
                table: table.id,
                key,
                notify,
            },
        );
    }

    /// Create a write-once variable holding `value`. The value is
    /// replicated to every PE; when replication completes, a
    /// [`WoReady`](crate::shared::WoReady) carrying the new [`WoId`] is
    /// delivered to `notify`, after which any PE may read it with
    /// [`Ctx::wo_get`].
    pub fn write_once<T: Send + Sync + 'static>(&mut self, value: T, notify: Notify) -> WoId {
        let id = WoId::new(self.node.pe, self.node.wo_counter);
        self.node.wo_counter += 1;
        let arc: Arc<dyn std::any::Any + Send + Sync> = Arc::new(value);
        let bytes = std::mem::size_of::<T>() as u32;
        self.node.wo_pending.insert(id, (self.node.npes, notify));
        self.node.post_broadcast(
            self.net,
            true,
            Arc::new(move || SysMsg::WoStore {
                wo: id,
                value: Arc::clone(&arc),
                bytes,
            }),
        );
        id
    }

    /// Read a replicated write-once variable.
    ///
    /// # Panics
    /// Panics if the variable has not been replicated to this PE yet —
    /// only read it after the [`WoReady`](crate::shared::WoReady)
    /// notification.
    pub fn wo_get<T: Send + Sync + 'static>(&self, id: WoId) -> Arc<T> {
        Arc::clone(
            self.node
                .wo_store
                .get(&id)
                .expect("write-once variable not (yet) replicated on this PE"),
        )
        .downcast::<T>()
        .expect("write-once variable type mismatch")
    }

    // -- Quiescence and termination --------------------------------------

    /// Ask the kernel to deliver a
    /// [`QuiescenceMsg`](crate::shared::QuiescenceMsg) to `notify` once
    /// no user message is queued or in flight anywhere.
    pub fn start_quiescence(&mut self, notify: Notify) {
        self.node.post(self.net, Pe::ZERO, SysMsg::QdStart { notify });
    }

    /// End the program (the kernel's `CkExit`), recording `result` as
    /// the program's result. Queued and in-flight messages are
    /// discarded.
    pub fn exit<R: Send + 'static>(&mut self, result: R) {
        self.net.deposit(Box::new(result));
        self.net.stop();
    }

    /// Number of runnable user messages queued on this PE (exposed for
    /// adaptive grain-size decisions, as some kernel programs used).
    pub fn local_backlog(&self) -> usize {
        self.node.user_load()
    }
}

