//! Messages between chares.
//!
//! Messages are plain owned Rust values. They are *moved* between PEs —
//! the type system guarantees the sender keeps no alias, which is the
//! nonshared-memory discipline of the paper enforced at compile time
//! rather than by the hardware.
//!
//! Because neither backend serializes (both run in one address space),
//! each message type declares the size its wire representation would
//! have via [`Message::bytes`]; the simulated network charges for that
//! many bytes. The default is `size_of::<Self>()`, correct for flat
//! types; messages carrying heap data (e.g. a `Vec`) should override it.

/// A value that can be sent to a chare entry point.
///
/// Implement with the [`message!`](crate::message) macro for flat types:
///
/// ```
/// use chare_kernel::message;
/// struct Work { n: u64, parent_hint: u32 }
/// message!(Work);
/// ```
pub trait Message: Send + 'static {
    /// Size in bytes the message would occupy on the wire. Drives the
    /// network cost model; irrelevant to correctness.
    fn bytes(&self) -> u32 {
        std::mem::size_of_val(self) as u32
    }
}

/// Implement [`Message`] for one or more flat types using the default
/// (in-memory) size.
#[macro_export]
macro_rules! message {
    ($($t:ty),+ $(,)?) => {
        $(impl $crate::msg::Message for $t {})+
    };
}

// Common flat payloads.
message!((), u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

// Kernel ids are routinely sent in messages (e.g. a child introducing
// itself to a parent).
message!(
    crate::ids::ChareId,
    crate::ids::EpId,
    crate::ids::BocId,
    crate::ids::WoId
);

impl<A: Message, B: Message> Message for (A, B) {
    fn bytes(&self) -> u32 {
        self.0.bytes() + self.1.bytes()
    }
}

impl<T: Send + 'static> Message for Vec<T> {
    fn bytes(&self) -> u32 {
        (self.len() * std::mem::size_of::<T>() + std::mem::size_of::<usize>()) as u32
    }
}

impl<T: Send + 'static> Message for Box<[T]> {
    fn bytes(&self) -> u32 {
        (self.len() * std::mem::size_of::<T>() + std::mem::size_of::<usize>()) as u32
    }
}

impl Message for String {
    fn bytes(&self) -> u32 {
        (self.len() + std::mem::size_of::<usize>()) as u32
    }
}

impl<T: Message> Message for Option<T> {
    fn bytes(&self) -> u32 {
        1 + self.as_ref().map_or(0, |v| v.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bytes_is_size_of() {
        struct Flat {
            _a: u64,
            _b: u32,
        }
        message!(Flat);
        let m = Flat { _a: 0, _b: 0 };
        assert_eq!(m.bytes(), std::mem::size_of::<Flat>() as u32);
    }

    #[test]
    fn vec_bytes_scale_with_len() {
        let v: Vec<u64> = vec![0; 100];
        assert_eq!(v.bytes() as usize, 100 * 8 + std::mem::size_of::<usize>());
    }

    #[test]
    fn tuple_bytes_sum() {
        let m = (1u32, 2u64);
        assert_eq!(m.bytes(), 12);
    }

    #[test]
    fn option_bytes() {
        assert_eq!(None::<u64>.bytes(), 1);
        assert_eq!(Some(1u64).bytes(), 9);
    }

    #[test]
    fn string_bytes() {
        let s = String::from("hello");
        assert_eq!(s.bytes() as usize, 5 + std::mem::size_of::<usize>());
    }
}
