//! Identifiers for kernel-managed entities.
//!
//! The C-era Chare Kernel addressed everything through small integer
//! handles filled in by its translator; we use newtypes so the compiler
//! keeps chare ids, entry points, branch-office ids and shared-variable
//! ids apart.

use multicomputer::Pe;
use std::fmt;
use std::marker::PhantomData;

/// Index of a registered chare *type* (the paper's "chare definition").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ChareKind(pub u32);

/// Typed wrapper over [`ChareKind`] returned by registration, so that
/// `create` calls can type-check the seed message.
pub struct Kind<C> {
    /// The untyped kind index.
    pub id: ChareKind,
    pub(crate) _marker: PhantomData<fn() -> C>,
}

impl<C> Kind<C> {
    pub(crate) fn new(id: ChareKind) -> Self {
        Kind {
            id,
            _marker: PhantomData,
        }
    }
}

impl<C> Clone for Kind<C> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<C> Copy for Kind<C> {}

impl<C> fmt::Debug for Kind<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kind({})", self.id.0)
    }
}

/// Identity of one live chare instance: the PE it lives on plus a local
/// slot. Chares never migrate after placement, so the pair is stable for
/// the chare's lifetime (exactly the property the paper's seed-based load
/// balancing relies on: only *unborn* chares move).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChareId {
    /// PE hosting the chare.
    pub pe: Pe,
    /// Slot within that PE's chare table.
    pub local: u32,
}

impl fmt::Debug for ChareId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Chare({}:{})", self.pe, self.local)
    }
}

/// An entry point within a chare or branch-office chare. Applications
/// define their own constants (`const DONE: EpId = EpId(2);`), mirroring
/// the kernel's entry-point tables.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EpId(pub u32);

/// Identifier of a branch-office chare; the same id addresses the branch
/// on every PE.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BocId(pub u32);

/// Typed branch-office handle.
pub struct Boc<B> {
    /// The untyped BOC index.
    pub id: BocId,
    pub(crate) _marker: PhantomData<fn() -> B>,
}

impl<B> Boc<B> {
    pub(crate) fn new(id: BocId) -> Self {
        Boc {
            id,
            _marker: PhantomData,
        }
    }
}

impl<B> Clone for Boc<B> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<B> Copy for Boc<B> {}

impl<B> fmt::Debug for Boc<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Boc({})", self.id.0)
    }
}

/// Identifier of an accumulator variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AccId(pub u32);

/// Identifier of a monotonic variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MonoId(pub u32);

/// Identifier of a distributed table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TableId(pub u32);

/// Identifier of a read-only variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RoId(pub u32);

/// Identifier of a write-once variable (allocated at runtime; globally
/// unique: creating PE in the high bits, creation counter in the low).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WoId(pub u64);

impl WoId {
    pub(crate) fn new(pe: Pe, counter: u32) -> Self {
        WoId(((pe.index() as u64) << 32) | counter as u64)
    }

    /// The PE that created this variable.
    pub fn creator(self) -> Pe {
        Pe((self.0 >> 32) as u32)
    }
}

/// Where to deliver a kernel-generated notification message (quiescence,
/// collected accumulator value, write-once readiness, table replies).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Notify {
    /// Deliver to a chare's entry point.
    Chare(ChareId, EpId),
    /// Deliver to one branch of a branch-office chare.
    Branch(BocId, Pe, EpId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wo_id_encodes_creator() {
        let id = WoId::new(Pe(3), 17);
        assert_eq!(id.creator(), Pe(3));
        let id2 = WoId::new(Pe(3), 18);
        assert_ne!(id, id2);
    }

    #[test]
    fn chare_id_debug() {
        let id = ChareId {
            pe: Pe(2),
            local: 5,
        };
        assert_eq!(format!("{id:?}"), "Chare(2:5)");
    }

    #[test]
    fn typed_handles_are_copy() {
        struct Foo;
        let k: Kind<Foo> = Kind::new(ChareKind(1));
        let k2 = k;
        assert_eq!(k.id, k2.id);
        let b: Boc<Foo> = Boc::new(BocId(2));
        let b2 = b;
        assert_eq!(b.id, b2.id);
    }

    #[test]
    fn notify_variants_compare() {
        let a = Notify::Chare(
            ChareId {
                pe: Pe(0),
                local: 1,
            },
            EpId(2),
        );
        let b = Notify::Branch(BocId(0), Pe(1), EpId(2));
        assert_ne!(a, b);
    }
}
