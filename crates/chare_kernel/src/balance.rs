//! Dynamic load balancing strategies.
//!
//! New chares are the unit of load balancing: a seed message carries no
//! state besides its constructor argument, so it can be placed on any PE
//! at creation time (chares never migrate once born). The paper's
//! experiments compare placement strategies on adaptive tree
//! computations; this module implements the four families it discusses:
//!
//! * [`BalanceStrategy::Local`] — no balancing; every chare runs where it
//!   was created (the baseline that demonstrates the problem);
//! * [`BalanceStrategy::Random`] — uniform random placement at creation;
//!   communication-oblivious but statistically balanced;
//! * [`BalanceStrategy::CentralManager`] — all seeds go to PE 0, which
//!   assigns them to the least-loaded PE using load reports; accurate but
//!   a bottleneck at scale;
//! * [`BalanceStrategy::TokenIdle`] — receiver-initiated: idle PEs
//!   request work tokens from neighbors;
//! * [`BalanceStrategy::Acwn`] — **Adaptive Contracting Within
//!   Neighborhood**: a loaded PE forwards a seed to its least-loaded
//!   direct neighbor, up to a hop budget, contracting (keeping work
//!   local) as load rises; the paper's best general-purpose strategy.

use multicomputer::Pe;
use rand::rngs::StdRng;
use rand::Rng;

/// Placement decision for one seed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// Enqueue the seed on this PE.
    Local,
    /// Forward the seed to another PE (incrementing its hop count).
    Forward(Pe),
}

/// Strategy selector, chosen per program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BalanceStrategy {
    /// No balancing: seeds stay on their creating PE.
    Local,
    /// Uniform random placement at creation time.
    Random,
    /// Central manager on PE 0 assigns seeds to the least-loaded PE.
    CentralManager,
    /// Idle PEs request work from neighbors (receiver-initiated tokens).
    TokenIdle,
    /// Adaptive contracting within neighborhood.
    Acwn {
        /// Maximum number of forwards before a seed must settle.
        max_hops: u32,
        /// Keep seeds local while the runnable backlog is below this.
        low_mark: u32,
    },
}

impl BalanceStrategy {
    /// Reasonable ACWN defaults (hop budget 4, low mark 2).
    pub fn acwn() -> BalanceStrategy {
        BalanceStrategy::Acwn {
            max_hops: 4,
            low_mark: 2,
        }
    }

    /// Short stable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            BalanceStrategy::Local => "local",
            BalanceStrategy::Random => "random",
            BalanceStrategy::CentralManager => "central",
            BalanceStrategy::TokenIdle => "token",
            BalanceStrategy::Acwn { .. } => "acwn",
        }
    }

    pub(crate) fn make(&self, pe: Pe, npes: usize, neighbors: Vec<Pe>) -> Box<dyn Balancer> {
        match *self {
            BalanceStrategy::Local => Box::new(LocalBalancer),
            BalanceStrategy::Random => Box::new(RandomBalancer { npes }),
            BalanceStrategy::CentralManager => Box::new(CentralBalancer {
                pe,
                loads: if pe == Pe::ZERO {
                    vec![0; npes]
                } else {
                    Vec::new()
                },
                report_to: if pe == Pe::ZERO { vec![] } else { vec![Pe::ZERO] },
                rr: 0,
            }),
            BalanceStrategy::TokenIdle => Box::new(TokenBalancer {
                neighbors,
                next: 0,
            }),
            BalanceStrategy::Acwn { max_hops, low_mark } => Box::new(AcwnBalancer {
                max_hops,
                low_mark,
                neighbors: neighbors.clone(),
                loads: vec![0; neighbors.len()],
                report_to: neighbors,
            }),
        }
    }
}

/// Per-PE load balancing policy. One instance per PE; the kernel calls
/// it for every seed that is still placeable and feeds it load reports
/// from other PEs.
pub(crate) trait Balancer: Send {
    /// Decide where a seed goes. `hops` counts previous forwards;
    /// `local_load` is this PE's runnable backlog.
    fn place(&mut self, hops: u32, local_load: usize, rng: &mut StdRng) -> Placement;

    /// Whether locally kept seeds go into the stealable seed pool
    /// (token strategy) instead of the main queue.
    fn pools_seeds(&self) -> bool {
        false
    }

    /// Incorporate a load report from another PE.
    fn on_load_status(&mut self, from: Pe, load: u32) {
        let _ = (from, load);
    }

    /// PEs that should receive this PE's load reports.
    fn load_targets(&self) -> &[Pe] {
        &[]
    }

    /// Whether this PE should send work requests when it goes idle.
    fn request_work_when_idle(&self) -> bool {
        false
    }

    /// Choose a PE to ask for work (token strategy); round-robins so
    /// repeated NACKs try different victims.
    fn pick_victim(&mut self, rng: &mut StdRng) -> Option<Pe> {
        let _ = rng;
        None
    }

    /// Choose a new home for a seed whose delivery to `suspect` timed
    /// out (reliable-delivery recovery). `None` means the strategy has
    /// no opinion and the node falls back to a uniform pick avoiding
    /// the suspect.
    fn redirect_target(&mut self, suspect: Pe, rng: &mut StdRng) -> Option<Pe> {
        let _ = (suspect, rng);
        None
    }
}

/// No balancing.
struct LocalBalancer;

impl Balancer for LocalBalancer {
    fn place(&mut self, _hops: u32, _load: usize, _rng: &mut StdRng) -> Placement {
        Placement::Local
    }
}

/// Uniform random placement at the source; arrivals settle.
struct RandomBalancer {
    npes: usize,
}

impl Balancer for RandomBalancer {
    fn place(&mut self, hops: u32, _load: usize, rng: &mut StdRng) -> Placement {
        if hops > 0 {
            return Placement::Local;
        }
        let target = Pe::from(rng.random_range(0..self.npes));
        Placement::Forward(target)
    }
}

/// Seeds route via PE 0, which assigns them to its current estimate of
/// the least-loaded PE. PE 0 bumps its estimate on each assignment so
/// bursts spread even between load reports.
struct CentralBalancer {
    pe: Pe,
    /// PE 0 only: load estimate per PE.
    loads: Vec<u64>,
    report_to: Vec<Pe>,
    /// Tie-break rotation so equal loads spread round-robin.
    rr: usize,
}

impl Balancer for CentralBalancer {
    fn place(&mut self, hops: u32, local_load: usize, _rng: &mut StdRng) -> Placement {
        if self.pe == Pe::ZERO {
            // Manager: assign to least-loaded (its own estimate for PE 0
            // is its actual backlog).
            if !self.loads.is_empty() {
                self.loads[0] = local_load as u64;
            }
            let n = self.loads.len();
            let mut best = self.rr % n;
            for off in 0..n {
                let i = (self.rr + off) % n;
                if self.loads[i] < self.loads[best] {
                    best = i;
                }
            }
            self.rr = (self.rr + 1) % n;
            self.loads[best] += 1;
            if best == 0 {
                Placement::Local
            } else {
                Placement::Forward(Pe::from(best))
            }
        } else if hops == 0 {
            // Route to the manager.
            Placement::Forward(Pe::ZERO)
        } else {
            // Assigned by the manager; settle.
            Placement::Local
        }
    }

    fn on_load_status(&mut self, from: Pe, load: u32) {
        if self.pe == Pe::ZERO && from.index() < self.loads.len() {
            self.loads[from.index()] = load as u64;
        }
    }

    fn load_targets(&self) -> &[Pe] {
        &self.report_to
    }

    fn redirect_target(&mut self, suspect: Pe, _rng: &mut StdRng) -> Option<Pe> {
        if self.pe != Pe::ZERO {
            return None;
        }
        // Manager: reassign to the least-loaded PE that isn't the one
        // that stopped answering.
        let mut best: Option<usize> = None;
        for i in 0..self.loads.len() {
            if i == suspect.index() || Pe::from(i) == self.pe {
                continue;
            }
            if best.is_none_or(|b| self.loads[i] < self.loads[b]) {
                best = Some(i);
            }
        }
        best.map(|i| {
            self.loads[i] += 1;
            Pe::from(i)
        })
    }
}

/// Receiver-initiated: seeds stay local in a stealable pool; idle PEs
/// send work requests to neighbors round-robin.
struct TokenBalancer {
    neighbors: Vec<Pe>,
    next: usize,
}

impl Balancer for TokenBalancer {
    fn place(&mut self, _hops: u32, _load: usize, _rng: &mut StdRng) -> Placement {
        Placement::Local
    }

    fn pools_seeds(&self) -> bool {
        true
    }

    fn request_work_when_idle(&self) -> bool {
        true
    }

    fn pick_victim(&mut self, _rng: &mut StdRng) -> Option<Pe> {
        if self.neighbors.is_empty() {
            return None;
        }
        let v = self.neighbors[self.next % self.neighbors.len()];
        self.next += 1;
        Some(v)
    }

    fn redirect_target(&mut self, suspect: Pe, _rng: &mut StdRng) -> Option<Pe> {
        for _ in 0..self.neighbors.len() {
            let v = self.neighbors[self.next % self.neighbors.len()];
            self.next += 1;
            if v != suspect {
                return Some(v);
            }
        }
        None
    }
}

/// Adaptive contracting within neighborhood.
struct AcwnBalancer {
    max_hops: u32,
    low_mark: u32,
    neighbors: Vec<Pe>,
    /// Load estimate per neighbor (parallel to `neighbors`).
    loads: Vec<u64>,
    report_to: Vec<Pe>,
}

impl Balancer for AcwnBalancer {
    fn place(&mut self, hops: u32, local_load: usize, _rng: &mut StdRng) -> Placement {
        if hops >= self.max_hops || self.neighbors.is_empty() {
            return Placement::Local;
        }
        if (local_load as u32) < self.low_mark {
            // Contract: we are hungry enough to keep it.
            return Placement::Local;
        }
        // Least-loaded neighbor.
        let mut best = 0;
        for i in 1..self.neighbors.len() {
            if self.loads[i] < self.loads[best] {
                best = i;
            }
        }
        if self.loads[best] + 2 <= local_load as u64 {
            self.loads[best] += 1;
            Placement::Forward(self.neighbors[best])
        } else {
            Placement::Local
        }
    }

    fn on_load_status(&mut self, from: Pe, load: u32) {
        if let Some(i) = self.neighbors.iter().position(|&n| n == from) {
            self.loads[i] = load as u64;
        }
    }

    fn load_targets(&self) -> &[Pe] {
        &self.report_to
    }

    fn redirect_target(&mut self, suspect: Pe, _rng: &mut StdRng) -> Option<Pe> {
        // Least-loaded neighbor other than the suspect.
        let mut best: Option<usize> = None;
        for (i, &n) in self.neighbors.iter().enumerate() {
            if n == suspect {
                continue;
            }
            if best.is_none_or(|b| self.loads[i] < self.loads[b]) {
                best = Some(i);
            }
        }
        best.map(|i| {
            self.loads[i] += 1;
            self.neighbors[i]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn local_always_keeps() {
        let mut b = BalanceStrategy::Local.make(Pe(1), 8, vec![Pe(0), Pe(3)]);
        for hops in 0..3 {
            assert_eq!(b.place(hops, 100, &mut rng()), Placement::Local);
        }
        assert!(!b.pools_seeds());
    }

    #[test]
    fn random_forwards_once_then_settles() {
        let mut b = BalanceStrategy::Random.make(Pe(0), 8, vec![]);
        let mut r = rng();
        match b.place(0, 0, &mut r) {
            Placement::Forward(pe) => assert!(pe.index() < 8),
            Placement::Local => panic!("random must pick a target at hops 0"),
        }
        assert_eq!(b.place(1, 0, &mut r), Placement::Local);
    }

    #[test]
    fn random_is_roughly_uniform() {
        let mut b = BalanceStrategy::Random.make(Pe(0), 4, vec![]);
        let mut r = rng();
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            if let Placement::Forward(pe) = b.place(0, 0, &mut r) {
                counts[pe.index()] += 1;
            }
        }
        for c in counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn central_routes_via_manager() {
        let mut worker = BalanceStrategy::CentralManager.make(Pe(3), 8, vec![]);
        assert_eq!(worker.place(0, 0, &mut rng()), Placement::Forward(Pe::ZERO));
        assert_eq!(worker.place(1, 0, &mut rng()), Placement::Local);
        assert_eq!(worker.load_targets(), &[Pe::ZERO]);
    }

    #[test]
    fn central_manager_assigns_least_loaded() {
        let mut mgr = BalanceStrategy::CentralManager.make(Pe::ZERO, 4, vec![]);
        mgr.on_load_status(Pe(1), 10);
        mgr.on_load_status(Pe(2), 0);
        mgr.on_load_status(Pe(3), 5);
        // Manager's own load is high.
        let p = mgr.place(1, 50, &mut rng());
        assert_eq!(p, Placement::Forward(Pe(2)));
        // The assignment bumped PE2's estimate; next pick with equal
        // loads rotates rather than hammering one PE.
        mgr.on_load_status(Pe(1), 1);
        mgr.on_load_status(Pe(2), 1);
        mgr.on_load_status(Pe(3), 1);
        let mut targets = std::collections::HashSet::new();
        for _ in 0..3 {
            if let Placement::Forward(pe) = mgr.place(1, 50, &mut rng()) {
                targets.insert(pe.index());
            }
        }
        assert!(targets.len() >= 2, "assignments should rotate: {targets:?}");
    }

    #[test]
    fn token_pools_and_picks_round_robin() {
        let mut b = BalanceStrategy::TokenIdle.make(Pe(0), 8, vec![Pe(1), Pe(2), Pe(4)]);
        assert!(b.pools_seeds());
        assert!(b.request_work_when_idle());
        assert_eq!(b.place(0, 0, &mut rng()), Placement::Local);
        let mut r = rng();
        let picks: Vec<Pe> = (0..4).filter_map(|_| b.pick_victim(&mut r)).collect();
        assert_eq!(picks, vec![Pe(1), Pe(2), Pe(4), Pe(1)]);
    }

    #[test]
    fn token_with_no_neighbors_never_picks() {
        let mut b = BalanceStrategy::TokenIdle.make(Pe(0), 1, vec![]);
        assert_eq!(b.pick_victim(&mut rng()), None);
    }

    #[test]
    fn acwn_keeps_when_hungry() {
        let mut b = BalanceStrategy::acwn().make(Pe(0), 8, vec![Pe(1), Pe(2)]);
        assert_eq!(b.place(0, 0, &mut rng()), Placement::Local);
        assert_eq!(b.place(0, 1, &mut rng()), Placement::Local);
    }

    #[test]
    fn acwn_forwards_to_least_loaded_neighbor() {
        let mut b = BalanceStrategy::acwn().make(Pe(0), 8, vec![Pe(1), Pe(2)]);
        b.on_load_status(Pe(1), 9);
        b.on_load_status(Pe(2), 1);
        assert_eq!(b.place(0, 10, &mut rng()), Placement::Forward(Pe(2)));
        // Its estimate for PE2 rose; with both neighbors loaded it
        // contracts.
        b.on_load_status(Pe(2), 9);
        assert_eq!(b.place(0, 10, &mut rng()), Placement::Local);
    }

    #[test]
    fn acwn_respects_hop_budget() {
        let mut b = BalanceStrategy::Acwn {
            max_hops: 2,
            low_mark: 0,
        }
        .make(Pe(0), 8, vec![Pe(1)]);
        b.on_load_status(Pe(1), 0);
        assert!(matches!(b.place(0, 50, &mut rng()), Placement::Forward(_)));
        assert_eq!(b.place(2, 50, &mut rng()), Placement::Local);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(BalanceStrategy::Local.name(), "local");
        assert_eq!(BalanceStrategy::acwn().name(), "acwn");
    }
}
