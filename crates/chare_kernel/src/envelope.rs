//! Kernel-internal message envelopes.
//!
//! Every packet between kernel nodes carries one [`SysMsg`]. User-level
//! traffic (new-chare seeds, chare messages, branch messages, shared-
//! variable operations) is *counted* for quiescence detection; kernel
//! control traffic (QD waves, load reports, work-request tokens) is not.

use std::any::Any;
use std::sync::Arc;

use multicomputer::Pe;

use crate::ids::{AccId, BocId, ChareId, ChareKind, EpId, MonoId, Notify, TableId, WoId};
use crate::priority::Priority;

/// An owned, untyped message body (same shape as the machine layer's
/// payload, kept separate so kernel code reads clearly).
pub type MsgBody = Box<dyn Any + Send>;

/// Fixed per-envelope header size charged to the network cost model,
/// approximating the C kernel's envelope struct.
pub const ENVELOPE_HEADER: u32 = 24;

/// Hop count marking a seed whose placement was decided explicitly
/// (`create_on`) — load balancers must keep it where it lands.
pub const PLACED: u32 = u32::MAX;

/// Generator of broadcast payload copies: called once per PE reached by
/// a spanning-tree broadcast.
pub type CastGen = Arc<dyn Fn() -> SysMsg + Send + Sync>;

/// Shared payload slot for reliable delivery.
///
/// Message bodies are un-clonable, so retransmission cannot copy them.
/// Instead the sender's retransmit buffer and every wire frame co-own
/// one slot; the receiver atomically `take()`s the body on first
/// delivery. Late duplicates and retransmissions of an already-consumed
/// message find the slot empty — exactly-once delivery even when a
/// timed-out seed has been reclaimed and redirected while the original
/// frame is still in flight.
pub type RelSlot = Arc<std::sync::Mutex<Option<SysMsg>>>;

/// Extra wire bytes a reliable frame adds to its carried message
/// (sequence number + flags).
pub const REL_HEADER: u32 = 16;

/// The kernel-to-kernel wire protocol.
pub enum SysMsg {
    /// Several messages for the same destination PE combined into one
    /// packet (one network alpha instead of one per message). Inner
    /// messages were counted individually at send time; the batch
    /// wrapper itself is not counted.
    Batch(Vec<SysMsg>),
    /// A spanning-tree broadcast in flight: the receiving PE forwards it
    /// to its subtree children, then applies `gen()` locally.
    TreeCast {
        /// Root of the broadcast.
        origin: Pe,
        /// Whether the carried message is user traffic (for quiescence
        /// counting; precomputed so counting never invokes `gen`).
        counted: bool,
        /// Wire size of one carried copy.
        bytes: u32,
        /// Produces the carried message.
        gen: CastGen,
    },
    /// A seed for a new chare, still subject to load balancing (unless
    /// `hops == PLACED`).
    NewChare {
        /// Which registered chare type to instantiate.
        kind: ChareKind,
        /// The constructor message.
        seed: MsgBody,
        /// Wire size of the seed.
        bytes: u32,
        /// Scheduling priority of the creation.
        prio: Priority,
        /// Number of load-balancer forwards so far.
        hops: u32,
    },
    /// A message for an existing chare's entry point.
    ChareMsg {
        /// Destination chare (its `pe` equals the packet destination).
        target: ChareId,
        /// Entry point to invoke.
        ep: EpId,
        /// Message body.
        body: MsgBody,
        /// Wire size of the body.
        bytes: u32,
        /// Scheduling priority.
        prio: Priority,
    },
    /// A message for the local branch of a branch-office chare.
    BranchMsg {
        /// Destination BOC.
        boc: BocId,
        /// Entry point to invoke.
        ep: EpId,
        /// Message body.
        body: MsgBody,
        /// Wire size of the body.
        bytes: u32,
        /// Scheduling priority.
        prio: Priority,
    },
    /// Accumulator collect request: every PE must send its (destructively
    /// read) partial to `requester` tagged with `token`.
    AccCollect {
        /// Which accumulator.
        acc: AccId,
        /// Correlation token for this collect.
        token: u64,
        /// PE gathering the partials.
        requester: Pe,
    },
    /// One PE's partial accumulator value.
    AccPart {
        /// Which accumulator.
        acc: AccId,
        /// Correlation token.
        token: u64,
        /// The partial value (an `A::V`).
        part: MsgBody,
    },
    /// A monotonic-variable improvement broadcast.
    MonoUpdate {
        /// Which variable.
        mono: MonoId,
        /// The improved value (an `M::V`).
        value: MsgBody,
    },
    /// Insert into a distributed table shard (the destination PE owns the
    /// key).
    TablePut {
        /// Which table.
        table: TableId,
        /// Key.
        key: u64,
        /// Value (a `V`).
        value: MsgBody,
        /// Wire size of the value.
        bytes: u32,
        /// Optional completion notification.
        notify: Option<Notify>,
    },
    /// Look up a key; the shard replies with a `TableGot<V>` to `notify`.
    TableGet {
        /// Which table.
        table: TableId,
        /// Key.
        key: u64,
        /// Where the reply goes.
        notify: Notify,
    },
    /// Delete a key.
    TableDelete {
        /// Which table.
        table: TableId,
        /// Key.
        key: u64,
        /// Optional completion notification.
        notify: Option<Notify>,
    },
    /// Replicate a write-once value onto the destination PE.
    WoStore {
        /// The variable's id.
        wo: WoId,
        /// The shared value.
        value: Arc<dyn Any + Send + Sync>,
        /// Wire size of the value.
        bytes: u32,
    },
    /// Acknowledge a `WoStore` back to the creator.
    WoAck {
        /// The variable's id.
        wo: WoId,
    },
    /// Ask PE 0 to run quiescence detection and notify `notify` when the
    /// computation quiesces.
    QdStart {
        /// Who to tell.
        notify: Notify,
    },
    /// Coordinator poll: report your counters for `wave`.
    QdPoll {
        /// Wave number.
        wave: u64,
    },
    /// One PE's reply to a poll.
    QdCount {
        /// Wave number this reply answers.
        wave: u64,
        /// Counted user messages sent so far.
        sent: u64,
        /// Counted user messages received so far.
        recv: u64,
        /// Whether the PE had no queued user work at reply time.
        idle: bool,
    },
    /// Load report for the balancing strategies.
    LoadStatus {
        /// Sender's runnable backlog.
        load: u32,
    },
    /// Token-strategy work request from an idle PE. Idle PEs with no
    /// spare work forward the request onward (a random walk over the
    /// neighbor graph) until it finds a busy PE or its TTL expires.
    WorkReq {
        /// The PE that wants work.
        origin: Pe,
        /// Remaining forwarding hops.
        ttl: u8,
    },
    /// Negative response to a `WorkReq`.
    WorkNack,
    /// A sequence-numbered reliable frame carrying one inner message
    /// (or a batch). The receiver acks `seq`, dedups per sender, and
    /// takes the body from the shared slot on first delivery. Counting
    /// for quiescence happens on the *inner* message, so
    /// retransmissions never perturb the QD counters.
    RelData {
        /// Per-(sender, receiver) sequence number, starting at 1.
        seq: u64,
        /// Wire size of the carried message.
        bytes: u32,
        /// Co-owned body; empty once consumed.
        slot: RelSlot,
    },
    /// Cumulative acknowledgment of reliable frames from this PE.
    /// Unreliable and uncounted: a lost ack is repaired by the
    /// retransmission it fails to suppress.
    RelAck {
        /// Sequence numbers being acknowledged.
        seqs: Vec<u64>,
    },
}

impl SysMsg {
    /// Whether this message counts as user activity for quiescence
    /// detection.
    pub fn counted(&self) -> bool {
        match self {
            SysMsg::Batch(_) => false, // inners counted individually
            SysMsg::TreeCast { counted, .. } => *counted,
            SysMsg::QdStart { .. }
            | SysMsg::QdPoll { .. }
            | SysMsg::QdCount { .. }
            | SysMsg::LoadStatus { .. }
            | SysMsg::WorkReq { .. }
            | SysMsg::WorkNack => false,
            // Reliable framing is transport plumbing: the carried message
            // is counted when (and only when) its slot is consumed.
            SysMsg::RelData { .. } | SysMsg::RelAck { .. } => false,
            _ => true,
        }
    }

    /// Wire size charged to the network cost model.
    pub fn wire_bytes(&self) -> u32 {
        ENVELOPE_HEADER
            + match self {
                // One shared header; inner payloads keep their own
                // per-record framing minus the per-message envelope.
                SysMsg::Batch(inner) => inner
                    .iter()
                    .map(|m| m.wire_bytes() - ENVELOPE_HEADER + 2)
                    .sum(),
                SysMsg::TreeCast { bytes, .. } => 8 + bytes,
                SysMsg::NewChare { bytes, prio, .. } => 8 + bytes + prio.wire_bytes(),
                SysMsg::ChareMsg { bytes, prio, .. } => 16 + bytes + prio.wire_bytes(),
                SysMsg::BranchMsg { bytes, prio, .. } => 8 + bytes + prio.wire_bytes(),
                SysMsg::AccCollect { .. } => 16,
                SysMsg::AccPart { .. } => 16, // plus value, approximated flat
                SysMsg::MonoUpdate { .. } => 16,
                SysMsg::TablePut { bytes, .. } => 16 + bytes,
                SysMsg::TableGet { .. } => 24,
                SysMsg::TableDelete { .. } => 24,
                SysMsg::WoStore { bytes, .. } => 8 + bytes,
                SysMsg::WoAck { .. } => 8,
                SysMsg::QdStart { .. } => 16,
                SysMsg::QdPoll { .. } => 8,
                SysMsg::QdCount { .. } => 25,
                SysMsg::LoadStatus { .. } => 4,
                SysMsg::WorkReq { .. } => 5,
                SysMsg::WorkNack => 0,
                // The inner `bytes` already include its envelope header;
                // the frame shares it and adds only the reliable header.
                SysMsg::RelData { bytes, .. } => {
                    (bytes + REL_HEADER).saturating_sub(ENVELOPE_HEADER)
                }
                SysMsg::RelAck { seqs } => 4 + 8 * seqs.len() as u32,
            }
    }
}

/// One unit of runnable user work in a PE's scheduler queue.
pub enum WorkItem {
    /// Construct a new chare from its seed.
    NewChare {
        /// Registered type.
        kind: ChareKind,
        /// Constructor message.
        seed: MsgBody,
        /// Wire size (kept for token-strategy re-forwarding).
        bytes: u32,
        /// Priority (kept for re-forwarding).
        prio: Priority,
    },
    /// Deliver a message to a local chare.
    ChareMsg {
        /// Slot in the local chare table.
        local: u32,
        /// Entry point.
        ep: EpId,
        /// Message body.
        body: MsgBody,
    },
    /// Deliver a message to the local branch of a BOC.
    BranchMsg {
        /// Which BOC.
        boc: BocId,
        /// Entry point.
        ep: EpId,
        /// Message body.
        body: MsgBody,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_are_not_counted() {
        assert!(!SysMsg::QdPoll { wave: 1 }.counted());
        assert!(!SysMsg::LoadStatus { load: 3 }.counted());
        assert!(!SysMsg::WorkReq {
            origin: Pe(0),
            ttl: 8
        }
        .counted());
        assert!(!SysMsg::WorkNack.counted());
        assert!(!SysMsg::QdCount {
            wave: 1,
            sent: 0,
            recv: 0,
            idle: true
        }
        .counted());
    }

    #[test]
    fn user_messages_are_counted() {
        let m = SysMsg::ChareMsg {
            target: ChareId {
                pe: Pe(0),
                local: 0,
            },
            ep: EpId(0),
            body: Box::new(1u32),
            bytes: 4,
            prio: Priority::None,
        };
        assert!(m.counted());
        let n = SysMsg::NewChare {
            kind: ChareKind(0),
            seed: Box::new(()),
            bytes: 0,
            prio: Priority::None,
            hops: 0,
        };
        assert!(n.counted());
        assert!(SysMsg::MonoUpdate {
            mono: MonoId(0),
            value: Box::new(1u32)
        }
        .counted());
    }

    #[test]
    fn wire_bytes_include_header_and_payload() {
        let m = SysMsg::ChareMsg {
            target: ChareId {
                pe: Pe(0),
                local: 0,
            },
            ep: EpId(0),
            body: Box::new(0u64),
            bytes: 100,
            prio: Priority::None,
        };
        assert_eq!(m.wire_bytes(), ENVELOPE_HEADER + 16 + 100 + 1);
    }
}
