//! Quiescence detection.
//!
//! A message-driven computation is *quiescent* when no PE has runnable
//! work and no user message is in flight. Detecting this is how Chare
//! Kernel programs without an obvious "last message" (tree searches,
//! data-driven relaxations) know they are done.
//!
//! We implement the classic **four-counter wave algorithm**: PE 0
//! coordinates waves; in each wave every PE reports its cumulative
//! user-messages-sent and -received counters plus an idle flag.
//! Quiescence is declared when two consecutive waves report identical
//! counter totals, the totals balance (`sent == recv`), and every PE was
//! idle in both waves. The two-wave stability requirement is what defeats
//! the classic race of a message crossing the wave front: any message
//! sent or delivered between the waves perturbs the totals.
//!
//! Counter discipline (enforced in the node): `sent` increments at send
//! time, `recv` at packet arrival, and only *user* messages count —
//! QD control traffic and load reports are excluded, so the detection
//! machinery cannot keep itself alive.

use crate::ids::Notify;

/// What the coordinator should do after an input.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum QdAction {
    /// Nothing to do yet.
    None,
    /// Broadcast a poll for the given wave to all PEs.
    Poll(u64),
    /// Quiescence: deliver a notification to each target, in request
    /// order.
    Declare(Vec<Notify>),
}

/// Coordinator state, held by PE 0.
pub(crate) struct QdCoordinator {
    npes: usize,
    pending: Vec<Notify>,
    active: bool,
    wave: u64,
    replies: usize,
    sum_sent: u64,
    sum_recv: u64,
    all_idle: bool,
    /// Totals of the previous completed wave: `(sent, recv, all_idle)`.
    prev: Option<(u64, u64, bool)>,
}

impl QdCoordinator {
    pub(crate) fn new(npes: usize) -> Self {
        QdCoordinator {
            npes,
            pending: Vec::new(),
            active: false,
            wave: 0,
            replies: 0,
            sum_sent: 0,
            sum_recv: 0,
            all_idle: true,
            prev: None,
        }
    }

    /// Register a quiescence request. Starts wave polling if idle.
    pub(crate) fn request(&mut self, notify: Notify) -> QdAction {
        self.pending.push(notify);
        if self.active {
            QdAction::None
        } else {
            self.active = true;
            self.prev = None;
            self.begin_wave()
        }
    }

    fn begin_wave(&mut self) -> QdAction {
        self.wave += 1;
        self.replies = 0;
        self.sum_sent = 0;
        self.sum_recv = 0;
        self.all_idle = true;
        QdAction::Poll(self.wave)
    }

    /// Incorporate one PE's reply. Replies to stale waves are ignored.
    pub(crate) fn on_count(&mut self, wave: u64, sent: u64, recv: u64, idle: bool) -> QdAction {
        if !self.active || wave != self.wave {
            return QdAction::None;
        }
        self.replies += 1;
        self.sum_sent += sent;
        self.sum_recv += recv;
        self.all_idle &= idle;
        if self.replies < self.npes {
            return QdAction::None;
        }
        // Wave complete.
        let cur = (self.sum_sent, self.sum_recv, self.all_idle);
        let stable = self.prev == Some(cur);
        let balanced = self.all_idle && self.sum_sent == self.sum_recv;
        if stable && balanced {
            self.active = false;
            self.prev = None;
            QdAction::Declare(std::mem::take(&mut self.pending))
        } else {
            self.prev = Some(cur);
            self.begin_wave()
        }
    }

    /// Whether detection is currently running.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn active(&self) -> bool {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ChareId, EpId};
    use multicomputer::Pe;

    fn notify() -> Notify {
        Notify::Chare(
            ChareId {
                pe: Pe(0),
                local: 0,
            },
            EpId(9),
        )
    }

    /// Feed a full wave with uniform per-PE counters.
    fn wave(c: &mut QdCoordinator, wave: u64, sent: u64, recv: u64, idle: bool) -> QdAction {
        let mut last = QdAction::None;
        for _ in 0..c.npes {
            last = c.on_count(wave, sent, recv, idle);
        }
        last
    }

    #[test]
    fn declares_after_two_stable_idle_waves() {
        let mut c = QdCoordinator::new(4);
        assert_eq!(c.request(notify()), QdAction::Poll(1));
        // Wave 1: balanced and idle, but no previous wave to compare.
        assert_eq!(wave(&mut c, 1, 10, 10, true), QdAction::Poll(2));
        // Wave 2: identical → declare.
        match wave(&mut c, 2, 10, 10, true) {
            QdAction::Declare(v) => assert_eq!(v.len(), 1),
            a => panic!("expected Declare, got {a:?}"),
        }
        assert!(!c.active());
    }

    #[test]
    fn activity_between_waves_resets_stability() {
        let mut c = QdCoordinator::new(2);
        c.request(notify());
        assert_eq!(wave(&mut c, 1, 5, 5, true), QdAction::Poll(2));
        // Counters moved: not stable, poll again.
        assert_eq!(wave(&mut c, 2, 6, 6, true), QdAction::Poll(3));
        assert_eq!(wave(&mut c, 3, 6, 6, true), QdAction::Declare(vec![notify()]));
    }

    #[test]
    fn in_flight_message_blocks_declaration() {
        let mut c = QdCoordinator::new(2);
        c.request(notify());
        // sent > recv: a message is in flight; never declare even if
        // stable.
        assert_eq!(wave(&mut c, 1, 7, 6, true), QdAction::Poll(2));
        assert_eq!(wave(&mut c, 2, 7, 6, true), QdAction::Poll(3));
        // The message lands, counters stabilize balanced.
        assert_eq!(wave(&mut c, 3, 7, 7, true), QdAction::Poll(4));
        assert!(matches!(wave(&mut c, 4, 7, 7, true), QdAction::Declare(_)));
    }

    #[test]
    fn busy_pe_blocks_declaration() {
        let mut c = QdCoordinator::new(2);
        c.request(notify());
        assert_eq!(wave(&mut c, 1, 4, 4, false), QdAction::Poll(2));
        assert_eq!(wave(&mut c, 2, 4, 4, false), QdAction::Poll(3));
        assert_eq!(wave(&mut c, 3, 4, 4, true), QdAction::Poll(4));
        assert!(matches!(wave(&mut c, 4, 4, 4, true), QdAction::Declare(_)));
    }

    #[test]
    fn stale_wave_replies_ignored() {
        let mut c = QdCoordinator::new(2);
        c.request(notify());
        assert_eq!(c.on_count(99, 1, 1, true), QdAction::None);
        assert_eq!(c.on_count(1, 1, 1, true), QdAction::None);
        // Duplicate stale reply doesn't complete the wave early.
        assert_eq!(c.on_count(0, 1, 1, true), QdAction::None);
        assert_eq!(c.on_count(1, 1, 1, true), QdAction::Poll(2));
    }

    #[test]
    fn multiple_requests_notified_together() {
        let mut c = QdCoordinator::new(1);
        c.request(notify());
        assert_eq!(c.request(notify()), QdAction::None); // already active
        wave(&mut c, 1, 0, 0, true);
        match wave(&mut c, 2, 0, 0, true) {
            QdAction::Declare(v) => assert_eq!(v.len(), 2),
            a => panic!("expected Declare, got {a:?}"),
        }
    }

    #[test]
    fn reusable_after_declaration() {
        let mut c = QdCoordinator::new(1);
        c.request(notify());
        wave(&mut c, 1, 3, 3, true);
        assert!(matches!(wave(&mut c, 2, 3, 3, true), QdAction::Declare(_)));
        // Second detection session.
        assert_eq!(c.request(notify()), QdAction::Poll(3));
        wave(&mut c, 3, 8, 8, true);
        assert!(matches!(wave(&mut c, 4, 8, 8, true), QdAction::Declare(_)));
    }
}
