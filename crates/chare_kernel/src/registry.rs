//! The program registry: type tables shared by every PE.
//!
//! The C-era kernel's translator emitted tables of chare definitions,
//! entry points and shared-variable descriptors that were identical on
//! every node. `Registry` is the Rust equivalent: built once by the
//! [`ProgramBuilder`](crate::program::ProgramBuilder), then shared
//! (`Arc`) by all PEs of a run. All closures are `Send + Sync` because
//! the thread backend invokes them concurrently from PE threads.

use std::any::Any;
use std::sync::Arc;

use crate::boc::{BranchInit, BranchObj};
use crate::chare::{Chare, ChareInit};
use crate::ctx::Ctx;
use crate::envelope::{CastGen, MsgBody, SysMsg};
use crate::ids::MonoId;
use crate::ids::ChareKind;
use crate::msg::Message;
use crate::shared::{AccResult, Accum, Mono, TableGot};

type CreateChareFn = Box<dyn Fn(MsgBody, &mut Ctx) -> Box<dyn Chare> + Send + Sync>;
type CreateBranchFn = Box<dyn Fn(&mut Ctx) -> Box<dyn BranchObj> + Send + Sync>;
type InitValFn = Box<dyn Fn() -> MsgBody + Send + Sync>;
type CombineFn = Box<dyn Fn(&mut MsgBody, MsgBody) + Send + Sync>;
type BetterFn = Box<dyn Fn(&MsgBody, &MsgBody) -> bool + Send + Sync>;
type UpdateGenFn = Box<dyn Fn(&MsgBody, MonoId) -> CastGen + Send + Sync>;
type MakeGotFn = Box<dyn Fn(u64, Option<&MsgBody>) -> (MsgBody, u32) + Send + Sync>;
type MakeSeedFn = Box<dyn Fn() -> (MsgBody, u32) + Send + Sync>;
type WrapResultFn = Box<dyn Fn(MsgBody) -> (MsgBody, u32) + Send + Sync>;

/// A registered chare type.
pub(crate) struct ChareEntry {
    /// Type name, for diagnostics.
    #[allow(dead_code)]
    pub name: &'static str,
    /// Constructs the chare from its (type-erased) seed.
    pub create: CreateChareFn,
}

impl ChareEntry {
    pub(crate) fn of<C: ChareInit>() -> Self {
        ChareEntry {
            name: std::any::type_name::<C>(),
            create: Box::new(|seed, ctx| {
                let seed = seed
                    .downcast::<C::Seed>()
                    .unwrap_or_else(|_| panic!("wrong seed type for {}", std::any::type_name::<C>()));
                Box::new(C::create(*seed, ctx))
            }),
        }
    }
}

/// A registered branch-office chare type plus its configuration.
pub(crate) struct BocEntry {
    /// Type name, for diagnostics.
    #[allow(dead_code)]
    pub name: &'static str,
    /// Constructs this PE's branch at boot.
    pub create: CreateBranchFn,
}

impl BocEntry {
    pub(crate) fn of<B: BranchInit>(cfg: B::Cfg) -> Self {
        BocEntry {
            name: std::any::type_name::<B>(),
            create: Box::new(move |ctx| Box::new(B::create(cfg.clone(), ctx))),
        }
    }
}

/// A registered accumulator: erased identity, combine and result
/// wrapping.
pub(crate) struct AccEntry {
    pub init: InitValFn,
    pub combine: CombineFn,
    /// Wrap a combined total into an `AccResult<V>` message body plus
    /// its wire size.
    pub wrap_result: WrapResultFn,
}

impl AccEntry {
    pub(crate) fn of<A: Accum>() -> Self {
        AccEntry {
            init: Box::new(|| Box::new(A::identity())),
            combine: Box::new(|into, from| {
                let into = into
                    .downcast_mut::<A::V>()
                    .expect("accumulator value type mismatch");
                let from = *from
                    .downcast::<A::V>().expect("accumulator part type mismatch");
                A::combine(into, from);
            }),
            wrap_result: Box::new(|total| {
                let value = *total
                    .downcast::<A::V>().expect("accumulator total type mismatch");
                let msg = AccResult { value };
                let bytes = msg.bytes();
                (Box::new(msg) as MsgBody, bytes)
            }),
        }
    }
}

/// A registered monotonic variable: erased identity and comparison.
pub(crate) struct MonoEntry {
    pub init: InitValFn,
    pub better: BetterFn,
    /// Build a broadcast generator minting `MonoUpdate` copies of a
    /// value (used by the spanning-tree broadcast).
    pub make_update_gen: UpdateGenFn,
}

impl MonoEntry {
    pub(crate) fn of<M: Mono>() -> Self {
        MonoEntry {
            init: Box::new(|| Box::new(M::identity())),
            better: Box::new(|new, cur| {
                let new = new.downcast_ref::<M::V>().expect("mono type mismatch");
                let cur = cur.downcast_ref::<M::V>().expect("mono type mismatch");
                M::better(new, cur)
            }),
            make_update_gen: Box::new(|v, id| {
                let v = v
                    .downcast_ref::<M::V>()
                    .expect("mono type mismatch")
                    .clone();
                std::sync::Arc::new(move || SysMsg::MonoUpdate {
                    mono: id,
                    value: Box::new(v.clone()),
                })
            }),
        }
    }
}

/// A registered distributed table: erased value cloning and reply
/// construction.
pub(crate) struct TableEntry {
    pub make_got: MakeGotFn,
}

impl TableEntry {
    pub(crate) fn of<V: Clone + Send + 'static>() -> Self {
        TableEntry {
            make_got: Box::new(|key, val| {
                let value = val.map(|v| {
                    v.downcast_ref::<V>()
                        .expect("table value type mismatch")
                        .clone()
                });
                let got = TableGot { key, value };
                let bytes = got.bytes();
                (Box::new(got) as MsgBody, bytes)
            }),
        }
    }
}

/// The main chare specification.
pub(crate) struct MainSpec {
    pub kind: ChareKind,
    pub make_seed: MakeSeedFn,
}

/// All per-program type information, shared by every PE.
pub(crate) struct Registry {
    pub chares: Vec<ChareEntry>,
    pub bocs: Vec<BocEntry>,
    pub read_only: Vec<Arc<dyn Any + Send + Sync>>,
    pub accs: Vec<AccEntry>,
    pub monos: Vec<MonoEntry>,
    pub tables: Vec<TableEntry>,
    pub main: Option<MainSpec>,
    /// Byte codecs for message-body types that may cross process
    /// boundaries (see [`crate::wire`]); unused by the in-process
    /// backends.
    pub wire: crate::wire::WireTable,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            chares: Vec::new(),
            bocs: Vec::new(),
            read_only: Vec::new(),
            accs: Vec::new(),
            monos: Vec::new(),
            tables: Vec::new(),
            main: None,
            wire: crate::wire::WireTable::new(),
        }
    }
}
