//! Streaming kernel metrics — bounded-memory telemetry for every run.
//!
//! The [`trace`](crate::trace) module retains an *event log* and defers
//! analysis to post-mortem tooling; that cannot survive the planned
//! 100× machine scale-up, where even per-PE ring buffers of raw events
//! are too much state to keep or to ship. This module computes the
//! interesting aggregates *online*, at the same hook points `trace.rs`
//! uses, in O(PEs × buckets) memory independent of run length:
//!
//! * **interval time slices** — per-PE work / dispatch / control time,
//!   messages and bytes sent/received, seed load-balancing decisions
//!   and retransmits, bucketed by wall (simulated) time. When a run
//!   outgrows the slice budget, adjacent buckets are coalesced and the
//!   interval width doubles — the profile gets coarser, never bigger;
//! * **streaming histograms** — log₂-bucketed message latency
//!   (send → deliver) and entry grain size (charged ns per entry).
//!   Histogram shards merge exactly, so per-PE histograms sum to the
//!   machine-wide one;
//! * **queue-depth high-watermarks** — the deepest runnable backlog
//!   each PE ever saw;
//! * a **flight recorder** — a small per-PE ring of the most recent
//!   structured events ([`TraceEvent`]), cheap enough to leave on in
//!   every run, dumped when something goes wrong (`ck_desim` attaches
//!   it to oracle failures).
//!
//! ## Cost discipline
//!
//! Like tracing, recording is strictly passive: no messages, no charged
//! time, no scheduler perturbation. A metrics-on run is byte-identical
//! (end time, event count, packets, bytes, counters, result) to the
//! same run with metrics off — asserted by
//! `ck_apps/tests/metrics_invariants.rs` and re-checked in CI. The
//! recording path can be compiled out entirely by dropping the default
//! `metrics` cargo feature.
//!
//! ## Interval semantics
//!
//! A scheduling step that starts at `t` and charges `c` ns is split in
//! time order: dispatch overhead first (`[t, t+dispatch)`), then user
//! work (`[t+dispatch, t+dispatch+c)`), each clipped across interval
//! boundaries, so per-slice busy time is exact, not nearest-bucket.
//! Idle time is derived at render time as `width − busy`. The slice
//! width starts at [`MetricsConfig::slice_ns`] and doubles (coalescing
//! pairs) whenever a run needs more than
//! [`MetricsConfig::max_slices`] buckets; widths are always powers of
//! two, so per-PE slice sets re-bucket exactly to the coarsest common
//! width when drained — and the drained log itself respects the
//! `max_slices` budget over `[0, end_ns)`, whatever each PE saw.

use std::cell::RefCell;
use std::sync::{Arc, Mutex};

use multicomputer::Pe;

use crate::envelope::SysMsg;
use crate::ids::{ChareKind, EpId};
use crate::trace::{EntryWhat, EventKind, MsgClass, RingLog, TraceEvent};

/// Metrics knobs, handed to
/// [`ProgramBuilder::metrics`](crate::program::ProgramBuilder::metrics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Initial interval width in nanoseconds, rounded up to a power of
    /// two (bucket lookup is a shift on the recording hot path).
    /// Doubles whenever the run outgrows `max_slices` buckets.
    pub slice_ns: u64,
    /// Maximum interval buckets retained per PE.
    pub max_slices: usize,
    /// Flight-recorder capacity: most recent events retained per PE.
    pub flight_cap: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            slice_ns: 1 << 14, // ~16 µs; a 4 ms run fits before doubling
            max_slices: 256,
            flight_cap: 64,
        }
    }
}

impl MetricsConfig {
    /// A config with the given initial interval width.
    pub fn with_slice_ns(slice_ns: u64) -> Self {
        MetricsConfig {
            slice_ns: slice_ns.max(1),
            ..MetricsConfig::default()
        }
    }
}

/// A log₂-bucketed streaming histogram over `u64` samples.
///
/// Bucket `b` covers `[2^b, 2^(b+1))`; bucket 0 additionally holds 0
/// (the same convention as `ck_trace`'s grain histogram). Shards merge
/// exactly: ingesting two sample streams separately and merging equals
/// ingesting their concatenation — the property the proptests in
/// `chare_kernel/tests/metrics_props.rs` pin down.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; 64],
    /// Total samples ingested.
    pub count: u64,
    /// Sum of all samples (for exact means).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index `v` lands in.
    pub fn bucket_of(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// The half-open range bucket `b` covers. Bucket 0 is reported as
    /// `[0, 2)`; bucket 63 saturates at `u64::MAX`.
    pub fn bucket_bounds(b: usize) -> (u64, u64) {
        let lo = if b == 0 { 0 } else { 1u64 << b };
        let hi = if b >= 63 { u64::MAX } else { 1u64 << (b + 1) };
        (lo, hi)
    }

    /// Ingest one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Fold another shard in. Exact: equivalent to having ingested the
    /// other shard's samples here.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied buckets as `(lo, hi, count)`, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let (lo, hi) = Self::bucket_bounds(b);
                (lo, hi, c)
            })
            .collect()
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 ≤ q ≤ 1.0`); 0 when empty. Quantiles from a log₂ histogram
    /// are bucket-resolution estimates, biased at most one octave up.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bounds(b).1;
            }
        }
        Self::bucket_bounds(63).1
    }
}

/// One interval bucket's worth of per-PE activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Slice {
    /// Charged user-handler nanoseconds.
    pub work_ns: u64,
    /// User-step dispatch overhead nanoseconds.
    pub dispatch_ns: u64,
    /// Control nanoseconds (control-step dispatch + charges, alarms).
    pub ctl_ns: u64,
    /// Kernel envelopes posted.
    pub msgs_sent: u64,
    /// Kernel envelopes received (after batch/frame unpacking).
    pub msgs_recv: u64,
    /// Wire bytes posted.
    pub bytes_sent: u64,
    /// Wire bytes received.
    pub bytes_recv: u64,
    /// Seeds the load balancer kept here.
    pub seeds_kept: u64,
    /// Seeds the load balancer forwarded away.
    pub seeds_forwarded: u64,
    /// Reliable-layer frame retransmissions.
    pub retransmits: u64,
}

impl Slice {
    /// Total busy nanoseconds attributed to this interval.
    pub fn busy_ns(&self) -> u64 {
        self.work_ns + self.dispatch_ns + self.ctl_ns
    }

    /// Fold another slice in (used when coalescing intervals).
    pub fn merge(&mut self, o: &Slice) {
        self.work_ns += o.work_ns;
        self.dispatch_ns += o.dispatch_ns;
        self.ctl_ns += o.ctl_ns;
        self.msgs_sent += o.msgs_sent;
        self.msgs_recv += o.msgs_recv;
        self.bytes_sent += o.bytes_sent;
        self.bytes_recv += o.bytes_recv;
        self.seeds_kept += o.seeds_kept;
        self.seeds_forwarded += o.seeds_forwarded;
        self.retransmits += o.retransmits;
    }
}

/// Per-PE interval buckets with coalesce-and-double-width overflow.
///
/// Widths are always powers of two so the hot-path bucket lookup is a
/// shift, not a division — an integer division per recorded event is
/// measurable against the simulator's own per-event cost.
#[derive(Clone, Debug)]
pub struct TimeSlices {
    width_ns: u64,
    /// `width_ns == 1 << shift` (maintained by `coalesce`/`absorb`).
    shift: u32,
    cap: usize,
    slices: Vec<Slice>,
}

impl TimeSlices {
    /// Empty slices of initial width `width_ns` (rounded up to a power
    /// of two), at most `cap` buckets.
    pub fn new(width_ns: u64, cap: usize) -> Self {
        let width_ns = width_ns.max(1).next_power_of_two();
        TimeSlices {
            width_ns,
            shift: width_ns.trailing_zeros(),
            cap: cap.max(2),
            slices: Vec::new(),
        }
    }

    /// Current interval width (grows by doubling, never shrinks).
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// The populated buckets so far.
    pub fn slices(&self) -> &[Slice] {
        &self.slices
    }

    /// Halve the resolution: merge adjacent bucket pairs, double the
    /// width. Totals are conserved exactly.
    fn coalesce(&mut self) {
        let n = self.slices.len().div_ceil(2);
        for i in 0..n {
            let mut merged = self.slices[2 * i];
            if let Some(right) = self.slices.get(2 * i + 1) {
                merged.merge(right);
            }
            self.slices[i] = merged;
        }
        self.slices.truncate(n);
        self.width_ns *= 2;
        self.shift += 1;
    }

    /// Make the bucket containing instant `t` exist, coarsening first
    /// if it would land beyond the bucket budget.
    fn ensure(&mut self, t: u64) -> usize {
        while (t >> self.shift) >= self.cap as u64 {
            self.coalesce();
        }
        let idx = (t >> self.shift) as usize;
        if idx >= self.slices.len() {
            self.slices.resize(idx + 1, Slice::default());
        }
        idx
    }

    /// Mutate the bucket containing instant `t`.
    pub fn bump(&mut self, t: u64, apply: impl FnOnce(&mut Slice)) {
        let idx = self.ensure(t);
        apply(&mut self.slices[idx]);
    }

    /// Attribute a `[start, start+dur)` span, clipped exactly across
    /// interval boundaries; `apply` receives each bucket's share.
    pub fn add_span(&mut self, start: u64, dur: u64, apply: impl Fn(&mut Slice, u64)) {
        if dur == 0 {
            return;
        }
        let end = start.saturating_add(dur);
        self.ensure(end - 1);
        let mut t = start;
        while t < end {
            let idx = (t >> self.shift) as usize;
            let slice_end = (idx as u64 + 1) << self.shift;
            let take = end.min(slice_end) - t;
            apply(&mut self.slices[idx], take);
            t += take;
        }
    }

    /// Fold another slice set in, re-bucketing both sides to the
    /// coarser of the two widths first (exact because widths nest).
    fn absorb(&mut self, other: &TimeSlices) {
        let w = self.width_ns.max(other.width_ns);
        if w > self.width_ns {
            self.slices = self.rebucket_to(w);
            self.width_ns = w;
            self.shift = w.trailing_zeros();
        }
        let os = other.rebucket_to(w);
        if self.slices.len() < os.len() {
            self.slices.resize(os.len(), Slice::default());
        }
        for (a, b) in self.slices.iter_mut().zip(os.iter()) {
            a.merge(b);
        }
    }

    /// Re-bucket to a coarser width (`target` must be `width · 2^k`;
    /// exact because widths nest).
    fn rebucket_to(&self, target: u64) -> Vec<Slice> {
        debug_assert!(target >= self.width_ns && target.is_multiple_of(self.width_ns));
        let ratio = (target / self.width_ns) as usize;
        let n = self.slices.len().div_ceil(ratio.max(1));
        let mut out = vec![Slice::default(); n];
        for (i, s) in self.slices.iter().enumerate() {
            out[i / ratio].merge(s);
        }
        out
    }
}

/// Everything one PE accumulated. Lives inside that PE's
/// [`PeMetrics`] handle (lock-free) while the node runs, and is
/// flushed into the sink's slot exactly once when the handle drops.
#[derive(Debug)]
struct PeState {
    slices: TimeSlices,
    latency: Histogram,
    grain: Histogram,
    queue_hwm: u64,
    flight: RingLog,
}

impl PeState {
    fn new(cfg: &MetricsConfig) -> Self {
        PeState {
            slices: TimeSlices::new(cfg.slice_ns, cfg.max_slices),
            latency: Histogram::new(),
            grain: Histogram::new(),
            queue_hwm: 0,
            flight: RingLog::new(cfg.flight_cap),
        }
    }

    /// Fold another PE-state in. Only reached if `recorder_for` was
    /// called more than once for a PE — the kernel builds one node
    /// (one recorder) per PE, so in practice the sink slot is empty
    /// when a recorder flushes. Exact for slices, histograms and the
    /// watermark; flight events are re-pushed through the ring (the
    /// other ring's overwrite count is not carried over).
    fn absorb(&mut self, mut other: PeState) {
        self.slices.absorb(&other.slices);
        self.latency.merge(&other.latency);
        self.grain.merge(&other.grain);
        self.queue_hwm = self.queue_hwm.max(other.queue_hwm);
        let (events, _) = other.flight.drain();
        for ev in events {
            self.flight.push(ev);
        }
    }
}

/// Per-run collection point: one state block per PE. Created by
/// [`Program::run_sim`](crate::program::Program::run_sim) when metrics
/// are configured; each node records through its own [`PeMetrics`].
pub struct MetricsSink {
    cfg: MetricsConfig,
    /// User-step dispatch overhead of the hosting machine's cost model
    /// (0 on the thread backend). The node cannot see the machine's
    /// cost model, so the per-step split into dispatch vs. work is
    /// parameterized here, matching `ck_trace`'s attribution.
    dispatch_ns: u64,
    /// Control-step dispatch overhead, ditto.
    ctl_dispatch_ns: u64,
    /// One flush slot per PE, filled when that PE's [`PeMetrics`]
    /// handle drops. The mutex is touched once per run per PE, never
    /// on the recording hot path.
    state: Vec<Mutex<Option<PeState>>>,
}

impl MetricsSink {
    /// A sink for `npes` PEs on a machine with the given dispatch
    /// overheads.
    pub fn shared(npes: usize, cfg: MetricsConfig, dispatch_ns: u64, ctl_dispatch_ns: u64) -> Arc<Self> {
        Arc::new(MetricsSink {
            cfg,
            dispatch_ns,
            ctl_dispatch_ns,
            state: (0..npes).map(|_| Mutex::new(None)).collect(),
        })
    }

    /// The recording handle for one PE. The handle accumulates
    /// lock-free and flushes into this sink's slot when dropped — drop
    /// all recorders before calling [`MetricsSink::drain`].
    pub fn recorder_for(self: &Arc<Self>, pe: Pe) -> PeMetrics {
        PeMetrics {
            pe,
            st: RefCell::new(PeState::new(&self.cfg)),
            sink: Arc::clone(self),
        }
    }

    /// Collect everything recorded into a snapshot, re-bucketing all
    /// PEs to the coarsest common interval width. `end_ns` is the
    /// run's end time (needed to derive idle time per interval).
    pub fn drain(&self, end_ns: u64) -> MetricsLog {
        let mut width = self
            .state
            .iter()
            .map(|m| {
                m.lock()
                    .expect("metrics lock")
                    .as_ref()
                    .map_or(self.cfg.slice_ns, |st| st.slices.width_ns())
            })
            .max()
            .unwrap_or(self.cfg.slice_ns)
            .max(1)
            .next_power_of_two();
        // A PE coarsens only up to its *own* last event; a mostly-idle
        // PE can leave the common width far finer than the run is
        // long. Enforce the bucket budget over the whole run so the
        // drained log is O(PEs × max_slices) no matter what.
        let budget = self.cfg.max_slices.max(2) as u64;
        while end_ns.div_ceil(width) > budget {
            width *= 2;
        }
        let nslices = (end_ns.div_ceil(width) as usize).max(1);
        let per_pe = self
            .state
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let pe = Pe(i as u32);
                // Take the state out of the slot rather than cloning:
                // drain is terminal for a run, and the histograms and
                // flight ring move for free.
                match m.lock().expect("metrics lock").take() {
                    None => {
                        // No recorder flushed for this PE (or none was
                        // ever created): an all-idle metric set, still
                        // padded so every PE has `nslices` intervals.
                        let mut set = PeMetricSet::empty(pe);
                        set.slices = vec![Slice::default(); nslices];
                        set
                    }
                    Some(mut st) => {
                        let mut slices = st.slices.rebucket_to(width);
                        slices.resize(nslices, Slice::default());
                        let (flight, flight_dropped) = st.flight.drain();
                        PeMetricSet {
                            pe,
                            slices,
                            latency: st.latency,
                            grain: st.grain,
                            queue_hwm: st.queue_hwm,
                            flight,
                            flight_dropped,
                        }
                    }
                }
            })
            .collect();
        MetricsLog {
            npes: self.state.len(),
            end_ns,
            slice_ns: width,
            per_pe,
        }
    }
}

/// One PE's recording handle. Recording is plain arithmetic on state
/// owned by this handle (a `RefCell`, no lock) — no messages, no
/// simulated cost, and at ~100 ns per `Mutex` round-trip against
/// simulator events costing about the same, no per-event locking
/// either: the accumulated state is flushed into the sink exactly
/// once, when the handle drops. Deliberately not `Clone` — a second
/// handle would split the accumulation and double-flush.
pub struct PeMetrics {
    pe: Pe,
    st: RefCell<PeState>,
    sink: Arc<MetricsSink>,
}

impl Drop for PeMetrics {
    fn drop(&mut self) {
        let st = std::mem::replace(self.st.get_mut(), PeState::new(&self.sink.cfg));
        let mut slot = self.sink.state[self.pe.index()].lock().expect("metrics lock");
        match slot.as_mut() {
            None => *slot = Some(st),
            Some(cur) => cur.absorb(st),
        }
    }
}

impl PeMetrics {
    fn with(&self, f: impl FnOnce(&mut PeState)) {
        f(&mut self.st.borrow_mut());
    }

    fn flight(&self, st: &mut PeState, at_ns: u64, kind: EventKind) {
        st.flight.push(TraceEvent {
            at_ns,
            pe: self.pe,
            kind,
        });
    }

    /// A kernel envelope was posted.
    pub fn on_send(&self, at: u64, to: Pe, sys: &SysMsg, hops: u32) {
        let class = MsgClass::of(sys);
        let bytes = sys.wire_bytes();
        self.with(|st| {
            st.slices.bump(at, |s| {
                s.msgs_sent += 1;
                s.bytes_sent += bytes as u64;
            });
            self.flight(st, at, EventKind::MsgSend { to, class, bytes, hops });
        });
    }

    /// A kernel envelope arrived (after batch/frame unpacking);
    /// `sent_ns` is the machine-stamped send instant.
    pub fn on_recv(&self, at: u64, sent_ns: u64, from: Pe, class: MsgClass, bytes: u32) {
        self.with(|st| {
            st.slices.bump(at, |s| {
                s.msgs_recv += 1;
                s.bytes_recv += bytes as u64;
            });
            st.latency.record(at.saturating_sub(sent_ns));
            self.flight(st, at, EventKind::MsgRecv { from, class, bytes });
        });
    }

    /// An entry method ran, charging `grain_ns` of user work.
    pub fn on_entry(&self, at: u64, what: EntryWhat, ep: Option<EpId>, grain_ns: u64) {
        self.with(|st| {
            st.grain.record(grain_ns);
            self.flight(st, at, EventKind::EntryBegin { what, ep });
        });
    }

    /// A user scheduling step ran at `start`, charging `charged_ns`.
    /// Attributed dispatch-first, then work, clipped across intervals.
    pub fn on_user_step(&self, start: u64, charged_ns: u64) {
        let dispatch = self.sink.dispatch_ns;
        self.with(|st| {
            st.slices.add_span(start, dispatch, |s, ns| s.dispatch_ns += ns);
            st.slices
                .add_span(start + dispatch, charged_ns, |s, ns| s.work_ns += ns);
        });
    }

    /// A control scheduling step ran at `start`, charging `charged_ns`.
    pub fn on_ctl_step(&self, start: u64, charged_ns: u64) {
        let dur = self.sink.ctl_dispatch_ns + charged_ns;
        self.with(|st| {
            st.slices.add_span(start, dur, |s, ns| s.ctl_ns += ns);
        });
    }

    /// An alarm handler ran at `start`, charging `charged_ns` (the
    /// machine charges alarms no dispatch overhead).
    pub fn on_alarm(&self, start: u64, charged_ns: u64) {
        self.with(|st| {
            st.slices.add_span(start, charged_ns, |s, ns| s.ctl_ns += ns);
        });
    }

    /// The load balancer kept a seed here.
    pub fn on_seed_kept(&self, at: u64, kind: ChareKind, hops: u32) {
        self.with(|st| {
            st.slices.bump(at, |s| s.seeds_kept += 1);
            self.flight(st, at, EventKind::SeedKept { kind, hops });
        });
    }

    /// The load balancer forwarded a seed away.
    pub fn on_seed_forwarded(&self, at: u64, kind: ChareKind, to: Pe, hops: u32) {
        self.with(|st| {
            st.slices.bump(at, |s| s.seeds_forwarded += 1);
            self.flight(st, at, EventKind::SeedForwarded { kind, to, hops });
        });
    }

    /// The reliable layer re-homed a seed off an unresponsive PE.
    pub fn on_seed_redirected(&self, at: u64, to: Pe) {
        self.with(|st| {
            self.flight(st, at, EventKind::SeedRedirected { to });
        });
    }

    /// The reliable layer retransmitted a frame.
    pub fn on_retransmit(&self, at: u64, to: Pe, seq: u64) {
        self.with(|st| {
            st.slices.bump(at, |s| s.retransmits += 1);
            self.flight(st, at, EventKind::Retransmit { to, seq });
        });
    }

    /// The runnable backlog reached a new depth.
    pub fn on_queue_depth(&self, len: u64) {
        self.with(|st| {
            if len > st.queue_hwm {
                st.queue_hwm = len;
            }
        });
    }
}

/// One PE's drained metrics.
#[derive(Clone, Debug, PartialEq)]
pub struct PeMetricSet {
    /// The recording PE.
    pub pe: Pe,
    /// Interval buckets at [`MetricsLog::slice_ns`] width, padded to
    /// cover `[0, end_ns)`.
    pub slices: Vec<Slice>,
    /// Message delivery latency (send → deliver), ns.
    pub latency: Histogram,
    /// Entry grain size (charged ns per entry execution).
    pub grain: Histogram,
    /// Deepest runnable backlog observed.
    pub queue_hwm: u64,
    /// Flight recorder: the most recent events, oldest first.
    pub flight: Vec<TraceEvent>,
    /// Flight-recorder events lost to ring overwrites.
    pub flight_dropped: u64,
}

impl PeMetricSet {
    /// An empty metric set (no intervals, nothing observed).
    pub fn empty(pe: Pe) -> Self {
        PeMetricSet {
            pe,
            slices: Vec::new(),
            latency: Histogram::new(),
            grain: Histogram::new(),
            queue_hwm: 0,
            flight: Vec::new(),
            flight_dropped: 0,
        }
    }
}

// ---- cross-process shard transport (procs backend) ---------------------
//
// Worker processes drain their own sink and ship the one populated
// `PeMetricSet` to the parent, which re-buckets every shard to the
// coarsest width and rebuilds a machine-wide `MetricsLog` — the same
// exact (power-of-two widths nest) merge `drain` performs in-process.

impl crate::wire::Wire for Histogram {
    fn encode(&self, out: &mut Vec<u8>) {
        let nonzero: Vec<(u8, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b as u8, c))
            .collect();
        nonzero.encode(out);
        self.count.encode(out);
        self.sum.encode(out);
        self.max.encode(out);
    }
    fn decode(r: &mut crate::wire::WireReader) -> Self {
        let nonzero = Vec::<(u8, u64)>::decode(r);
        let mut h = Histogram::new();
        for (b, c) in nonzero {
            h.counts[b as usize] = c;
        }
        h.count = u64::decode(r);
        h.sum = u64::decode(r);
        h.max = u64::decode(r);
        h
    }
}

impl crate::wire::Wire for Slice {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.work_ns,
            self.dispatch_ns,
            self.ctl_ns,
            self.msgs_sent,
            self.msgs_recv,
            self.bytes_sent,
            self.bytes_recv,
            self.seeds_kept,
            self.seeds_forwarded,
            self.retransmits,
        ] {
            v.encode(out);
        }
    }
    fn decode(r: &mut crate::wire::WireReader) -> Self {
        Slice {
            work_ns: u64::decode(r),
            dispatch_ns: u64::decode(r),
            ctl_ns: u64::decode(r),
            msgs_sent: u64::decode(r),
            msgs_recv: u64::decode(r),
            bytes_sent: u64::decode(r),
            bytes_recv: u64::decode(r),
            seeds_kept: u64::decode(r),
            seeds_forwarded: u64::decode(r),
            retransmits: u64::decode(r),
        }
    }
}

impl crate::wire::Wire for PeMetricSet {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pe.encode(out);
        self.slices.encode(out);
        self.latency.encode(out);
        self.grain.encode(out);
        self.queue_hwm.encode(out);
        self.flight.encode(out);
        self.flight_dropped.encode(out);
    }
    fn decode(r: &mut crate::wire::WireReader) -> Self {
        PeMetricSet {
            pe: Pe::decode(r),
            slices: Vec::<Slice>::decode(r),
            latency: Histogram::decode(r),
            grain: Histogram::decode(r),
            queue_hwm: u64::decode(r),
            flight: Vec::<TraceEvent>::decode(r),
            flight_dropped: u64::decode(r),
        }
    }
}

/// Re-bucket a drained slice vector from width `from` to the coarser
/// width `to` (both powers of two, so the merge is exact).
fn rebucket_slices(slices: &[Slice], from: u64, to: u64) -> Vec<Slice> {
    debug_assert!(to >= from && to.is_multiple_of(from));
    let ratio = (to / from).max(1) as usize;
    let n = slices.len().div_ceil(ratio);
    let mut out = vec![Slice::default(); n];
    for (i, s) in slices.iter().enumerate() {
        out[i / ratio].merge(s);
    }
    out
}

/// Rebuild a machine-wide [`MetricsLog`] from per-worker shards
/// (`(shard_slice_ns, set)` pairs, one per PE that reported), exactly as
/// [`MetricsSink::drain`] would have: all shards re-bucketed to the
/// coarsest common power-of-two width, the `max_slices` budget enforced
/// over `[0, end_ns)`, and missing PEs padded with all-idle sets.
pub(crate) fn merge_shards(
    cfg: MetricsConfig,
    npes: usize,
    end_ns: u64,
    shards: Vec<(u64, PeMetricSet)>,
) -> MetricsLog {
    let mut width = shards
        .iter()
        .map(|&(w, _)| w)
        .max()
        .unwrap_or(cfg.slice_ns)
        .max(1)
        .next_power_of_two();
    let budget = cfg.max_slices.max(2) as u64;
    while end_ns.div_ceil(width) > budget {
        width *= 2;
    }
    let nslices = (end_ns.div_ceil(width) as usize).max(1);
    let mut per_pe: Vec<PeMetricSet> = (0..npes)
        .map(|i| {
            let mut set = PeMetricSet::empty(Pe(i as u32));
            set.slices = vec![Slice::default(); nslices];
            set
        })
        .collect();
    for (w, set) in shards {
        let idx = set.pe.index();
        if idx >= npes {
            continue;
        }
        let mut slices = rebucket_slices(&set.slices, w.max(1).next_power_of_two(), width);
        slices.resize(nslices, Slice::default());
        per_pe[idx] = PeMetricSet { slices, ..set };
    }
    MetricsLog {
        npes,
        end_ns,
        slice_ns: width,
        per_pe,
    }
}

/// The final metrics snapshot of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsLog {
    /// Machine size.
    pub npes: usize,
    /// Run end time in nanoseconds.
    pub end_ns: u64,
    /// Common interval width all PEs were re-bucketed to.
    pub slice_ns: u64,
    /// One metric set per PE.
    pub per_pe: Vec<PeMetricSet>,
}

impl MetricsLog {
    /// Number of interval buckets covering the run.
    pub fn nslices(&self) -> usize {
        self.per_pe.first().map_or(0, |p| p.slices.len())
    }

    /// Machine-wide totals for interval `i`.
    pub fn slice_totals(&self, i: usize) -> Slice {
        let mut out = Slice::default();
        for p in &self.per_pe {
            if let Some(s) = p.slices.get(i) {
                out.merge(s);
            }
        }
        out
    }

    /// All PEs' latency histograms merged.
    pub fn latency_all(&self) -> Histogram {
        let mut h = Histogram::new();
        for p in &self.per_pe {
            h.merge(&p.latency);
        }
        h
    }

    /// All PEs' grain histograms merged.
    pub fn grain_all(&self) -> Histogram {
        let mut h = Histogram::new();
        for p in &self.per_pe {
            h.merge(&p.grain);
        }
        h
    }

    /// Deepest backlog any PE saw.
    pub fn queue_hwm_max(&self) -> u64 {
        self.per_pe.iter().map(|p| p.queue_hwm).max().unwrap_or(0)
    }

    /// Flight-recorder events lost to overwrites, summed over PEs.
    pub fn flight_dropped(&self) -> u64 {
        self.per_pe.iter().map(|p| p.flight_dropped).sum()
    }

    /// The machine-wide flight-recorder tail: the last `n` retained
    /// events across all PEs, time-ordered.
    pub fn flight_tail(&self, n: usize) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .per_pe
            .iter()
            .flat_map(|p| p.flight.iter().copied())
            .collect();
        all.sort_by_key(|e| (e.at_ns, e.pe.0));
        let skip = all.len().saturating_sub(n);
        all.split_off(skip)
    }
}

/// One flight-recorder event as a human-readable forensics line, e.g.
/// `  1.204ms PE 3  send chare 64B -> PE 5`.
pub fn flight_line(ev: &TraceEvent) -> String {
    let what = match ev.kind {
        EventKind::EntryBegin { what, ep } => match (what, ep) {
            (EntryWhat::Create(k), _) => format!("entry create:k{}", k.0),
            (EntryWhat::Chare(_), Some(ep)) => format!("entry chare:ep{}", ep.0),
            (EntryWhat::Chare(_), None) => "entry chare".to_string(),
            (EntryWhat::Branch(b), Some(ep)) => format!("entry boc{}:ep{}", b.0, ep.0),
            (EntryWhat::Branch(b), None) => format!("entry boc{}", b.0),
        },
        EventKind::EntryEnd { msgs_sent } => format!("entry end ({msgs_sent} msgs)"),
        EventKind::MsgSend {
            to, class, bytes, ..
        } => format!("send {} {}B -> PE {}", class.label(), bytes, to.index()),
        EventKind::MsgRecv { from, class, bytes } => {
            format!("recv {} {}B <- PE {}", class.label(), bytes, from.index())
        }
        EventKind::SeedKept { kind, hops } => format!("seed kept k{} h{}", kind.0, hops),
        EventKind::SeedForwarded { kind, to, hops } => {
            format!("seed k{} -> PE {} h{}", kind.0, to.index(), hops)
        }
        EventKind::SeedRedirected { to } => format!("seed redirect -> PE {}", to.index()),
        EventKind::Retransmit { to, seq } => {
            format!("retransmit #{} -> PE {}", seq, to.index())
        }
        EventKind::QueueSample { len } => format!("queue depth {len}"),
    };
    format!(
        "{:>10.3}ms PE {:<3} {}",
        ev.at_ns as f64 / 1e6,
        ev.pe.index(),
        what
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_convention_matches_ck_trace() {
        // Bucket b covers [2^b, 2^(b+1)); bucket 0 also holds 0.
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
        let mut h = Histogram::new();
        for v in [0, 1, 5, 6, 7, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets(), vec![(0, 2, 2), (4, 8, 3), (1024, 2048, 1)]);
    }

    #[test]
    fn histogram_merge_equals_bulk() {
        let samples = [0u64, 3, 9, 9, 100, 7_000_000, u64::MAX];
        let mut bulk = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            bulk.record(v);
            if i % 2 == 0 { a.record(v) } else { b.record(v) }
        }
        a.merge(&b);
        assert_eq!(a, bulk);
    }

    #[test]
    fn quantile_bound_is_monotone() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 32] {
            h.record(v);
        }
        assert!(h.quantile_bound(0.1) <= h.quantile_bound(0.5));
        assert!(h.quantile_bound(0.5) <= h.quantile_bound(0.99));
        assert_eq!(Histogram::new().quantile_bound(0.5), 0);
    }

    #[test]
    fn slices_clip_spans_exactly() {
        let mut ts = TimeSlices::new(128, 64);
        // Span [50, 250): 78 ns in bucket [0,128), 122 in [128,256).
        ts.add_span(50, 200, |s, ns| s.work_ns += ns);
        let got: Vec<u64> = ts.slices().iter().map(|s| s.work_ns).collect();
        assert_eq!(got, vec![78, 122]);
    }

    #[test]
    fn slices_round_width_up_to_a_power_of_two() {
        let ts = TimeSlices::new(100, 64);
        assert_eq!(ts.width_ns(), 128);
        assert_eq!(TimeSlices::new(1, 64).width_ns(), 1);
    }

    #[test]
    fn slices_coalesce_conserves_totals() {
        let mut ts = TimeSlices::new(16, 4);
        for t in 0..100 {
            ts.bump(t * 10, |s| s.msgs_sent += 1);
            ts.add_span(t * 10, 7, |s, ns| s.work_ns += ns);
        }
        // ~62 initial buckets forced into 4: width grew by doubling
        // (still a power of two) and totals are exact.
        assert!(ts.slices().len() <= 4);
        assert!(ts.width_ns().is_power_of_two());
        assert!(ts.width_ns() > 16);
        let msgs: u64 = ts.slices().iter().map(|s| s.msgs_sent).sum();
        let work: u64 = ts.slices().iter().map(|s| s.work_ns).sum();
        assert_eq!(msgs, 100);
        assert_eq!(work, 700);
    }

    #[test]
    fn drain_rebuckets_pes_to_common_width() {
        let cfg = MetricsConfig {
            slice_ns: 10,
            max_slices: 4,
            flight_cap: 8,
        };
        let sink = MetricsSink::shared(2, cfg, 5, 1);
        let m0 = sink.recorder_for(Pe(0));
        let m1 = sink.recorder_for(Pe(1));
        // PE1 records far in the future, forcing its width to grow;
        // PE0 stays fine-grained until drain.
        m0.on_user_step(0, 10);
        m1.on_user_step(395, 5);
        drop((m0, m1)); // flush into the sink
        let log = sink.drain(400);
        assert_eq!(log.npes, 2);
        assert!(log.slice_ns >= 100, "PE1 forced coarsening, got {}", log.slice_ns);
        assert_eq!(log.per_pe[0].slices.len(), log.per_pe[1].slices.len());
        // Busy totals survived the re-bucketing (dispatch 5 + work 10 / 5).
        let busy0: u64 = log.per_pe[0].slices.iter().map(|s| s.busy_ns()).sum();
        let busy1: u64 = log.per_pe[1].slices.iter().map(|s| s.busy_ns()).sum();
        assert_eq!(busy0, 15);
        assert_eq!(busy1, 10);
    }

    #[test]
    fn flight_recorder_is_bounded_and_keeps_newest() {
        let cfg = MetricsConfig {
            flight_cap: 4,
            ..MetricsConfig::default()
        };
        let sink = MetricsSink::shared(1, cfg, 0, 0);
        let m = sink.recorder_for(Pe(0));
        for i in 0..10u64 {
            m.on_retransmit(i, Pe(0), i);
        }
        drop(m);
        let log = sink.drain(10);
        assert_eq!(log.per_pe[0].flight.len(), 4);
        assert_eq!(log.per_pe[0].flight_dropped, 6);
        let tail = log.flight_tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[1].at_ns, 9);
        assert_eq!(log.flight_dropped(), 6);
    }

    #[test]
    fn queue_hwm_tracks_maximum() {
        let sink = MetricsSink::shared(1, MetricsConfig::default(), 0, 0);
        let m = sink.recorder_for(Pe(0));
        m.on_queue_depth(3);
        m.on_queue_depth(7);
        m.on_queue_depth(5);
        drop(m);
        assert_eq!(sink.drain(1).queue_hwm_max(), 7);
    }
}
