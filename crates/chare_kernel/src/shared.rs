//! Specifically shared variables.
//!
//! Instead of general shared memory, the kernel gives programs a small
//! set of *disciplined* sharing abstractions whose access patterns the
//! runtime can implement efficiently on nonshared-memory machines — one
//! of the paper's central design points:
//!
//! * **read-only** variables — fixed at program build, replicated
//!   everywhere ([`ReadOnly`]);
//! * **write-once** variables — created once at runtime, replicated to
//!   every PE, usable after a readiness notification
//!   ([`Ctx::write_once`](crate::ctx::Ctx::write_once), [`WoReady`]);
//! * **accumulators** — commutative-associative reduction variables with
//!   PE-local adds and an explicit, destructive collect ([`Accum`],
//!   [`Ctx::acc_add`](crate::ctx::Ctx::acc_add));
//! * **monotonic** variables — values that only ever improve, propagated
//!   asynchronously to all PEs; stale reads are safe because the value is
//!   a bound, not a truth ([`Mono`]) — this is what makes distributed
//!   branch & bound work;
//! * **distributed tables** — key/value store hash-partitioned across
//!   PEs with asynchronous insert/find/delete and reply messages
//!   ([`TableRef`], [`TableGot`], [`TableAck`]).

use std::marker::PhantomData;

use crate::ids::{AccId, MonoId, RoId, TableId, WoId};
use crate::msg::Message;

/// A commutative, associative reduction.
///
/// Each PE holds a private partial value; [`Ctx::acc_add`](crate::ctx::Ctx::acc_add) combines into
/// the local partial without communication, and
/// [`Ctx::acc_collect`](crate::ctx::Ctx::acc_collect) gathers and resets
/// all partials, delivering the grand total to a chare entry point.
pub trait Accum: 'static {
    /// The accumulated value.
    type V: Send + Clone + 'static;
    /// The reduction identity.
    fn identity() -> Self::V;
    /// Fold `from` into `into`. Must be commutative and associative.
    fn combine(into: &mut Self::V, from: Self::V);
}

/// A value that only improves.
///
/// [`Ctx::mono_update`](crate::ctx::Ctx::mono_update) publishes an
/// improvement; the kernel broadcasts it and each PE keeps the best value
/// seen. [`Ctx::mono_get`](crate::ctx::Ctx::mono_get) reads the local
/// copy, which may lag the global best — safe exactly when the value is
/// used as a conservative bound.
pub trait Mono: 'static {
    /// The value type. `Sync` because improvement broadcasts share one
    /// captured value across the spanning tree.
    type V: Send + Sync + Clone + 'static;
    /// The least informative value (e.g. `+inf` for a minimizing bound).
    fn identity() -> Self::V;
    /// Whether `new` improves on `cur`.
    fn better(new: &Self::V, cur: &Self::V) -> bool;
}

/// Handle to a registered accumulator.
pub struct Acc<A: Accum> {
    /// Untyped id.
    pub id: AccId,
    pub(crate) _marker: PhantomData<fn() -> A>,
}

/// Handle to a registered monotonic variable.
pub struct MonoVar<M: Mono> {
    /// Untyped id.
    pub id: MonoId,
    pub(crate) _marker: PhantomData<fn() -> M>,
}

/// Handle to a registered distributed table with values of type `V`.
pub struct TableRef<V> {
    /// Untyped id.
    pub id: TableId,
    pub(crate) _marker: PhantomData<fn() -> V>,
}

/// Handle to a read-only variable of type `T`.
pub struct ReadOnly<T> {
    /// Untyped id.
    pub id: RoId,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

macro_rules! impl_copy_clone {
    ($name:ident < $p:ident : $bound:path >) => {
        impl<$p: $bound> Clone for $name<$p> {
            fn clone(&self) -> Self {
                *self
            }
        }
        impl<$p: $bound> Copy for $name<$p> {}
    };
    ($name:ident < $p:ident >) => {
        impl<$p> Clone for $name<$p> {
            fn clone(&self) -> Self {
                *self
            }
        }
        impl<$p> Copy for $name<$p> {}
    };
}

impl_copy_clone!(Acc<A: Accum>);
impl_copy_clone!(MonoVar<M: Mono>);
impl_copy_clone!(TableRef<V>);
impl_copy_clone!(ReadOnly<T>);

impl<A: Accum> Acc<A> {
    pub(crate) fn new(id: AccId) -> Self {
        Acc {
            id,
            _marker: PhantomData,
        }
    }
}

impl<M: Mono> MonoVar<M> {
    pub(crate) fn new(id: MonoId) -> Self {
        MonoVar {
            id,
            _marker: PhantomData,
        }
    }
}

impl<V> TableRef<V> {
    pub(crate) fn new(id: TableId) -> Self {
        TableRef {
            id,
            _marker: PhantomData,
        }
    }
}

impl<T> ReadOnly<T> {
    pub(crate) fn new(id: RoId) -> Self {
        ReadOnly {
            id,
            _marker: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------
// Kernel-generated notification messages.
// ---------------------------------------------------------------------

/// Delivered when quiescence detection fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuiescenceMsg;

/// Delivered when a write-once variable is replicated on every PE.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WoReady {
    /// The now-usable variable.
    pub id: WoId,
}

/// Reply to a table put/delete that requested notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableAck {
    /// The key operated on.
    pub key: u64,
    /// For put: whether the key already existed (old value replaced).
    /// For delete: whether the key existed (something was removed).
    pub existed: bool,
}

/// Reply to a table lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableGot<V> {
    /// The key looked up.
    pub key: u64,
    /// The value, if the key was present (a clone of the stored value).
    pub value: Option<V>,
}

/// Collected accumulator total, delivered to the entry point passed to
/// [`Ctx::acc_collect`](crate::ctx::Ctx::acc_collect).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccResult<V> {
    /// The grand total across all PEs.
    pub value: V,
}

impl Message for QuiescenceMsg {}
impl Message for WoReady {}
impl Message for TableAck {}
impl<V: Send + 'static> Message for TableGot<V> {}
impl<V: Send + 'static> Message for AccResult<V> {}

// ---------------------------------------------------------------------
// Ready-made reductions.
// ---------------------------------------------------------------------

/// Sum of `u64`s.
pub struct SumU64;
impl Accum for SumU64 {
    type V = u64;
    fn identity() -> u64 {
        0
    }
    fn combine(into: &mut u64, from: u64) {
        *into += from;
    }
}

/// Sum of `f64`s.
pub struct SumF64;
impl Accum for SumF64 {
    type V = f64;
    fn identity() -> f64 {
        0.0
    }
    fn combine(into: &mut f64, from: f64) {
        *into += from;
    }
}

/// Maximum of `f64`s (identity `-inf`).
pub struct MaxF64;
impl Accum for MaxF64 {
    type V = f64;
    fn identity() -> f64 {
        f64::NEG_INFINITY
    }
    fn combine(into: &mut f64, from: f64) {
        if from > *into {
            *into = from;
        }
    }
}

/// Minimum of `u64`s (identity `u64::MAX`) — e.g. the "smallest f value
/// that exceeded the threshold" reduction of iterative-deepening search.
pub struct MinU64;
impl Accum for MinU64 {
    type V = u64;
    fn identity() -> u64 {
        u64::MAX
    }
    fn combine(into: &mut u64, from: u64) {
        if from < *into {
            *into = from;
        }
    }
}

/// Minimizing monotonic `u64` bound (identity `u64::MAX`), as used by
/// branch & bound.
pub struct MinBoundU64;
impl Mono for MinBoundU64 {
    type V = u64;
    fn identity() -> u64 {
        u64::MAX
    }
    fn better(new: &u64, cur: &u64) -> bool {
        new < cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_u64_reduction() {
        let mut v = SumU64::identity();
        SumU64::combine(&mut v, 3);
        SumU64::combine(&mut v, 7);
        assert_eq!(v, 10);
    }

    #[test]
    fn max_f64_reduction() {
        let mut v = MaxF64::identity();
        MaxF64::combine(&mut v, 1.5);
        MaxF64::combine(&mut v, -2.0);
        assert_eq!(v, 1.5);
    }

    #[test]
    fn min_bound_improves_downward() {
        assert!(MinBoundU64::better(&5, &10));
        assert!(!MinBoundU64::better(&10, &5));
        assert!(!MinBoundU64::better(&5, &5));
        assert_eq!(MinBoundU64::identity(), u64::MAX);
    }

    #[test]
    fn handles_are_copy() {
        let a: Acc<SumU64> = Acc::new(AccId(0));
        let b = a;
        assert_eq!(a.id, b.id);
        let t: TableRef<String> = TableRef::new(TableId(1));
        let u = t;
        assert_eq!(t.id, u.id);
    }

    #[test]
    fn notification_messages_have_sizes() {
        use crate::msg::Message;
        assert!(QuiescenceMsg.bytes() <= 8);
        assert_eq!(
            TableGot::<u64> {
                key: 1,
                value: Some(2)
            }
            .bytes(),
            std::mem::size_of::<TableGot<u64>>() as u32
        );
    }
}
