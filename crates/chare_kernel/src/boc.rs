//! Branch-office chares (BOCs).
//!
//! A branch-office chare is a replicated object with one *branch* on
//! every PE, all addressed through a single [`BocId`](crate::ids::BocId).
//! The paper uses BOCs for distributed services — load managers, grid
//! computations with per-PE partitions, reduction trees. Chares on a PE
//! can call their local branch synchronously
//! ([`Ctx::with_branch`](crate::ctx::Ctx::with_branch)), send to a
//! specific branch, or broadcast to all branches.
//!
//! Branches are created at program start on every PE from a configuration
//! value cloned per PE, in registration order.

use crate::ctx::Ctx;
use crate::envelope::MsgBody;
use crate::ids::EpId;

/// One branch of a branch-office chare.
pub trait Branch: Send + 'static {
    /// Handle one message addressed to entry point `ep` of this branch.
    fn entry(&mut self, ep: EpId, msg: MsgBody, ctx: &mut Ctx);
}

/// A BOC type constructible on every PE from shared configuration.
///
/// Register with [`ProgramBuilder::boc`](crate::program::ProgramBuilder::boc)
/// to obtain the [`Boc`](crate::ids::Boc) handle.
pub trait BranchInit: Branch + Sized {
    /// Per-program configuration, cloned to every PE.
    type Cfg: Clone + Send + Sync + 'static;

    /// Construct this PE's branch at boot. `ctx.pe()` identifies the PE;
    /// boot-time sends are allowed and are delivered once the machine
    /// starts.
    fn create(cfg: Self::Cfg, ctx: &mut Ctx) -> Self;
}

/// Object-safe branch storage: [`Branch`] plus `Any` downcasting so
/// [`Ctx::with_branch`](crate::ctx::Ctx::with_branch) can recover the
/// concrete type. Blanket-implemented; never implement manually.
pub(crate) trait BranchObj: Branch {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<B: Branch> BranchObj for B {
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
