//! Time-profile view over streaming metrics — the Projections
//! "utilization over time" graph, rebuilt from the bounded-memory
//! interval slices of [`chare_kernel::metrics`] instead of a full event
//! log.
//!
//! A [`TimeProfile`] holds one row per time interval with the per-PE
//! busy nanoseconds inside it; from that it derives the view the paper's
//! load-balance discussion needs: average and peak PE utilization per
//! interval and the percentage imbalance between them (how much the
//! busiest PE exceeds the mean — 0% is a perfectly level load). Rows
//! merge exactly, so [`TimeProfile::coarsen_to`] can shrink hundreds of
//! slices to a terminal-sized chart without re-running anything.
//!
//! Unlike [`crate::RunTrace`], which needs the full span log, this view
//! is available for *every* metered run at O(PEs × buckets) memory —
//! including runs far too long to trace.

use chare_kernel::metrics::MetricsLog;

use crate::json_lint;

/// One time interval of the profile: per-PE busy time plus message
/// counters, mergeable with its neighbours.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalRow {
    /// Interval start, simulated ns.
    pub start_ns: u64,
    /// Covered width, ns (the last interval clips at the end of run).
    pub width_ns: u64,
    /// Busy (work + dispatch + control) ns per PE inside this interval.
    pub pe_busy_ns: Vec<u64>,
    /// Messages sent by all PEs in this interval.
    pub msgs_sent: u64,
    /// Retransmissions in this interval (reliable-delivery repair).
    pub retransmits: u64,
}

impl IntervalRow {
    /// Per-PE utilization (0.0–1.0) over this interval.
    pub fn utils(&self) -> Vec<f64> {
        let w = self.width_ns.max(1) as f64;
        self.pe_busy_ns
            .iter()
            .map(|&b| (b as f64 / w).min(1.0))
            .collect()
    }

    /// Mean utilization across PEs.
    pub fn mean_util(&self) -> f64 {
        let u = self.utils();
        if u.is_empty() {
            return 0.0;
        }
        u.iter().sum::<f64>() / u.len() as f64
    }

    /// Busiest PE's utilization.
    pub fn max_util(&self) -> f64 {
        self.utils().into_iter().fold(0.0, f64::max)
    }

    /// Least-busy PE's utilization.
    pub fn min_util(&self) -> f64 {
        let u = self.utils();
        if u.is_empty() {
            return 0.0;
        }
        u.into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Load imbalance: how far the busiest PE exceeds the mean, in
    /// percent. 0% means a perfectly level interval; an idle interval
    /// reads as 0 rather than dividing by zero.
    pub fn imbalance_pct(&self) -> f64 {
        let mean = self.mean_util();
        if mean <= 0.0 {
            return 0.0;
        }
        (self.max_util() / mean - 1.0) * 100.0
    }

    /// Fold a neighbouring interval into this one (exact: busy ns and
    /// counters add, widths add).
    fn merge(&mut self, o: &IntervalRow) {
        self.width_ns += o.width_ns;
        for (a, b) in self.pe_busy_ns.iter_mut().zip(&o.pe_busy_ns) {
            *a += b;
        }
        self.msgs_sent += o.msgs_sent;
        self.retransmits += o.retransmits;
    }
}

/// Utilization-over-time profile of one run, derived from a
/// [`MetricsLog`].
#[derive(Clone, Debug, PartialEq)]
pub struct TimeProfile {
    /// PEs in the run.
    pub npes: usize,
    /// Completion time, simulated ns.
    pub end_ns: u64,
    /// One row per interval, in time order.
    pub rows: Vec<IntervalRow>,
}

impl TimeProfile {
    /// Build the profile from a finished run's metrics.
    pub fn from_metrics(log: &MetricsLog) -> TimeProfile {
        let width = log.slice_ns.max(1);
        let n = log.nslices();
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let start = i as u64 * width;
            // The final interval covers only up to the end of the run;
            // utilization must be a fraction of time that existed.
            let covered = width.min(log.end_ns.saturating_sub(start)).max(1);
            let pe_busy_ns = log
                .per_pe
                .iter()
                .map(|pe| pe.slices.get(i).map(|s| s.busy_ns()).unwrap_or(0))
                .collect();
            let totals = log.slice_totals(i);
            rows.push(IntervalRow {
                start_ns: start,
                width_ns: covered,
                pe_busy_ns,
                msgs_sent: totals.msgs_sent,
                retransmits: totals.retransmits,
            });
        }
        TimeProfile {
            npes: log.npes,
            end_ns: log.end_ns,
            rows,
        }
    }

    /// Merge adjacent rows until at most `target` remain. Merging is
    /// exact (sums of sums), so a coarse view never misstates totals.
    pub fn coarsen_to(&self, target: usize) -> TimeProfile {
        let target = target.max(1);
        if self.rows.len() <= target {
            return self.clone();
        }
        let group = self.rows.len().div_ceil(target);
        let mut rows: Vec<IntervalRow> = Vec::with_capacity(target);
        for chunk in self.rows.chunks(group) {
            let mut merged = chunk[0].clone();
            for r in &chunk[1..] {
                merged.merge(r);
            }
            rows.push(merged);
        }
        TimeProfile {
            npes: self.npes,
            end_ns: self.end_ns,
            rows,
        }
    }

    /// Whole-run mean utilization (busy PE-time over total PE-time).
    pub fn overall_util(&self) -> f64 {
        let busy: u64 = self
            .rows
            .iter()
            .flat_map(|r| r.pe_busy_ns.iter())
            .sum();
        let denom = (self.end_ns as u128 * self.npes as u128).max(1) as f64;
        busy as f64 / denom
    }

    /// Render as an ASCII chart: one row per interval, a bar for mean
    /// utilization, then max utilization and imbalance and the message
    /// traffic of the interval.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "      t(ms)  mean util                                 max  imb%    msgs rxmit\n",
        );
        for r in &self.rows {
            let mean = r.mean_util();
            let bar = (mean * 40.0).round() as usize;
            out.push_str(&format!(
                " {:>10.2}  |{:<40}| {:>3.0}% {:>5.0} {:>7} {:>5}\n",
                (r.start_ns as f64 + r.width_ns as f64 / 2.0) / 1e6,
                "#".repeat(bar.min(40)),
                r.max_util() * 100.0,
                r.imbalance_pct(),
                r.msgs_sent,
                r.retransmits,
            ));
        }
        out.push_str(&format!(
            " overall utilization {:.1}% across {} PEs, {} intervals\n",
            self.overall_util() * 100.0,
            self.npes,
            self.rows.len(),
        ));
        out
    }

    /// Serialize as a JSON document (hand-built, like the Chrome
    /// exporter; validated well-formed by `debug_assert`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"npes\":{},\"end_ns\":{},\"overall_util\":{:.4},\"rows\":[",
            self.npes,
            self.end_ns,
            finite(self.overall_util()),
        ));
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"start_ns\":{},\"width_ns\":{},\"mean_util\":{:.4},\
                 \"max_util\":{:.4},\"min_util\":{:.4},\"imbalance_pct\":{:.1},\
                 \"msgs_sent\":{},\"retransmits\":{}}}",
                r.start_ns,
                r.width_ns,
                finite(r.mean_util()),
                finite(r.max_util()),
                finite(r.min_util()),
                finite(r.imbalance_pct()),
                r.msgs_sent,
                r.retransmits,
            ));
        }
        out.push_str("]}");
        debug_assert!(json_lint::validate(&out).is_ok());
        out
    }
}

/// JSON has no NaN/Infinity; clamp pathological values to 0.
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chare_kernel::metrics::{PeMetricSet, Slice};
    use multicomputer::Pe;

    fn slice(work: u64) -> Slice {
        Slice {
            work_ns: work,
            msgs_sent: 1,
            ..Slice::default()
        }
    }

    fn log_two_pes() -> MetricsLog {
        // 4 slices of 100ns; run ends at 350ns (last slice half-width).
        MetricsLog {
            npes: 2,
            end_ns: 350,
            slice_ns: 100,
            per_pe: vec![
                PeMetricSet {
                    pe: Pe(0),
                    slices: vec![slice(100), slice(50), slice(0), slice(50)],
                    ..PeMetricSet::empty(Pe(0))
                },
                PeMetricSet {
                    pe: Pe(1),
                    slices: vec![slice(0), slice(50), slice(0), slice(0)],
                    ..PeMetricSet::empty(Pe(1))
                },
            ],
        }
    }

    #[test]
    fn profile_derives_utilization_and_imbalance() {
        let p = TimeProfile::from_metrics(&log_two_pes());
        assert_eq!(p.rows.len(), 4);
        // Interval 0: PE0 fully busy, PE1 idle.
        assert!((p.rows[0].mean_util() - 0.5).abs() < 1e-9);
        assert!((p.rows[0].max_util() - 1.0).abs() < 1e-9);
        assert!((p.rows[0].imbalance_pct() - 100.0).abs() < 1e-9);
        // Interval 1: both at 50% — perfectly level.
        assert!((p.rows[1].imbalance_pct()).abs() < 1e-9);
        // Idle interval: no divide-by-zero.
        assert_eq!(p.rows[2].imbalance_pct(), 0.0);
        // Last interval clips to the 50ns that actually ran; PE0's 50ns
        // of work is 100% of it.
        assert_eq!(p.rows[3].width_ns, 50);
        assert!((p.rows[3].max_util() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coarsen_preserves_totals() {
        let p = TimeProfile::from_metrics(&log_two_pes());
        let c = p.coarsen_to(2);
        assert_eq!(c.rows.len(), 2);
        let msgs: u64 = p.rows.iter().map(|r| r.msgs_sent).sum();
        let cmsgs: u64 = c.rows.iter().map(|r| r.msgs_sent).sum();
        assert_eq!(msgs, cmsgs);
        let busy: u64 = p.rows.iter().flat_map(|r| r.pe_busy_ns.iter()).sum();
        let cbusy: u64 = c.rows.iter().flat_map(|r| r.pe_busy_ns.iter()).sum();
        assert_eq!(busy, cbusy);
        assert!((c.overall_util() - p.overall_util()).abs() < 1e-12);
        // Already-coarse profiles pass through unchanged.
        assert_eq!(c.coarsen_to(10), c);
    }

    #[test]
    fn render_and_json_are_well_formed() {
        let p = TimeProfile::from_metrics(&log_two_pes());
        let text = p.render();
        assert_eq!(text.lines().count(), 1 + 4 + 1); // header + rows + footer
        assert!(text.contains('#'));
        assert!(text.contains("overall utilization"));
        let json = p.to_json();
        json_lint::validate(&json).unwrap();
        assert!(json.contains("\"imbalance_pct\""));
        assert!(json.contains("\"npes\":2"));
    }

    #[test]
    fn empty_log_renders_without_panic() {
        let p = TimeProfile::from_metrics(&MetricsLog {
            npes: 0,
            end_ns: 0,
            slice_ns: 100,
            per_pe: vec![],
        });
        assert!(p.rows.len() <= 1);
        json_lint::validate(&p.to_json()).unwrap();
    }
}
